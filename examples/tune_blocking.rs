//! Blocking tuning: compare the §III-A cost model's predicted block sizes
//! against an empirical sweep on a real kernel run.
//!
//! ```sh
//! cargo run --release --example tune_blocking
//! ```

use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, CostModel, SketchConfig};

fn main() {
    let (m, n, rho) = (40_000, 1_000, 3e-3);
    let a = datagen::uniform_random::<f64>(m, n, rho, 5);
    let d = 3 * n;
    println!("A: {m}x{n} at density {rho:.0e}, d = {d}");

    // Model: L2-sized cache in f64 words; h and B are illustrative — use
    // `repro roofline` to measure them on this machine.
    let model = CostModel::new(131_072.0, 0.05, 30.0);
    let p = model.optimize(rho);
    println!(
        "model optimum: n₁ ≈ {:.0}, d₁ ≈ {:.0} (CI = {:.1}, predicted {:.1}% of peak)",
        p.n1,
        p.d1,
        p.ci,
        100.0 * p.frac_peak
    );

    // Empirical sweep over (b_d, b_n).
    println!("\nempirical sweep (seconds, best marked):");
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(1));
    let mut best = (f64::INFINITY, 0, 0);
    let mut lines = Vec::new();
    for &b_d in &[256usize, 1024, 3000] {
        for &b_n in &[32usize, 128, 500, n] {
            let cfg = SketchConfig::new(d, b_d, b_n, 1);
            let t0 = std::time::Instant::now();
            let out = sketch_alg3(&a, &cfg, &sampler);
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(&out);
            if secs < best.0 {
                best = (secs, b_d, b_n);
            }
            lines.push((b_d, b_n, secs));
        }
    }
    for (b_d, b_n, secs) in lines {
        let mark = if (b_d, b_n) == (best.1, best.2) {
            "  <-- best"
        } else {
            ""
        };
        println!("  b_d = {b_d:>5}, b_n = {b_n:>5}: {secs:.4}s{mark}");
    }
    println!(
        "\nheuristic of §V-B: larger b_d + smaller b_n shifts cost from memory \
         traffic to (cheap) regeneration — best here was b_d={}, b_n={}.",
        best.1, best.2
    );
}
