//! Quickstart: sketch a tall sparse matrix without ever materializing `S`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg4, SketchConfig};
use sparsekit::BlockedCsr;

fn main() {
    // A 20000x1500 sparse matrix at 0.2% density (tall, like the paper's
    // SpMM inputs) — here synthetic; use `sparsekit::io::read_matrix_market`
    // for a real one.
    let a = datagen::uniform_random::<f64>(20_000, 1_500, 2e-3, 42);
    println!(
        "A: {}x{}, nnz = {}, density = {:.2e}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.density()
    );

    // Sketch size d = 3n; paper's Frontera blocking b_d=3000, b_n=500.
    let cfg = SketchConfig::gamma(a.ncols(), 3, 3000, 500, /*seed=*/ 7);
    println!(
        "sketching to d = {} rows; S would need {:.1} MB if materialized — it never is",
        cfg.d,
        baselines::materialize_s_bytes::<f64>(cfg.d, a.nrows()) as f64 / 1e6
    );

    // Algorithm 3: plain CSC input, uniform (-1,1) entries.
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let t = std::time::Instant::now();
    let ahat3 = sketch_alg3(&a, &cfg, &sampler);
    println!(
        "Algorithm 3 (kji + RNG):   {:.1} ms -> Â is {}x{}",
        t.elapsed().as_secs_f64() * 1e3,
        ahat3.nrows(),
        ahat3.ncols()
    );

    // Algorithm 4: same sketch from the blocked-CSR structure.
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    let t = std::time::Instant::now();
    let ahat4 = sketch_alg4(&blocked, &cfg, &sampler);
    println!(
        "Algorithm 4 (jki + RNG):   {:.1} ms (identical result: |Â₃-Â₄| = {:.2e})",
        t.elapsed().as_secs_f64() * 1e3,
        ahat3.diff_norm(&ahat4)
    );

    // The cheapest distribution: ±1 signs, one random bit per entry.
    let pm1 = Rademacher::<f64>::sampler(FastRng::new(cfg.seed));
    let t = std::time::Instant::now();
    let _ahat_pm1 = sketch_alg3(&a, &cfg, &pm1);
    println!(
        "Algorithm 3 with ±1:       {:.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    // Reproducibility: same seed + same blocking => identical sketch.
    let again = sketch_alg3(&a, &cfg, &sampler);
    assert_eq!(ahat3, again);
    println!("re-run with the same seed is bit-identical ✓");
}
