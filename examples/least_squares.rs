//! Sketch-and-precondition least squares (the paper's §V-C pipeline).
//!
//! Builds an ill-conditioned tall sparse problem, then solves it three ways:
//! LSQR with diagonal preconditioning, SAP-QR (sketch + Householder QR
//! preconditioner), and the George–Heath direct sparse QR — and prints the
//! runtime / iteration / accuracy / memory contrast of the paper's
//! Tables IX–XI.
//!
//! ```sh
//! cargo run --release --example least_squares
//! ```

use datagen::lsq::{tall_conditioned, CondSpec};
use datagen::make_rhs;
use lstsq::{
    backward_error, solve_lsqr_d, solve_sap, sparse_qr_solve, LsqrOptions, SapFlavor, SapOptions,
};

fn main() {
    // An 80000x600 problem whose conditioning (spread spectrum, cond ~1500)
    // survives column equilibration — the regime where SAP shines.
    let a = tall_conditioned(80_000, 600, 1.2e-2, CondSpec::chain(3.2), 11);
    let (b, _) = make_rhs(&a, 3);
    println!(
        "A: {}x{}, nnz = {}, mem(A) = {:.2} MB",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.memory_bytes() as f64 / 1e6
    );

    // 1. LSQR-D.
    let opts = LsqrOptions {
        atol: 1e-14,
        btol: 1e-14,
        max_iters: 100_000,
        stall_window: 0,
    };
    let t = std::time::Instant::now();
    let (x_d, res) = solve_lsqr_d(&a, &b, &opts);
    println!(
        "\nLSQR-D:    {:.3}s, {} iterations, backward error {:.2e}",
        t.elapsed().as_secs_f64(),
        res.iters,
        backward_error(&a, &x_d, &b)
    );

    // 2. SAP-QR: sketch to d = 2n, factor, precondition.
    let sap = solve_sap(
        &a,
        &b,
        &SapOptions {
            gamma: 2,
            b_d: 3000,
            b_n: 500,
            seed: 7,
            flavor: SapFlavor::Qr,
            lsqr: opts,
        },
    );
    println!(
        "SAP-QR:    {:.3}s total (sketch {:.3}s, factor {:.3}s, LSQR {:.3}s), {} iterations, backward error {:.2e}",
        sap.total_s,
        sap.sketch_s,
        sap.factor_s,
        sap.solve_s,
        sap.iters,
        backward_error(&a, &sap.x, &b)
    );
    println!(
        "           extra memory {:.2} MB (dense 2n×n sketch + R factor)",
        sap.memory_bytes as f64 / 1e6
    );

    // 3. Direct sparse QR (George–Heath row Givens).
    let qr = sparse_qr_solve(&a, &b);
    println!(
        "sparse QR: {:.3}s, backward error {:.2e}, factors would occupy {:.2} MB",
        qr.seconds,
        backward_error(&a, &qr.x, &b),
        qr.factor_bytes as f64 / 1e6
    );

    // The three solutions agree.
    let diff: f64 = sap
        .x
        .iter()
        .zip(x_d.iter())
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = x_d.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("\n|x_SAP − x_LSQRD| / |x| = {:.2e} ✓", diff / norm);
}
