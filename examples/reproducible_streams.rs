//! Reproducibility semantics of the two generator families (paper §IV-B/C).
//!
//! * Checkpointed xoshiro: the sketch is a pure function of
//!   `(seed, b_d, b_n)` — change the blocking and you get a *different but
//!   equally valid* random sketch.
//! * Philox (counter-based): every entry of `S` is addressed by its absolute
//!   `(row, column)`, so the sketch is identical for *any* blocking and any
//!   thread count — the RandBLAS-compatible mode.
//!
//! ```sh
//! cargo run --release --example reproducible_streams
//! ```

use rngkit::{BlockSampler, FastRng, PhiloxSampler, UnitUniform};
use sketchcore::{sketch_alg3, SketchConfig};

/// Adapter exposing [`PhiloxSampler`] to the kernels: `set_state` receives
/// the *global row offset* of the block, which is exactly the coordinate a
/// counter-based generator needs for blocking independence.
#[derive(Clone)]
struct PhiloxBlockSampler(PhiloxSampler);

impl BlockSampler<f64> for PhiloxBlockSampler {
    fn set_state(&mut self, block_row: usize, col: usize) {
        self.0.seek(block_row, col);
    }
    fn fill(&mut self, out: &mut [f64]) {
        self.0.fill_unit_f64(out);
    }
    fn fill_axpy(&mut self, coeff: f64, out: &mut [f64]) {
        let mut tile = [0.0f64; 64];
        for chunk in out.chunks_mut(64) {
            let t = &mut tile[..chunk.len()];
            self.0.fill_unit_f64(t);
            for (o, &s) in chunk.iter_mut().zip(t.iter()) {
                *o = coeff.mul_add(s, *o);
            }
        }
    }
    fn cost(&self) -> rngkit::SampleCost {
        rngkit::SampleCost {
            words_per_sample: 1.0,
            label: "philox-4x32-10 unit uniform",
        }
    }
}

fn main() {
    let a = datagen::uniform_random::<f64>(5_000, 400, 5e-3, 9);
    let cfg_a = SketchConfig::gamma(a.ncols(), 3, 512, 128, 7);
    let cfg_b = SketchConfig::gamma(a.ncols(), 3, 300, 64, 7); // different blocking

    // Xoshiro checkpoints: blocking changes the sketch.
    let xo = UnitUniform::<f64>::sampler(FastRng::new(7));
    let x1 = sketch_alg3(&a, &cfg_a, &xo);
    let x2 = sketch_alg3(&a, &cfg_b, &xo);
    println!(
        "xoshiro checkpoints: |Â(b_d=512) − Â(b_d=300)| = {:.3e}  (different draw)",
        x1.diff_norm(&x2)
    );

    // Philox counters: blocking-independent, bit-identical.
    let ph = PhiloxBlockSampler(PhiloxSampler::new(7));
    let p1 = sketch_alg3(&a, &cfg_a, &ph);
    let p2 = sketch_alg3(&a, &cfg_b, &ph);
    println!(
        "philox counters:     |Â(b_d=512) − Â(b_d=300)| = {:.3e}  (bit-identical)",
        p1.diff_norm(&p2)
    );
    assert_eq!(p1, p2);

    // Both sketches have the right second moment: E[‖Âx‖²] ∝ d/3·‖Ax‖².
    let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 7) as f64) - 3.0).collect();
    let mut ax = vec![0.0; a.nrows()];
    a.spmv(&x, &mut ax);
    let ax_norm2: f64 = ax.iter().map(|v| v * v).sum();
    for (name, sk) in [("xoshiro", &x1), ("philox", &p1)] {
        let mut shx = vec![0.0; sk.nrows()];
        sk.matvec(&x, &mut shx);
        let ratio = shx.iter().map(|v| v * v).sum::<f64>() / (ax_norm2 * cfg_a.d as f64 / 3.0);
        println!("{name}: ‖Âx‖²/(d/3·‖Ax‖²) = {ratio:.3} (≈1 expected)");
    }
}
