//! Pattern-aware kernel advisor — the paper's §VI future-work direction,
//! implemented: profile a matrix's sparsity pattern in one pass and predict
//! whether Algorithm 3 (kji, pattern-oblivious) or Algorithm 4 (jki,
//! reuse-driven) will sketch it faster, then verify by running both.
//!
//! ```sh
//! cargo run --release --example pattern_advisor [path/to/matrix.mtx]
//! ```

use rngkit::{FastRng, UnitUniform};
use sketchcore::{
    predict_kernels, profile_pattern, sketch_alg3, sketch_alg4, tune_b_n, KernelCosts, SketchConfig,
};
use sparsekit::stats::pattern_stats;
use sparsekit::BlockedCsr;

fn main() {
    let arg = std::env::args().nth(1);
    let a = match arg {
        Some(path) => {
            println!("reading {path} ...");
            sparsekit::io::read_matrix_market::<f64, _>(&path).expect("readable Matrix Market file")
        }
        None => {
            println!("no file given — using the Abnormal_A stand-in (dense rows)");
            datagen::abnormal_a::<f64>(20_000, 2_000, 200, 7)
        }
    };

    let stats = pattern_stats(&a);
    println!(
        "\npattern: {}x{} nnz {} density {:.2e}",
        stats.shape.0, stats.shape.1, stats.shape.2, stats.density
    );
    println!(
        "row nnz (min/mean/max): {}/{:.2}/{}   col nnz: {}/{:.2}/{}",
        stats.row_nnz.0,
        stats.row_nnz.1,
        stats.row_nnz.2,
        stats.col_nnz.0,
        stats.col_nnz.1,
        stats.col_nnz.2
    );
    println!(
        "empty rows {} / cols {}; top-decile column mass {:.2}",
        stats.empty_rows, stats.empty_cols, stats.top_decile_col_mass
    );

    let n = a.ncols();
    let d = 3 * n;
    let b_n = 500.min(n);
    let prof = profile_pattern(&a, b_n);
    println!(
        "\nAlg 4 profile at b_n={b_n}: {} nonempty row-blocks, reuse factor {:.2}",
        prof.nonempty_row_blocks, prof.reuse
    );
    let (best_bn, best_samples) = tune_b_n(&a, &[b_n / 4, b_n / 2, b_n, (2 * b_n).min(n)]);
    println!("sample-minimizing b_n among candidates: {best_bn} ({best_samples} row-blocks)");

    let pred = predict_kernels(&a, d, b_n, &KernelCosts::default());
    println!(
        "model: alg3 {:.0}M samples → {:.3}s;  alg4 {:.0}M samples → {:.3}s;  model picks {}",
        pred.alg3_samples as f64 / 1e6,
        pred.alg3_seconds,
        pred.alg4_samples as f64 / 1e6,
        pred.alg4_seconds,
        if pred.prefer_alg4() { "Alg 4" } else { "Alg 3" },
    );

    // Verify.
    let cfg = SketchConfig::new(d, 3000.min(d), b_n, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(7));
    let t0 = std::time::Instant::now();
    let x3 = sketch_alg3(&a, &cfg, &sampler);
    let t3 = t0.elapsed().as_secs_f64();
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    let t0 = std::time::Instant::now();
    let x4 = sketch_alg4(&blocked, &cfg, &sampler);
    let t4 = t0.elapsed().as_secs_f64();
    assert!(x3.diff_norm(&x4) < 1e-10 * x3.fro_norm().max(1.0));
    println!(
        "measured: alg3 {t3:.3}s, alg4 {t4:.3}s → {} wins (model {})",
        if t4 < t3 { "Alg 4" } else { "Alg 3" },
        if pred.prefer_alg4() == (t4 < t3) {
            "agreed ✓"
        } else {
            "disagreed ✗"
        },
    );
}
