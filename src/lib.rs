//! # sparse-sketch — façade crate
//!
//! Re-exports the full reproduction of Liang, Murray, Buluç & Demmel,
//! *"Fast multiplication of random dense matrices with sparse matrices"*
//! (IPPS 2024): sketching SpMM kernels with on-the-fly random number
//! regeneration, the substrates they are built on, baselines, and the
//! sketch-and-precondition least-squares pipeline.
//!
//! See the individual crates for the details:
//!
//! * [`rngkit`] — seekable RNGs (xoshiro checkpoints, Philox counters) and
//!   entry distributions.
//! * [`sparsekit`] — CSC/CSR/COO/blocked-CSR sparse formats and I/O.
//! * [`densekit`] — dense matrices, GEMM, QR, SVD.
//! * [`sketchcore`] — Algorithms 1, 3 and 4; parallel drivers; roofline model.
//! * [`baselines`] — materialized-`S` library-style SpMM baselines.
//! * [`lstsq`] — LSQR, sketch-and-precondition solvers, sparse QR.
//! * [`datagen`] — synthetic stand-ins for the paper's test matrices.

pub use baselines;
pub use datagen;
pub use densekit;
pub use lstsq;
pub use rngkit;
pub use sketchcore;
pub use sparsekit;

/// Crate version string (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
