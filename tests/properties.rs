//! Property-based tests (proptest) on the core invariants: random matrices,
//! random blockings, random seeds — the algebra must always hold.

use datagen::uniform_random;
use densekit::{HouseholderQr, Matrix, ThinSvd};
use proptest::prelude::*;
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg4, SketchConfig};
use sparsekit::{BlockedCsr, CooMatrix, CscMatrix};

/// Strategy: a small random sparse matrix described by (m, n, entries).
fn sparse_matrix() -> impl Strategy<Value = CscMatrix<f64>> {
    (2usize..40, 2usize..30).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            ((0..m), (0..n), -10.0f64..10.0),
            0..(m * n).min(120),
        )
        .prop_map(move |entries| {
            let mut coo = CooMatrix::new(m, n);
            for (i, j, v) in entries {
                coo.push(i, j, v).unwrap();
            }
            coo.to_csc().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO→CSC→CSR→CSC round trip is the identity.
    #[test]
    fn format_round_trips(a in sparse_matrix()) {
        let csr = a.to_csr();
        prop_assert_eq!(csr.to_csc(), a.clone());
        let t = a.transpose().transpose();
        prop_assert_eq!(t, a);
    }

    /// Blocked CSR reassembles to the source for any block width, and the
    /// parallel construction matches the sequential one.
    #[test]
    fn blocked_csr_any_width(a in sparse_matrix(), b_n in 1usize..40) {
        let blk = BlockedCsr::from_csc(&a, b_n);
        prop_assert_eq!(blk.to_csc(), a.clone());
        let par = BlockedCsr::from_csc_parallel(&a, b_n);
        prop_assert_eq!(par.nnz(), blk.nnz());
        for b in 0..blk.nblocks() {
            prop_assert_eq!(blk.block(b), par.block(b));
        }
    }

    /// SpMV agrees with the dense expansion.
    #[test]
    fn spmv_matches_dense(a in sparse_matrix(), seed in 0u64..1000) {
        let n = a.ncols();
        let m = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 17) as f64 - 8.0).collect();
        let mut y = vec![0.0; m];
        a.spmv(&x, &mut y);
        let dense = a.to_dense_row_major();
        for i in 0..m {
            let want: f64 = (0..n).map(|j| dense[i * n + j] * x[j]).sum();
            prop_assert!((y[i] - want).abs() < 1e-9 * want.abs().max(1.0));
        }
    }

    /// Algorithms 3 and 4 agree for every matrix, blocking, and seed.
    #[test]
    fn alg3_equals_alg4(
        a in sparse_matrix(),
        d in 1usize..50,
        b_d in 1usize..60,
        b_n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let cfg = SketchConfig::new(d, b_d, b_n, seed);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let x3 = sketch_alg3(&a, &cfg, &sampler);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
        let x4 = sketch_alg4(&blocked, &cfg, &sampler);
        let tol = 1e-11 * x3.fro_norm().max(1.0);
        prop_assert!(x3.diff_norm(&x4) < tol, "diff {}", x3.diff_norm(&x4));
    }

    /// The sketch is linear in A: sketch(αA) = α·sketch(A).
    #[test]
    fn sketch_linearity(a in sparse_matrix(), alpha in -4.0f64..4.0, seed in 0u64..1000) {
        let cfg = SketchConfig::new(16, 8, 8, seed);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let base = sketch_alg3(&a, &cfg, &sampler);
        let mut scaled_a = a.clone();
        scaled_a.scale_values(alpha);
        let scaled = sketch_alg3(&scaled_a, &cfg, &sampler);
        let mut expect = base.clone();
        expect.scale(alpha);
        prop_assert!(scaled.diff_norm(&expect) < 1e-10 * expect.fro_norm().max(1.0));
    }

    /// QR reconstructs: ‖QR − A‖ small, R upper triangular.
    #[test]
    fn qr_invariants(cols in 1usize..8, seed in 0u64..500) {
        let rows = cols + (seed % 20) as usize;
        let mut s = seed | 1;
        let a = Matrix::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        });
        let qr = HouseholderQr::factor(&a);
        let r = qr.r();
        for i in 0..cols {
            for j in 0..i {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
        // Column norms preserved: ‖A e_j‖ = ‖R e_j‖ (Q orthonormal).
        for j in 0..cols {
            let na: f64 = a.col(j).iter().map(|v| v * v).sum::<f64>().sqrt();
            let nr: f64 = r.col(j).iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!((na - nr).abs() < 1e-10 * na.max(1.0));
        }
    }

    /// SVD invariants on random matrices: ‖A‖_F² = Σσ², σ sorted, V orthonormal.
    #[test]
    fn svd_invariants(cols in 1usize..7, extra in 0usize..12, seed in 0u64..500) {
        let rows = cols + extra;
        let mut s = seed | 1;
        let a = Matrix::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((s >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        });
        let svd = ThinSvd::factor(&a);
        prop_assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1]));
        let fro2 = a.fro_norm().powi(2);
        let sum2: f64 = svd.sigma.iter().map(|x| x * x).sum();
        prop_assert!((fro2 - sum2).abs() < 1e-9 * fro2.max(1e-30));
        for i in 0..cols {
            for j in 0..cols {
                let dot: f64 = svd.v.col(i).iter().zip(svd.v.col(j)).map(|(a, b)| a * b).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-9);
            }
        }
    }

    /// The checkpointed generator is a pure function of (seed, r, c).
    #[test]
    fn checkpoint_purity(seed in 0u64..10_000, r in 0usize..1000, c in 0usize..1000) {
        use rngkit::BlockSampler;
        let mut s1 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let mut s2 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        // s2 visits other checkpoints first; history must not matter.
        s2.set_state(r / 2 + 1, c / 3 + 5);
        let mut junk = [0.0; 7];
        s2.fill(&mut junk);
        let mut a = [0.0; 13];
        let mut b = [0.0; 13];
        s1.set_state(r, c);
        s1.fill(&mut a);
        s2.set_state(r, c);
        s2.fill(&mut b);
        prop_assert_eq!(a, b);
    }

    /// fill_axpy is exactly fill-then-axpy.
    #[test]
    fn fused_axpy_consistent(seed in 0u64..10_000, coeff in -8.0f64..8.0, len in 1usize..200) {
        use rngkit::BlockSampler;
        let mut s1 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let mut s2 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let mut direct = vec![1.0; len];
        let mut staged = vec![1.0; len];
        let mut v = vec![0.0; len];
        s1.set_state(3, 4);
        s1.fill_axpy(coeff, &mut direct);
        s2.set_state(3, 4);
        s2.fill(&mut v);
        for (o, &x) in staged.iter_mut().zip(v.iter()) {
            *o += coeff * x;
        }
        for (x, y) in direct.iter().zip(staged.iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// Matrix Market writer/reader round trip for arbitrary matrices.
    #[test]
    fn matrix_market_round_trip(a in sparse_matrix()) {
        let mut buf = Vec::new();
        sparsekit::io::write_matrix_market_to(&a, &mut buf).unwrap();
        let b: CscMatrix<f64> =
            sparsekit::io::read_matrix_market_from(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// uniform_random honours its density argument on average.
    #[test]
    fn generator_density(seed in 0u64..100) {
        let a = uniform_random::<f64>(400, 200, 0.05, seed);
        let rho = a.density();
        prop_assert!((rho - 0.05).abs() < 0.02, "density {rho}");
    }
}
