//! Property-style tests on the core invariants: random matrices, random
//! blockings, random seeds — the algebra must always hold.
//!
//! Originally written with proptest; now driven by a deterministic LCG over
//! 64 cases per property so the workspace builds with no external
//! dependencies. Failures print the case seed, which fully reproduces the
//! inputs.

use datagen::uniform_random;
use densekit::{HouseholderQr, Matrix, ThinSvd};
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg4, SketchConfig};
use sparsekit::{BlockedCsr, CooMatrix, CscMatrix};

const CASES: u64 = 64;

/// Deterministic case generator: a splitmix-style stream per (property, case).
struct Gen(u64);

impl Gen {
    fn new(property: u64, case: u64) -> Self {
        Gen(property.wrapping_mul(0x9E3779B97F4A7C15) ^ case.wrapping_add(0xD1B54A32D192ED03))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    /// Uniform-ish float in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() % 100_000) as f64 / 100_000.0 * (hi - lo)
    }

    /// A small random sparse matrix: m in [2,40), n in [2,30), up to
    /// `min(m·n, 120)` pushed entries (duplicates merge in `to_csc`).
    fn sparse_matrix(&mut self) -> CscMatrix<f64> {
        let m = self.usize_in(2, 40);
        let n = self.usize_in(2, 30);
        let entries = self.usize_in(0, (m * n).min(120) + 1);
        let mut coo = CooMatrix::new(m, n);
        for _ in 0..entries {
            let i = self.usize_in(0, m);
            let j = self.usize_in(0, n);
            let v = self.f64_in(-10.0, 10.0);
            coo.push(i, j, v).unwrap();
        }
        coo.to_csc().unwrap()
    }
}

/// COO→CSC→CSR→CSC round trip is the identity.
#[test]
fn format_round_trips() {
    for case in 0..CASES {
        let mut g = Gen::new(1, case);
        let a = g.sparse_matrix();
        let csr = a.to_csr();
        assert_eq!(csr.to_csc(), a, "case {case}");
        assert_eq!(a.transpose().transpose(), a, "case {case}");
    }
}

/// Blocked CSR reassembles to the source for any block width, and the
/// parallel construction matches the sequential one.
#[test]
fn blocked_csr_any_width() {
    for case in 0..CASES {
        let mut g = Gen::new(2, case);
        let a = g.sparse_matrix();
        let b_n = g.usize_in(1, 40);
        let blk = BlockedCsr::from_csc(&a, b_n);
        assert_eq!(blk.to_csc(), a, "case {case}");
        let par = BlockedCsr::from_csc_parallel(&a, b_n);
        assert_eq!(par.nnz(), blk.nnz(), "case {case}");
        for b in 0..blk.nblocks() {
            assert_eq!(blk.block(b), par.block(b), "case {case} block {b}");
        }
    }
}

/// SpMV agrees with the dense expansion.
#[test]
fn spmv_matches_dense() {
    for case in 0..CASES {
        let mut g = Gen::new(3, case);
        let a = g.sparse_matrix();
        let seed = g.next() % 1000;
        let (m, n) = (a.nrows(), a.ncols());
        let x: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 17) as f64 - 8.0)
            .collect();
        let mut y = vec![0.0; m];
        a.spmv(&x, &mut y);
        let dense = a.to_dense_row_major();
        for i in 0..m {
            let want: f64 = (0..n).map(|j| dense[i * n + j] * x[j]).sum();
            assert!(
                (y[i] - want).abs() < 1e-9 * want.abs().max(1.0),
                "case {case} row {i}: {} vs {want}",
                y[i]
            );
        }
    }
}

/// Algorithms 3 and 4 agree for every matrix, blocking, and seed.
#[test]
fn alg3_equals_alg4() {
    for case in 0..CASES {
        let mut g = Gen::new(4, case);
        let a = g.sparse_matrix();
        let d = g.usize_in(1, 50);
        let b_d = g.usize_in(1, 60);
        let b_n = g.usize_in(1, 40);
        let seed = g.next() % 10_000;
        let cfg = SketchConfig::new(d, b_d, b_n, seed);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let x3 = sketch_alg3(&a, &cfg, &sampler);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
        let x4 = sketch_alg4(&blocked, &cfg, &sampler);
        let tol = 1e-11 * x3.fro_norm().max(1.0);
        assert!(
            x3.diff_norm(&x4) < tol,
            "case {case}: diff {}",
            x3.diff_norm(&x4)
        );
    }
}

/// The sketch is linear in A: sketch(αA) = α·sketch(A).
#[test]
fn sketch_linearity() {
    for case in 0..CASES {
        let mut g = Gen::new(5, case);
        let a = g.sparse_matrix();
        let alpha = g.f64_in(-4.0, 4.0);
        let seed = g.next() % 1000;
        let cfg = SketchConfig::new(16, 8, 8, seed);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let base = sketch_alg3(&a, &cfg, &sampler);
        let mut scaled_a = a.clone();
        scaled_a.scale_values(alpha);
        let scaled = sketch_alg3(&scaled_a, &cfg, &sampler);
        let mut expect = base.clone();
        expect.scale(alpha);
        assert!(
            scaled.diff_norm(&expect) < 1e-10 * expect.fro_norm().max(1.0),
            "case {case} (alpha {alpha})"
        );
    }
}

/// QR reconstructs: R upper triangular, column norms preserved.
#[test]
fn qr_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new(6, case);
        let cols = g.usize_in(1, 8);
        let seed = g.next() % 500;
        let rows = cols + (seed % 20) as usize;
        let mut s = seed | 1;
        let a = Matrix::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        });
        let qr = HouseholderQr::factor(&a);
        let r = qr.r();
        for i in 0..cols {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0, "case {case}: R not upper triangular");
            }
        }
        // Column norms preserved: ‖A e_j‖ = ‖R e_j‖ (Q orthonormal).
        for j in 0..cols {
            let na: f64 = a.col(j).iter().map(|v| v * v).sum::<f64>().sqrt();
            let nr: f64 = r.col(j).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((na - nr).abs() < 1e-10 * na.max(1.0), "case {case} col {j}");
        }
    }
}

/// SVD invariants on random matrices: ‖A‖_F² = Σσ², σ sorted, V orthonormal.
#[test]
fn svd_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new(7, case);
        let cols = g.usize_in(1, 7);
        let extra = g.usize_in(0, 12);
        let seed = g.next() % 500;
        let rows = cols + extra;
        let mut s = seed | 1;
        let a = Matrix::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((s >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        });
        let svd = ThinSvd::factor(&a);
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1]), "case {case}");
        let fro2 = a.fro_norm().powi(2);
        let sum2: f64 = svd.sigma.iter().map(|x| x * x).sum();
        assert!((fro2 - sum2).abs() < 1e-9 * fro2.max(1e-30), "case {case}");
        for i in 0..cols {
            for j in 0..cols {
                let dot: f64 = svd
                    .v
                    .col(i)
                    .iter()
                    .zip(svd.v.col(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "case {case} ({i},{j})");
            }
        }
    }
}

/// The checkpointed generator is a pure function of (seed, r, c).
#[test]
fn checkpoint_purity() {
    use rngkit::BlockSampler;
    for case in 0..CASES {
        let mut g = Gen::new(8, case);
        let seed = g.next() % 10_000;
        let r = g.usize_in(0, 1000);
        let c = g.usize_in(0, 1000);
        let mut s1 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let mut s2 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        // s2 visits other checkpoints first; history must not matter.
        s2.set_state(r / 2 + 1, c / 3 + 5);
        let mut junk = [0.0; 7];
        s2.fill(&mut junk);
        let mut a = [0.0; 13];
        let mut b = [0.0; 13];
        s1.set_state(r, c);
        s1.fill(&mut a);
        s2.set_state(r, c);
        s2.fill(&mut b);
        assert_eq!(a, b, "case {case} ({r},{c})");
    }
}

/// fill_axpy is exactly fill-then-axpy.
#[test]
fn fused_axpy_consistent() {
    use rngkit::BlockSampler;
    for case in 0..CASES {
        let mut g = Gen::new(9, case);
        let seed = g.next() % 10_000;
        let coeff = g.f64_in(-8.0, 8.0);
        let len = g.usize_in(1, 200);
        let mut s1 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let mut s2 = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let mut direct = vec![1.0; len];
        let mut staged = vec![1.0; len];
        let mut v = vec![0.0; len];
        s1.set_state(3, 4);
        s1.fill_axpy(coeff, &mut direct);
        s2.set_state(3, 4);
        s2.fill(&mut v);
        for (o, &x) in staged.iter_mut().zip(v.iter()) {
            *o += coeff * x;
        }
        for (x, y) in direct.iter().zip(staged.iter()) {
            assert!((x - y).abs() < 1e-12, "case {case}");
        }
    }
}

/// Matrix Market writer/reader round trip for arbitrary matrices.
#[test]
fn matrix_market_round_trip() {
    for case in 0..CASES {
        let mut g = Gen::new(10, case);
        let a = g.sparse_matrix();
        let mut buf = Vec::new();
        sparsekit::io::write_matrix_market_to(&a, &mut buf).unwrap();
        let b: CscMatrix<f64> =
            sparsekit::io::read_matrix_market_from(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}

/// Every generated matrix passes the CSC/CSR invariant validator, in both
/// storage orders — the validator has no false positives on the lawful
/// construction paths.
#[test]
fn validator_accepts_generated_matrices() {
    for case in 0..CASES {
        let mut g = Gen::new(11, case);
        let a = g.sparse_matrix();
        assert!(a.validate().is_ok(), "case {case}: CSC rejected");
        assert!(a.to_csr().validate().is_ok(), "case {case}: CSR rejected");
    }
}

/// Every single-invariant corruption of a valid matrix is rejected with the
/// *matching* `SparseError` variant — never accepted, never misattributed —
/// for any matrix, seed, and both storage orders.
#[test]
fn validator_rejects_each_corruption_with_matching_variant() {
    use sparsekit::corrupt::{corrupt_csc, corrupt_csr, Corruption};
    use sparsekit::SparseError;

    fn check(kind: Corruption, err: &SparseError, case: u64, order: &str) {
        let matched = match kind {
            Corruption::SwapAdjacentIndices => {
                matches!(err, SparseError::UnsortedIndices { .. })
            }
            Corruption::OutOfBoundsIndex => {
                matches!(err, SparseError::IndexOutOfBounds { .. })
            }
            Corruption::NonMonotonePtr => matches!(err, SparseError::NonMonotonePtr { .. }),
            Corruption::NanValue | Corruption::InfValue => {
                matches!(err, SparseError::NotFinite { .. })
            }
        };
        assert!(matched, "case {case} {order} {kind:?}: wrong variant {err}");
    }

    for case in 0..CASES {
        let mut g = Gen::new(12, case);
        let a = g.sparse_matrix();
        let csr = a.to_csr();
        let seed = g.next();
        for kind in Corruption::ALL {
            // `None` means this matrix cannot host the corruption (e.g. no
            // slot with two entries to swap) — a lawful skip, not a failure.
            if let Some(bad) = corrupt_csc(&a, kind, seed) {
                let err = bad.validate().expect_err("corrupted CSC accepted");
                check(kind, &err, case, "csc");
            }
            if let Some(bad) = corrupt_csr(&csr, kind, seed) {
                let err = bad.validate().expect_err("corrupted CSR accepted");
                check(kind, &err, case, "csr");
            }
        }
    }
}

/// uniform_random honours its density argument on average.
#[test]
fn generator_density() {
    for seed in 0..CASES {
        let a = uniform_random::<f64>(400, 200, 0.05, seed);
        let rho = a.density();
        assert!((rho - 0.05).abs() < 0.02, "seed {seed}: density {rho}");
    }
}
