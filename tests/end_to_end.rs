//! Cross-crate integration tests: the full sketching pipeline exercised
//! through the public API, at sizes large enough to cross block boundaries.

use baselines::{csc_outer, eigen_style, materialize_s, mkl_style, pregen_blocked};
use datagen::lsq::{tall_conditioned, CondSpec};
use datagen::{abnormal_a, abnormal_c, make_rhs, spmm_suite, uniform_random};
use lstsq::{
    backward_error, solve_lsqr_d, solve_sap, sparse_qr_solve, LsqrOptions, SapFlavor, SapOptions,
};
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::parallel::{
    sketch_alg3_par_cols, sketch_alg3_par_rows, sketch_alg4_par_cols, sketch_alg4_par_rows,
    with_threads,
};
use sketchcore::{sketch_alg3, sketch_alg4, SketchConfig};
use sparsekit::BlockedCsr;

fn uni(seed: u64) -> rngkit::DistSampler<UnitUniform<f64>, FastRng> {
    UnitUniform::<f64>::sampler(FastRng::new(seed))
}

#[test]
fn every_kernel_and_baseline_computes_the_same_sketch() {
    let a = uniform_random::<f64>(3_000, 500, 4e-3, 1);
    let cfg = SketchConfig::new(700, 256, 96, 99);
    let sampler = uni(cfg.seed);

    let x3 = sketch_alg3(&a, &cfg, &sampler);
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    let x4 = sketch_alg4(&blocked, &cfg, &sampler);

    let s = materialize_s(&sampler, cfg.d, a.nrows(), cfg.b_d);
    let candidates = [
        ("alg4", x4),
        ("alg3_par_cols", sketch_alg3_par_cols(&a, &cfg, &sampler)),
        ("alg3_par_rows", sketch_alg3_par_rows(&a, &cfg, &sampler)),
        (
            "alg4_par_cols",
            sketch_alg4_par_cols(&blocked, &cfg, &sampler),
        ),
        (
            "alg4_par_rows",
            sketch_alg4_par_rows(&blocked, &cfg, &sampler),
        ),
        ("mkl", mkl_style(&a, &s)),
        ("eigen", eigen_style(&a, &s)),
        ("julia", csc_outer(&a, &s)),
        ("pregen_blocked", pregen_blocked(&a, &s, cfg.b_d, cfg.b_n)),
    ];
    let tol = 1e-11 * x3.fro_norm();
    for (name, got) in candidates {
        assert!(
            got.diff_norm(&x3) < tol,
            "{name} disagrees with alg3 by {}",
            got.diff_norm(&x3)
        );
    }
}

#[test]
fn thread_count_never_changes_the_answer() {
    let a = uniform_random::<f64>(2_000, 300, 5e-3, 2);
    let cfg = SketchConfig::new(420, 128, 64, 3);
    let sampler = uni(cfg.seed);
    let reference = with_threads(1, || sketch_alg3_par_rows(&a, &cfg, &sampler));
    for t in [2, 3, 8] {
        let out = with_threads(t, || sketch_alg3_par_rows(&a, &cfg, &sampler));
        assert_eq!(reference, out, "{t} threads changed the sketch");
    }
}

#[test]
fn sketch_is_a_subspace_embedding() {
    // σ(S·Q) must concentrate around 1 for orthonormal Q — the property that
    // makes the SAP preconditioner work (paper §V intro: ε → 1/√γ).
    let a = uniform_random::<f64>(2_000, 60, 0.02, 5);
    let (smin, smax) = bench::solvers::sketch_distortion(&a, 3, 11);
    assert!(
        smin > 0.35 && smax < 1.75,
        "distortion [{smin:.3}, {smax:.3}] outside γ=3 expectations"
    );
}

#[test]
fn suite_standins_run_through_both_kernels() {
    for nm in spmm_suite(128) {
        let cfg = SketchConfig::new(nm.d, 3000.min(nm.d), 500.min(nm.matrix.ncols()), 1);
        let sampler = uni(1);
        let x3 = sketch_alg3(&nm.matrix, &cfg, &sampler);
        let blocked = BlockedCsr::from_csc(&nm.matrix, cfg.b_n);
        let x4 = sketch_alg4(&blocked, &cfg, &sampler);
        assert!(
            x3.diff_norm(&x4) < 1e-11 * x3.fro_norm().max(1.0),
            "{} kernels disagree",
            nm.name
        );
        assert!(x3.as_slice().iter().all(|v| v.is_finite()), "{}", nm.name);
    }
}

#[test]
fn abnormal_patterns_preserve_correctness() {
    let a = abnormal_a::<f64>(2_000, 200, 20, 7);
    let c = abnormal_c::<f64>(2_000, 200, 20, 7);
    for (name, m) in [("A", &a), ("C", &c)] {
        let cfg = SketchConfig::new(300, 128, 48, 5);
        let sampler = uni(cfg.seed);
        let x3 = sketch_alg3(m, &cfg, &sampler);
        let x4 = sketch_alg4(&BlockedCsr::from_csc(m, cfg.b_n), &cfg, &sampler);
        assert!(
            x3.diff_norm(&x4) < 1e-11 * x3.fro_norm().max(1.0),
            "pattern {name}"
        );
    }
}

#[test]
fn full_sap_pipeline_all_three_solvers_agree() {
    let a = tall_conditioned(4_000, 80, 0.01, CondSpec::chain(2.0), 3);
    let (b, _) = make_rhs(&a, 9);
    let opts = LsqrOptions {
        atol: 1e-14,
        btol: 1e-14,
        max_iters: 50_000,
        stall_window: 0,
    };

    let (x_d, _) = solve_lsqr_d(&a, &b, &opts);
    let sap = solve_sap(
        &a,
        &b,
        &SapOptions {
            gamma: 2,
            b_d: 200,
            b_n: 40,
            seed: 4,
            flavor: SapFlavor::Qr,
            lsqr: opts,
        },
    );
    let qr = sparse_qr_solve(&a, &b);

    for (name, x) in [("lsqr-d", &x_d), ("sap", &sap.x), ("direct", &qr.x)] {
        let err = backward_error(&a, x, &b);
        assert!(err < 1e-10, "{name} backward error {err}");
    }
    // Pairwise agreement of the minimizers.
    let dist = |u: &[f64], v: &[f64]| {
        u.iter()
            .zip(v.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };
    let scale = x_d.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(dist(&x_d, &sap.x) < 1e-6 * scale);
    assert!(dist(&x_d, &qr.x) < 1e-6 * scale);
}

#[test]
fn sap_svd_handles_numerically_rank_deficient_input() {
    let a = tall_conditioned(2_000, 64, 0.02, CondSpec::deficient(14.0, 1.3), 6);
    let (b, _) = make_rhs(&a, 2);
    let sap = solve_sap(
        &a,
        &b,
        &SapOptions {
            gamma: 2,
            b_d: 128,
            b_n: 32,
            seed: 8,
            flavor: SapFlavor::Svd,
            lsqr: LsqrOptions::default(),
        },
    );
    assert!(sap.rank < 64, "deficiency not detected (rank {})", sap.rank);
    assert!(backward_error(&a, &sap.x, &b) < 1e-8);
    assert!(sap.x.iter().all(|v| v.is_finite()));
}

#[test]
fn matrix_market_round_trip_preserves_pipeline_results() {
    let a = uniform_random::<f64>(500, 60, 0.02, 12);
    let mut buf = Vec::new();
    sparsekit::io::write_matrix_market_to(&a, &mut buf).unwrap();
    let b: sparsekit::CscMatrix<f64> =
        sparsekit::io::read_matrix_market_from(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(a, b);
    let cfg = SketchConfig::new(120, 64, 16, 3);
    let sampler = uni(3);
    assert_eq!(
        sketch_alg3(&a, &cfg, &sampler),
        sketch_alg3(&b, &cfg, &sampler)
    );
}

#[test]
fn scaling_trick_equals_plain_uniform_statistically() {
    // (Sf)(A/f) has identical first/second moments to S·A; check the
    // column-energy ratio is ≈ 1.
    let a = uniform_random::<f64>(1_000, 100, 0.02, 8);
    let cfg = SketchConfig::new(200, 100, 25, 21);
    let plain = sketch_alg3(&a, &cfg, &uni(cfg.seed));
    let scaled = sketchcore::alg3::sketch_alg3_scaled(&a, &cfg, &FastRng::new(cfg.seed));
    let e1: f64 = plain.as_slice().iter().map(|v| v * v).sum();
    let e2: f64 = scaled.as_slice().iter().map(|v| v * v).sum();
    let ratio = e1 / e2;
    assert!((0.9..1.1).contains(&ratio), "energy ratio {ratio}");
}

#[test]
fn rademacher_sketch_preserves_energy() {
    let a = uniform_random::<f64>(1_500, 80, 0.02, 4);
    let cfg = SketchConfig::new(240, 120, 20, 13);
    let sk = sketch_alg3(
        &a,
        &cfg,
        &Rademacher::<f64>::sampler(FastRng::new(cfg.seed)),
    );
    // E‖Â‖_F² = d·‖A‖_F² for ±1 entries.
    let ratio = sk.fro_norm().powi(2) / (cfg.d as f64 * a.fro_norm().powi(2));
    assert!((0.9..1.1).contains(&ratio), "energy ratio {ratio}");
}

#[test]
fn lsqr_over_csb_operator_matches_csc() {
    use lstsq::{lsqr, CsbOp, CscOp, LinOp, LsqrOptions};
    let a = tall_conditioned(2_000, 64, 0.02, CondSpec::chain(1.5), 8);
    let (b, _) = make_rhs(&a, 4);
    let mut csc_op = CscOp::new(&a);
    let r1 = lsqr(&mut csc_op, &b, &LsqrOptions::default());
    let mut csb_op = CsbOp::from_csc(&a, 512);
    assert_eq!(csb_op.nrows(), a.nrows());
    let r2 = lsqr(&mut csb_op, &b, &LsqrOptions::default());
    let scale: f64 = r1.x.iter().map(|v| v * v).sum::<f64>().sqrt();
    let diff: f64 =
        r1.x.iter()
            .zip(r2.x.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
    assert!(diff < 1e-9 * scale, "CSB-backed LSQR diverged by {diff}");
}
