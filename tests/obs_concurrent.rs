//! Concurrent-correctness test for the telemetry layer: the flight recorder
//! and the counter registry must survive parkit's scoped threads without
//! losing or double-counting anything. Parallel workers record into
//! thread-local rings/accumulators that flush at join points, so the checks
//! here are exact equalities, not tolerances:
//!
//! * deterministic work counters are bitwise identical across the serial
//!   kernel, the 1-thread parallel driver, and the 4-thread parallel driver;
//! * every traced span pair survives (Begin count == close count, no drops);
//! * the sketch itself is unchanged by threading.
//!
//! One test function on purpose: the registry and recorder are
//! process-global and the harness runs tests in one binary concurrently.

use obskit::trace::TraceKind;
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg3_par_cols, SketchConfig};

#[test]
fn scoped_threads_lose_no_telemetry_and_match_serial() {
    let a = datagen::uniform_random::<f64>(4_000, 512, 5e-3, 11);
    let cfg = SketchConfig::new(512, 256, 64, 11);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    // Serial reference: counters from the sequential kernel.
    obskit::set_enabled(true);
    obskit::reset();
    let x_serial = sketch_alg3(&a, &cfg, &sampler);
    let serial = obskit::snapshot();

    // Same driver at 1 thread: the counter baseline for the threaded run.
    obskit::reset();
    let x1 = parkit::with_threads(1, || sketch_alg3_par_cols(&a, &cfg, &sampler));
    let snap1 = obskit::snapshot();

    // ≥4 threads with the flight recorder armed.
    obskit::trace::set_enabled(true);
    let _ = obskit::trace::take();
    obskit::reset();
    let x4 = parkit::with_threads(4, || sketch_alg3_par_cols(&a, &cfg, &sampler));
    let snap4 = obskit::snapshot();
    obskit::trace::set_enabled(false);
    let cap = obskit::trace::take();

    // The sketch is thread-count-invariant (checkpointed RNG regenerates the
    // same entries of S on any thread) and panel order only permutes the
    // fill_axpy accumulation within disjoint output panels.
    assert_eq!(x1, x4, "thread count changed the parallel sketch");
    assert!(
        x4.diff_norm(&x_serial) < 1e-11 * x_serial.fro_norm(),
        "parallel sketch disagrees with serial by {}",
        x4.diff_norm(&x_serial)
    );

    // Work counters are derived from block shapes only, so all three runs
    // must agree bit for bit — any discrepancy means a lost or duplicated
    // thread-local flush.
    assert_eq!(serial.counters, snap1.counters, "serial vs 1-thread driver");
    assert_eq!(
        snap1.counters, snap4.counters,
        "1-thread vs 4-thread driver"
    );
    assert!(
        snap4.counters.iter().any(|&c| c > 0),
        "counters never recorded"
    );

    // Every outer block landed exactly once in the latency histogram.
    let d_blocks = cfg.d.div_ceil(cfg.b_d);
    let n_blocks = a.ncols().div_ceil(cfg.b_n);
    let hist_count: u64 = snap4
        .hists
        .iter()
        .filter(|(p, _)| p == "sketch/alg3_par_cols/block")
        .map(|(_, h)| h.count())
        .sum();
    assert_eq!(hist_count, (d_blocks * n_blocks) as u64);

    // Flight recorder: nothing dropped, every span pair intact across all
    // worker rings, one annotated record per outer block, and the per-block
    // nnz totals exactly tile the matrix.
    assert_eq!(cap.dropped, 0, "worker ring lost events");
    let begins = cap
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::Begin)
        .count();
    let closes = cap
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceKind::End | TraceKind::BlockEnd | TraceKind::IterEnd
            )
        })
        .count();
    assert_eq!(begins, closes, "lost span pairs under threads");
    let blocks = cap.block_records();
    assert_eq!(blocks.len(), d_blocks * n_blocks);
    let nnz_sum: u64 = blocks.iter().map(|b| b.nnz).sum();
    assert_eq!(nnz_sum, (d_blocks * a.nnz()) as u64);
    let tids: std::collections::BTreeSet<u32> = blocks.iter().map(|b| b.tid).collect();
    println!(
        "4-thread capture: {} events over {} recorder tids",
        cap.events.len(),
        tids.len()
    );

    // Fault leg: inject a one-shot worker panic at 4 threads. The hardened
    // driver must catch it as a typed error, and because parkit fires the
    // fault at claim time (before any span opens) and still flushes every
    // worker's ring on the way out, the captured trace stays pair-balanced.
    faultkit::clear();
    assert!(faultkit::set_plan_str("parkit/worker=once", 0xFA11).is_ok());
    obskit::trace::set_enabled(true);
    let _ = obskit::trace::take();
    let res = parkit::with_threads(4, || {
        sketchcore::try_sketch_alg3_par_cols(&a, &cfg, &sampler)
    });
    obskit::trace::set_enabled(false);
    let cap = obskit::trace::take();
    faultkit::clear();
    match res {
        Err(sketchcore::SketchError::WorkerPanic(msg)) => {
            assert!(msg.contains("parkit/worker"), "payload lost: {msg}");
        }
        other => panic!("injected worker panic must surface typed, got {other:?}"),
    }
    assert_eq!(cap.dropped, 0, "faulted run lost trace events");
    let begins = cap
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::Begin)
        .count();
    let closes = cap
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceKind::End | TraceKind::BlockEnd | TraceKind::IterEnd
            )
        })
        .count();
    assert_eq!(begins, closes, "injected worker fault unbalanced the trace");
    println!("faulted 4-thread capture: {begins} balanced span pairs");
}
