//! The chaoscheck quick matrix as an integration test: every fault ×
//! scenario cell must end in a typed error or a recovery — never a panic
//! or a hang. This is the same sweep `scripts/verify.sh` runs via the
//! `chaoscheck --quick` binary; running it here too keeps the contract
//! under plain `cargo test`.
//!
//! One test function on purpose: faultkit plans and `SKETCH_MEM_BUDGET`
//! are process-global, and this integration-test binary is the only code
//! in its process — the harness must not share it with other arming tests.

use bench::chaos::{self, ChaosConfig, Outcome};

#[test]
fn quick_matrix_never_panics_or_hangs() {
    // Counters on: `recovered` cells are classified off the recovery
    // counter deltas (sap.retries / sap.fallback_svd /
    // budget.degraded_blocks).
    obskit::set_enabled(true);
    obskit::reset();

    let cfg = ChaosConfig::quick();
    let cells = chaos::run_matrix(&cfg, true);
    assert!(!cells.is_empty());

    for c in &cells {
        assert!(
            !matches!(c.outcome, Outcome::Panicked | Outcome::Hung),
            "{} x {} -> {}: {}",
            c.scenario,
            c.fault,
            c.outcome.label(),
            c.detail
        );
        // The baseline column: with no fault armed every scenario succeeds
        // without engaging any recovery machinery.
        if c.fault == "none" {
            assert_eq!(
                c.outcome,
                Outcome::CleanOk,
                "{} unfaulted should be clean: {}",
                c.scenario,
                c.detail
            );
        }
        // Structural corruption is never recoverable — the validator must
        // reject it with a typed error before any kernel touches it.
        if c.fault.starts_with("corrupt_") {
            assert_eq!(
                c.outcome,
                Outcome::TypedError,
                "{} x {} should be rejected by validation: {}",
                c.scenario,
                c.fault,
                c.detail
            );
        }
    }
}
