//! Self-healing SAP against the abnormal generators: the escalation loop
//! must converge where recovery is possible and return the matching typed
//! error where it is not, with every recovery recorded on the obskit
//! counters.
//!
//! One test function on purpose: the faultkit plan and the obskit registry
//! are process-global, and this binary runs alone in its process — the
//! phases below arm and clear them sequentially.

use datagen::{badly_scaled, make_rhs, nan_laced, rank_deficient};
use lstsq::{backward_error, try_solve_sap, LsqrOptions, SapFlavor, SapOptions, SolveError};
use sketchcore::SketchError;
use sparsekit::SparseError;

fn opts(flavor: SapFlavor) -> SapOptions {
    SapOptions {
        gamma: 2,
        b_d: 64,
        b_n: 16,
        seed: 42,
        flavor,
        lsqr: LsqrOptions {
            atol: 1e-12,
            btol: 1e-12,
            max_iters: 4000,
            stall_window: 0,
        },
    }
}

#[test]
fn abnormal_inputs_recover_or_fail_typed() {
    obskit::set_enabled(true);
    obskit::reset();

    // 1. Rank-deficient input, QR flavour: diag(R) exposes the dependent
    //    columns, the attempt falls back to SVD without consuming a retry,
    //    and the min-norm solve converges.
    let a = rank_deficient::<f64>(400, 32, 16, 8, 29);
    let (b, _) = make_rhs(&a, 3);
    let before = obskit::snapshot().counters;
    let rep = try_solve_sap(&a, &b, &opts(SapFlavor::Qr)).expect("rank-deficient must recover");
    assert!(rep.fallback_svd, "QR on a rank-16 sketch must fall back");
    assert!(
        rep.rank < 32,
        "fallback SVD should expose the deficiency, got rank {}",
        rep.rank
    );
    assert!(rep.x.iter().all(|v| v.is_finite()));
    let err = backward_error(&a, &rep.x, &b);
    assert!(err < 1e-8, "backward error {err}");
    let after = obskit::snapshot().counters;
    assert_eq!(
        after[obskit::Ctr::SapFallbackSvd as usize] - before[obskit::Ctr::SapFallbackSvd as usize],
        1,
        "exactly one QR->SVD fallback should be counted"
    );

    // 2. NaN-laced input: structurally valid, so only the value scan can
    //    catch it — a typed validation error, not a retry candidate.
    let a = nan_laced::<f64>(400, 32, 8, 3, 23);
    let b: Vec<f64> = (0..400).map(|i| ((i % 13) as f64) - 6.0).collect();
    match try_solve_sap(&a, &b, &opts(SapFlavor::Qr)) {
        Err(SolveError::Sketch(SketchError::InvalidInput(SparseError::NotFinite { .. }))) => {}
        other => panic!("NaN-laced input must fail validation, got {other:?}"),
    }

    // 3. Badly scaled input (10 decades of column scales): the whole point
    //    of sketch-and-precondition — converges cleanly, no recovery needed.
    let a = badly_scaled::<f64>(400, 32, 8, 10.0, 31);
    let (b, _) = make_rhs(&a, 7);
    let rep = try_solve_sap(&a, &b, &opts(SapFlavor::Qr)).expect("badly scaled must solve");
    assert_eq!(rep.retries, 0);
    assert!(!rep.fallback_svd);
    let err = backward_error(&a, &rep.x, &b);
    assert!(err < 1e-8, "backward error {err}");

    // 4. Gamma escalation: poison the first attempt's sketch stream with a
    //    one-shot NaN; the retry doubles gamma, shifts the seed, and
    //    converges. The retry lands on the sap.retries counter.
    let a = badly_scaled::<f64>(400, 32, 8, 6.0, 37);
    let (b, _) = make_rhs(&a, 9);
    faultkit::clear();
    assert!(faultkit::set_plan_str("sketch/nan_stream=once", 0xC0FFEE).is_ok());
    let before = obskit::snapshot().counters;
    let rep = try_solve_sap(&a, &b, &opts(SapFlavor::Qr)).expect("retry must recover");
    faultkit::clear();
    assert_eq!(rep.retries, 1, "first attempt poisoned, second clean");
    let after = obskit::snapshot().counters;
    assert_eq!(
        after[obskit::Ctr::SapRetries as usize] - before[obskit::Ctr::SapRetries as usize],
        1
    );
    let err = backward_error(&a, &rep.x, &b);
    assert!(err < 1e-8, "backward error after retry {err}");
}
