//! f32 end-to-end coverage: the paper's SpMM experiments run in 32-bit;
//! every kernel and baseline must work (and agree) at `T = f32` too.

use baselines::{csc_outer, materialize_s};
use datagen::uniform_random;
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg4, SketchConfig};
use sparsekit::BlockedCsr;

#[test]
fn f32_kernels_agree_with_each_other_and_baseline() {
    let a = uniform_random::<f32>(2_000, 300, 5e-3, 1);
    let cfg = SketchConfig::new(450, 128, 64, 9);
    let sampler = UnitUniform::<f32>::sampler(FastRng::new(cfg.seed));

    let x3 = sketch_alg3(&a, &cfg, &sampler);
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    let x4 = sketch_alg4(&blocked, &cfg, &sampler);
    let s = materialize_s(&sampler, cfg.d, a.nrows(), cfg.b_d);
    let xb = csc_outer(&a, &s);

    let tol = 1e-3 * x3.fro_norm().max(1.0); // f32 accumulation tolerance
    assert!(x3.diff_norm(&x4) < tol, "alg3/alg4 f32 disagree");
    assert!(x3.diff_norm(&xb) < tol, "alg3/baseline f32 disagree");
}

#[test]
fn f32_rademacher_preserves_energy() {
    let a = uniform_random::<f32>(1_200, 100, 0.01, 3);
    let cfg = SketchConfig::new(300, 150, 25, 5);
    let sk = sketch_alg3(
        &a,
        &cfg,
        &Rademacher::<f32>::sampler(FastRng::new(cfg.seed)),
    );
    let ratio = (sk.fro_norm() as f64).powi(2) / (cfg.d as f64 * (a.fro_norm() as f64).powi(2));
    assert!((0.85..1.15).contains(&ratio), "energy ratio {ratio}");
}

#[test]
fn f32_sketch_is_deterministic() {
    let a = uniform_random::<f32>(500, 80, 0.02, 7);
    let cfg = SketchConfig::new(160, 64, 20, 11);
    let sampler = UnitUniform::<f32>::sampler(FastRng::new(cfg.seed));
    assert_eq!(
        sketch_alg3(&a, &cfg, &sampler),
        sketch_alg3(&a, &cfg, &sampler)
    );
}

#[test]
fn f32_fused_axpy_matches_staged() {
    use rngkit::BlockSampler;
    let mut s1 = UnitUniform::<f32>::sampler(FastRng::new(4));
    let mut s2 = UnitUniform::<f32>::sampler(FastRng::new(4));
    let mut fused = vec![0.5f32; 131];
    let mut staged = vec![0.5f32; 131];
    let mut v = vec![0.0f32; 131];
    s1.set_state(2, 9);
    s1.fill_axpy(1.75, &mut fused);
    s2.set_state(2, 9);
    s2.fill(&mut v);
    for (o, &x) in staged.iter_mut().zip(v.iter()) {
        *o += 1.75 * x;
    }
    for (a, b) in fused.iter().zip(staged.iter()) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}
