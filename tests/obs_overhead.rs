//! Disabled-path overhead check: with `SKETCH_OBS=0` (here: the programmatic
//! gate) Algorithm 3 must run at the uninstrumented kernel's speed — the
//! telemetry refactor's contract is one relaxed atomic load per *block*, and
//! blocks are thousands of nonzeros wide.
//!
//! Ignored by default because it is a timing measurement (~10 s) and the CI
//! host has multi-x hypervisor-steal noise. Run it on an idle machine:
//!
//! ```sh
//! cargo test --release --test obs_overhead -- --ignored --nocapture
//! ```

use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, SketchConfig};

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[test]
#[ignore = "timing measurement; run manually on an idle host"]
fn gate_off_alg3_overhead_is_negligible() {
    let a = datagen::uniform_random::<f64>(50_000, 1_000, 2e-3, 7);
    let cfg = SketchConfig::new(2 * a.ncols(), 3000, 500, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    let run = || {
        let t0 = std::time::Instant::now();
        let x = sketch_alg3(&a, &cfg, &sampler);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        dt
    };

    // Warm both paths, then interleave measurements so slow drift (thermal,
    // steal) hits the two gate states symmetrically.
    obskit::set_enabled(false);
    run();
    obskit::set_enabled(true);
    run();
    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        obskit::set_enabled(false);
        off.push(run());
        obskit::set_enabled(true);
        on.push(run());
    }
    obskit::set_enabled(true);
    let (t_off, t_on) = (median(&mut off), median(&mut on));
    println!(
        "alg3 gate-off median {t_off:.4}s, gate-on median {t_on:.4}s, off/on {:.4}",
        t_off / t_on
    );
    // The structural claim: gating costs one branch per block. Allow generous
    // slack for scheduler noise; a real per-nonzero regression would blow far
    // past this.
    assert!(
        t_off <= t_on * 1.10,
        "gate-off alg3 slower than gate-on beyond noise: {t_off:.4}s vs {t_on:.4}s"
    );
}

/// The flight recorder's version of the same contract: with tracing compiled
/// in (it always is — there is no feature gate on `obskit::trace`) but not
/// armed, Algorithm 3 must run at the speed of a trace-armed run or better.
/// The disabled path is the same single relaxed load `any_enabled()` the
/// aggregate gate uses, so arming the recorder is the only thing that may
/// add work.
#[test]
#[ignore = "timing measurement; run manually on an idle host"]
fn trace_disabled_alg3_overhead_is_negligible() {
    let a = datagen::uniform_random::<f64>(50_000, 1_000, 2e-3, 7);
    let cfg = SketchConfig::new(2 * a.ncols(), 3000, 500, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    // Aggregate telemetry off throughout: this measures the recorder alone.
    obskit::set_enabled(false);
    let run = || {
        let t0 = std::time::Instant::now();
        let x = sketch_alg3(&a, &cfg, &sampler);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        dt
    };

    obskit::trace::set_enabled(false);
    run();
    obskit::trace::set_enabled(true);
    run();
    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        obskit::trace::set_enabled(false);
        off.push(run());
        obskit::trace::set_enabled(true);
        on.push(run());
        // Drain between reps so the armed runs never hit ring eviction.
        let _ = obskit::trace::take();
    }
    obskit::trace::set_enabled(false);
    let _ = obskit::trace::take();
    obskit::set_enabled(true);
    let (t_off, t_on) = (median(&mut off), median(&mut on));
    println!(
        "alg3 trace-off median {t_off:.4}s, trace-on median {t_on:.4}s, off/on {:.4}",
        t_off / t_on
    );
    assert!(
        t_off <= t_on * 1.10,
        "trace-disabled alg3 slower than trace-armed beyond noise: {t_off:.4}s vs {t_on:.4}s"
    );
}

/// The fault-injection layer's version of the contract: with no plan armed,
/// the hardened driver (`try_sketch_alg3` = validation + budget planning +
/// faultkit sites + output scan) must run at the raw kernel's speed. The
/// disarmed check is one relaxed atomic load per site visit, and the extra
/// O(nnz) validation/scan passes are noise next to the O(d·nnz) sketch.
#[test]
#[ignore = "timing measurement; run manually on an idle host"]
fn faults_disarmed_alg3_overhead_is_negligible() {
    let a = datagen::uniform_random::<f64>(50_000, 1_000, 2e-3, 7);
    let cfg = SketchConfig::new(2 * a.ncols(), 3000, 500, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    // Telemetry off and no fault plan: this measures the hardening alone.
    obskit::set_enabled(false);
    faultkit::clear();

    let run_raw = || {
        let t0 = std::time::Instant::now();
        let x = sketch_alg3(&a, &cfg, &sampler);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        dt
    };
    let run_hardened = || {
        let t0 = std::time::Instant::now();
        let x = sketchcore::try_sketch_alg3(&a, &cfg, &sampler).expect("disarmed run must succeed");
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        dt
    };

    run_raw();
    run_hardened();
    let (mut raw, mut hardened) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        raw.push(run_raw());
        hardened.push(run_hardened());
    }
    obskit::set_enabled(true);
    let (t_raw, t_hard) = (median(&mut raw), median(&mut hardened));
    println!(
        "alg3 raw median {t_raw:.4}s, hardened-disarmed median {t_hard:.4}s, hard/raw {:.4}",
        t_hard / t_raw
    );
    assert!(
        t_hard <= t_raw * 1.10,
        "disarmed hardened alg3 slower than raw beyond noise: {t_hard:.4}s vs {t_raw:.4}s"
    );
}
