#!/usr/bin/env bash
# Full local verification: what CI would run. From the repo root:
#
#   scripts/verify.sh
#
# Builds the whole workspace in release mode, runs every test, then holds
# the code to clippy -D warnings and rustfmt. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --release --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "verify: all checks passed"
