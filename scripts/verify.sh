#!/usr/bin/env bash
# Full local verification: what CI would run. From the repo root:
#
#   scripts/verify.sh
#
# Builds the whole workspace in release mode, runs every test, then holds
# the code to clippy -D warnings and rustfmt. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --release --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== benchgate self-check (record at smoke scale, compare back, expect pass) =="
BENCHGATE_TMP="$(mktemp /tmp/benchgate_verify_XXXXXX.json)"
trap 'rm -f "$BENCHGATE_TMP"' EXIT
./target/release/benchgate record --quick --out "$BENCHGATE_TMP"
# Generous --rel-tol: this exercises the record→parse→compare machinery and
# the bitwise counter cross-check; it must not flake on hypervisor steal
# (this host's noise can hit 2-3x — see EXPERIMENTS.md).
./target/release/benchgate --against "$BENCHGATE_TMP" --rel-tol 2.0

echo "verify: all checks passed"
