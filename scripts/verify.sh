#!/usr/bin/env bash
# Full local verification: what CI would run. From the repo root:
#
#   scripts/verify.sh
#
# Builds the whole workspace in release mode, runs every test, then holds
# the code to clippy -D warnings and rustfmt. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --release --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy lint gate: no unwrap/expect on library paths =="
# Library crates must surface failures as typed errors, not panics; --lib
# keeps #[cfg(test)] modules, tests/ and bins exempt.
for c in sparsekit densekit rngkit obskit parkit faultkit sketchcore lstsq datagen sketchd; do
  cargo clippy -q -p "$c" --lib -- -D clippy::unwrap_used -D clippy::expect_used
done

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== trace smoke (repro --trace-out: balanced Perfetto spans, flamegraph SVG) =="
TRACE_TMP="$(mktemp /tmp/trace_verify_XXXXXX.json)"
FOLDED_TMP="$(mktemp /tmp/folded_verify_XXXXXX.txt)"
trap 'rm -f "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"' EXIT
./target/release/repro smoke --trace-out "$TRACE_TMP" --trace-folded "$FOLDED_TMP"
B_COUNT="$(grep -c '"ph":"B"' "$TRACE_TMP")"
E_COUNT="$(grep -c '"ph":"E"' "$TRACE_TMP")"
if [ "$B_COUNT" -ne "$E_COUNT" ] || [ "$B_COUNT" -eq 0 ]; then
  echo "verify: trace span pairs unbalanced or empty (B=$B_COUNT E=$E_COUNT)" >&2
  exit 1
fi
grep -q '"nnz":' "$TRACE_TMP" || { echo "verify: no annotated kernel blocks in trace" >&2; exit 1; }
grep -q '"model_ns":' "$TRACE_TMP" || { echo "verify: no model predictions in trace" >&2; exit 1; }
grep -q '</svg>' "$FOLDED_TMP.svg" || { echo "verify: flamegraph SVG not written" >&2; exit 1; }
echo "trace smoke ok: $B_COUNT balanced span pairs, blocks annotated, SVG rendered"

echo "== chaoscheck smoke (quick fault x scenario matrix: no panics, no hangs) =="
CHAOS_TMP="$(mktemp /tmp/chaos_verify_XXXXXX.jsonl)"
trap 'rm -f "$CHAOS_TMP" "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"' EXIT
./target/release/chaoscheck --quick --report "$CHAOS_TMP"
grep -q '"outcome"' "$CHAOS_TMP" || { echo "verify: empty chaos report" >&2; exit 1; }

echo "== service smoke (sketchd on an ephemeral port + loadgen --quick + clean shutdown) =="
PORT_TMP="$(mktemp /tmp/sketchd_port_XXXXXX)"
SVC_LOG="$(mktemp /tmp/sketchd_log_XXXXXX)"
trap 'rm -f "$PORT_TMP" "$SVC_LOG" "$BENCHGATE_TMP" "$CHAOS_TMP" "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"; kill "$SVC_PID" 2>/dev/null || true' EXIT
: > "$PORT_TMP"
./target/release/sketchd --addr 127.0.0.1:0 --port-file "$PORT_TMP" > "$SVC_LOG" 2>&1 &
SVC_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_TMP" ] && break
  sleep 0.05
done
[ -s "$PORT_TMP" ] || { echo "verify: sketchd never wrote its port file" >&2; exit 1; }
PORT="$(head -n1 "$PORT_TMP")"
./target/release/sketchctl --addr "127.0.0.1:$PORT" health
./target/release/loadgen --quick --port-file "$PORT_TMP"
./target/release/sketchctl --addr "127.0.0.1:$PORT" shutdown
# join() returns only when every acceptor/worker/connection thread has
# exited, so a prompt clean process exit IS the no-leaked-threads check.
SVC_RC=0
for _ in $(seq 1 100); do
  kill -0 "$SVC_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SVC_PID" 2>/dev/null; then
  echo "verify: sketchd still alive 10s after shutdown (leaked thread?)" >&2
  kill -9 "$SVC_PID"
  exit 1
fi
wait "$SVC_PID" || SVC_RC=$?
[ "$SVC_RC" -eq 0 ] || { echo "verify: sketchd exited nonzero ($SVC_RC)"; cat "$SVC_LOG" >&2; exit 1; }
grep -q "sketchd: clean shutdown" "$SVC_LOG" || { echo "verify: no clean-shutdown line"; cat "$SVC_LOG" >&2; exit 1; }
echo "service smoke ok: ephemeral port $PORT, loadgen --quick served, clean shutdown"

echo "== service chaoscheck (failpoints at accept/decode/dispatch/reply: typed frames, recovery) =="
./target/release/chaoscheck --quick --service-only

echo "== benchgate suite listing =="
./target/release/benchgate list --quick

echo "== benchgate self-check (record at smoke scale, compare back, expect pass) =="
BENCHGATE_TMP="$(mktemp /tmp/benchgate_verify_XXXXXX.json)"
trap 'rm -f "$BENCHGATE_TMP" "$CHAOS_TMP" "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"' EXIT
./target/release/benchgate record --quick --out "$BENCHGATE_TMP"
# Generous --rel-tol: this exercises the record→parse→compare machinery and
# the bitwise counter cross-check; it must not flake on hypervisor steal
# (this host's noise can hit 2-3x — see EXPERIMENTS.md).
./target/release/benchgate --against "$BENCHGATE_TMP" --rel-tol 2.0

echo "verify: all checks passed"
