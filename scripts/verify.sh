#!/usr/bin/env bash
# Full local verification: what CI would run. From the repo root:
#
#   scripts/verify.sh
#
# Builds the whole workspace in release mode, runs every test, then holds
# the code to clippy -D warnings and rustfmt. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --release --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy lint gate: no unwrap/expect on library paths =="
# Library crates must surface failures as typed errors, not panics; --lib
# keeps #[cfg(test)] modules, tests/ and bins exempt.
for c in sparsekit densekit rngkit obskit parkit faultkit sketchcore lstsq datagen; do
  cargo clippy -q -p "$c" --lib -- -D clippy::unwrap_used -D clippy::expect_used
done

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== trace smoke (repro --trace-out: balanced Perfetto spans, flamegraph SVG) =="
TRACE_TMP="$(mktemp /tmp/trace_verify_XXXXXX.json)"
FOLDED_TMP="$(mktemp /tmp/folded_verify_XXXXXX.txt)"
trap 'rm -f "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"' EXIT
./target/release/repro smoke --trace-out "$TRACE_TMP" --trace-folded "$FOLDED_TMP"
B_COUNT="$(grep -c '"ph":"B"' "$TRACE_TMP")"
E_COUNT="$(grep -c '"ph":"E"' "$TRACE_TMP")"
if [ "$B_COUNT" -ne "$E_COUNT" ] || [ "$B_COUNT" -eq 0 ]; then
  echo "verify: trace span pairs unbalanced or empty (B=$B_COUNT E=$E_COUNT)" >&2
  exit 1
fi
grep -q '"nnz":' "$TRACE_TMP" || { echo "verify: no annotated kernel blocks in trace" >&2; exit 1; }
grep -q '"model_ns":' "$TRACE_TMP" || { echo "verify: no model predictions in trace" >&2; exit 1; }
grep -q '</svg>' "$FOLDED_TMP.svg" || { echo "verify: flamegraph SVG not written" >&2; exit 1; }
echo "trace smoke ok: $B_COUNT balanced span pairs, blocks annotated, SVG rendered"

echo "== chaoscheck smoke (quick fault x scenario matrix: no panics, no hangs) =="
CHAOS_TMP="$(mktemp /tmp/chaos_verify_XXXXXX.jsonl)"
trap 'rm -f "$CHAOS_TMP" "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"' EXIT
./target/release/chaoscheck --quick --report "$CHAOS_TMP"
grep -q '"outcome"' "$CHAOS_TMP" || { echo "verify: empty chaos report" >&2; exit 1; }

echo "== benchgate suite listing =="
./target/release/benchgate list --quick

echo "== benchgate self-check (record at smoke scale, compare back, expect pass) =="
BENCHGATE_TMP="$(mktemp /tmp/benchgate_verify_XXXXXX.json)"
trap 'rm -f "$BENCHGATE_TMP" "$CHAOS_TMP" "$TRACE_TMP" "$FOLDED_TMP" "$FOLDED_TMP.svg"' EXIT
./target/release/benchgate record --quick --out "$BENCHGATE_TMP"
# Generous --rel-tol: this exercises the record→parse→compare machinery and
# the bitwise counter cross-check; it must not flake on hypervisor steal
# (this host's noise can hit 2-3x — see EXPERIMENTS.md).
./target/release/benchgate --against "$BENCHGATE_TMP" --rel-tol 2.0

echo "verify: all checks passed"
