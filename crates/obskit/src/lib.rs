#![warn(missing_docs)]
//! # obskit — zero-dependency telemetry for the sketching pipeline
//!
//! The paper's evaluation is built on instrumentation: Tables III/V split
//! sample time from compute time, §IV compares memory traffic against the
//! cost model, Table IX tracks solver convergence. This crate is the one
//! place all of that is recorded:
//!
//! * **Spans** — hierarchical wall-clock timers (`sketch/alg3/sample`),
//!   accumulated per thread and merged into a global registry when worker
//!   threads finish (parkit flushes at its join points) or on demand.
//! * **Counters** — typed tallies of samples drawn, `set_state` seeks,
//!   flops, and bytes moved, bumped at *block* granularity by the kernels.
//! * **Histograms** — log-bucketed latency distributions ([`Hist`],
//!   [`hist_record_ns`]): p50/p90/p99 and MAD per span path, not just
//!   totals, accumulated per thread and merged at flush like the counters.
//! * **Events** — per-iteration solver records (iteration, relative
//!   residual, elapsed seconds) and free-form records like the
//!   measured-vs-model traffic comparison.
//! * **Sinks** — a human summary table ([`Snapshot::summary`]) and
//!   machine-readable JSONL ([`Snapshot::write_jsonl`], path from
//!   `SKETCH_OBS_JSON` or the `repro --obs-json` flag).
//!
//! ## Gating
//!
//! Recording is off when the `obs` cargo feature is disabled (compile-time,
//! every call is a removable no-op) or when `SKETCH_OBS=0` (run-time). The
//! run-time disabled path costs exactly one relaxed atomic load per call —
//! the kernels only call at block granularity, never per nonzero, so the
//! uninstrumented hot loops run at full speed.
//!
//! ## No dependencies
//!
//! std only: atomics, `thread_local!`, `Mutex`. The JSON writer is
//! hand-rolled (no serde), which keeps the crate buildable fully offline.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod trace;

/// Typed counters the kernels and solvers bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Ctr {
    /// Random samples drawn (entries of `S` regenerated).
    Samples = 0,
    /// `set_state` checkpoint seeks performed.
    Seeks = 1,
    /// Useful flops (multiply-adds count as 2).
    Flops = 2,
    /// Bytes of the sparse operand `A` streamed (values + indices).
    BytesA = 3,
    /// Bytes of the output `Â` moved (read + write at block granularity).
    BytesOut = 4,
    /// Solver iterations performed (LSQR/LSMR).
    SolverIters = 5,
    /// Self-healing SAP: recovery attempts (re-sketch with escalated γ).
    SapRetries = 6,
    /// Self-healing SAP: QR→SVD factorization fallbacks taken.
    SapFallbackSvd = 7,
    /// Memory-budget guard: block-size halvings applied to fit the budget.
    BudgetDegradedBlocks = 8,
    /// Serving layer (`sketchd`): requests admitted to the work queue.
    SvcAccepted = 9,
    /// Serving layer: requests rejected at admission (queue-depth cap).
    SvcRejectedOverload = 10,
    /// Serving layer: requests whose deadline expired before completion.
    SvcDeadlineMissed = 11,
    /// Serving layer: requests served as part of a coalesced batch of ≥ 2.
    SvcBatched = 12,
}

/// Number of counter slots.
pub const NCTR: usize = 13;

/// Counter names in slot order (JSONL and summary labels).
pub const CTR_NAMES: [&str; NCTR] = [
    "samples",
    "seeks",
    "flops",
    "bytes_a",
    "bytes_out",
    "solver_iters",
    "sap.retries",
    "sap.fallback_svd",
    "budget.degraded_blocks",
    "svc.accepted",
    "svc.rejected_overload",
    "svc.deadline_missed",
    "svc.batched",
];

/// Hard cap on buffered events; beyond it events are counted as dropped
/// rather than silently discarded.
pub const MAX_EVENTS: usize = 1 << 20;

// --- histograms --------------------------------------------------------

/// Significant bits per octave of the log bucketing: 8 sub-buckets per
/// power of two, so a bucket's relative width is 1/8 and its midpoint is
/// within ±6.25 % of any value it holds.
const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;

/// Number of histogram buckets: values `0..8` get exact buckets, every
/// octave `2^o..2^(o+1)` for `o in 3..64` gets [`HIST_SUB`] buckets.
pub const HIST_NBUCKETS: usize = (HIST_SUB + (64 - HIST_SUB_BITS as u64) * HIST_SUB) as usize;

#[inline]
fn hist_bucket(v: u64) -> usize {
    if v < HIST_SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as u64; // ≥ HIST_SUB_BITS
        let sub = (v >> (octave - HIST_SUB_BITS as u64)) & (HIST_SUB - 1);
        (HIST_SUB + (octave - HIST_SUB_BITS as u64) * HIST_SUB + sub) as usize
    }
}

/// Lower bound of bucket `idx` (its smallest representable value).
fn hist_bucket_lo(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < HIST_SUB {
        idx
    } else {
        let octave = (idx - HIST_SUB) / HIST_SUB + HIST_SUB_BITS as u64;
        let sub = (idx - HIST_SUB) % HIST_SUB;
        (1u64 << octave) + sub * (1u64 << (octave - HIST_SUB_BITS as u64))
    }
}

/// Representative (mid-bucket) value of bucket `idx`.
fn hist_bucket_mid(idx: usize) -> u64 {
    let lo = hist_bucket_lo(idx);
    let width = if (idx as u64) < HIST_SUB {
        1
    } else {
        let octave = (idx as u64 - HIST_SUB) / HIST_SUB + HIST_SUB_BITS as u64;
        1u64 << (octave - HIST_SUB_BITS as u64)
    };
    lo + width / 2
}

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are base-2 logarithmic with [`HIST_SUB`] sub-buckets per octave
/// (HDR-histogram style), so quantile estimates carry at most ±6.25 %
/// relative bucketing error while `record` stays O(1) and allocation-free
/// after construction. `count`, `sum`, `min` and `max` are tracked exactly.
/// Merging two histograms bucket-wise is exactly the histogram of the
/// concatenated inputs, which is what lets per-thread accumulators combine
/// at flush time without loss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            buckets: vec![0; HIST_NBUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[hist_bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`; the result is identical to a histogram
    /// that recorded both input streams.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile `q ∈ [0, 1]`: the mid-bucket value of the
    /// bucket holding the `⌈q·count⌉`-th smallest sample, clamped to the
    /// exact `[min, max]` range (so `quantile(0.0)` is exactly `min`,
    /// `quantile(1.0)` exactly `max`, and a single-valued histogram reports
    /// that value at every `q`). Returns `NaN` on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (hist_bucket_mid(idx) as f64).clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Median absolute deviation about the median, computed from the bucket
    /// representatives: the weighted median of `|mid(bucket) − median|`.
    /// Carries the same ±6.25 % bucketing error as [`Hist::quantile`];
    /// `NaN` on an empty histogram, exactly 0 when all samples share one
    /// bucket.
    pub fn mad(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let med = self.quantile(0.5);
        let mut devs: Vec<(f64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let mid = (hist_bucket_mid(idx) as f64).clamp(self.min as f64, self.max as f64);
                ((mid - med).abs(), c)
            })
            .collect();
        devs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let rank = self.count.div_ceil(2);
        let mut seen = 0u64;
        for (d, c) in devs {
            seen += c;
            if seen >= rank {
                return d;
            }
        }
        0.0
    }

    /// Mean of the recorded samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Record `ns` into the histogram registered under `path` on this thread's
/// accumulator (no-op when telemetry is disabled). Merged into the global
/// registry at the same flush points as the counters.
#[inline]
pub fn hist_record_ns(path: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| l.hists.entry(path).or_default().record(ns));
}

// --- gating ------------------------------------------------------------

// One byte holds every run-time gate so the kernels pay a single relaxed
// atomic load per block no matter how many recorders exist: bit 0 marks the
// byte initialized from the environment, bit 1 is the telemetry gate
// (`SKETCH_OBS`), bit 2 the flight-recorder gate (`SKETCH_TRACE`).
const GATE_INIT: u8 = 1;
const GATE_OBS: u8 = 2;
const GATE_TRACE: u8 = 4;

static GATE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_gate() -> u8 {
    let mut g = GATE_INIT;
    let obs_on = match std::env::var("SKETCH_OBS") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    };
    if obs_on {
        g |= GATE_OBS;
    }
    // Tracing is opt-in (a flight recorder is for flagged runs), unlike the
    // aggregate telemetry which is opt-out.
    let trace_on = match std::env::var("SKETCH_TRACE") {
        Ok(v) => matches!(v.trim(), "1" | "on" | "true" | "yes"),
        Err(_) => false,
    };
    if trace_on {
        g |= GATE_TRACE;
    }
    GATE.store(g, Ordering::Relaxed);
    g
}

#[inline(always)]
fn gate() -> u8 {
    if !cfg!(feature = "obs") {
        return GATE_INIT;
    }
    let g = GATE.load(Ordering::Relaxed);
    if g & GATE_INIT != 0 {
        g
    } else {
        init_gate()
    }
}

// Set or clear one gate bit, initializing from the environment first so the
// other bits are preserved. Gate writers are test harnesses and CLI startup;
// a racing writer can only lose its own update, never corrupt another bit's
// source of truth beyond that.
fn store_gate_bit(bit: u8, on: bool) {
    let g = gate();
    GATE.store(if on { g | bit } else { g & !bit }, Ordering::Relaxed);
}

/// Is telemetry recording on? One relaxed atomic load on the hot path.
#[inline(always)]
pub fn enabled() -> bool {
    gate() & GATE_OBS != 0
}

/// Is flight-recorder tracing on (see [`trace`])? One relaxed atomic load.
#[inline(always)]
pub fn trace_enabled() -> bool {
    gate() & GATE_TRACE != 0
}

/// Is *any* recorder (aggregate telemetry or the flight recorder) on?
/// The kernels check this once per block — still a single relaxed atomic
/// load, because both gates share one byte.
#[inline(always)]
pub fn any_enabled() -> bool {
    gate() & (GATE_OBS | GATE_TRACE) != 0
}

/// Crate version, for embedding in run manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Was the `obs` feature compiled in? (Run manifests record this; without
/// it every counter is dead code and a recorded baseline would be all
/// zeros.)
pub const OBS_COMPILED: bool = cfg!(feature = "obs");

/// Override the `SKETCH_OBS` gate programmatically (tests, harnesses).
/// The flight-recorder gate ([`trace::set_enabled`]) is left untouched.
pub fn set_enabled(on: bool) {
    store_gate_bit(GATE_OBS, on);
}

/// Process epoch for event timestamps (first telemetry touch).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// --- global registry ---------------------------------------------------

/// Accumulated statistics of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total nanoseconds inside the span.
    pub ns: u64,
    /// Number of completed span instances.
    pub calls: u64,
}

/// One recorded event: a kind tag plus typed fields.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event kind (e.g. `"lsqr_iter"`, `"traffic"`).
    pub kind: &'static str,
    /// Seconds since the process telemetry epoch.
    pub ts: f64,
    /// Field name/value pairs.
    pub fields: Vec<(&'static str, Value)>,
}

/// A typed event field value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Floating point.
    F(f64),
    /// String.
    S(String),
    /// Boolean.
    B(bool),
}

struct Registry {
    spans: Mutex<HashMap<&'static str, SpanStat>>,
    hists: Mutex<HashMap<&'static str, Hist>>,
    counters: [AtomicU64; NCTR],
    events: Mutex<Vec<Event>>,
    dropped_events: AtomicU64,
}

/// Take a telemetry mutex, recovering from poisoning. A poisoned lock here
/// only means a panic (possibly an injected fault) unwound through a flush;
/// the guarded maps hold plain additive aggregates with no cross-entry
/// invariants, so the data stays usable and dropping it would lose
/// telemetry the hardening tests assert on.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        spans: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
        counters: std::array::from_fn(|_| AtomicU64::new(0)),
        events: Mutex::new(Vec::new()),
        dropped_events: AtomicU64::new(0),
    })
}

// --- per-thread accumulators -------------------------------------------

#[derive(Default)]
struct Local {
    counters: [u64; NCTR],
    spans: HashMap<&'static str, SpanStat>,
    hists: HashMap<&'static str, Hist>,
    ring: Option<trace::TraceRing>,
}

impl Local {
    fn flush(&mut self) {
        let reg = registry();
        for (slot, v) in self.counters.iter_mut().enumerate() {
            if *v != 0 {
                reg.counters[slot].fetch_add(*v, Ordering::Relaxed);
                *v = 0;
            }
        }
        if !self.spans.is_empty() {
            let mut g = lock_clean(&reg.spans);
            for (path, s) in self.spans.drain() {
                let e = g.entry(path).or_default();
                e.ns += s.ns;
                e.calls += s.calls;
            }
        }
        if !self.hists.is_empty() {
            let mut g = lock_clean(&reg.hists);
            for (path, h) in self.hists.drain() {
                g.entry(path).or_default().merge(&h);
            }
        }
        if let Some(ring) = self.ring.as_mut() {
            trace::flush_ring(ring);
        }
    }
}

// Flushes whatever the thread accumulated when the thread exits, so scoped
// worker threads merge their numbers into the registry at join time even if
// the caller forgets an explicit `flush_thread`.
struct LocalGuard(RefCell<Local>);

impl Drop for LocalGuard {
    fn drop(&mut self) {
        self.0.borrow_mut().flush();
    }
}

thread_local! {
    static LOCAL: LocalGuard = LocalGuard(RefCell::new(Local::default()));
}

fn with_local(f: impl FnOnce(&mut Local)) {
    // During thread teardown the TLS slot may already be gone; drop the
    // record rather than panic.
    let _ = LOCAL.try_with(|l| f(&mut l.0.borrow_mut()));
}

/// Bump a counter by `n` on this thread's accumulator (no-op when disabled).
#[inline]
pub fn add(c: Ctr, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|l| l.counters[c as usize] += n);
}

/// Record `ns` nanoseconds against span `path` without a guard.
#[inline]
pub fn span_add_ns(path: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        let e = l.spans.entry(path).or_default();
        e.ns += ns;
        e.calls += 1;
    });
}

/// Merge this thread's accumulators into the global registry now. parkit
/// calls this at the end of every worker closure — the "merge at join
/// points" contract — and it is harmless to call redundantly.
pub fn flush_thread() {
    if !cfg!(feature = "obs") {
        return;
    }
    with_local(|l| l.flush());
}

/// RAII span timer: time from construction to drop is added to `path`.
/// When the flight recorder is on (see [`trace`]), the same guard also
/// emits a Begin event at construction and an End event at drop.
#[must_use = "a span records on drop; binding it to _ discards the timing"]
pub struct SpanGuard {
    path: &'static str,
    t0: Option<Instant>,
    traced: bool,
}

impl SpanGuard {
    /// Seconds elapsed so far (0 when every recorder is disabled).
    pub fn elapsed_s(&self) -> f64 {
        self.t0.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            span_add_ns(self.path, t0.elapsed().as_nanos() as u64);
            if self.traced {
                trace::end(self.path);
            }
        }
    }
}

/// Start a span. Paths are `/`-separated to express hierarchy
/// (`"sketch/alg3"`, `"sketch/alg3/sample"`); the summary table indents by
/// path depth. Reads the gate byte once: the timer arms when either the
/// aggregate telemetry or the flight recorder is on.
#[inline]
pub fn span(path: &'static str) -> SpanGuard {
    let g = gate();
    let traced = g & GATE_TRACE != 0;
    if traced {
        trace::begin(path);
    }
    SpanGuard {
        path,
        t0: if g & (GATE_OBS | GATE_TRACE) != 0 {
            Some(Instant::now())
        } else {
            None
        },
        traced,
    }
}

/// Record an event (bounded buffer; overflow is counted, not silent).
pub fn event(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if !enabled() {
        return;
    }
    let ts = epoch().elapsed().as_secs_f64();
    let reg = registry();
    let mut ev = lock_clean(&reg.events);
    if ev.len() >= MAX_EVENTS {
        reg.dropped_events.fetch_add(1, Ordering::Relaxed);
        return;
    }
    ev.push(Event { kind, ts, fields });
}

/// Stride for per-iteration solver events, from `SKETCH_OBS_SOLVER_STRIDE`
/// (default 1: every iteration). Iteration `i` is recorded when
/// `i % stride == 0` or the solver stops at `i`.
pub fn solver_event_stride() -> u64 {
    static STRIDE: OnceLock<u64> = OnceLock::new();
    *STRIDE.get_or_init(|| {
        std::env::var("SKETCH_OBS_SOLVER_STRIDE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&s| s > 0)
            .unwrap_or(1)
    })
}

// --- local accumulator for instrumented kernels ------------------------

/// An always-on span/counter accumulator owned by one call frame.
///
/// The instrumented kernels must hand their measurements back to the caller
/// (`SketchTiming`) even when the global gate is off, so they record into a
/// `LocalSpans` unconditionally and [`LocalSpans::publish`] mirrors the
/// totals into the global registry if telemetry is enabled. `SketchTiming`
/// is then a *view* over these spans rather than a second implementation.
#[derive(Clone, Debug, Default)]
pub struct LocalSpans {
    spans: Vec<(&'static str, SpanStat)>,
    counters: [u64; NCTR],
}

impl LocalSpans {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `ns` nanoseconds (one call) to `path`.
    pub fn add_ns(&mut self, path: &'static str, ns: u64) {
        match self.spans.iter_mut().find(|(p, _)| *p == path) {
            Some((_, s)) => {
                s.ns += ns;
                s.calls += 1;
            }
            None => self.spans.push((path, SpanStat { ns, calls: 1 })),
        }
    }

    /// Bump a counter.
    pub fn count(&mut self, c: Ctr, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Total seconds recorded against `path` (0 if absent).
    pub fn secs(&self, path: &str) -> f64 {
        self.spans
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, s)| s.ns as f64 * 1e-9)
            .unwrap_or(0.0)
    }

    /// Counter value.
    pub fn counter(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Mirror the totals into the global registry (if enabled).
    pub fn publish(&self) {
        if !enabled() {
            return;
        }
        with_local(|l| {
            for (path, s) in &self.spans {
                let e = l.spans.entry(path).or_default();
                e.ns += s.ns;
                e.calls += s.calls;
            }
            for (slot, v) in self.counters.iter().enumerate() {
                l.counters[slot] += v;
            }
        });
    }
}

// --- snapshot & sinks --------------------------------------------------

/// A point-in-time copy of everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Span statistics sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// Histograms sorted by path.
    pub hists: Vec<(String, Hist)>,
    /// Counter values in [`Ctr`] slot order.
    pub counters: [u64; NCTR],
    /// Recorded events in arrival order.
    pub events: Vec<Event>,
    /// Events lost to the [`MAX_EVENTS`] cap.
    pub dropped_events: u64,
}

/// Snapshot the registry (flushes the calling thread first).
pub fn snapshot() -> Snapshot {
    flush_thread();
    let reg = registry();
    let mut spans: Vec<(String, SpanStat)> = lock_clean(&reg.spans)
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    let mut hists: Vec<(String, Hist)> = lock_clean(&reg.hists)
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        spans,
        hists,
        counters: std::array::from_fn(|i| reg.counters[i].load(Ordering::Relaxed)),
        events: lock_clean(&reg.events).clone(),
        dropped_events: reg.dropped_events.load(Ordering::Relaxed),
    }
}

/// Clear all recorded spans, counters and events (calling thread flushed
/// and discarded first). Other threads' unflushed locals survive a reset.
///
/// **Long-lived servers must not call this.** `reset()` exists for
/// benchmark harnesses that want each repetition to describe exactly one
/// execution (benchgate's reset-between-reps discipline). In a resident
/// service (`sketchd`) the registry is shared by every in-flight request;
/// a reset would silently zero counters other observers are diffing
/// against. Servers report deltas instead: snapshot once at startup, then
/// have each `Stats` request take a fresh [`snapshot`] and subtract the
/// baseline with [`Snapshot::counters_since`]. Both operations are
/// read-only on the registry, so any number of concurrent `Stats` calls
/// observe monotone, race-free values.
pub fn reset() {
    if !cfg!(feature = "obs") {
        return;
    }
    with_local(|l| {
        l.counters = [0; NCTR];
        l.spans.clear();
        l.hists.clear();
    });
    let reg = registry();
    lock_clean(&reg.spans).clear();
    lock_clean(&reg.hists).clear();
    for c in &reg.counters {
        c.store(0, Ordering::Relaxed);
    }
    lock_clean(&reg.events).clear();
    reg.dropped_events.store(0, Ordering::Relaxed);
}

/// The JSONL sink path configured by the environment (`SKETCH_OBS_JSON`).
pub fn json_path_from_env() -> Option<String> {
    std::env::var("SKETCH_OBS_JSON")
        .ok()
        .filter(|p| !p.is_empty())
}

/// Resolve the JSONL sink shared by every binary: an explicit CLI value
/// (`--obs-json PATH`) wins over `SKETCH_OBS_JSON`. The one place the
/// precedence rule lives — `repro`, `sketchprof` and `benchgate` all call
/// this instead of re-implementing it.
///
/// Sink semantics: the resolved file is **truncated and rewritten** on every
/// run ([`Snapshot::write_jsonl`] uses `std::fs::write`), never appended to.
/// Pointing two runs at one path keeps only the last run's snapshot; use
/// distinct paths to keep a history.
pub fn resolve_json_sink(cli: Option<String>) -> Option<String> {
    cli.or_else(json_path_from_env)
}

/// End-of-run sink shared by the binaries: when telemetry is enabled, print
/// the human summary and, if a JSONL path was resolved, write the snapshot
/// there. Returns `Ok(true)` when a file was written. When telemetry is off
/// but a path was requested, warns on stderr (nothing was recorded).
pub fn emit_run_telemetry(json_path: Option<&str>) -> std::io::Result<bool> {
    if !enabled() {
        if json_path.is_some() {
            eprintln!(
                "--obs-json given but telemetry is off (SKETCH_OBS=0 or the obs feature is disabled); nothing written"
            );
        }
        return Ok(false);
    }
    let snap = snapshot();
    print!("\n{}", snap.summary());
    if let Some(path) = json_path {
        snap.write_jsonl(path)?;
        println!("telemetry JSONL written to {path}");
        return Ok(true);
    }
    Ok(false)
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        // JSON has no NaN/Inf; encode as null like most exporters do.
        out.push_str("null");
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F(v) => json_f64(out, *v),
            Value::S(v) => {
                out.push('"');
                json_escape(out, v);
                out.push('"');
            }
            Value::B(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

impl Snapshot {
    /// Counter-wise `self − base` (saturating): the delta a long-lived
    /// process reports without ever resetting the global registry. `base`
    /// is typically a snapshot taken at process or window start; saturation
    /// covers the (misuse) case where someone reset the registry between
    /// the two snapshots.
    pub fn counters_since(&self, base: &Snapshot) -> [u64; NCTR] {
        std::array::from_fn(|i| self.counters[i].saturating_sub(base.counters[i]))
    }

    /// Serialize as JSONL: one `meta` line, one line per span, one per
    /// counter, one per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"obskit\":\"{}\",\"dropped_events\":{}}}",
            env!("CARGO_PKG_VERSION"),
            self.dropped_events
        );
        for (path, s) in &self.spans {
            let mut line = String::from("{\"type\":\"span\",\"path\":\"");
            json_escape(&mut line, path);
            let _ = write!(line, "\",\"ns\":{},\"calls\":{},\"secs\":", s.ns, s.calls);
            json_f64(&mut line, s.ns as f64 * 1e-9);
            line.push('}');
            let _ = writeln!(out, "{line}");
        }
        for (path, h) in &self.hists {
            if h.is_empty() {
                continue;
            }
            let mut line = String::from("{\"type\":\"hist\",\"path\":\"");
            json_escape(&mut line, path);
            let _ = write!(
                line,
                "\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{}",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0)
            );
            for (name, q) in [("p50_ns", 0.5), ("p90_ns", 0.9), ("p99_ns", 0.99)] {
                let _ = write!(line, ",\"{name}\":");
                json_f64(&mut line, h.quantile(q));
            }
            line.push_str(",\"mad_ns\":");
            json_f64(&mut line, h.mad());
            line.push('}');
            let _ = writeln!(out, "{line}");
        }
        for (slot, name) in CTR_NAMES.iter().enumerate() {
            if self.counters[slot] != 0 {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{}}}",
                    self.counters[slot]
                );
            }
        }
        for ev in &self.events {
            let mut line = String::from("{\"type\":\"event\",\"kind\":\"");
            json_escape(&mut line, ev.kind);
            line.push_str("\",\"ts\":");
            json_f64(&mut line, ev.ts);
            for (name, val) in &ev.fields {
                line.push_str(",\"");
                json_escape(&mut line, name);
                line.push_str("\":");
                val.write_json(&mut line);
            }
            line.push('}');
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Write the JSONL serialization to `path`, **truncating** any existing
    /// file: a sink path always holds exactly one run's snapshot (one `meta`
    /// line first), never an append log. All three binaries share this
    /// behavior via [`resolve_json_sink`] + [`emit_run_telemetry`].
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Human-readable summary: a span tree with times, histogram quantiles,
    /// then counters.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() && self.hists.is_empty() && self.counters.iter().all(|&c| c == 0) {
            out.push_str("obskit: nothing recorded\n");
            return out;
        }
        let _ = writeln!(out, "── telemetry ───────────────────────────────");
        let width = self
            .spans
            .iter()
            .map(|(p, _)| p.len() + 2 * p.matches('/').count())
            .max()
            .unwrap_or(8)
            .max(8);
        for (path, s) in &self.spans {
            let depth = path.matches('/').count();
            let name = format!("{}{}", "  ".repeat(depth), path);
            let _ = writeln!(
                out,
                "{name:<width$}  {:>12.6} s  ×{}",
                s.ns as f64 * 1e-9,
                s.calls
            );
        }
        for (path, h) in &self.hists {
            if h.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{path:<width$}  p50 {:>9.0} ns  p90 {:>9.0} ns  p99 {:>9.0} ns  mad {:>8.0} ns  ×{}",
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.mad(),
                h.count()
            );
        }
        for (slot, name) in CTR_NAMES.iter().enumerate() {
            if self.counters[slot] != 0 {
                let _ = writeln!(out, "{name:<width$}  {:>12}", self.counters[slot]);
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "(events dropped: {})", self.dropped_events);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so the tests below (and the trace
    // module's) serialize on a lock to avoid cross-test interference.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        L.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_and_spans_round_trip() {
        let _g = lock();
        set_enabled(true);
        reset();
        add(Ctr::Samples, 10);
        add(Ctr::Samples, 5);
        add(Ctr::Seeks, 3);
        span_add_ns("a/b", 1_000);
        span_add_ns("a/b", 2_000);
        span_add_ns("a", 5_000);
        let s = snapshot();
        assert_eq!(s.counters[Ctr::Samples as usize], 15);
        assert_eq!(s.counters[Ctr::Seeks as usize], 3);
        let ab = s.spans.iter().find(|(p, _)| p == "a/b").unwrap();
        assert_eq!(
            ab.1,
            SpanStat {
                ns: 3_000,
                calls: 2
            }
        );
        reset();
        assert_eq!(snapshot().counters[Ctr::Samples as usize], 0);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(true);
        reset();
        set_enabled(false);
        add(Ctr::Flops, 100);
        span_add_ns("x", 1);
        event("e", vec![("a", Value::U(1))]);
        {
            let _s = span("x/guard");
        }
        set_enabled(true);
        let s = snapshot();
        assert_eq!(s.counters[Ctr::Flops as usize], 0);
        assert!(s.spans.is_empty());
        assert!(s.events.is_empty());
    }

    #[test]
    fn span_guard_accumulates_time() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = span("t/sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = snapshot();
        let (_, stat) = s.spans.iter().find(|(p, _)| p == "t/sleepy").unwrap();
        assert!(stat.ns >= 1_000_000, "slept 2ms but recorded {}ns", stat.ns);
        assert_eq!(stat.calls, 1);
    }

    #[test]
    fn worker_threads_merge_at_join() {
        let _g = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    add(Ctr::Samples, 100);
                    span_add_ns("par/task", 10);
                    flush_thread();
                });
            }
        });
        let s = snapshot();
        assert_eq!(s.counters[Ctr::Samples as usize], 400);
        assert_eq!(
            s.spans.iter().find(|(p, _)| p == "par/task").unwrap().1,
            SpanStat { ns: 40, calls: 4 }
        );
    }

    #[test]
    fn local_spans_view_and_publish() {
        let _g = lock();
        set_enabled(true);
        reset();
        let mut l = LocalSpans::new();
        l.add_ns("k/sample", 2_000_000_000);
        l.add_ns("k/sample", 1_000_000_000);
        l.count(Ctr::Seeks, 7);
        assert!((l.secs("k/sample") - 3.0).abs() < 1e-12);
        assert_eq!(l.secs("missing"), 0.0);
        assert_eq!(l.counter(Ctr::Seeks), 7);
        l.publish();
        let s = snapshot();
        assert_eq!(s.counters[Ctr::Seeks as usize], 7);
        assert_eq!(
            s.spans
                .iter()
                .find(|(p, _)| p == "k/sample")
                .unwrap()
                .1
                .calls,
            2
        );
        // Publishing while disabled leaves the registry untouched.
        reset();
        set_enabled(false);
        l.publish();
        set_enabled(true);
        assert_eq!(snapshot().counters[Ctr::Seeks as usize], 0);
    }

    #[test]
    fn jsonl_shape() {
        let _g = lock();
        set_enabled(true);
        reset();
        add(Ctr::Samples, 42);
        span_add_ns("sketch/alg3", 1_500_000);
        event(
            "lsqr_iter",
            vec![
                ("iter", Value::U(1)),
                ("rel_resid", Value::F(0.5)),
                ("note", Value::S("a \"quoted\" str".into())),
                ("nan", Value::F(f64::NAN)),
                ("ok", Value::B(true)),
                ("delta", Value::I(-3)),
            ],
        );
        let text = snapshot().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(text.contains("\"type\":\"span\",\"path\":\"sketch/alg3\",\"ns\":1500000"));
        assert!(text.contains("\"type\":\"counter\",\"name\":\"samples\",\"value\":42"));
        assert!(text.contains("\"kind\":\"lsqr_iter\""));
        assert!(text.contains("\"note\":\"a \\\"quoted\\\" str\""));
        assert!(text.contains("\"nan\":null"));
        assert!(text.contains("\"ok\":true"));
        assert!(text.contains("\"delta\":-3"));
        // Every line parses as a flat JSON object by eye: starts '{' ends '}'.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line {l}");
        }
    }

    #[test]
    fn write_jsonl_truncates_existing_file() {
        let _g = lock();
        set_enabled(true);
        reset();
        let path = std::env::temp_dir().join(format!("obskit_trunc_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        add(Ctr::Samples, 1);
        snapshot().write_jsonl(&path).unwrap();
        add(Ctr::Samples, 1);
        snapshot().write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let metas = text
            .lines()
            .filter(|l| l.contains("\"type\":\"meta\""))
            .count();
        // Truncate-on-write: the second snapshot replaces the first, so the
        // file holds exactly one meta line (an append log would hold two).
        assert_eq!(metas, 1, "sink must hold one snapshot, got:\n{text}");
        assert!(text.contains("\"name\":\"samples\",\"value\":2"));
        let _ = std::fs::remove_file(&path);
        reset();
    }

    #[test]
    fn gate_bits_are_independent() {
        let _g = lock();
        set_enabled(true);
        trace::set_enabled(true);
        assert!(enabled() && trace_enabled() && any_enabled());
        set_enabled(false);
        assert!(!enabled() && trace_enabled() && any_enabled());
        trace::set_enabled(false);
        assert!(!enabled() && !trace_enabled() && !any_enabled());
        set_enabled(true);
        assert!(enabled() && !trace_enabled() && any_enabled());
    }

    #[test]
    fn summary_indents_hierarchy() {
        let _g = lock();
        set_enabled(true);
        reset();
        span_add_ns("sketch", 10);
        span_add_ns("sketch/alg3", 10);
        let txt = snapshot().summary();
        assert!(txt.contains("sketch"));
        assert!(txt.contains("  sketch/alg3"));
        reset();
        assert!(snapshot().summary().contains("nothing recorded"));
    }

    #[test]
    fn event_cap_counts_drops() {
        let _g = lock();
        set_enabled(true);
        reset();
        // Don't actually push 1M events; emulate by filling close to cap via
        // direct registry access is private — so just verify the field is
        // plumbed through the snapshot.
        assert_eq!(snapshot().dropped_events, 0);
    }

    #[test]
    fn counters_since_is_saturating_delta() {
        let _g = lock();
        set_enabled(true);
        reset();
        add(Ctr::SvcAccepted, 5);
        let base = snapshot();
        add(Ctr::SvcAccepted, 7);
        add(Ctr::SvcRejectedOverload, 2);
        let now = snapshot();
        let d = now.counters_since(&base);
        assert_eq!(d[Ctr::SvcAccepted as usize], 7);
        assert_eq!(d[Ctr::SvcRejectedOverload as usize], 2);
        // Saturating: diffing against a *later* snapshot clamps to 0 rather
        // than wrapping (the registry-was-reset misuse case).
        let back = base.counters_since(&now);
        assert_eq!(back[Ctr::SvcAccepted as usize], 0);
        reset();
    }

    #[test]
    fn solver_stride_defaults_to_one() {
        assert!(solver_event_stride() >= 1);
    }

    // --- histogram unit tests -------------------------------------------

    #[test]
    fn hist_bucket_bounds_are_monotone_and_cover() {
        // Every value lands in a bucket whose [lo, next lo) range holds it.
        for v in (0..200u64).chain([1 << 20, u64::MAX / 3, u64::MAX]) {
            let idx = hist_bucket(v);
            assert!(idx < HIST_NBUCKETS, "index out of range for {v}");
            assert!(hist_bucket_lo(idx) <= v, "lo > v for {v}");
            if idx + 1 < HIST_NBUCKETS {
                assert!(v < hist_bucket_lo(idx + 1), "v beyond bucket for {v}");
            }
        }
        // Lower bounds strictly increase.
        for idx in 1..HIST_NBUCKETS {
            assert!(hist_bucket_lo(idx) > hist_bucket_lo(idx - 1));
        }
    }

    #[test]
    fn hist_closed_form_quantiles() {
        // Values 0..8 are bucketed exactly, so small-input quantiles are
        // closed-form: nearest-rank over {1,2,3,4,5}.
        let mut h = Hist::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5));
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        // Nearest rank: ⌈0.9·5⌉ = 5th smallest = 5.
        assert_eq!(h.quantile(0.9), 5.0);
        // MAD of {1..5}: deviations {2,1,0,1,2}, median 1.
        assert_eq!(h.mad(), 1.0);
        // Mean is exact (sum and count are exact).
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hist_quantiles_within_bucket_error_on_large_inputs() {
        // 1..=1000: quantiles must sit within the ±1/8 relative bucket
        // width of the exact nearest-rank answer.
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got - exact).abs() <= exact / 8.0 + 1.0,
                "q{q}: got {got}, exact {exact}"
            );
        }
        // MAD of 1..=1000 is 250; allow bucketing error on both the median
        // and the deviation median (≤ 1/8 each).
        let mad = h.mad();
        assert!((mad - 250.0).abs() <= 250.0 / 4.0 + 2.0, "mad {mad}");
    }

    #[test]
    fn hist_merge_equals_concatenation() {
        let xs: Vec<u64> = (0..500).map(|i| (i * i * 2654435761u64) >> 16).collect();
        let (a_in, b_in) = xs.split_at(173);
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for &v in a_in {
            a.record(v);
        }
        for &v in b_in {
            b.record(v);
        }
        for &v in &xs {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal histogram of concatenation");
        // Merging an empty histogram is the identity.
        let before = whole.clone();
        whole.merge(&Hist::new());
        assert_eq!(whole, before);
    }

    #[test]
    fn hist_empty_edge_cases() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mad().is_nan());
        assert!(h.mean().is_nan());
        // Single sample: every quantile is that sample, MAD is 0.
        let mut h1 = Hist::new();
        h1.record(12345);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h1.quantile(q), 12345.0);
        }
        assert_eq!(h1.mad(), 0.0);
    }

    #[test]
    fn hist_thread_locals_merge_at_flush() {
        let _g = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..10u64 {
                        hist_record_ns("h/par", 100 * t + i);
                    }
                    flush_thread();
                });
            }
        });
        let snap = snapshot();
        let (_, h) = snap.hists.iter().find(|(p, _)| p == "h/par").unwrap();
        assert_eq!(h.count(), 40);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max().map(|m| m >= 300), Some(true));
        reset();
        assert!(snapshot().hists.is_empty());
    }

    #[test]
    fn hist_jsonl_and_summary_lines() {
        let _g = lock();
        set_enabled(true);
        reset();
        for v in [1000u64, 2000, 3000] {
            hist_record_ns("h/block", v);
        }
        let snap = snapshot();
        let text = snap.to_jsonl();
        assert!(text.contains("\"type\":\"hist\",\"path\":\"h/block\",\"count\":3"));
        assert!(text.contains("\"p50_ns\":"));
        assert!(text.contains("\"mad_ns\":"));
        assert!(snap.summary().contains("p50"));
        reset();
    }

    #[test]
    fn hist_disabled_records_nothing() {
        let _g = lock();
        set_enabled(true);
        reset();
        set_enabled(false);
        hist_record_ns("h/off", 5);
        set_enabled(true);
        assert!(snapshot().hists.is_empty());
    }
}
