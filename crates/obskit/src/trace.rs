//! # Flight-recorder tracing
//!
//! A timeline-level complement to the aggregate telemetry in the crate
//! root: fixed-capacity per-thread ring buffers of compact binary events
//! (span begin/end, kernel-block annotations, solver-iteration marks,
//! counter deltas) stamped with nanoseconds since the process telemetry
//! epoch. The recorder is built to stay armed in long runs:
//!
//! * **Zero allocation on the hot path** — each thread's ring is one
//!   `Vec<TraceEvent>` allocated at first use; a push is an index store.
//! * **Overwrite-oldest** — a full ring wraps and counts what it evicted,
//!   so the recorder keeps the most recent window like a real flight
//!   recorder instead of stalling or growing.
//! * **Merge at join points** — rings drain into a bounded global store
//!   when threads flush ([`crate::flush_thread`], called by parkit at its
//!   join points) and when [`take`] drains the recorder.
//!
//! Gating mirrors the crate root: tracing is **opt-in** via `SKETCH_TRACE=1`
//! or [`set_enabled`], and both gates share one atomic byte so the kernels'
//! disabled path stays a single relaxed load (see [`crate::any_enabled`]).
//! `obskit::reset()` deliberately does *not* clear the recorder — benchmark
//! harnesses reset aggregates between reps, but a flight recorder must keep
//! its timeline across them; [`take`] is the one draining operation.
//!
//! Two drains serve the captured stream:
//!
//! * [`TraceCapture::chrome_json`] — Chrome Trace Event / Perfetto JSON
//!   with balanced `ph:"B"`/`ph:"E"` pairs, per-block args (block indices,
//!   rows, nnz, bytes, model cost and model-predicted ns) and `ph:"C"`
//!   counter series.
//! * [`TraceCapture::folded`] — collapsed-stack lines (`a;b;c <self-ns>`)
//!   for flamegraph rendering.
//!
//! On top of the block annotations, [`attribute`] compares each block's
//! measured latency against a per-path traffic-model prediction and flags
//! outliers with the same noise-aware threshold shape the bench gate uses:
//! `max(rel_tol·pred, k·MAD)`.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

use super::GATE_TRACE;

/// Kind tag of one trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened; matched by the next closing kind at the same depth.
    Begin,
    /// A plain span closed.
    End,
    /// A kernel block span closed. `args = [i, j, rows, nnz, bytes, cost]`
    /// where `cost` is the traffic-model cost in word-bytes (see
    /// [`BlockRecord::cost`]).
    BlockEnd,
    /// A solver iteration span closed. `args[0]` is the iteration number,
    /// `args[1]` the relative residual as `f64::to_bits`.
    IterEnd,
    /// A counter delta; `path` names the series, `args[0]` holds the delta.
    Counter,
}

impl TraceKind {
    fn closes_span(self) -> bool {
        matches!(
            self,
            TraceKind::End | TraceKind::BlockEnd | TraceKind::IterEnd
        )
    }
}

/// One compact fixed-size trace event (copyable, no heap).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the process telemetry epoch (monotonic).
    pub ts_ns: u64,
    /// Recorder-assigned thread id (stable per thread, starts at 1).
    pub tid: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Span path or counter name (interned `&'static str`).
    pub path: &'static str,
    /// Kind-specific payload (see [`TraceKind`]).
    pub args: [u64; 6],
}

/// Default per-thread ring capacity (events); override with
/// `SKETCH_TRACE_CAP` (values below 16 are clamped up).
pub const DEFAULT_RING_CAP: usize = 1 << 16;

/// Hard cap on the global event store; older events are evicted (and
/// counted) beyond it, keeping the recorder bounded like the rings.
pub const STORE_CAP: usize = 1 << 20;

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SKETCH_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .map(|c: usize| c.max(16))
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

/// Per-thread fixed-capacity event ring. Created lazily on a thread's first
/// traced event; pushes after the one-time allocation never allocate and
/// overwrite the oldest event once full.
pub struct TraceRing {
    tid: u32,
    cap: usize,
    buf: Vec<TraceEvent>,
    head: usize, // oldest event (and next overwrite target) once full
    overwritten: u64,
}

impl TraceRing {
    fn new() -> Self {
        static NEXT_TID: AtomicU32 = AtomicU32::new(1);
        Self {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            cap: ring_cap(),
            buf: Vec::with_capacity(ring_cap()),
            head: 0,
            overwritten: 0,
        }
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }
}

struct Store {
    events: Vec<TraceEvent>,
    dropped: u64,
}

fn store() -> &'static Mutex<Store> {
    static S: OnceLock<Mutex<Store>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(Store {
            events: Vec::new(),
            dropped: 0,
        })
    })
}

// Drain one thread's ring into the global store, oldest first. Called from
// `Local::flush`, i.e. at parkit join points, thread exit, and `take`.
pub(super) fn flush_ring(ring: &mut TraceRing) {
    if ring.buf.is_empty() && ring.overwritten == 0 {
        return;
    }
    let mut s = crate::lock_clean(store());
    s.dropped += std::mem::take(&mut ring.overwritten);
    s.events.extend_from_slice(&ring.buf[ring.head..]);
    s.events.extend_from_slice(&ring.buf[..ring.head]);
    if s.events.len() > STORE_CAP {
        let excess = s.events.len() - STORE_CAP;
        s.events.drain(..excess);
        s.dropped += excess as u64;
    }
    ring.buf.clear();
    ring.head = 0;
}

/// Override the `SKETCH_TRACE` gate programmatically (CLI `--trace-out`,
/// tests). The aggregate-telemetry gate ([`crate::set_enabled`]) is left
/// untouched.
pub fn set_enabled(on: bool) {
    super::store_gate_bit(GATE_TRACE, on);
}

/// Nanoseconds since the process telemetry epoch (monotonic, the trace
/// timebase).
#[inline]
pub fn now_ns() -> u64 {
    super::epoch().elapsed().as_nanos() as u64
}

#[inline]
fn push_event(kind: TraceKind, path: &'static str, ts_ns: u64, args: [u64; 6]) {
    super::with_local(|l| {
        let ring = l.ring.get_or_insert_with(TraceRing::new);
        let tid = ring.tid;
        ring.push(TraceEvent {
            ts_ns,
            tid,
            kind,
            path,
            args,
        });
    });
}

/// Record the opening of span `path` now (no-op unless tracing is on).
#[inline]
pub fn begin(path: &'static str) {
    if !super::trace_enabled() {
        return;
    }
    push_event(TraceKind::Begin, path, now_ns(), [0; 6]);
}

/// Record the close of span `path` now (no-op unless tracing is on).
#[inline]
pub fn end(path: &'static str) {
    if !super::trace_enabled() {
        return;
    }
    push_event(TraceKind::End, path, now_ns(), [0; 6]);
}

/// Record a completed leaf span as an adjacent Begin/closing pair with the
/// caller's own timestamps. The kernels time a block first and only then
/// record, so the pair lands atomically in the ring — eviction can never
/// separate a block's Begin from its close.
#[inline]
pub fn span_pair(path: &'static str, begin_ns: u64, end_ns: u64, kind: TraceKind, args: [u64; 6]) {
    if !super::trace_enabled() {
        return;
    }
    debug_assert!(kind.closes_span(), "span_pair needs a closing kind");
    super::with_local(|l| {
        let ring = l.ring.get_or_insert_with(TraceRing::new);
        let tid = ring.tid;
        ring.push(TraceEvent {
            ts_ns: begin_ns,
            tid,
            kind: TraceKind::Begin,
            path,
            args: [0; 6],
        });
        ring.push(TraceEvent {
            ts_ns: end_ns,
            tid,
            kind,
            path,
            args,
        });
    });
}

/// Record a counter delta under `name` (a `ph:"C"` series in the Chrome
/// export). No-op when tracing is off or `delta` is 0.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !super::trace_enabled() || delta == 0 {
        return;
    }
    push_event(TraceKind::Counter, name, now_ns(), [delta, 0, 0, 0, 0, 0]);
}

/// Everything the flight recorder held at [`take`] time.
#[derive(Clone, Debug, Default)]
pub struct TraceCapture {
    /// Events, chronological within each thread's stream.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite or the global store cap.
    pub dropped: u64,
}

/// Drain the recorder: flush the calling thread's ring, then take and clear
/// the global store. Worker-thread rings were already flushed at their
/// parkit join points. This is the *only* operation that empties the
/// recorder — `obskit::reset()` keeps the timeline on purpose.
pub fn take() -> TraceCapture {
    super::flush_thread();
    let mut s = crate::lock_clean(store());
    TraceCapture {
        events: std::mem::take(&mut s.events),
        dropped: std::mem::take(&mut s.dropped),
    }
}

/// One kernel block matched from a Begin/[`TraceKind::BlockEnd`] pair.
#[derive(Clone, Copy, Debug)]
pub struct BlockRecord {
    /// Span path (e.g. `"sketch/alg3/block"`).
    pub path: &'static str,
    /// Recorder thread id.
    pub tid: u32,
    /// Block start, ns since the telemetry epoch.
    pub ts_ns: u64,
    /// Measured wall-clock duration in ns.
    pub dur_ns: u64,
    /// Block row index (panel `i`).
    pub i: u64,
    /// Block column index (panel `j`).
    pub j: u64,
    /// Rows of `A` the block touches (`d1`, or rows hit for Algorithm 4).
    pub rows: u64,
    /// Nonzeros of `A` streamed by the block.
    pub nnz: u64,
    /// Bytes moved (operand stream + output traffic).
    pub bytes: u64,
    /// Traffic-model cost in byte units: `bytes + h·samples·word_bytes`,
    /// the §III-A functional (memory traffic plus weighted generation).
    pub cost: u64,
}

/// A [`BlockRecord`] with its model-predicted duration and anomaly verdict.
#[derive(Clone, Copy, Debug)]
pub struct BlockAttr {
    /// The measured block.
    pub rec: BlockRecord,
    /// Model-predicted ns: per-path fitted α times the block's cost.
    pub pred_ns: f64,
    /// Deviation threshold `max(rel_tol·pred, mad_k·MAD)` in ns.
    pub threshold_ns: f64,
    /// `dur > pred + threshold`: slower than the traffic model explains.
    pub flagged: bool,
}

fn per_tid(events: &[TraceEvent]) -> Vec<(u32, Vec<&TraceEvent>)> {
    let mut by: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        by.entry(ev.tid).or_default().push(ev);
    }
    by.into_iter().collect()
}

fn median_f64(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[(xs.len() - 1) / 2]
}

// Fit ns-per-cost-unit per span path: the median of dur/cost over blocks
// with nonzero cost. The median (not mean) keeps one straggler from
// inflating everyone's prediction — the attribution question is "which
// blocks deviate from the *typical* traffic rate".
fn fit_alphas(recs: &[BlockRecord]) -> HashMap<&'static str, f64> {
    let mut ratios: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for r in recs {
        if r.cost > 0 {
            ratios
                .entry(r.path)
                .or_default()
                .push(r.dur_ns as f64 / r.cost as f64);
        }
    }
    ratios
        .into_iter()
        .map(|(p, mut v)| (p, median_f64(&mut v)))
        .collect()
}

/// Compare each block against its traffic-model prediction and flag
/// anomalies. Per path, the predicted duration is `α·cost` with α the
/// median ns-per-cost-unit; a block is flagged when its duration exceeds
/// the prediction by more than `max(rel_tol·pred, mad_k·MAD)` — the same
/// noise-aware threshold shape the bench gate applies to scenario medians,
/// with MAD taken over the path's residuals. Returns all blocks sorted
/// slowest-first.
pub fn attribute(recs: &[BlockRecord], rel_tol: f64, mad_k: f64) -> Vec<BlockAttr> {
    let alphas = fit_alphas(recs);
    let pred = |r: &BlockRecord| alphas.get(r.path).copied().unwrap_or(0.0) * r.cost as f64;
    let mut resid: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for r in recs {
        resid
            .entry(r.path)
            .or_default()
            .push(r.dur_ns as f64 - pred(r));
    }
    let mads: HashMap<&'static str, f64> = resid
        .into_iter()
        .map(|(p, mut rs)| {
            let med = median_f64(&mut rs);
            let mut devs: Vec<f64> = rs.iter().map(|r| (r - med).abs()).collect();
            (p, median_f64(&mut devs))
        })
        .collect();
    let mut out: Vec<BlockAttr> = recs
        .iter()
        .map(|r| {
            let p = pred(r);
            let thr = (rel_tol * p).max(mad_k * mads.get(r.path).copied().unwrap_or(0.0));
            BlockAttr {
                rec: *r,
                pred_ns: p,
                threshold_ns: thr,
                flagged: r.dur_ns as f64 > p + thr,
            }
        })
        .collect();
    out.sort_by_key(|a| std::cmp::Reverse(a.rec.dur_ns));
    out
}

fn ts_us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

impl TraceCapture {
    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest timestamp in the capture (0 when empty).
    fn max_ts_ns(&self) -> u64 {
        self.events.iter().map(|e| e.ts_ns).max().unwrap_or(0)
    }

    /// Kernel blocks matched from Begin/[`TraceKind::BlockEnd`] pairs, in
    /// per-thread stream order.
    pub fn block_records(&self) -> Vec<BlockRecord> {
        let mut out = Vec::new();
        for (tid, evs) in per_tid(&self.events) {
            let mut stack: Vec<&TraceEvent> = Vec::new();
            for ev in evs {
                match ev.kind {
                    TraceKind::Begin => stack.push(ev),
                    TraceKind::Counter => {}
                    _ => {
                        if stack.last().is_some_and(|b| b.path == ev.path) {
                            let Some(b) = stack.pop() else { continue };
                            if ev.kind == TraceKind::BlockEnd {
                                out.push(BlockRecord {
                                    path: ev.path,
                                    tid,
                                    ts_ns: b.ts_ns,
                                    dur_ns: ev.ts_ns.saturating_sub(b.ts_ns),
                                    i: ev.args[0],
                                    j: ev.args[1],
                                    rows: ev.args[2],
                                    nnz: ev.args[3],
                                    bytes: ev.args[4],
                                    cost: ev.args[5],
                                });
                            }
                        }
                        // Orphan close (its Begin was evicted): skip.
                    }
                }
            }
        }
        out
    }

    /// Export as Chrome Trace Event / Perfetto JSON.
    ///
    /// Emits one event object per line inside `{"traceEvents":[…]}`:
    /// `ph:"M"` thread metadata, `ph:"B"`/`ph:"E"` span pairs (block closes
    /// carry `i/j/rows/nnz/bytes/cost/model_ns` args, iteration closes carry
    /// `iter/rel_resid`), and `ph:"C"` cumulative counter series.
    /// Timestamps are microseconds since the telemetry epoch.
    ///
    /// Balance is guaranteed: a `B` is emitted only when its close will
    /// follow — orphan closes (Begin evicted by the ring) are skipped, and
    /// spans still open at the end of a thread's stream get a synthetic `E`
    /// at the capture's last timestamp.
    pub fn chrome_json(&self) -> String {
        let pid = std::process::id();
        let max_ts = self.max_ts_ns();
        let alphas = fit_alphas(&self.block_records());
        let mut lines: Vec<String> = Vec::new();
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"sketch\"}}}}"
        ));
        for (tid, evs) in per_tid(&self.events) {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"worker-{tid}\"}}}}"
            ));
            // Pending Begins: (event, index into `lines` of its "B" line).
            let mut stack: Vec<&TraceEvent> = Vec::new();
            let mut cum: HashMap<&'static str, u64> = HashMap::new();
            for ev in evs {
                match ev.kind {
                    TraceKind::Begin => {
                        let mut l = String::from("{\"name\":\"");
                        super::json_escape(&mut l, ev.path);
                        let _ = write!(
                            l,
                            "\",\"cat\":\"sketch\",\"ph\":\"B\",\"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
                            ts_us(ev.ts_ns)
                        );
                        lines.push(l);
                        stack.push(ev);
                    }
                    TraceKind::Counter => {
                        let c = cum.entry(ev.path).or_insert(0);
                        *c += ev.args[0];
                        let mut l = String::from("{\"name\":\"");
                        super::json_escape(&mut l, ev.path);
                        let _ = write!(
                            l,
                            "\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\
                             \"args\":{{\"value\":{}}}}}",
                            ts_us(ev.ts_ns),
                            *c
                        );
                        lines.push(l);
                    }
                    _ => {
                        let Some(b) = stack.pop_if(|b| b.path == ev.path) else {
                            continue; // orphan close, Begin was evicted
                        };
                        let mut l = String::from("{\"name\":\"");
                        super::json_escape(&mut l, ev.path);
                        let _ = write!(
                            l,
                            "\",\"cat\":\"sketch\",\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\"tid\":{tid}",
                            ts_us(ev.ts_ns)
                        );
                        match ev.kind {
                            TraceKind::BlockEnd => {
                                let a = alphas.get(ev.path).copied().unwrap_or(0.0);
                                let model_ns = (a * ev.args[5] as f64).round() as u64;
                                let _ = write!(
                                    l,
                                    ",\"args\":{{\"i\":{},\"j\":{},\"rows\":{},\"nnz\":{},\
                                     \"bytes\":{},\"cost\":{},\"model_ns\":{},\"dur_ns\":{}}}",
                                    ev.args[0],
                                    ev.args[1],
                                    ev.args[2],
                                    ev.args[3],
                                    ev.args[4],
                                    ev.args[5],
                                    model_ns,
                                    ev.ts_ns.saturating_sub(b.ts_ns)
                                );
                            }
                            TraceKind::IterEnd => {
                                let _ =
                                    write!(l, ",\"args\":{{\"iter\":{},\"rel_resid\":", ev.args[0]);
                                super::json_f64(&mut l, f64::from_bits(ev.args[1]));
                                l.push('}');
                            }
                            _ => {}
                        }
                        l.push('}');
                        lines.push(l);
                    }
                }
            }
            // Spans whose close was evicted: synthesize balanced Es at the
            // capture's end, innermost first.
            while let Some(b) = stack.pop() {
                let mut l = String::from("{\"name\":\"");
                super::json_escape(&mut l, b.path);
                let _ = write!(
                    l,
                    "\",\"cat\":\"sketch\",\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"synthetic_end\":true}}}}",
                    ts_us(max_ts)
                );
                lines.push(l);
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// Collapsed-stack flamegraph lines: one `path;path;path <self-ns>`
    /// per unique stack, aggregated across threads, sorted by stack name.
    /// Values are *self* nanoseconds (total minus child time), the quantity
    /// flamegraph width encodes.
    pub fn folded(&self) -> String {
        struct Frame<'a> {
            path: &'a str,
            t0: u64,
            child_ns: u64,
        }
        let max_ts = self.max_ts_ns();
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for (_tid, evs) in per_tid(&self.events) {
            let mut stack: Vec<Frame> = Vec::new();
            let close_top = |stack: &mut Vec<Frame>, agg: &mut BTreeMap<String, u64>, end: u64| {
                let Some(f) = stack.pop() else { return };
                let total = end.saturating_sub(f.t0);
                let self_ns = total.saturating_sub(f.child_ns);
                if let Some(p) = stack.last_mut() {
                    p.child_ns += total;
                }
                if self_ns > 0 {
                    let mut key = String::new();
                    for anc in stack.iter() {
                        key.push_str(anc.path);
                        key.push(';');
                    }
                    key.push_str(f.path);
                    *agg.entry(key).or_insert(0) += self_ns;
                }
            };
            for ev in evs {
                match ev.kind {
                    TraceKind::Begin => stack.push(Frame {
                        path: ev.path,
                        t0: ev.ts_ns,
                        child_ns: 0,
                    }),
                    TraceKind::Counter => {}
                    _ => {
                        if stack.last().is_some_and(|f| f.path == ev.path) {
                            close_top(&mut stack, &mut agg, ev.ts_ns);
                        }
                    }
                }
            }
            while !stack.is_empty() {
                close_top(&mut stack, &mut agg, max_ts);
            }
        }
        let mut out = String::new();
        for (k, v) in agg {
            let _ = writeln!(out, "{k} {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, tid: u32, kind: TraceKind, path: &'static str, args: [u64; 6]) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            tid,
            kind,
            path,
            args,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut r = TraceRing {
            tid: 7,
            cap: 4,
            buf: Vec::with_capacity(4),
            head: 0,
            overwritten: 0,
        };
        for t in 0..6u64 {
            r.push(ev(t, 7, TraceKind::End, "x", [0; 6]));
        }
        assert_eq!(r.overwritten, 2);
        assert_eq!(r.buf.len(), 4);
        // Oldest-first drain order: 2, 3, 4, 5.
        let mut order: Vec<u64> = r.buf[r.head..].iter().map(|e| e.ts_ns).collect();
        order.extend(r.buf[..r.head].iter().map(|e| e.ts_ns));
        assert_eq!(order, vec![2, 3, 4, 5]);
    }

    #[test]
    fn recorder_round_trip_and_reset_survival() {
        let _g = crate::tests::lock();
        crate::set_enabled(false);
        set_enabled(true);
        let _ = take(); // clear residue from other tests
        begin("run");
        span_pair(
            "run/block",
            now_ns(),
            now_ns() + 10,
            TraceKind::BlockEnd,
            [0, 1, 8, 100, 4096, 5000],
        );
        counter("bytes", 4096);
        end("run");
        // reset() must NOT clear the flight recorder.
        crate::reset();
        let cap = take();
        assert_eq!(cap.dropped, 0);
        assert_eq!(cap.events.len(), 5);
        assert_eq!(cap.block_records().len(), 1);
        let b = cap.block_records()[0];
        assert_eq!(
            (b.i, b.j, b.rows, b.nnz, b.bytes, b.cost),
            (0, 1, 8, 100, 4096, 5000)
        );
        // take() drained the store.
        assert!(take().is_empty());
        set_enabled(false);
        crate::set_enabled(true);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::tests::lock();
        set_enabled(false);
        let _ = take();
        begin("off");
        end("off");
        counter("off", 1);
        span_pair("off", 0, 1, TraceKind::End, [0; 6]);
        assert!(take().is_empty());
    }

    #[test]
    fn chrome_json_is_balanced_with_block_args() {
        let cap = TraceCapture {
            events: vec![
                ev(0, 1, TraceKind::Begin, "run", [0; 6]),
                ev(10, 1, TraceKind::Begin, "run/blk", [0; 6]),
                ev(
                    110,
                    1,
                    TraceKind::BlockEnd,
                    "run/blk",
                    [2, 3, 8, 50, 1024, 2000],
                ),
                ev(120, 1, TraceKind::Counter, "bytes", [1024, 0, 0, 0, 0, 0]),
                ev(130, 1, TraceKind::Counter, "bytes", [1024, 0, 0, 0, 0, 0]),
                // Orphan close (Begin evicted) must be skipped:
                ev(140, 1, TraceKind::End, "ghost", [0; 6]),
                // `run` never closes -> synthetic E at max ts.
                ev(200, 2, TraceKind::Begin, "iter", [0; 6]),
                ev(
                    250,
                    2,
                    TraceKind::IterEnd,
                    "iter",
                    [3, 0.25f64.to_bits(), 0, 0, 0, 0],
                ),
            ],
            dropped: 0,
        };
        let json = cap.chrome_json();
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "unbalanced B/E in:\n{json}");
        assert_eq!(b, 3);
        assert!(!json.contains("ghost"));
        assert!(json.contains("\"synthetic_end\":true"));
        assert!(json.contains("\"i\":2,\"j\":3,\"rows\":8,\"nnz\":50,\"bytes\":1024,\"cost\":2000"));
        assert!(json.contains("\"model_ns\":100")); // α = 100/2000, cost 2000
        assert!(json.contains("\"iter\":3,\"rel_resid\":0.25"));
        // Cumulative counter series: 1024 then 2048.
        assert!(json.contains("\"args\":{\"value\":1024}"));
        assert!(json.contains("\"args\":{\"value\":2048}"));
    }

    #[test]
    fn folded_attributes_self_time() {
        let cap = TraceCapture {
            events: vec![
                ev(0, 1, TraceKind::Begin, "a", [0; 6]),
                ev(10, 1, TraceKind::Begin, "b", [0; 6]),
                ev(40, 1, TraceKind::End, "b", [0; 6]),
                ev(100, 1, TraceKind::End, "a", [0; 6]),
            ],
            dropped: 0,
        };
        let folded = cap.folded();
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["a 70", "a;b 30"]);
    }

    #[test]
    fn attribute_flags_the_straggler() {
        // Nine well-behaved blocks at 1 ns/cost-unit, one 10x straggler.
        let mut recs: Vec<BlockRecord> = (0..9)
            .map(|k| BlockRecord {
                path: "p",
                tid: 1,
                ts_ns: k * 1000,
                dur_ns: 1000 + k, // tiny jitter
                i: k,
                j: 0,
                rows: 8,
                nnz: 100,
                bytes: 800,
                cost: 1000,
            })
            .collect();
        recs.push(BlockRecord {
            path: "p",
            tid: 1,
            ts_ns: 9000,
            dur_ns: 10_000,
            i: 9,
            j: 0,
            rows: 8,
            nnz: 100,
            bytes: 800,
            cost: 1000,
        });
        let attrs = attribute(&recs, 0.3, 4.0);
        assert_eq!(attrs.len(), 10);
        // Sorted slowest-first.
        assert_eq!(attrs[0].rec.dur_ns, 10_000);
        assert!(attrs[0].flagged, "straggler not flagged: {:?}", attrs[0]);
        assert!(
            attrs[1..].iter().all(|a| !a.flagged),
            "well-behaved block flagged"
        );
        // Prediction is near the typical rate.
        assert!((attrs[0].pred_ns - 1000.0).abs() < 20.0);
    }

    #[test]
    fn store_cap_drops_oldest_counted() {
        let _g = crate::tests::lock();
        set_enabled(true);
        let _ = take();
        // Exercise the store-cap eviction path directly via flush_ring.
        let mut ring = TraceRing {
            tid: 99,
            cap: 8,
            buf: Vec::with_capacity(8),
            head: 0,
            overwritten: 3, // pretend the ring already wrapped
        };
        ring.push(ev(1, 99, TraceKind::End, "x", [0; 6]));
        flush_ring(&mut ring);
        let cap = take();
        assert_eq!(cap.events.len(), 1);
        assert_eq!(cap.dropped, 3);
        set_enabled(false);
    }
}
