//! Fault-injection tests for the hardened sketch drivers.
//!
//! One test function on purpose: the faultkit plan and the
//! `SKETCH_MEM_BUDGET` environment variable are process-global, and this
//! integration binary gives them a process of their own, away from the
//! crate's concurrent unit tests.

use rngkit::{FastRng, UnitUniform};
use sketchcore::robust::{plan_blocks, try_sketch_alg3, try_sketch_alg3_par_cols};
use sketchcore::{SketchConfig, SketchError};
use sparsekit::{CooMatrix, CscMatrix};

fn small_input() -> CscMatrix<f64> {
    let mut coo = CooMatrix::new(40, 12);
    let mut s = 5u64;
    for j in 0..12 {
        for _ in 0..4 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (s >> 33) as usize % 40;
            let _ = coo.push(i, j, ((s >> 11) % 1000) as f64 / 500.0 - 1.0);
        }
    }
    coo.to_csc().expect("in-bounds by construction")
}

#[test]
fn injected_faults_surface_as_typed_errors() {
    let a = small_input();
    let cfg = SketchConfig::new(24, 8, 4, 3);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    // NaN injected into the sample stream: caught by the output scan.
    faultkit::set_plan_str("sketch/nan_stream=once", 0).expect("valid plan");
    let r = try_sketch_alg3(&a, &cfg, &sampler);
    assert!(
        matches!(r, Err(SketchError::NonFiniteSketch { .. })),
        "got {r:?}"
    );

    // The same fault plan is deterministic: `once` already fired, so a
    // second run under the same plan is clean.
    let r2 = try_sketch_alg3(&a, &cfg, &sampler).expect("once-trigger already spent");
    faultkit::clear();
    let clean = try_sketch_alg3(&a, &cfg, &sampler).expect("disarmed");
    assert_eq!(r2, clean);

    // Worker panic inside parkit: payload propagated, typed, no abort.
    faultkit::set_plan_str("parkit/worker=once", 0).expect("valid plan");
    let r = parkit::with_threads(2, || try_sketch_alg3_par_cols(&a, &cfg, &sampler));
    faultkit::clear();
    match r {
        Err(SketchError::WorkerPanic(msg)) => {
            assert!(msg.contains("parkit/worker"), "payload lost: {msg}")
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // Tight budget via env: output fits, working set must shrink.
    let cfg_b = SketchConfig::new(64, 32, 16, 1);
    let out_bytes = 64 * 100 * 8u64;
    std::env::set_var("SKETCH_MEM_BUDGET", (out_bytes + 2048).to_string());
    let plan = plan_blocks::<f64>(&cfg_b, 100);
    std::env::remove_var("SKETCH_MEM_BUDGET");
    let plan = plan.expect("degradation should fit");
    assert!(plan.degraded > 0, "expected block degradation");
    assert!(plan.cfg.b_d * plan.cfg.b_n < 32 * 16);
    assert!(plan.need_bytes <= plan.budget_bytes);

    // Budget below the irreducible output: typed failure, not an OOM.
    std::env::set_var("SKETCH_MEM_BUDGET", (out_bytes - 1).to_string());
    let r = plan_blocks::<f64>(&cfg_b, 100);
    std::env::remove_var("SKETCH_MEM_BUDGET");
    assert!(matches!(r, Err(SketchError::BudgetExceeded { .. })));

    // Simulated allocation failure (sketch/alloc): the degradation path
    // runs and the sketch still completes, bitwise equal to the clean one.
    faultkit::set_plan_str("sketch/alloc=once", 0).expect("valid plan");
    let degraded = try_sketch_alg3(&a, &cfg, &sampler).expect("degrades, not fails");
    assert_eq!(faultkit::fired_count("sketch/alloc"), 1);
    faultkit::clear();
    assert_eq!(degraded, clean);
}
