//! Equivalence and invariant checks for the telemetry layer.
//!
//! This lives in its own integration-test binary because the obskit registry
//! is process-global: the crate's unit-test binary runs the parallel drivers
//! concurrently, which would race any exact counter-equality assertion. Here
//! the registry belongs to this binary alone, and the tests below serialize
//! on a lock so they can reset it safely.

use rngkit::{FastRng, UnitUniform};
use sketchcore::{
    config::alg3_samples, obs, sketch_alg3, sketch_alg3_instrumented, sketch_alg4, SketchConfig,
};
use sparsekit::{BlockedCsr, CooMatrix, CscMatrix};
use std::sync::Mutex;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static L: Mutex<()> = Mutex::new(());
    L.lock().unwrap_or_else(|e| e.into_inner())
}

fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    let mut coo = CooMatrix::new(m, n);
    for _ in 0..nnz {
        coo.push(
            (next() % m as u64) as usize,
            (next() % n as u64) as usize,
            (next() % 1000) as f64 / 500.0 - 0.9995,
        )
        .unwrap();
    }
    coo.to_csc().unwrap()
}

/// The instrumented Algorithm 3 is bitwise identical to the plain kernel —
/// same fused multiply-adds in the same order — and its timing satisfies the
/// basic invariants: sample time within total time, samples and seeks equal
/// to the closed-form counts.
#[test]
fn instrumented_alg3_bitwise_identical_with_closed_form_counts() {
    let _g = lock();
    let a = random_csc(80, 50, 600, 11);
    let cfg = SketchConfig::new(48, 13, 9, 21);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let plain = sketch_alg3(&a, &cfg, &sampler);
    let (inst, t) = sketch_alg3_instrumented(&a, &cfg, &sampler);
    // Bitwise, not approximate: every f64 must match exactly.
    let same = plain
        .as_slice()
        .iter()
        .zip(inst.as_slice())
        .all(|(p, q)| p.to_bits() == q.to_bits());
    assert!(same, "instrumented Alg 3 diverged from the plain kernel");
    assert!(
        t.sample_s <= t.total_s + 1e-9,
        "sample {} > total {}",
        t.sample_s,
        t.total_s
    );
    assert_eq!(t.samples, alg3_samples(cfg.d, a.nnz()));
    assert_eq!(t.seeks, a.nnz() as u64 * cfg.d_blocks() as u64);
}

/// The plain kernels' block-granularity counters land in the global registry
/// with the same closed-form totals the instrumented drivers report.
#[test]
#[cfg_attr(not(feature = "obs"), ignore = "recording is compiled out")]
fn global_counters_match_closed_form() {
    let _g = lock();
    let a = random_csc(70, 40, 500, 7);
    let cfg = SketchConfig::new(32, 10, 8, 9);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    obskit::set_enabled(true);
    obskit::reset();
    let _x3 = sketch_alg3(&a, &cfg, &sampler);
    let s3 = obskit::snapshot();
    assert_eq!(
        s3.counters[obskit::Ctr::Samples as usize],
        alg3_samples(cfg.d, a.nnz())
    );
    assert_eq!(
        s3.counters[obskit::Ctr::Seeks as usize],
        a.nnz() as u64 * cfg.d_blocks() as u64
    );
    assert_eq!(
        s3.counters[obskit::Ctr::Flops as usize],
        2 * cfg.d as u64 * a.nnz() as u64
    );
    // bytes_a: each column block is streamed once per d-block row.
    assert_eq!(
        s3.counters[obskit::Ctr::BytesA as usize],
        a.nnz() as u64 * 16 * cfg.d_blocks() as u64
    );

    obskit::reset();
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    let _x4 = sketch_alg4(&blocked, &cfg, &sampler);
    let s4 = obskit::snapshot();
    assert_eq!(
        s4.counters[obskit::Ctr::Samples as usize],
        sketchcore::alg4::alg4_samples_actual(&blocked, cfg.d)
    );
    assert_eq!(
        s4.counters[obskit::Ctr::Flops as usize],
        2 * cfg.d as u64 * a.nnz() as u64
    );
    obskit::reset();
}

/// With the gate off the plain kernels record nothing, and the instrumented
/// driver still hands a full timing back to its caller (publish is the only
/// part that is gated).
#[test]
fn gate_off_records_nothing_but_timing_survives() {
    let _g = lock();
    let a = random_csc(30, 20, 120, 3);
    let cfg = SketchConfig::new(16, 8, 8, 4);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    obskit::set_enabled(true);
    obskit::reset();
    obskit::set_enabled(false);
    let _x3 = sketch_alg3(&a, &cfg, &sampler);
    let (_xi, t) = sketch_alg3_instrumented(&a, &cfg, &sampler);
    obskit::set_enabled(true);
    let s = obskit::snapshot();
    assert_eq!(s.counters[obskit::Ctr::Samples as usize], 0);
    assert!(s.spans.is_empty());
    // The caller's view is unaffected by the gate.
    assert_eq!(t.samples, alg3_samples(cfg.d, a.nnz()));
    assert!(t.total_s > 0.0);
    obskit::reset();
}

/// Alg 3's counted samples exceed Alg 4's whenever columns share rows within
/// a block — the asymmetry the paper's Algorithm 4 exists to exploit — and
/// the traffic comparison built from the counters is internally consistent.
#[test]
#[cfg_attr(not(feature = "obs"), ignore = "recording is compiled out")]
fn traffic_report_from_real_counters() {
    let _g = lock();
    let a = random_csc(100, 60, 900, 13);
    let cfg = SketchConfig::new(40, 12, 10, 17);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    obskit::set_enabled(true);
    obskit::reset();
    let _x3 = sketch_alg3(&a, &cfg, &sampler);
    let s = obskit::snapshot();
    let flops = s.counters[obskit::Ctr::Flops as usize];
    let measured =
        s.counters[obskit::Ctr::BytesA as usize] + s.counters[obskit::Ctr::BytesOut as usize];
    let model = sketchcore::CostModel::default_host();
    let rep = obs::TrafficReport::compare(&model, a.density(), cfg.b_n, flops, 8, measured);
    assert!(rep.modeled_bytes > 0.0);
    assert!(rep.ratio > 0.0 && rep.ratio.is_finite());
    assert_eq!(rep.measured_bytes, measured);
    obskit::reset();
}
