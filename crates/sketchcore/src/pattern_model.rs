//! Pattern-aware cost model — the paper's stated future work ("extend our
//! theoretical analysis to sparse matrices with non-uniform sparsity
//! patterns", §VI).
//!
//! The §III-A model assumes uniform density, where the expected number of
//! nonempty rows per vertical block has the closed form
//! `m·(1 − (1−ρ)^{n₁})`. For a *given* matrix that expectation can simply be
//! **measured**: count, for each candidate `b_n`, how many (row, block)
//! pairs are nonempty. From those counts the model predicts Algorithm 4's
//! sample volume exactly and estimates the Alg 3 / Alg 4 trade-off of
//! Table VI without running either kernel.

use crate::config::{alg3_samples, flops};
use sparsekit::{CscMatrix, Scalar};

/// Measured per-pattern statistics for one choice of `b_n`.
#[derive(Clone, Copy, Debug)]
pub struct PatternProfile {
    /// Vertical block width measured.
    pub b_n: usize,
    /// Number of vertical blocks.
    pub nblocks: usize,
    /// Total nonempty (row, block) pairs — Algorithm 4 draws `d` samples per
    /// pair.
    pub nonempty_row_blocks: u64,
    /// Average nonzeros per nonempty (row, block) pair — Algorithm 4's reuse
    /// factor (Algorithm 3 has reuse 1 by construction).
    pub reuse: f64,
}

/// Measure the pattern statistics of `a` for block width `b_n`, in one
/// O(nnz + ⌈n/b_n⌉) pass (no blocked structure is built).
pub fn profile_pattern<T: Scalar>(a: &CscMatrix<T>, b_n: usize) -> PatternProfile {
    assert!(b_n > 0, "block width must be positive");
    let nblocks = a.ncols().div_ceil(b_n).max(1);
    // For each block, mark rows seen; count marks. Use a stamp array to
    // avoid clearing an m-vector per block.
    let m = a.nrows();
    let mut stamp = vec![u32::MAX; m];
    let mut nonempty: u64 = 0;
    for blk in 0..nblocks {
        let j0 = blk * b_n;
        let j1 = (j0 + b_n).min(a.ncols());
        for j in j0..j1 {
            let (rows, _) = a.col(j);
            for &r in rows {
                if stamp[r] != blk as u32 {
                    stamp[r] = blk as u32;
                    nonempty += 1;
                }
            }
        }
    }
    let reuse = if nonempty == 0 {
        0.0
    } else {
        a.nnz() as f64 / nonempty as f64
    };
    PatternProfile {
        b_n,
        nblocks,
        nonempty_row_blocks: nonempty,
        reuse,
    }
}

/// Predicted cost split between the two kernels for a given pattern.
#[derive(Clone, Copy, Debug)]
pub struct KernelPrediction {
    /// Samples Algorithm 3 will draw (`d·nnz`).
    pub alg3_samples: u64,
    /// Samples Algorithm 4 will draw (`d` per nonempty row-block pair).
    pub alg4_samples: u64,
    /// Useful flops (identical for both kernels).
    pub flops: u64,
    /// Predicted Alg 3 seconds = samples·t_gen + flops·t_flop.
    pub alg3_seconds: f64,
    /// Predicted Alg 4 seconds = samples·t_gen + flops·t_flop·penalty.
    pub alg4_seconds: f64,
}

impl KernelPrediction {
    /// Whether the model prefers Algorithm 4 for this pattern.
    pub fn prefer_alg4(&self) -> bool {
        self.alg4_seconds < self.alg3_seconds
    }
}

/// Machine constants for the kernel-choice predictor.
#[derive(Clone, Copy, Debug)]
pub struct KernelCosts {
    /// Seconds per generated sample (measure with `repro stream`).
    pub t_gen: f64,
    /// Seconds per useful flop in the strided axpy.
    pub t_flop: f64,
    /// Multiplicative penalty on Algorithm 4's flops relative to
    /// Algorithm 3's: Alg 4 applies its axpy through a buffered scratch
    /// vector with pattern-dependent scatter, where Alg 3's fused path goes
    /// register-to-memory (≈2x on the recorded host; closer to 1 on
    /// machines with forgiving prefetchers — the paper's Perlmutter case).
    pub alg4_scatter_penalty: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self {
            t_gen: 5e-10,
            t_flop: 1e-10,
            alg4_scatter_penalty: 2.0,
        }
    }
}

/// Predict both kernels' costs for `a` at sketch size `d`, block width `b_n`.
pub fn predict_kernels<T: Scalar>(
    a: &CscMatrix<T>,
    d: usize,
    b_n: usize,
    costs: &KernelCosts,
) -> KernelPrediction {
    let prof = profile_pattern(a, b_n);
    let s3 = alg3_samples(d, a.nnz());
    let s4 = prof.nonempty_row_blocks * d as u64;
    let fl = flops(d, a.nnz());
    KernelPrediction {
        alg3_samples: s3,
        alg4_samples: s4,
        flops: fl,
        alg3_seconds: s3 as f64 * costs.t_gen + fl as f64 * costs.t_flop,
        alg4_seconds: s4 as f64 * costs.t_gen
            + fl as f64 * costs.t_flop * costs.alg4_scatter_penalty,
    }
}

/// Choose the `b_n` (from a candidate list) minimizing Algorithm 4's sample
/// volume for this pattern — the §III-B remark that "one could tune b_n to
/// minimize the number of random variables generated".
pub fn tune_b_n<T: Scalar>(a: &CscMatrix<T>, candidates: &[usize]) -> (usize, u64) {
    assert!(!candidates.is_empty(), "need at least one candidate");
    match candidates
        .iter()
        .map(|&b_n| (b_n, profile_pattern(a, b_n).nonempty_row_blocks))
        .min_by_key(|&(_, s)| s)
    {
        Some(best) => best,
        None => unreachable!("candidates asserted nonempty above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg4::alg4_samples_actual;
    use sparsekit::BlockedCsr;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                1.0,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn profile_matches_blocked_structure_exactly() {
        let a = random_csc(200, 80, 600, 3);
        for b_n in [1, 7, 20, 80, 200] {
            let prof = profile_pattern(&a, b_n);
            let blocked = BlockedCsr::from_csc(&a, b_n);
            let d = 13;
            assert_eq!(
                prof.nonempty_row_blocks * d as u64,
                alg4_samples_actual(&blocked, d),
                "profile mismatch at b_n = {b_n}"
            );
        }
    }

    #[test]
    fn dense_rows_pattern_prefers_alg4() {
        // Abnormal_A-like: few dense rows → massive reuse for Alg 4.
        let mut coo = sparsekit::CooMatrix::new(1000, 200);
        for r in (0..1000).step_by(100) {
            for c in 0..200 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let a = coo.to_csc().unwrap();
        let pred = predict_kernels(&a, 300, 50, &KernelCosts::default());
        assert!(pred.alg4_samples * 10 < pred.alg3_samples);
        assert!(pred.prefer_alg4());
    }

    #[test]
    fn dense_columns_pattern_removes_alg4_advantage() {
        // Abnormal_C-like: dense columns spaced wider than b_n → reuse ≈ 1.
        let mut coo = sparsekit::CooMatrix::new(1000, 200);
        for c in (0..200).step_by(100) {
            for r in 0..1000 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let a = coo.to_csc().unwrap();
        let prof = profile_pattern(&a, 50);
        assert!((prof.reuse - 1.0).abs() < 1e-12, "reuse {}", prof.reuse);
        let pred = predict_kernels(&a, 300, 50, &KernelCosts::default());
        // Same samples, but Alg 4 pays the scatter penalty → prefer Alg 3.
        assert_eq!(pred.alg3_samples, pred.alg4_samples);
        assert!(!pred.prefer_alg4());
    }

    #[test]
    fn tuning_picks_wider_blocks_for_row_dense_patterns() {
        let mut coo = sparsekit::CooMatrix::new(400, 120);
        for r in (0..400).step_by(40) {
            for c in 0..120 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let a = coo.to_csc().unwrap();
        let (best, samples) = tune_b_n(&a, &[1, 10, 40, 120]);
        assert_eq!(best, 120, "widest block minimizes samples for dense rows");
        assert_eq!(samples, 10); // 10 dense rows × 1 block
    }

    #[test]
    fn uniform_pattern_agrees_with_closed_form() {
        // E[nonempty pairs] = blocks · m · (1 − (1−ρ)^{b_n}).
        let (m, n, rho) = (2000, 400, 0.01);
        let a = crate_uniform(m, n, rho);
        let b_n = 40;
        let prof = profile_pattern(&a, b_n);
        let blocks = n / b_n;
        let expect = blocks as f64 * m as f64 * (1.0 - (1.0 - rho).powi(b_n as i32));
        let rel = (prof.nonempty_row_blocks as f64 - expect).abs() / expect;
        assert!(
            rel < 0.05,
            "measured {} vs model {expect}",
            prof.nonempty_row_blocks
        );
    }

    fn crate_uniform(m: usize, n: usize, rho: f64) -> CscMatrix<f64> {
        // Inline Bernoulli generator (datagen would be a dependency cycle).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut nextf = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for j in 0..n {
            for i in 0..m {
                if nextf() < rho {
                    coo.push_unchecked(i, j, 1.0);
                }
            }
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn empty_matrix_profile() {
        let a = CscMatrix::<f64>::zeros(10, 5);
        let prof = profile_pattern(&a, 2);
        assert_eq!(prof.nonempty_row_blocks, 0);
        assert_eq!(prof.reuse, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let a = CscMatrix::<f64>::zeros(4, 4);
        let _ = profile_pattern(&a, 0);
    }
}
