//! Parallel drivers — parkit parallelization of Algorithm 1's outer loops.
//!
//! The paper (§II-C) parallelizes either of the two outer loops; both options
//! are provided:
//!
//! * **Column panels** (`par_cols`): each worker owns a disjoint panel of
//!   `b_n` columns of `Â` — expressible as safe disjoint `&mut` chunks of the
//!   column-major buffer.
//! * **Row stripes** (`par_rows`): each worker owns a `b_d`-row stripe of
//!   `Â` across all columns. Stripes of a column-major matrix are not
//!   contiguous, so this driver uses a raw-pointer window with a manual
//!   disjointness argument (see `StripeWriter`).
//!
//! Because every checkpoint `(i, j)` regenerates the same entries of `S`
//! regardless of which thread asks, the parallel results are bit-identical
//! to the sequential ones — the determinism test below pins this down.
//!
//! Telemetry: each driver opens an obskit span, and every worker records
//! block-granularity counters (samples drawn, `set_state` seeks, FLOPs,
//! bytes touched) when telemetry is on. The counters live in thread-local
//! accumulators that parkit flushes into the global registry at each join
//! point, so the cost on the hot path is one relaxed atomic load per outer
//! block — nothing per nonzero.

use crate::alg1::OuterBlock;
use crate::config::SketchConfig;
use crate::obs;
use densekit::Matrix;
use rngkit::BlockSampler;
use sparsekit::{BlockedCsr, CscMatrix, Scalar};

/// Algorithm 3 parallelized over column panels of `Â` (the `j` loop).
pub fn sketch_alg3_par_cols<T, S>(a: &CscMatrix<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone + Send + Sync,
{
    let _sp = obskit::span("sketch/alg3_par_cols");
    let d = cfg.d;
    let mut ahat = Matrix::zeros(d, a.ncols());
    parkit::for_each_chunk_mut(ahat.as_mut_slice(), d * cfg.b_n, |p, panel| {
        let j0 = p * cfg.b_n;
        let n1 = panel.len() / d;
        let mut sampler = sampler.clone();
        let mut i = 0;
        while i < d {
            let d1 = cfg.b_d.min(d - i);
            let t0 = obs::block_timer();
            let mut nnz_b = 0usize;
            for kl in 0..n1 {
                let (rows, vals) = a.col(j0 + kl);
                nnz_b += rows.len();
                let out = &mut panel[kl * d + i..kl * d + i + d1];
                for (&j, &ajk) in rows.iter().zip(vals.iter()) {
                    sampler.set_state(i, j);
                    sampler.fill_axpy(ajk, out);
                }
            }
            if let Some(t0) = t0 {
                obs::block_done::<T>(
                    obs::BlockObs {
                        path: "sketch/alg3_par_cols/block",
                        i,
                        j: j0,
                        d1,
                        n1,
                        nnz: nnz_b,
                        rows_hit: None,
                    },
                    t0.elapsed().as_nanos() as u64,
                );
            }
            i += cfg.b_d;
        }
    });
    ahat
}

/// A window granting write access to one row stripe of a column-major
/// matrix.
///
/// # Safety argument
/// `par_rows` creates one `StripeWriter` per `b_d`-row stripe. Stripe `t`
/// touches only elements `col·d + i .. col·d + i + d1` with
/// `i = t·b_d`, `d1 ≤ b_d`, so element sets of distinct stripes are disjoint
/// for every column. No two workers ever alias the same element, and the
/// parent borrow outlives the scope — the standard tiled-output pattern.
struct StripeWriter<T> {
    base: *mut T,
    d: usize,
    i: usize,
    d1: usize,
}

unsafe impl<T: Send> Send for StripeWriter<T> {}

impl<T: Scalar> StripeWriter<T> {
    /// The `d1` contiguous elements of column `col` inside this stripe.
    #[inline(always)]
    fn col_segment(&mut self, col: usize) -> &mut [T] {
        // SAFETY: see the type-level disjointness argument; `col·d + i + d1`
        // stays within the allocation because callers construct stripes from
        // the owning matrix's dimensions.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(col * self.d + self.i), self.d1) }
    }
}

/// Algorithm 3 parallelized over row stripes of `Â` (the `i` loop).
pub fn sketch_alg3_par_rows<T, S>(a: &CscMatrix<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone + Send + Sync,
{
    let _sp = obskit::span("sketch/alg3_par_rows");
    let d = cfg.d;
    let n = a.ncols();
    let mut ahat = Matrix::zeros(d, n);
    let base = ahat.as_mut_slice().as_mut_ptr();

    let stripes: Vec<StripeWriter<T>> = (0..d)
        .step_by(cfg.b_d)
        .map(|i| StripeWriter {
            base,
            d,
            i,
            d1: cfg.b_d.min(d - i),
        })
        .collect();

    parkit::for_each(stripes, |mut stripe| {
        let mut sampler = sampler.clone();
        let (i, d1) = (stripe.i, stripe.d1);
        // Keep Algorithm 1's column-block-outermost order inside the stripe.
        let mut j = 0;
        while j < n {
            let n1 = cfg.b_n.min(n - j);
            let t0 = obs::block_timer();
            let mut nnz_b = 0usize;
            for k in j..j + n1 {
                let (rows, vals) = a.col(k);
                nnz_b += rows.len();
                let out = stripe.col_segment(k);
                for (&jj, &ajk) in rows.iter().zip(vals.iter()) {
                    sampler.set_state(i, jj);
                    sampler.fill_axpy(ajk, out);
                }
            }
            if let Some(t0) = t0 {
                obs::block_done::<T>(
                    obs::BlockObs {
                        path: "sketch/alg3_par_rows/block",
                        i,
                        j,
                        d1,
                        n1,
                        nnz: nnz_b,
                        rows_hit: None,
                    },
                    t0.elapsed().as_nanos() as u64,
                );
            }
            j += cfg.b_n;
        }
    });
    ahat
}

/// Algorithm 4 parallelized over row stripes of `Â` (the `i` loop).
pub fn sketch_alg4_par_rows<T, S>(a: &BlockedCsr<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone + Send + Sync,
{
    let _sp = obskit::span("sketch/alg4_par_rows");
    let d = cfg.d;
    let n = a.ncols();
    let mut ahat = Matrix::zeros(d, n);
    let base = ahat.as_mut_slice().as_mut_ptr();

    let stripes: Vec<StripeWriter<T>> = (0..d)
        .step_by(cfg.b_d)
        .map(|i| StripeWriter {
            base,
            d,
            i,
            d1: cfg.b_d.min(d - i),
        })
        .collect();

    parkit::for_each(stripes, |mut stripe| {
        let mut sampler = sampler.clone();
        let mut v = vec![T::ZERO; stripe.d1];
        let (i, d1) = (stripe.i, stripe.d1);
        for b in 0..a.nblocks() {
            let csr = a.block(b);
            let j0 = a.block_col_offset(b);
            let t0 = obs::block_timer();
            let mut rows_hit = 0usize;
            for j in 0..csr.nrows() {
                let (cols, vals) = csr.row(j);
                if cols.is_empty() {
                    continue;
                }
                rows_hit += 1;
                sampler.set_state(i, j);
                sampler.fill(&mut v[..d1]);
                for (&kl, &ajk) in cols.iter().zip(vals.iter()) {
                    let out = stripe.col_segment(j0 + kl);
                    for (o, &s) in out.iter_mut().zip(v.iter()) {
                        *o = ajk.mul_add(s, *o);
                    }
                }
            }
            if let Some(t0) = t0 {
                obs::block_done::<T>(
                    obs::BlockObs {
                        path: "sketch/alg4_par_rows/block",
                        i,
                        j: j0,
                        d1,
                        n1: csr.ncols(),
                        nnz: csr.nnz(),
                        rows_hit: Some(rows_hit),
                    },
                    t0.elapsed().as_nanos() as u64,
                );
            }
        }
    });
    ahat
}

/// Algorithm 4 parallelized over vertical blocks (column panels).
pub fn sketch_alg4_par_cols<T, S>(a: &BlockedCsr<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone + Send + Sync,
{
    let _sp = obskit::span("sketch/alg4_par_cols");
    let d = cfg.d;
    let bw = a.block_width();
    let mut ahat = Matrix::zeros(d, a.ncols());
    parkit::for_each_chunk_mut(ahat.as_mut_slice(), d * bw, |b, panel| {
        let csr = a.block(b);
        let mut sampler = sampler.clone();
        let mut v = vec![T::ZERO; cfg.b_d.min(d)];
        let mut i = 0;
        while i < d {
            let d1 = cfg.b_d.min(d - i);
            let vv = &mut v[..d1];
            let t0 = obs::block_timer();
            let mut rows_hit = 0usize;
            for j in 0..csr.nrows() {
                let (cols, vals) = csr.row(j);
                if cols.is_empty() {
                    continue;
                }
                rows_hit += 1;
                sampler.set_state(i, j);
                sampler.fill(vv);
                for (&kl, &ajk) in cols.iter().zip(vals.iter()) {
                    let out = &mut panel[kl * d + i..kl * d + i + d1];
                    for (o, &s) in out.iter_mut().zip(vv.iter()) {
                        *o = ajk.mul_add(s, *o);
                    }
                }
            }
            if let Some(t0) = t0 {
                obs::block_done::<T>(
                    obs::BlockObs {
                        path: "sketch/alg4_par_cols/block",
                        i,
                        j: a.block_col_offset(b),
                        d1,
                        n1: panel.len() / d,
                        nnz: csr.nnz(),
                        rows_hit: Some(rows_hit),
                    },
                    t0.elapsed().as_nanos() as u64,
                );
            }
            i += cfg.b_d;
        }
    });
    ahat
}

/// Run `f` with the worker count capped at `threads` — the Table VII
/// thread-sweep helper (delegates to [`parkit::with_threads`]).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    parkit::with_threads(threads, f)
}

// Re-exported for the drivers' shared block type.
#[allow(unused_imports)]
pub(crate) use crate::alg1::blocks as outer_blocks;
#[allow(dead_code)]
fn _type_check(_: OuterBlock) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg3::sketch_alg3;
    use crate::alg4::sketch_alg4;
    use rngkit::{CheckpointRng, UnitUniform, Xoshiro256PlusPlus};

    type Rng = CheckpointRng<Xoshiro256PlusPlus>;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            let r = (next() % m as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push(r, c, (next() % 1000) as f64 / 500.0 - 1.0 + 0.0005)
                .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn par_cols_bit_identical_to_sequential() {
        let a = random_csc(60, 40, 300, 1);
        let cfg = SketchConfig::new(33, 9, 7, 5);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let seq = sketch_alg3(&a, &cfg, &sampler);
        let par = sketch_alg3_par_cols(&a, &cfg, &sampler);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_rows_bit_identical_to_sequential() {
        let a = random_csc(60, 40, 300, 2);
        let cfg = SketchConfig::new(33, 9, 7, 6);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let seq = sketch_alg3(&a, &cfg, &sampler);
        let par = sketch_alg3_par_rows(&a, &cfg, &sampler);
        assert_eq!(seq, par);
    }

    #[test]
    fn alg4_parallel_variants_match() {
        let a = random_csc(50, 30, 250, 3);
        let cfg = SketchConfig::new(21, 8, 6, 7);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let seq = sketch_alg4(&blocked, &cfg, &sampler);
        let pr = sketch_alg4_par_rows(&blocked, &cfg, &sampler);
        let pc = sketch_alg4_par_cols(&blocked, &cfg, &sampler);
        assert_eq!(seq, pr);
        assert_eq!(seq, pc);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let a = random_csc(40, 30, 200, 4);
        let cfg = SketchConfig::new(24, 6, 5, 9);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let base = with_threads(1, || sketch_alg3_par_rows(&a, &cfg, &sampler));
        for t in [2, 4] {
            let out = with_threads(t, || sketch_alg3_par_rows(&a, &cfg, &sampler));
            assert_eq!(base, out, "thread count {t} changed the sketch");
        }
    }

    #[test]
    fn ragged_edges_handled() {
        // d and n not divisible by block sizes.
        let a = random_csc(35, 23, 150, 8);
        let cfg = SketchConfig::new(29, 10, 9, 3);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let seq = sketch_alg3(&a, &cfg, &sampler);
        assert_eq!(seq, sketch_alg3_par_cols(&a, &cfg, &sampler));
        assert_eq!(seq, sketch_alg3_par_rows(&a, &cfg, &sampler));
    }
}
