//! The six loop-order variants of the toy compute kernel (paper §II-B).
//!
//! `G = L·R` with `L` dense (`d₁×m₁`) and `R` sparse (`m₁×n₁`). The paper
//! enumerates all orderings of the `(i, j, k)` loops — `i` over rows of `L`,
//! `j` over the inner dimension, `k` over columns of `R` — and rules out:
//!
//! * `ikj`/`kij` — need *non-contiguous* random generation (only the entries
//!   of `ℓ̂ᵢ` matching nonzeros of `r_k` are required), which defeats
//!   vectorized RNG;
//! * `ijk` — sums rows of `R`, inefficient in any sparse format;
//! * `jik` — updates `G` row-wise at positions dictated by sparse rows of
//!   `R`, non-contiguous on a column-major `G`.
//!
//! Leaving `kji` (→ Algorithm 3) and `jki` (→ Algorithm 4). All six are
//! implemented literally here, with an explicit `L`, as executable
//! documentation; the equivalence tests pin down that the production kernels
//! compute the same product, and the `loop_order` bench measures the gaps the
//! paper argues from.

use densekit::Matrix;
use sparsekit::{CscMatrix, CsrMatrix, Scalar};

/// `ikj`: for each row of `L`, for each inner index, update row `i` of `G`
/// at the nonzero columns of row `j` of `R`. Needs `R` in CSR.
pub fn variant_ikj<T: Scalar>(l: &Matrix<T>, r: &CsrMatrix<T>) -> Matrix<T> {
    let (d1, m1, n1) = shape(l, r.nrows(), r.ncols());
    let mut g = Matrix::zeros(d1, n1);
    for i in 0..d1 {
        for j in 0..m1 {
            let lij = l[(i, j)];
            let (cols, vals) = r.row(j);
            for (&k, &rjk) in cols.iter().zip(vals.iter()) {
                g[(i, k)] = lij.mul_add(rjk, g[(i, k)]);
            }
        }
    }
    g
}

/// `kij`: for each column of `R`, for each row of `L`, dot the needed
/// entries. Column-major streaming through `G`.
pub fn variant_kij<T: Scalar>(l: &Matrix<T>, r: &CscMatrix<T>) -> Matrix<T> {
    let (d1, _m1, n1) = shape(l, r.nrows(), r.ncols());
    let mut g = Matrix::zeros(d1, n1);
    for k in 0..n1 {
        let (rows, vals) = r.col(k);
        for i in 0..d1 {
            let mut acc = T::ZERO;
            for (&j, &rjk) in rows.iter().zip(vals.iter()) {
                acc = l[(i, j)].mul_add(rjk, acc);
            }
            g[(i, k)] = acc;
        }
    }
    g
}

/// `ijk`: for each row of `L`, accumulate scaled *rows* of `R` — the variant
/// the paper rules out as inefficient in every sparse format.
pub fn variant_ijk<T: Scalar>(l: &Matrix<T>, r: &CsrMatrix<T>) -> Matrix<T> {
    let (d1, m1, n1) = shape(l, r.nrows(), r.ncols());
    let mut g = Matrix::zeros(d1, n1);
    let mut row_acc = vec![T::ZERO; n1];
    for i in 0..d1 {
        row_acc.fill(T::ZERO);
        for j in 0..m1 {
            let lij = l[(i, j)];
            let (cols, vals) = r.row(j);
            for (&k, &rjk) in cols.iter().zip(vals.iter()) {
                row_acc[k] = lij.mul_add(rjk, row_acc[k]);
            }
        }
        for (k, &acc) in row_acc.iter().enumerate() {
            g[(i, k)] = acc;
        }
    }
    g
}

/// `jik`: rank-1 updates `ℓ_j·r̂_j`, applying each update in row-major order
/// over `G` — non-contiguous column jumps per row.
pub fn variant_jik<T: Scalar>(l: &Matrix<T>, r: &CsrMatrix<T>) -> Matrix<T> {
    let (d1, m1, n1) = shape(l, r.nrows(), r.ncols());
    let mut g = Matrix::zeros(d1, n1);
    for j in 0..m1 {
        let (cols, vals) = r.row(j);
        if cols.is_empty() {
            continue;
        }
        let lcol = l.col(j);
        for i in 0..d1 {
            let lij = lcol[i];
            for (&k, &rjk) in cols.iter().zip(vals.iter()) {
                g[(i, k)] = lij.mul_add(rjk, g[(i, k)]);
            }
        }
    }
    g
}

/// `jki`: rank-1 updates `ℓ_j·r̂_j`, column-major over `G` — the structure of
/// Algorithm 4.
pub fn variant_jki<T: Scalar>(l: &Matrix<T>, r: &CsrMatrix<T>) -> Matrix<T> {
    let (d1, m1, n1) = shape(l, r.nrows(), r.ncols());
    let mut g = Matrix::zeros(d1, n1);
    for j in 0..m1 {
        let (cols, vals) = r.row(j);
        if cols.is_empty() {
            continue;
        }
        let lcol = l.col(j);
        for (&k, &rjk) in cols.iter().zip(vals.iter()) {
            let gcol = g.col_mut(k);
            for (gi, &li) in gcol.iter_mut().zip(lcol.iter()) {
                *gi = li.mul_add(rjk, *gi);
            }
        }
    }
    g
}

/// `kji`: for each column of `R`, linear-combine columns of `L` — the
/// structure of Algorithm 3.
pub fn variant_kji<T: Scalar>(l: &Matrix<T>, r: &CscMatrix<T>) -> Matrix<T> {
    let (d1, _m1, n1) = shape(l, r.nrows(), r.ncols());
    let mut g = Matrix::zeros(d1, n1);
    for k in 0..n1 {
        let (rows, vals) = r.col(k);
        let gcol = g.col_mut(k);
        for (&j, &rjk) in rows.iter().zip(vals.iter()) {
            let lcol = l.col(j);
            for (gi, &li) in gcol.iter_mut().zip(lcol.iter()) {
                *gi = li.mul_add(rjk, *gi);
            }
        }
    }
    g
}

fn shape<T: Scalar>(l: &Matrix<T>, r_rows: usize, r_cols: usize) -> (usize, usize, usize) {
    assert_eq!(l.ncols(), r_rows, "inner dimension mismatch");
    (l.nrows(), r_rows, r_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::CooMatrix;

    fn setup(seed: u64) -> (Matrix<f64>, CscMatrix<f64>, CsrMatrix<f64>) {
        let (d1, m1, n1) = (13, 17, 11);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let l = Matrix::from_fn(d1, m1, |_, _| next());
        let mut coo = CooMatrix::new(m1, n1);
        for j in 0..m1 {
            for k in 0..n1 {
                if next() > 0.2 {
                    continue; // ~70% sparse
                }
                coo.push(j, k, next()).unwrap();
            }
        }
        let csc = coo.to_csc().unwrap();
        let csr = csc.to_csr();
        (l, csc, csr)
    }

    #[test]
    fn all_six_variants_agree() {
        let (l, csc, csr) = setup(3);
        let reference = variant_kji(&l, &csc);
        let others = [
            ("ikj", variant_ikj(&l, &csr)),
            ("kij", variant_kij(&l, &csc)),
            ("ijk", variant_ijk(&l, &csr)),
            ("jik", variant_jik(&l, &csr)),
            ("jki", variant_jki(&l, &csr)),
        ];
        for (name, g) in others {
            assert!(
                g.diff_norm(&reference) < 1e-12 * reference.fro_norm().max(1.0),
                "variant {name} disagrees"
            );
        }
    }

    #[test]
    fn agree_with_dense_gemm() {
        let (l, csc, _) = setup(9);
        let r_dense = Matrix::from_fn(csc.nrows(), csc.ncols(), |i, j| csc.get(i, j));
        let expect = densekit::gemm::gemm_reference(&l, &r_dense);
        let got = variant_kji(&l, &csc);
        assert!(got.diff_norm(&expect) < 1e-12 * expect.fro_norm().max(1.0));
    }

    #[test]
    fn empty_sparse_operand() {
        let l = Matrix::<f64>::zeros(4, 6);
        let csc = CscMatrix::<f64>::zeros(6, 5);
        let csr = csc.to_csr();
        for g in [
            variant_ikj(&l, &csr),
            variant_kij(&l, &csc),
            variant_ijk(&l, &csr),
            variant_jik(&l, &csr),
            variant_jki(&l, &csr),
            variant_kji(&l, &csc),
        ] {
            assert!(g.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn dimension_mismatch_panics() {
        let l = Matrix::<f64>::zeros(2, 3);
        let r = CscMatrix::<f64>::zeros(4, 2);
        let _ = variant_kji(&l, &r);
    }
}
