//! Timing instrumentation: the sample-time vs total-time split of paper
//! Tables III and V.
//!
//! The instrumented drivers time every `fill` call with `Instant`, exactly
//! as the paper's Julia implementation wrapped its RNG calls — and inherit
//! the same caveat: "the total times are slightly higher than those reported
//! [without instrumentation] since the timer creates additional overhead".
//!
//! Since the obskit refactor the drivers no longer keep their own tallies:
//! they record into an [`obskit::LocalSpans`] accumulator (always on — the
//! caller asked for a timing by calling the `_instrumented` entry point) and
//! [`SketchTiming`] is a *view* over those spans. When the global telemetry
//! gate is on, the same spans and counters are also published to the obskit
//! registry, so instrumented runs show up in JSONL exports for free.

use crate::config::SketchConfig;
use densekit::Matrix;
use obskit::{Ctr, LocalSpans};
use rngkit::BlockSampler;
use sparsekit::{BlockedCsr, CscMatrix, Scalar};
use std::time::Instant;

/// Span path for the whole instrumented Algorithm 3 run.
pub const SPAN_ALG3: &str = "sketch/alg3_instrumented";
/// Span path for Algorithm 3's sample (RNG) time.
pub const SPAN_ALG3_SAMPLE: &str = "sketch/alg3_instrumented/sample";
/// Span path for the whole instrumented Algorithm 4 run.
pub const SPAN_ALG4: &str = "sketch/alg4_instrumented";
/// Span path for Algorithm 4's sample (RNG) time.
pub const SPAN_ALG4_SAMPLE: &str = "sketch/alg4_instrumented/sample";

/// Timing breakdown of one sketch computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SketchTiming {
    /// Wall-clock total, seconds.
    pub total_s: f64,
    /// Time spent inside the sampler's `fill` (random generation), seconds.
    pub sample_s: f64,
    /// Number of samples drawn.
    pub samples: u64,
    /// Number of `set_state` checkpoint seeks performed.
    pub seeks: u64,
}

impl SketchTiming {
    /// Compute time excluding generation.
    pub fn compute_s(&self) -> f64 {
        (self.total_s - self.sample_s).max(0.0)
    }

    /// View a [`LocalSpans`] accumulator as a timing breakdown: `total` and
    /// `sample` name the span paths holding the wall-clock and RNG time.
    pub fn from_spans(spans: &LocalSpans, total: &str, sample: &str) -> Self {
        Self {
            total_s: spans.secs(total),
            sample_s: spans.secs(sample),
            samples: spans.counter(Ctr::Samples),
            seeks: spans.counter(Ctr::Seeks),
        }
    }
}

/// Algorithm 3 with per-fill timing. Returns the sketch and the breakdown.
pub fn sketch_alg3_instrumented<T, S>(
    a: &CscMatrix<T>,
    cfg: &SketchConfig,
    sampler: &S,
) -> (Matrix<T>, SketchTiming)
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    let t0 = Instant::now();
    let mut sampler = sampler.clone();
    let mut ahat = Matrix::zeros(cfg.d, a.ncols());
    let mut v = vec![T::ZERO; cfg.b_d.min(cfg.d)];
    let mut spans = LocalSpans::new();

    let n = a.ncols();
    let mut j = 0;
    while j < n {
        let n1 = cfg.b_n.min(n - j);
        let mut i = 0;
        while i < cfg.d {
            let d1 = cfg.b_d.min(cfg.d - i);
            let vv = &mut v[..d1];
            for k in j..j + n1 {
                let (rows, vals) = a.col(k);
                let out = &mut ahat.col_mut(k)[i..i + d1];
                for (&jj, &ajk) in rows.iter().zip(vals.iter()) {
                    let ts = Instant::now();
                    sampler.set_state(i, jj);
                    sampler.fill(vv);
                    spans.add_ns(SPAN_ALG3_SAMPLE, ts.elapsed().as_nanos() as u64);
                    spans.count(Ctr::Samples, d1 as u64);
                    spans.count(Ctr::Seeks, 1);
                    for (o, &s) in out.iter_mut().zip(vv.iter()) {
                        *o = ajk.mul_add(s, *o);
                    }
                }
            }
            i += cfg.b_d;
        }
        j += cfg.b_n;
    }
    spans.add_ns(SPAN_ALG3, t0.elapsed().as_nanos() as u64);
    spans.publish();
    let timing = SketchTiming::from_spans(&spans, SPAN_ALG3, SPAN_ALG3_SAMPLE);
    (ahat, timing)
}

/// Algorithm 4 with per-fill timing.
pub fn sketch_alg4_instrumented<T, S>(
    a: &BlockedCsr<T>,
    cfg: &SketchConfig,
    sampler: &S,
) -> (Matrix<T>, SketchTiming)
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    let t0 = Instant::now();
    let mut sampler = sampler.clone();
    let mut ahat = Matrix::zeros(cfg.d, a.ncols());
    let mut v = vec![T::ZERO; cfg.b_d.min(cfg.d)];
    let mut spans = LocalSpans::new();

    for b in 0..a.nblocks() {
        let csr = a.block(b);
        let j0 = a.block_col_offset(b);
        let mut i = 0;
        while i < cfg.d {
            let d1 = cfg.b_d.min(cfg.d - i);
            let vv = &mut v[..d1];
            for j in 0..csr.nrows() {
                let (cols, vals) = csr.row(j);
                if cols.is_empty() {
                    continue;
                }
                let ts = Instant::now();
                sampler.set_state(i, j);
                sampler.fill(vv);
                spans.add_ns(SPAN_ALG4_SAMPLE, ts.elapsed().as_nanos() as u64);
                spans.count(Ctr::Samples, d1 as u64);
                spans.count(Ctr::Seeks, 1);
                for (&kl, &ajk) in cols.iter().zip(vals.iter()) {
                    let out = &mut ahat.col_mut(j0 + kl)[i..i + d1];
                    for (o, &s) in out.iter_mut().zip(vv.iter()) {
                        *o = ajk.mul_add(s, *o);
                    }
                }
            }
            i += cfg.b_d;
        }
    }
    spans.add_ns(SPAN_ALG4, t0.elapsed().as_nanos() as u64);
    spans.publish();
    let timing = SketchTiming::from_spans(&spans, SPAN_ALG4, SPAN_ALG4_SAMPLE);
    (ahat, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg3::sketch_alg3;
    use crate::alg4::sketch_alg4;
    use rngkit::{CheckpointRng, UnitUniform, Xoshiro256PlusPlus};

    type Rng = CheckpointRng<Xoshiro256PlusPlus>;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                (next() % 1000) as f64 / 500.0 - 0.9995,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn instrumented_alg3_matches_plain() {
        let a = random_csc(40, 25, 150, 1);
        let cfg = SketchConfig::new(20, 7, 6, 3);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let plain = sketch_alg3(&a, &cfg, &sampler);
        let (inst, t) = sketch_alg3_instrumented(&a, &cfg, &sampler);
        assert_eq!(plain, inst);
        assert!(t.total_s >= 0.0 && t.sample_s >= 0.0);
        assert!(t.sample_s <= t.total_s + 1e-9);
        // Alg 3 draws exactly d per nonzero (sum over blocks of d1 = d).
        assert_eq!(t.samples, crate::config::alg3_samples(cfg.d, a.nnz()));
        assert_eq!(t.seeks, a.nnz() as u64 * cfg.d_blocks() as u64);
    }

    #[test]
    fn instrumented_alg4_matches_plain_and_draws_fewer() {
        let a = random_csc(60, 30, 400, 2);
        let cfg = SketchConfig::new(24, 8, 10, 5);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let plain = sketch_alg4(&blocked, &cfg, &sampler);
        let (inst, t4) = sketch_alg4_instrumented(&blocked, &cfg, &sampler);
        assert_eq!(plain, inst);
        assert_eq!(
            t4.samples,
            crate::alg4::alg4_samples_actual(&blocked, cfg.d)
        );
        // With 400 nnz in 30 cols (avg row occupancy > 1 per block), Alg 4
        // must draw strictly fewer samples than Alg 3.
        let (_i3, t3) = sketch_alg3_instrumented(&a, &cfg, &sampler);
        assert!(
            t4.samples < t3.samples,
            "alg4 drew {} vs alg3 {}",
            t4.samples,
            t3.samples
        );
    }

    #[test]
    fn compute_time_nonnegative() {
        let t = SketchTiming {
            total_s: 1.0,
            sample_s: 1.5, // timer jitter can nominally exceed total
            samples: 0,
            seeks: 0,
        };
        assert_eq!(t.compute_s(), 0.0);
    }

    #[test]
    fn timing_is_a_view_over_local_spans() {
        let mut spans = LocalSpans::new();
        spans.add_ns(SPAN_ALG3, 3_000_000_000);
        spans.add_ns(SPAN_ALG3_SAMPLE, 1_000_000_000);
        spans.count(Ctr::Samples, 42);
        spans.count(Ctr::Seeks, 6);
        let t = SketchTiming::from_spans(&spans, SPAN_ALG3, SPAN_ALG3_SAMPLE);
        assert!((t.total_s - 3.0).abs() < 1e-12);
        assert!((t.sample_s - 1.0).abs() < 1e-12);
        assert!((t.compute_s() - 2.0).abs() < 1e-12);
        assert_eq!((t.samples, t.seeks), (42, 6));
    }
}
