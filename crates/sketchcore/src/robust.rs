//! Hardened sketch drivers: validated inputs, a memory-budget guard that
//! degrades block sizes instead of OOM-ing, fault-injectable sample
//! streams, and worker-panic containment.
//!
//! The plain drivers stay panic-on-misuse and zero-overhead; these wrappers
//! add, in order:
//!
//! 1. **Input validation** — full CSC invariant check plus NaN/Inf scan
//!    ([`sparsekit::CscMatrix::validate`]), so corrupted structure is a
//!    typed [`SketchError::InvalidInput`] rather than an out-of-bounds
//!    panic deep inside a kernel.
//! 2. **Memory budget** ([`plan_blocks`]) — the container gives us ~15 GB;
//!    `SKETCH_MEM_BUDGET` (bytes, default 12 GiB) caps the sketch's
//!    footprint. The dense output `d×n` is irreducible, but the per-thread
//!    working set scales with `b_d·b_n`, so the guard halves block sizes
//!    (recording each halving as the `budget.degraded_blocks` counter)
//!    until the plan fits, and only errors with
//!    [`SketchError::BudgetExceeded`] when the output alone cannot fit.
//! 3. **Fault sites** — `sketch/alloc` shrinks the apparent budget (forcing
//!    the degradation path), `sketch/nan_stream` poisons the regenerated
//!    sample stream through [`FaultSampler`], and `parkit/worker` (inside
//!    parkit) panics a worker. All are armed via `SKETCH_FAULTS`; disarmed
//!    they cost one relaxed load per *driver call*, never per nonzero —
//!    the fault wrapper is only installed when [`faultkit::armed`] is true.
//! 4. **Output scan** — the finished sketch is scanned for NaN/Inf
//!    ([`SketchError::NonFiniteSketch`]) so poisoned data cannot leak into
//!    a downstream factorization panic.

use crate::config::SketchConfig;
use crate::error::{panic_payload_to_string, SketchError};
use densekit::Matrix;
use rngkit::{BlockSampler, SampleCost};
use sparsekit::{CscMatrix, Scalar};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default memory budget when `SKETCH_MEM_BUDGET` is unset: 12 GiB,
/// leaving headroom below the 15 GB container limit.
pub const DEFAULT_MEM_BUDGET: u64 = 12 * (1 << 30);

/// Parse a byte size with an optional `K`/`M`/`G` suffix (powers of 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, shift) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 10),
        b'M' | b'm' => (&s[..s.len() - 1], 20),
        b'G' | b'g' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    num.trim().parse::<u64>().ok().map(|v| v << shift)
}

/// The active memory budget in bytes (`SKETCH_MEM_BUDGET`, else 12 GiB).
pub fn memory_budget_bytes() -> u64 {
    std::env::var("SKETCH_MEM_BUDGET")
        .ok()
        .and_then(|s| parse_bytes(&s))
        .unwrap_or(DEFAULT_MEM_BUDGET)
}

/// A budget-checked blocking plan: the configuration to actually run with,
/// plus how much degradation was applied to fit.
#[derive(Clone, Copy, Debug)]
pub struct BudgetPlan {
    /// The (possibly degraded) configuration to run.
    pub cfg: SketchConfig,
    /// Number of block-size halvings applied (also bumped onto the
    /// `budget.degraded_blocks` obskit counter).
    pub degraded: u32,
    /// Bytes the plan needs (output + per-thread working sets).
    pub need_bytes: u64,
    /// The budget the plan was fitted against.
    pub budget_bytes: u64,
}

/// Fit `cfg` to the memory budget for an `n`-column sketch of `T` scalars.
///
/// The model charges the dense output `d·n` plus one `b_d·b_n` panel
/// working set per worker thread. Block sizes are halved (largest first)
/// until the total fits; each halving bumps `budget.degraded_blocks`. If
/// the irreducible output alone exceeds the budget the plan fails with
/// [`SketchError::BudgetExceeded`].
///
/// The `sketch/alloc` fault site simulates allocation pressure by shrinking
/// the apparent budget to just above the output size, driving this exact
/// degradation path.
pub fn plan_blocks<T: Scalar>(cfg: &SketchConfig, n: usize) -> Result<BudgetPlan, SketchError> {
    let word = std::mem::size_of::<T>() as u64;
    let out_bytes = cfg.d as u64 * n as u64 * word;
    let threads = parkit::current_threads() as u64;
    let mut budget = memory_budget_bytes();
    if faultkit::fire("sketch/alloc") {
        // Simulated allocation failure: leave just enough beyond the output
        // for a b_n=1 working set, forcing the degradation path.
        budget = budget.min(out_bytes + threads * cfg.b_d as u64 * word + 1);
    }
    if out_bytes > budget {
        return Err(SketchError::BudgetExceeded {
            need_bytes: out_bytes,
            budget_bytes: budget,
        });
    }
    let (mut b_d, mut b_n) = (cfg.b_d, cfg.b_n);
    let mut degraded = 0u32;
    let working = |b_d: usize, b_n: usize| threads * (b_d as u64 * b_n as u64) * word;
    // Halve b_n first: the RNG checkpoints are addressed by (i / b_d, k), so
    // b_n does not enter the stream derivation and the degraded sketch is
    // bitwise identical. Shrinking b_d is the last resort — it re-realizes S
    // (the paper's reproducibility caveat), still a valid sketch.
    while out_bytes + working(b_d, b_n) > budget && (b_d > 1 || b_n > 1) {
        if b_n > 1 {
            b_n /= 2;
        } else {
            b_d /= 2;
        }
        degraded += 1;
    }
    if degraded > 0 {
        obskit::add(obskit::Ctr::BudgetDegradedBlocks, degraded as u64);
    }
    let need_bytes = out_bytes + working(b_d, b_n);
    if need_bytes > budget {
        return Err(SketchError::BudgetExceeded {
            need_bytes,
            budget_bytes: budget,
        });
    }
    Ok(BudgetPlan {
        cfg: SketchConfig::new(cfg.d, b_d, b_n, cfg.seed),
        degraded,
        need_bytes,
        budget_bytes: budget,
    })
}

/// A [`BlockSampler`] wrapper that poisons the regenerated sample stream
/// when the `sketch/nan_stream` fault site fires (once per fill call, i.e.
/// per regenerated column segment of `S`).
///
/// Only installed when [`faultkit::armed`] returns true, so the disarmed
/// hot path never pays the per-fill site lookup.
#[derive(Clone, Debug)]
pub struct FaultSampler<S> {
    inner: S,
}

impl<S> FaultSampler<S> {
    /// Wrap `inner`.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }
}

impl<T: Scalar, S: BlockSampler<T>> BlockSampler<T> for FaultSampler<S> {
    #[inline]
    fn set_state(&mut self, block_row: usize, col: usize) {
        self.inner.set_state(block_row, col);
    }

    fn fill(&mut self, out: &mut [T]) {
        self.inner.fill(out);
        if !out.is_empty() && faultkit::fire("sketch/nan_stream") {
            out[0] = T::from_f64(f64::NAN);
        }
    }

    fn fill_axpy(&mut self, coeff: T, out: &mut [T]) {
        self.inner.fill_axpy(coeff, out);
        if !out.is_empty() && faultkit::fire("sketch/nan_stream") {
            out[0] = T::from_f64(f64::NAN);
        }
    }

    fn cost(&self) -> SampleCost {
        self.inner.cost()
    }
}

/// Scan a finished sketch for non-finite entries.
fn check_output<T: Scalar>(ahat: &Matrix<T>) -> Result<(), SketchError> {
    for j in 0..ahat.ncols() {
        for (i, v) in ahat.col(j).iter().enumerate() {
            if !v.is_finite() {
                return Err(SketchError::NonFiniteSketch { row: i, col: j });
            }
        }
    }
    Ok(())
}

fn run_checked<T, F>(f: F) -> Result<Matrix<T>, SketchError>
where
    T: Scalar,
    F: FnOnce() -> Matrix<T>,
{
    // parkit re-raises worker panic payloads on the calling thread after
    // flushing telemetry; catching here turns them into typed errors.
    // AssertUnwindSafe: the closure only owns its operands; on Err nothing
    // it touched is observable.
    let ahat = catch_unwind(AssertUnwindSafe(f))
        .map_err(|p| SketchError::WorkerPanic(panic_payload_to_string(p.as_ref())))?;
    check_output(&ahat)?;
    Ok(ahat)
}

/// Hardened sequential Algorithm 3: validated input, budget-fitted blocks,
/// fault-injectable sample stream, scanned output.
pub fn try_sketch_alg3<T, S>(
    a: &CscMatrix<T>,
    cfg: &SketchConfig,
    sampler: &S,
) -> Result<Matrix<T>, SketchError>
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    a.validate()?;
    let plan = plan_blocks::<T>(cfg, a.ncols())?;
    if faultkit::armed() {
        let faulty = FaultSampler::new(sampler.clone());
        run_checked(|| crate::sketch_alg3(a, &plan.cfg, &faulty))
    } else {
        run_checked(|| crate::sketch_alg3(a, &plan.cfg, sampler))
    }
}

/// Hardened parallel Algorithm 3 (column-panel driver): everything
/// [`try_sketch_alg3`] does, plus containment of worker panics — a panic
/// inside a parkit worker (including the injected `parkit/worker` fault)
/// surfaces as [`SketchError::WorkerPanic`] with every thread's telemetry
/// flushed and trace span pairs balanced.
pub fn try_sketch_alg3_par_cols<T, S>(
    a: &CscMatrix<T>,
    cfg: &SketchConfig,
    sampler: &S,
) -> Result<Matrix<T>, SketchError>
where
    T: Scalar + Send + Sync,
    S: BlockSampler<T> + Clone + Send + Sync,
{
    a.validate()?;
    let plan = plan_blocks::<T>(cfg, a.ncols())?;
    if faultkit::armed() {
        let faulty = FaultSampler::new(sampler.clone());
        run_checked(|| crate::sketch_alg3_par_cols(a, &plan.cfg, &faulty))
    } else {
        run_checked(|| crate::sketch_alg3_par_cols(a, &plan.cfg, sampler))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::{FastRng, UnitUniform};
    use sparsekit::corrupt::{corrupt_csc, Corruption};

    fn small_input() -> CscMatrix<f64> {
        let mut coo = sparsekit::CooMatrix::new(40, 12);
        let mut s = 5u64;
        for j in 0..12 {
            for _ in 0..4 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i = (s >> 33) as usize % 40;
                let _ = coo.push(i, j, ((s >> 11) % 1000) as f64 / 500.0 - 1.0);
            }
        }
        coo.to_csc().expect("in-bounds by construction")
    }

    #[test]
    fn hardened_matches_plain_when_disarmed() {
        faultkit::clear();
        let a = small_input();
        let cfg = SketchConfig::new(24, 8, 4, 3);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
        let plain = crate::sketch_alg3(&a, &cfg, &sampler);
        let hardened = try_sketch_alg3(&a, &cfg, &sampler).expect("benign input");
        assert_eq!(plain, hardened);
        let par = try_sketch_alg3_par_cols(&a, &cfg, &sampler).expect("benign input");
        assert_eq!(plain, par);
    }

    #[test]
    fn corrupt_inputs_yield_typed_errors() {
        faultkit::clear();
        let a = small_input();
        let cfg = SketchConfig::new(24, 8, 4, 3);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
        for kind in Corruption::ALL {
            let Some(bad) = corrupt_csc(&a, kind, 1) else {
                continue;
            };
            match try_sketch_alg3(&bad, &cfg, &sampler) {
                Err(SketchError::InvalidInput(_)) => {}
                other => panic!("{kind:?}: expected InvalidInput, got {other:?}"),
            }
        }
    }

    // Fault-arming and budget-env tests live in tests/robust_faults.rs:
    // the faultkit plan and SKETCH_MEM_BUDGET are process-global, so they
    // need their own binary, away from this crate's concurrent unit tests.

    #[test]
    fn degraded_blocks_compute_the_same_sketch() {
        // b_n does not enter the checkpoint derivation (streams are keyed by
        // (i / b_d, k)), so b_n-only degradation is bitwise invariant.
        faultkit::clear();
        let a = small_input();
        let cfg = SketchConfig::new(24, 8, 4, 3);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
        let reference = crate::sketch_alg3(&a, &cfg, &sampler);
        let degraded_cfg = SketchConfig::new(24, 8, 1, 3);
        let degraded = crate::sketch_alg3(&a, &degraded_cfg, &sampler);
        assert_eq!(degraded, reference);
    }

    #[test]
    fn plentiful_budget_leaves_plan_untouched() {
        let cfg = SketchConfig::new(64, 32, 16, 1);
        let plan = plan_blocks::<f64>(&cfg, 100).expect("fits");
        assert_eq!(plan.degraded, 0);
        assert_eq!((plan.cfg.b_d, plan.cfg.b_n), (32, 16));
        assert!(plan.need_bytes <= plan.budget_bytes);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("4K"), Some(4096));
        assert_eq!(parse_bytes("2M"), Some(2 << 20));
        assert_eq!(parse_bytes("3G"), Some(3u64 << 30));
        assert_eq!(parse_bytes("3g"), Some(3u64 << 30));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
    }
}
