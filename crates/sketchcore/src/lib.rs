#![warn(missing_docs)]
//! # sketchcore — sketching SpMM with blocking and on-the-fly RNG
//!
//! This crate implements the primary contribution of Liang, Murray, Buluç &
//! Demmel (IPPS 2024): computing `Â = S·A` where `A ∈ R^{m×n}` is a tall
//! sparse matrix (CSC) and `S ∈ R^{d×m}` is an *implicit* iid random matrix
//! whose entries are regenerated on demand instead of being stored. Trading
//! memory traffic for recomputation raises the kernel's computational
//! intensity past the GEMM lower bound — by a factor of `√M` in the model of
//! paper §III-A (see [`model`]).
//!
//! Layout of the crate follows the paper:
//!
//! * [`config`] — blocking parameters `(b_d, b_n)`, sketch size `d = γ·n`,
//!   flop accounting.
//! * [`alg1`] — the outer blocking driver (paper Algorithm 1):
//!   `(⌈d/b_d⌉, 1, ⌈n/b_n⌉)`-blocking with the column loop outermost.
//! * [`alg3`] — compute kernel variant `kji` with RNG (paper Algorithm 3):
//!   consumes plain CSC, strided access to all three operands, regenerates a
//!   column of `S` per nonzero of `A`. Pattern-oblivious.
//! * [`alg4`] — compute kernel variant `jki` with RNG (paper Algorithm 4):
//!   consumes [`sparsekit::BlockedCsr`], regenerates a column of `S` once per
//!   *row* of each vertical block, reusing it across that row's nonzeros —
//!   fewer samples, less regular access.
//! * [`variants`] — all six `i/j/k` loop orderings of the toy kernel from
//!   paper §II-B, kept as executable documentation of the design-space
//!   argument (why `ikj`, `kij`, `ijk` and `jik` are ruled out).
//! * [`parallel`] — parkit parallelizations of Algorithm 1's two outer loops
//!   (paper §II-C): over column panels or over row stripes of `Â`.
//! * [`instrument`] — sample-time vs total-time split (paper Tables III/V),
//!   now a view over obskit spans.
//! * [`model`] — the roofline/computational-intensity model of §III-A, with
//!   the block-size optimizer of eq. (4) and the closed forms (5)–(7).
//! * [`obs`] — telemetry glue: block-granularity counters the kernels bump
//!   and the measured-vs-model traffic comparison ([`obs::TrafficReport`]).
//!
//! ## Quick example
//!
//! ```
//! use sketchcore::{SketchConfig, sketch_alg3};
//! use rngkit::{CheckpointRng, UnitUniform, Xoshiro256PlusPlus};
//! use sparsekit::CscMatrix;
//!
//! let a = CscMatrix::<f64>::identity(100);      // toy sparse input
//! let cfg = SketchConfig::new(300, 64, 32, 7);  // d=300, b_d=64, b_n=32, seed
//! let sampler = UnitUniform::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(cfg.seed));
//! let sketch = sketch_alg3(&a, &cfg, &sampler);
//! assert_eq!((sketch.nrows(), sketch.ncols()), (300, 100));
//! ```

pub mod alg1;
pub mod alg3;
pub mod alg4;
pub mod config;
pub mod error;
pub mod instrument;
pub mod model;
pub mod multi;
pub mod obs;
pub mod parallel;
pub mod pattern_model;
pub mod robust;
pub mod variants;

pub use alg3::{sketch_alg3, sketch_alg3_signs};
pub use alg4::{sketch_alg4, sketch_alg4_signs};
pub use config::{flops, SketchConfig};
pub use error::SketchError;
pub use instrument::{sketch_alg3_instrumented, sketch_alg4_instrumented, SketchTiming};
pub use model::{CostModel, ModelPrediction};
pub use multi::{sketch_alg3_multi, try_sketch_alg3_multi};
pub use obs::TrafficReport;
pub use parallel::{sketch_alg3_par_cols, sketch_alg3_par_rows, sketch_alg4_par_rows};
pub use pattern_model::{predict_kernels, profile_pattern, tune_b_n, KernelCosts, PatternProfile};
pub use robust::{
    plan_blocks, try_sketch_alg3, try_sketch_alg3_par_cols, BudgetPlan, FaultSampler,
};
