//! Algorithm 4 — compute kernel variant `jki` with on-the-fly RNG.
//!
//! Consumes the blocked-CSR structure: for each vertical block of `A` and
//! each nonempty *row* `j` of that block, the kernel regenerates the column
//! segment `S[i..i+d₁, j]` **once** and reuses it for every nonzero in the
//! row — a rank-1 update per row. Compared with Algorithm 3 this divides the
//! sample count by the average row occupancy, at the price of scattered
//! column updates into `Â` that follow the sparsity pattern (paper §II-B2).
//! On machines with forgiving prefetchers (the paper's Perlmutter case) the
//! saved generation time wins; on pattern `Abnormal_C` (dense columns) it
//! loses badly (Table VI).

use crate::alg1::OuterBlock;
use crate::config::SketchConfig;
use densekit::Matrix;
use rngkit::BlockSampler;
use sparsekit::{BlockedCsr, Scalar};

/// Compute `Â = S·A` with Algorithm 4 (sequential).
///
/// `a` must be the blocked-CSR form of the input whose block width plays the
/// role of `b_n` (the `cfg.b_n` field is ignored in favour of
/// `a.block_width()`, which fixes the checkpoint layout).
pub fn sketch_alg4<T, S>(a: &BlockedCsr<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    let _sp = obskit::span("sketch/alg4");
    let mut ahat = Matrix::zeros(cfg.d, a.ncols());
    let mut sampler = sampler.clone();
    let mut v = vec![T::ZERO; cfg.b_d.min(cfg.d)];
    for b in 0..a.nblocks() {
        let j0 = a.block_col_offset(b);
        let csr = a.block(b);
        let mut i = 0;
        while i < cfg.d {
            let d1 = cfg.b_d.min(cfg.d - i);
            let t0 = crate::obs::block_timer();
            kernel(
                &mut ahat,
                a,
                b,
                OuterBlock {
                    i,
                    d1,
                    j: j0,
                    n1: csr.ncols(),
                },
                &mut sampler,
                &mut v,
            );
            if let Some(t0) = t0 {
                let dur_ns = t0.elapsed().as_nanos() as u64;
                let rows_hit = (0..csr.nrows()).filter(|&j| csr.row_nnz(j) > 0).count();
                crate::obs::block_done::<T>(
                    crate::obs::BlockObs {
                        path: "sketch/alg4/block",
                        i,
                        j: j0,
                        d1,
                        n1: csr.ncols(),
                        nnz: csr.nnz(),
                        rows_hit: Some(rows_hit),
                    },
                    dur_ns,
                );
            }
            i += cfg.b_d;
        }
    }
    ahat
}

/// Algorithm 4's inner kernel on one (vertical block, d-block) pair
/// (exposed for the parallel drivers).
pub(crate) fn kernel<T, S>(
    ahat: &mut Matrix<T>,
    a: &BlockedCsr<T>,
    block: usize,
    b: OuterBlock,
    sampler: &mut S,
    v: &mut [T],
) where
    T: Scalar,
    S: BlockSampler<T>,
{
    let csr = a.block(block);
    let v = &mut v[..b.d1];
    for j in 0..csr.nrows() {
        let (cols, vals) = csr.row(j);
        if cols.is_empty() {
            // Zero row of the block: the corresponding column of S is never
            // generated — the sample saving the paper's §III-B counts.
            continue;
        }
        sampler.set_state(b.i, j);
        sampler.fill(v);
        for (&kl, &ajk) in cols.iter().zip(vals.iter()) {
            let out = &mut ahat.col_mut(b.j + kl)[b.i..b.i + b.d1];
            for (o, &s) in out.iter_mut().zip(v.iter()) {
                *o = ajk.mul_add(s, *o);
            }
        }
    }
}

/// ±1 `i8` sign variant of Algorithm 4 (Table IV's "(±1)" column).
pub fn sketch_alg4_signs<T, S>(a: &BlockedCsr<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<i8> + Clone,
{
    let _sp = obskit::span("sketch/alg4_signs");
    let mut ahat = Matrix::zeros(cfg.d, a.ncols());
    let mut sampler = sampler.clone();
    let mut v = vec![0i8; cfg.b_d.min(cfg.d)];
    for blk in 0..a.nblocks() {
        let csr = a.block(blk);
        let j0 = a.block_col_offset(blk);
        let mut i = 0;
        while i < cfg.d {
            let d1 = cfg.b_d.min(cfg.d - i);
            let vv = &mut v[..d1];
            let t0 = crate::obs::block_timer();
            for j in 0..csr.nrows() {
                let (cols, vals) = csr.row(j);
                if cols.is_empty() {
                    continue;
                }
                sampler.set_state(i, j);
                sampler.fill(vv);
                for (&kl, &ajk) in cols.iter().zip(vals.iter()) {
                    let out = &mut ahat.col_mut(j0 + kl)[i..i + d1];
                    for (o, &s) in out.iter_mut().zip(vv.iter()) {
                        *o += if s >= 0 { ajk } else { -ajk };
                    }
                }
            }
            if let Some(t0) = t0 {
                let dur_ns = t0.elapsed().as_nanos() as u64;
                let rows_hit = (0..csr.nrows()).filter(|&j| csr.row_nnz(j) > 0).count();
                crate::obs::block_done::<i8>(
                    crate::obs::BlockObs {
                        path: "sketch/alg4_signs/block",
                        i,
                        j: j0,
                        d1,
                        n1: csr.ncols(),
                        nnz: csr.nnz(),
                        rows_hit: Some(rows_hit),
                    },
                    dur_ns,
                );
            }
            i += cfg.b_d;
        }
    }
    ahat
}

/// Count the samples Algorithm 4 actually draws for `a` under `cfg`:
/// `d` per (nonempty row, vertical block) pair. Used in the §III-B
/// sample-count comparisons and the Table III/V "sample time" discussion.
pub fn alg4_samples_actual<T: Scalar>(a: &BlockedCsr<T>, d: usize) -> u64 {
    let mut nonempty: u64 = 0;
    for b in 0..a.nblocks() {
        let csr = a.block(b);
        for j in 0..csr.nrows() {
            if csr.row_nnz(j) > 0 {
                nonempty += 1;
            }
        }
    }
    nonempty * d as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg3::sketch_alg3;
    use rngkit::{CheckpointRng, Rademacher, UnitUniform, Xoshiro256PlusPlus};
    use sparsekit::CscMatrix;

    type Rng = CheckpointRng<Xoshiro256PlusPlus>;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            let r = (next() % m as u64) as usize;
            let c = (next() % n as u64) as usize;
            let v = (next() % 2000) as f64 / 1000.0 - 1.0;
            coo.push(r, c, v + 0.001).unwrap();
        }
        coo.to_csc().unwrap()
    }

    /// The paper's central consistency property: Algorithms 3 and 4 with the
    /// same seed and the same blocking compute the *same* sketch, because
    /// both regenerate `S[i..i+d₁, j]` from checkpoint `(i, j)`.
    #[test]
    fn alg4_matches_alg3_exactly() {
        let a = random_csc(50, 30, 200, 3);
        for (b_d, b_n) in [(8, 5), (30, 30), (1, 3), (64, 7)] {
            let cfg = SketchConfig::new(27, b_d, b_n, 77);
            let blocked = BlockedCsr::from_csc(&a, b_n);
            let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
            let x3 = sketch_alg3(&a, &cfg, &sampler);
            let x4 = sketch_alg4(&blocked, &cfg, &sampler);
            assert!(
                x3.diff_norm(&x4) < 1e-12 * x3.fro_norm().max(1.0),
                "alg3/alg4 disagree for blocking ({b_d},{b_n})"
            );
        }
    }

    #[test]
    fn signs_variant_matches_alg3_signs() {
        let a = random_csc(40, 20, 120, 5);
        let cfg = SketchConfig::new(18, 6, 4, 13);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
        let s3 = crate::alg3::sketch_alg3_signs(
            &a,
            &cfg,
            &Rademacher::<i8>::sampler(Rng::new(cfg.seed)),
        );
        let s4 = sketch_alg4_signs(
            &blocked,
            &cfg,
            &Rademacher::<i8>::sampler(Rng::new(cfg.seed)),
        );
        assert!(s3.diff_norm(&s4) < 1e-12 * s3.fro_norm().max(1.0));
    }

    #[test]
    fn sample_count_reflects_empty_rows() {
        // Matrix with only 3 nonempty rows out of 100: per vertical block
        // only those rows cost samples.
        let mut coo = sparsekit::CooMatrix::new(100, 20);
        for (r, c) in [(5, 0), (50, 10), (99, 19)] {
            coo.push(r, c, 1.0).unwrap();
        }
        let a = coo.to_csc().unwrap();
        let blocked = BlockedCsr::from_csc(&a, 10); // 2 blocks
                                                    // Rows 5 and 99... block 0 holds col 0 (row 5), block 1 holds cols
                                                    // 10,19 (rows 50,99) → 3 nonempty (row, block) pairs.
        assert_eq!(alg4_samples_actual(&blocked, 7), 3 * 7);
        // Versus Algorithm 3's d·nnz = 3·7 here (same: one nnz per row).
        // Add a second nonzero in row 5's block → alg3 pays, alg4 doesn't.
        let mut coo2 = sparsekit::CooMatrix::new(100, 20);
        for (r, c) in [(5, 0), (5, 3), (50, 10), (99, 19)] {
            coo2.push(r, c, 1.0).unwrap();
        }
        let a2 = coo2.to_csc().unwrap();
        let blocked2 = BlockedCsr::from_csc(&a2, 10);
        assert_eq!(alg4_samples_actual(&blocked2, 7), 3 * 7);
        assert_eq!(crate::config::alg3_samples(7, a2.nnz()), 4 * 7);
    }

    #[test]
    fn empty_input() {
        let a = CscMatrix::<f64>::zeros(10, 6);
        let blocked = BlockedCsr::from_csc(&a, 3);
        let cfg = SketchConfig::new(5, 2, 3, 0);
        let out = sketch_alg4(&blocked, &cfg, &UnitUniform::<f64>::sampler(Rng::new(0)));
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(alg4_samples_actual(&blocked, 5), 0);
    }

    #[test]
    fn block_width_one_equals_alg3_sample_count() {
        // With b_n = 1, every (nonempty row, block) pair is exactly one
        // nonzero → Algorithm 4 degenerates to Algorithm 3's sample count.
        let a = random_csc(30, 15, 60, 9);
        let blocked = BlockedCsr::from_csc(&a, 1);
        assert_eq!(
            alg4_samples_actual(&blocked, 11),
            crate::config::alg3_samples(11, a.nnz())
        );
    }
}
