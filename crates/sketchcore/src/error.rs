//! Typed failures of the sketching layer.
//!
//! The plain drivers ([`crate::sketch_alg3`] & friends) keep their
//! panic-on-misuse contract for the benchmarks; the hardened entry points
//! in [`crate::robust`] surface every failure as a [`SketchError`] instead,
//! so the SAP self-healing loop (lstsq) can distinguish transient faults
//! (retry) from structural ones (report).

use sparsekit::SparseError;

/// Why a hardened sketch computation failed.
#[derive(Debug)]
pub enum SketchError {
    /// The sparse input violates a CSC/CSR invariant or carries NaN/Inf.
    InvalidInput(SparseError),
    /// Operand shapes disagree.
    DimensionMismatch {
        /// What was being matched (e.g. `"rhs length"`).
        what: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        got: usize,
    },
    /// The computed sketch contains a non-finite entry (overflow in the
    /// accumulation, or an injected `sketch/nan_stream` fault).
    NonFiniteSketch {
        /// Row of the first offending entry of `Â`.
        row: usize,
        /// Column of the first offending entry of `Â`.
        col: usize,
    },
    /// Even maximally degraded block sizes cannot fit the memory budget:
    /// the output itself is too large.
    BudgetExceeded {
        /// Bytes the computation needs at minimum.
        need_bytes: u64,
        /// The configured budget (`SKETCH_MEM_BUDGET`).
        budget_bytes: u64,
    },
    /// A parallel worker panicked; the payload was caught and stringified,
    /// thread-local telemetry was flushed before the unwind left parkit.
    WorkerPanic(String),
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::InvalidInput(e) => write!(f, "invalid sparse input: {e}"),
            SketchError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch: {what} expected {expected}, got {got}"
            ),
            SketchError::NonFiniteSketch { row, col } => {
                write!(f, "sketch entry ({row}, {col}) is not finite")
            }
            SketchError::BudgetExceeded {
                need_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: need {need_bytes} bytes, budget {budget_bytes} \
                 (SKETCH_MEM_BUDGET)"
            ),
            SketchError::WorkerPanic(msg) => write!(f, "parallel worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for SketchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SketchError::InvalidInput(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for SketchError {
    fn from(e: SparseError) -> Self {
        SketchError::InvalidInput(e)
    }
}

/// Render a caught panic payload for [`SketchError::WorkerPanic`].
pub fn panic_payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
