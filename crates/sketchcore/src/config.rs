//! Sketch configuration: sketch size, blocking parameters, flop accounting.

/// Parameters of a sketching SpMM run.
///
/// `d` is the number of rows of the implicit `S` (the paper uses `d = γ·n`
/// with `γ = 3` for SpMM benchmarks and `γ = 2` for least squares); `b_d` and
/// `b_n` are Algorithm 1's block sizes along the `d` and `n` dimensions. The
/// inner (`m`) dimension is never blocked (paper §II-A: CSC gives few caching
/// opportunities there and it is harder to parallelize over).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchConfig {
    /// Sketch size: number of rows of `S` and `Â`.
    pub d: usize,
    /// Block size along the `d` dimension.
    pub b_d: usize,
    /// Block size along the `n` dimension.
    pub b_n: usize,
    /// Master seed defining the random matrix `S`.
    pub seed: u64,
}

impl SketchConfig {
    /// Create a configuration; block sizes are clamped to at least 1.
    pub fn new(d: usize, b_d: usize, b_n: usize, seed: u64) -> Self {
        assert!(d > 0, "sketch size must be positive");
        Self {
            d,
            b_d: b_d.max(1),
            b_n: b_n.max(1),
            seed,
        }
    }

    /// The paper's Frontera SpMM setting: `b_n = 500`, `b_d = 3000`.
    pub fn frontera(d: usize, seed: u64) -> Self {
        Self::new(d, 3000, 500, seed)
    }

    /// The paper's Perlmutter SpMM setting: `b_n = 1200`, `b_d = 3000`.
    pub fn perlmutter(d: usize, seed: u64) -> Self {
        Self::new(d, 3000, 1200, seed)
    }

    /// Sketch size for a given `n` and oversampling factor γ (`d = γ·n`).
    pub fn gamma(n: usize, gamma: usize, b_d: usize, b_n: usize, seed: u64) -> Self {
        Self::new(gamma * n, b_d, b_n, seed)
    }

    /// Number of `d`-blocks for this configuration.
    pub fn d_blocks(&self) -> usize {
        self.d.div_ceil(self.b_d)
    }

    /// Number of `n`-blocks for a matrix with `n` columns.
    pub fn n_blocks(&self, n: usize) -> usize {
        n.div_ceil(self.b_n).max(1)
    }
}

/// Useful flop count of the sketch `S·A`: one multiply-add per (row of `S`,
/// nonzero of `A`) pair. This is the convention behind the paper's GFlops
/// numbers in Table VII.
pub fn flops(d: usize, nnz: usize) -> u64 {
    2 * d as u64 * nnz as u64
}

/// Random samples Algorithm 3 draws: `d` per nonzero of `A` (paper §III-B:
/// "it will always generate d × nnz(A) random numbers").
pub fn alg3_samples(d: usize, nnz: usize) -> u64 {
    d as u64 * nnz as u64
}

/// Worst-case samples Algorithm 4 draws: `d` per (nonempty row, vertical
/// block) pair, bounded by `⌈n/b_n⌉·m·d` (paper §III-B).
pub fn alg4_samples_worst(d: usize, m: usize, n: usize, b_n: usize) -> u64 {
    n.div_ceil(b_n).max(1) as u64 * m as u64 * d as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts() {
        let cfg = SketchConfig::new(100, 30, 7, 0);
        assert_eq!(cfg.d_blocks(), 4);
        assert_eq!(cfg.n_blocks(20), 3);
        assert_eq!(cfg.n_blocks(21), 3);
        assert_eq!(cfg.n_blocks(22), 4);
        assert_eq!(cfg.n_blocks(0), 1);
    }

    #[test]
    fn presets_match_paper() {
        let f = SketchConfig::frontera(300, 1);
        assert_eq!((f.b_n, f.b_d), (500, 3000));
        let p = SketchConfig::perlmutter(300, 1);
        assert_eq!((p.b_n, p.b_d), (1200, 3000));
    }

    #[test]
    fn gamma_scaling() {
        let cfg = SketchConfig::gamma(1000, 3, 100, 50, 2);
        assert_eq!(cfg.d, 3000);
    }

    #[test]
    fn zero_block_sizes_clamped() {
        let cfg = SketchConfig::new(10, 0, 0, 0);
        assert_eq!((cfg.b_d, cfg.b_n), (1, 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sketch_size_rejected() {
        let _ = SketchConfig::new(0, 1, 1, 0);
    }

    #[test]
    fn flop_and_sample_accounting() {
        assert_eq!(flops(10, 100), 2000);
        assert_eq!(alg3_samples(10, 100), 1000);
        // 2 blocks of columns, all m rows, d samples each.
        assert_eq!(alg4_samples_worst(10, 50, 20, 10), 2 * 50 * 10);
        // Alg 4 never draws more than Alg 3 when the matrix is fully dense:
        // nnz = m*n, blocks = n/b_n → alg4 = alg3 / b_n.
        assert!(alg4_samples_worst(10, 50, 20, 10) < alg3_samples(10, 50 * 20));
    }
}
