//! Multi-seed batched sketching: one blocked pass through `A` serving `k`
//! independent sketch requests.
//!
//! The serving layer's headline amortization (see the `sketchd` crate): the
//! sparse operand `A` is fixed and resident, while each request only differs
//! in the seed defining its implicit random matrix `S`. A batch of `k`
//! compatible requests (same `A`, same `(d, b_d, b_n)` blocking, distinct
//! seeds) can therefore share a single traversal of `A`'s compressed data —
//! the column pointers, row indices and values are streamed once and served
//! to all `k` output sketches from cache, instead of being re-streamed `k`
//! times by `k` sequential [`crate::sketch_alg3`] calls.
//!
//! Random-sample work is *not* shared (each request's stream is keyed by its
//! own seed), so the win is bounded by the traversal + block-loop share of
//! the kernel: largest for small `d` (few samples per nonzero) over a large
//! `A` (traversal-dominated), and at the service level where a batch also
//! amortizes queue transit and dispatch wakeups.
//!
//! **Bitwise contract:** for every request `r`, the batched kernel performs
//! exactly the same `(set_state, fill_axpy)` call sequence on sampler `r`
//! as a sequential `sketch_alg3` call with that sampler would — same blocks,
//! same order, same slices. Checkpointed samplers are pure functions of
//! `(seed, i, j)`, so output `r` is bitwise identical to the sequential
//! result (asserted by this module's tests and re-asserted end-to-end by
//! `sketchd`'s batching tests).

use crate::alg1;
use crate::config::SketchConfig;
use crate::error::{panic_payload_to_string, SketchError};
use densekit::Matrix;
use rngkit::BlockSampler;
use sparsekit::{CscMatrix, Scalar};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compute `k` sketches `Âᵣ = Sᵣ·A` in one blocked pass over `A`.
///
/// `samplers[r]` defines `Sᵣ` (cloned; caller state untouched). Returns one
/// `d×n` matrix per sampler, each bitwise identical to
/// `sketch_alg3(a, cfg, &samplers[r])`. With an empty sampler slice this is
/// a no-op returning an empty vector.
pub fn sketch_alg3_multi<T, S>(
    a: &CscMatrix<T>,
    cfg: &SketchConfig,
    samplers: &[S],
) -> Vec<Matrix<T>>
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    let _sp = obskit::span("sketch/alg3_multi");
    let mut outs: Vec<Matrix<T>> = samplers
        .iter()
        .map(|_| Matrix::zeros(cfg.d, a.ncols()))
        .collect();
    let mut ss: Vec<S> = samplers.to_vec();
    alg1::drive(cfg, a.ncols(), |b| {
        let t0 = crate::obs::block_timer();
        for k in b.j..b.j + b.n1 {
            let (rows, vals) = a.col(k);
            for (&j, &ajk) in rows.iter().zip(vals.iter()) {
                // Requests innermost: the (j, ajk) operand element is loaded
                // once and reused across the whole batch. Each request keeps
                // the exact per-sampler call order of the sequential kernel.
                for (s, m) in ss.iter_mut().zip(outs.iter_mut()) {
                    let out = &mut m.col_mut(k)[b.i..b.i + b.d1];
                    s.set_state(b.i, j);
                    s.fill_axpy(ajk, out);
                }
            }
        }
        if let Some(t0) = t0 {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            let nnz_b: usize = (b.j..b.j + b.n1).map(|k| a.col(k).0.len()).sum();
            // Counter accounting scales with the batch (k seeks/samples per
            // nonzero); bytes_a is charged once — the traversal the batch
            // shares — which is exactly the asymmetry the batcher exploits.
            crate::obs::block_done_multi::<T>(
                crate::obs::BlockObs {
                    path: "sketch/alg3_multi/block",
                    i: b.i,
                    j: b.j,
                    d1: b.d1,
                    n1: b.n1,
                    nnz: nnz_b,
                    rows_hit: None,
                },
                ss.len(),
                dur_ns,
            );
        }
    });
    outs
}

/// Hardened batched driver: validated input, one catch_unwind around the
/// whole pass, per-output non-finite scan.
///
/// Unlike [`crate::try_sketch_alg3`] this does not re-plan block sizes — the
/// serving layer validates and budget-plans a matrix once at registry-load
/// time and reuses the plan across every request against that handle, so
/// per-request cost stays proportional to the sketch, not to `nnz(A)`.
/// `validate` can be skipped for registry-held (pre-validated) matrices.
pub fn try_sketch_alg3_multi<T, S>(
    a: &CscMatrix<T>,
    cfg: &SketchConfig,
    samplers: &[S],
    validate: bool,
) -> Result<Vec<Matrix<T>>, SketchError>
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    if validate {
        a.validate()?;
    }
    let outs = catch_unwind(AssertUnwindSafe(|| sketch_alg3_multi(a, cfg, samplers)))
        .map_err(|p| SketchError::WorkerPanic(panic_payload_to_string(p.as_ref())))?;
    for m in &outs {
        for j in 0..m.ncols() {
            for (i, v) in m.col(j).iter().enumerate() {
                if !v.is_finite() {
                    return Err(SketchError::NonFiniteSketch { row: i, col: j });
                }
            }
        }
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::{FastRng, UnitUniform};

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            let r = (next() % m as u64) as usize;
            let c = (next() % n as u64) as usize;
            let v = (next() % 2000) as f64 / 1000.0 - 1.0;
            coo.push(r, c, v + 0.001).unwrap();
        }
        coo.to_csc().unwrap()
    }

    /// The tentpole contract: a batched k-request pass is bitwise identical
    /// to k sequential calls with the same seeds (the PR 1 equivalence
    /// pattern, extended to batches).
    #[test]
    fn batched_bitwise_matches_sequential() {
        let a = random_csc(60, 30, 220, 11);
        for (b_d, b_n) in [(8, 5), (64, 30), (1, 1)] {
            let cfg = SketchConfig::new(24, b_d, b_n, 0);
            let samplers: Vec<_> = (0..5)
                .map(|r| UnitUniform::<f64>::sampler(FastRng::new(1000 + r)))
                .collect();
            let batched = sketch_alg3_multi(&a, &cfg, &samplers);
            assert_eq!(batched.len(), 5);
            for (r, s) in samplers.iter().enumerate() {
                let seq = crate::sketch_alg3(&a, &cfg, s);
                assert_eq!(
                    batched[r], seq,
                    "request {r} not bitwise identical at blocking ({b_d},{b_n})"
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let a = random_csc(10, 6, 20, 3);
        let cfg = SketchConfig::new(8, 4, 3, 0);
        let outs =
            sketch_alg3_multi::<f64, rngkit::DistSampler<UnitUniform<f64>, FastRng>>(&a, &cfg, &[]);
        assert!(outs.is_empty());
    }

    #[test]
    fn hardened_multi_matches_and_scans() {
        let a = random_csc(40, 16, 120, 7);
        let cfg = SketchConfig::new(12, 6, 4, 0);
        let samplers: Vec<_> = (0..3)
            .map(|r| UnitUniform::<f64>::sampler(FastRng::new(50 + r)))
            .collect();
        let got = try_sketch_alg3_multi(&a, &cfg, &samplers, true).expect("benign input");
        for (r, s) in samplers.iter().enumerate() {
            assert_eq!(got[r], crate::sketch_alg3(&a, &cfg, s));
        }
        // Corrupt input is rejected with a typed error when validating.
        let bad = sparsekit::corrupt::corrupt_csc(&a, sparsekit::corrupt::Corruption::NanValue, 1)
            .expect("hostable");
        match try_sketch_alg3_multi(&bad, &cfg, &samplers, true) {
            Err(SketchError::InvalidInput(_)) => {}
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }
}
