//! The roofline / computational-intensity model of paper §III-A.
//!
//! The model measures RNG cost relative to memory access (`h` < 1 means
//! generating an entry of `S` is cheaper than reading it from DRAM), assumes
//! a one-level cache of `M` words and a uniformly-dense sparse matrix of
//! density `ρ`, and optimizes the block sizes `(d₁, m₁, n₁)` in
//!
//! ```text
//! minimize   d·m·n·(M + h·d₁·m₁·(1 − (1 − ρ)^{n₁})) / (d₁·m₁·n₁)
//! subject to d₁·n₁ + m₁·n₁·ρ ≤ M            (eq. 4)
//! ```
//!
//! with `d₁ = M/(2n₁)`, `m₁ = M/(2n₁ρ)` saturating the cache constraint.
//! Closed forms: CI = `2M/(4 + M·h)` at small ρ (eq. 5), fraction of peak
//! `O(M/B)` when `h` is small (eq. 6 — a factor `√M` beyond GEMM's
//! `O(√M/B)`), and `√(Mρ)/(2B√h)` at large ρ with `n₁* = √(hM)/(2√ρ)`
//! (eq. 7).

/// Machine/model parameters.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cache size `M` in matrix elements.
    pub cache_size: f64,
    /// Cost of generating one random number relative to one memory access
    /// (`h`; the regeneration regime assumes `h < 1`).
    pub h: f64,
    /// Machine balance `B` = peak flops / memory bandwidth (flops per word).
    pub machine_balance: f64,
}

/// Output of the block-size optimization.
#[derive(Clone, Copy, Debug)]
pub struct ModelPrediction {
    /// Optimal block size along `d`.
    pub d1: f64,
    /// Optimal block size along `m`.
    pub m1: f64,
    /// Optimal block size along `n`.
    pub n1: f64,
    /// Computational intensity at the optimum (flops per word moved, with
    /// generation folded in at cost `h`).
    pub ci: f64,
    /// Fraction of machine peak `min(1, CI/B)`.
    pub frac_peak: f64,
}

impl CostModel {
    /// Construct a model; all parameters must be positive.
    pub fn new(cache_size: f64, h: f64, machine_balance: f64) -> Self {
        assert!(
            cache_size > 0.0 && h > 0.0 && machine_balance > 0.0,
            "model parameters must be positive"
        );
        Self {
            cache_size,
            h,
            machine_balance,
        }
    }

    /// A generic laptop/server-class default for quick measured-vs-model
    /// comparisons when nothing better is known: a 32 MiB last-level cache
    /// (4 Mi doubles), `h = 0.1` (counter-based RNG ~10× cheaper than DRAM)
    /// and machine balance `B = 50` flops/word. Override with a calibrated
    /// [`CostModel::new`] for real roofline studies.
    pub fn default_host() -> Self {
        Self::new(4.0 * 1024.0 * 1024.0, 0.1, 50.0)
    }

    /// Reciprocal-CI objective per unit of `d·m·n·ρ` work, as a function of
    /// `n₁` (the unconstrained reduction in §III-A):
    /// `4·n₁·ρ/M + h·(1 − (1−ρ)^{n₁})/n₁`, scaled so that its inverse times 2
    /// is the CI.
    pub fn objective(&self, rho: f64, n1: f64) -> f64 {
        assert!((0.0..=1.0).contains(&rho) && rho > 0.0, "need 0 < ρ ≤ 1");
        assert!(n1 >= 1.0);
        let gen = 1.0 - (1.0 - rho).powf(n1);
        4.0 * n1 * rho / self.cache_size + self.h * gen / n1
    }

    /// Computational intensity for a given `n₁` (blocks saturate the cache).
    pub fn ci_at(&self, rho: f64, n1: f64) -> f64 {
        2.0 * rho / self.objective(rho, n1)
    }

    /// Numerically optimize `n₁` on a log grid with local refinement.
    pub fn optimize(&self, rho: f64) -> ModelPrediction {
        let mut best_n1 = 1.0f64;
        let mut best = self.objective(rho, 1.0);
        // Log sweep up to the point where a block of one column fills cache.
        let n1_max = (self.cache_size / 2.0).max(1.0);
        let mut n1 = 1.0f64;
        while n1 <= n1_max {
            let f = self.objective(rho, n1);
            if f < best {
                best = f;
                best_n1 = n1;
            }
            n1 *= 1.02;
        }
        // Local refinement around the winner.
        for k in -100..=100 {
            let cand = best_n1 * (1.0 + k as f64 * 1e-4);
            if cand >= 1.0 && cand <= n1_max {
                let f = self.objective(rho, cand);
                if f < best {
                    best = f;
                    best_n1 = cand;
                }
            }
        }
        let ci = 2.0 * rho / best;
        ModelPrediction {
            d1: self.cache_size / (2.0 * best_n1),
            m1: self.cache_size / (2.0 * best_n1 * rho),
            n1: best_n1,
            ci,
            frac_peak: (ci / self.machine_balance).min(1.0),
        }
    }

    /// Closed-form CI in the small-ρ regime (eq. 5): `2M / (4 + M·h)`.
    pub fn ci_small_rho(&self) -> f64 {
        2.0 * self.cache_size / (4.0 + self.cache_size * self.h)
    }

    /// Closed-form fraction of peak at small ρ and small `h` (eq. 6):
    /// `M/(2B)` up to constants — the `√M`-beyond-GEMM headline.
    pub fn frac_peak_small_rho(&self) -> f64 {
        (self.ci_small_rho() / self.machine_balance).min(1.0)
    }

    /// Closed-form optimal `n₁` in the large-ρ regime: `√(h·M)/(2√ρ)`.
    pub fn n1_star_large_rho(&self, rho: f64) -> f64 {
        ((self.h * self.cache_size).sqrt() / (2.0 * rho.sqrt())).max(1.0)
    }

    /// Closed-form fraction of peak in the large-ρ regime (eq. 7):
    /// `√(M·ρ) / (2·B·√h)`.
    pub fn frac_peak_large_rho(&self, rho: f64) -> f64 {
        ((self.cache_size * rho).sqrt() / (2.0 * self.machine_balance * self.h.sqrt())).min(1.0)
    }

    /// GEMM's fraction of peak under the same model, `√M/B` — the baseline
    /// the sketching kernel beats by `√M` when `h` is small.
    pub fn gemm_frac_peak(&self) -> f64 {
        (self.cache_size.sqrt() / self.machine_balance).min(1.0)
    }

    /// The regeneration-vs-precompute break-even: regenerating only pays
    /// when `h < 1`.
    pub fn regeneration_profitable(&self) -> bool {
        self.h < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        // M = 4 Mi doubles (32 MiB cache), h = 0.1, B = 50 flops/word.
        CostModel::new(4.0 * 1024.0 * 1024.0, 0.1, 50.0)
    }

    #[test]
    fn small_rho_optimum_is_n1_equals_1() {
        let m = model();
        let p = m.optimize(1e-6);
        assert!(p.n1 < 1.5, "small-ρ optimum should be n₁ ≈ 1, got {}", p.n1);
        // CI matches the closed form within grid tolerance.
        let rel = (p.ci - m.ci_small_rho()).abs() / m.ci_small_rho();
        assert!(
            rel < 0.05,
            "CI {} vs closed form {}",
            p.ci,
            m.ci_small_rho()
        );
    }

    #[test]
    fn large_rho_optimum_matches_closed_form() {
        let m = model();
        let rho = 0.9;
        let p = m.optimize(rho);
        let star = m.n1_star_large_rho(rho);
        let rel = (p.n1 - star).abs() / star;
        assert!(rel < 0.1, "n₁ {} vs closed form {}", p.n1, star);
    }

    #[test]
    fn optimizer_beats_naive_n1_choices() {
        let m = model();
        for rho in [1e-5, 1e-3, 0.05, 0.5, 0.99] {
            let p = m.optimize(rho);
            let f_opt = m.objective(rho, p.n1);
            for n1 in [1.0, 10.0, 100.0, 1000.0] {
                assert!(
                    f_opt <= m.objective(rho, n1) * (1.0 + 1e-9),
                    "optimizer lost to n₁={n1} at ρ={rho}"
                );
            }
        }
    }

    #[test]
    fn beats_gemm_by_sqrt_m_when_h_small() {
        // h → 0: CI → M/2, GEMM CI ~ √M. The ratio should be ~√M/2.
        let m = CostModel::new(1e6, 1e-9, 1e9); // huge B so frac_peak ≪ 1
        let sketch = m.frac_peak_small_rho();
        let gemm = m.gemm_frac_peak();
        let ratio = sketch / gemm;
        let sqrt_m = (1e6f64).sqrt();
        assert!(
            ratio > 0.2 * sqrt_m && ratio < 2.0 * sqrt_m,
            "expected ~√M gain, got {ratio} (√M = {sqrt_m})"
        );
    }

    #[test]
    fn large_h_kills_the_advantage() {
        // h = 1 (generation as expensive as memory): CI ≈ 2/h = 2, no win.
        let m = CostModel::new(1e6, 1.0, 50.0);
        assert!(m.ci_small_rho() < 2.1);
        assert!(!CostModel::new(1e6, 1.5, 50.0).regeneration_profitable());
        assert!(!m.regeneration_profitable() || m.h < 1.0);
    }

    #[test]
    fn cache_constraint_respected_at_optimum() {
        let m = model();
        for rho in [1e-4, 0.01, 0.5] {
            let p = m.optimize(rho);
            let used = p.d1 * p.n1 + p.m1 * p.n1 * rho;
            assert!(
                used <= m.cache_size * 1.0001,
                "cache overcommitted: {} > {}",
                used,
                m.cache_size
            );
        }
    }

    #[test]
    fn frac_peak_clamped_to_one() {
        let m = CostModel::new(1e8, 1e-6, 1.0);
        assert_eq!(m.frac_peak_small_rho(), 1.0);
        assert_eq!(m.optimize(1e-6).frac_peak, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_parameters_rejected() {
        let _ = CostModel::new(0.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "0 < ρ")]
    fn bad_density_rejected() {
        model().objective(0.0, 1.0);
    }
}
