//! Telemetry glue: block-granularity counter helpers for the kernels and
//! the measured-vs-model traffic comparison of paper §III-A.
//!
//! The kernels call [`block_timer`] / [`block_done`] once per outer block:
//! the timer arms only when a recorder is on ([`obskit::any_enabled`], one
//! relaxed atomic load), and `block_done` fans the measurement out to the
//! latency histogram + counters (aggregate telemetry) and/or an annotated
//! block span in the flight recorder ([`obskit::trace`]). The disabled path
//! costs one relaxed atomic load per block and nothing per nonzero. The
//! counters follow the paper's accounting:
//!
//! * `samples` — entries of `S` regenerated (Algorithm 3: `d₁` per nonzero;
//!   Algorithm 4: `d₁` per nonempty row of the vertical block).
//! * `seeks` — `set_state` checkpoint seeks (one per regenerated column
//!   segment).
//! * `flops` — useful flops, `2·d₁` per nonzero (multiply-add = 2).
//! * `bytes_a` — the sparse operand streamed: value + row index per nonzero.
//! * `bytes_out` — the `Â` block read and written once per visit.
//!
//! [`TrafficReport`] then puts the measured byte counters side by side with
//! the §III-A cost model: the model predicts a computational intensity
//! `CI(ρ, n₁)` (flops per word moved) at the run's actual blocking, so
//! `modeled_bytes = flops/CI × word size`. A ratio near 1 means the run
//! moved about as much data as the model says it must; a large ratio flags
//! cache misses the model does not account for (or a mis-sized `M`).

use crate::model::CostModel;
use obskit::trace::{self, TraceKind};
use obskit::Ctr;
use std::time::Instant;

/// Bytes per stored nonzero of the sparse operand: one value plus one
/// row/column index (`usize`).
#[inline]
fn nnz_bytes<T>() -> u64 {
    (std::mem::size_of::<T>() + std::mem::size_of::<usize>()) as u64
}

/// Arm the per-block timer iff *any* recorder (aggregate telemetry or the
/// flight recorder) is on. The disabled path is one relaxed atomic load —
/// the same budget PR 1 set for the counters alone, kept by packing both
/// gates into one byte ([`obskit::any_enabled`]).
#[inline]
pub fn block_timer() -> Option<Instant> {
    obskit::any_enabled().then(Instant::now)
}

/// Identity and shape of one completed kernel block, handed to
/// [`block_done`].
#[derive(Clone, Copy, Debug)]
pub struct BlockObs {
    /// Histogram / trace span path, e.g. `"sketch/alg3/block"`.
    pub path: &'static str,
    /// Row offset of the output block in `Â`.
    pub i: usize,
    /// Column offset of the block.
    pub j: usize,
    /// Output rows of the block (`d₁`).
    pub d1: usize,
    /// Output columns of the block (`n₁`).
    pub n1: usize,
    /// Nonzeros of `A` streamed by the block.
    pub nnz: usize,
    /// `Some(rows_hit)` for Algorithm-4-style accounting (one seek and `d₁`
    /// samples per nonempty row), `None` for Algorithm-3-style (per
    /// nonzero).
    pub rows_hit: Option<usize>,
}

/// Record one completed kernel block into whichever recorders are armed:
/// the latency histogram plus §III-B counters when aggregate telemetry is
/// on, and an annotated block span (indices, rows, nnz, bytes, model cost)
/// plus counter deltas when the flight recorder is on. `dur_ns` is the
/// measured kernel time — callers take it immediately after the kernel so
/// shape bookkeeping (e.g. the nnz sum) never inflates the measurement.
pub fn block_done<T>(b: BlockObs, dur_ns: u64) {
    let samples = (b.d1 * b.rows_hit.unwrap_or(b.nnz)) as u64;
    if obskit::enabled() {
        obskit::hist_record_ns(b.path, dur_ns);
        match b.rows_hit {
            Some(rh) => count_block_alg4::<T>(b.d1, b.n1, b.nnz, rh),
            None => count_block::<T>(b.d1, b.n1, b.nnz),
        }
    }
    if obskit::trace_enabled() {
        let word = std::mem::size_of::<T>() as u64;
        let bytes = b.nnz as u64 * nnz_bytes::<T>() + 2 * word * (b.d1 * b.n1) as u64;
        // §III-A cost functional in byte units: memory traffic plus
        // generation cost h per sample, expressed in word-bytes so the two
        // terms share a unit. The anomaly attributor fits ns-per-cost-unit
        // per span path on top of this.
        let h = CostModel::default_host().h;
        let cost = bytes + (h * samples as f64 * word as f64).round() as u64;
        let end_ns = trace::now_ns();
        trace::span_pair(
            b.path,
            end_ns.saturating_sub(dur_ns),
            end_ns,
            TraceKind::BlockEnd,
            [
                b.i as u64,
                b.j as u64,
                b.rows_hit.unwrap_or(b.d1) as u64,
                b.nnz as u64,
                bytes,
                cost,
            ],
        );
        trace::counter("samples", samples);
        trace::counter("bytes", bytes);
    }
}

/// Record one completed *batched* kernel block (`batch` independent sketches
/// sharing one traversal — see [`crate::sketch_alg3_multi`]). Sample/seek/
/// flop/output counters scale with the batch; `bytes_a` is charged once,
/// because the batch's whole point is that the operand is streamed once.
pub fn block_done_multi<T>(b: BlockObs, batch: usize, dur_ns: u64) {
    if obskit::enabled() {
        obskit::hist_record_ns(b.path, dur_ns);
        let (d1, n1, nnz_b, batch) = (b.d1 as u64, b.n1 as u64, b.nnz as u64, batch as u64);
        obskit::add(Ctr::Samples, batch * d1 * nnz_b);
        obskit::add(Ctr::Seeks, batch * nnz_b);
        obskit::add(Ctr::Flops, 2 * batch * d1 * nnz_b);
        obskit::add(Ctr::BytesA, nnz_b * nnz_bytes::<T>());
        obskit::add(
            Ctr::BytesOut,
            2 * std::mem::size_of::<T>() as u64 * batch * d1 * n1,
        );
    }
    if obskit::trace_enabled() {
        let word = std::mem::size_of::<T>() as u64;
        let samples = (b.d1 * b.nnz) as u64 * batch as u64;
        let bytes =
            b.nnz as u64 * nnz_bytes::<T>() + 2 * word * (b.d1 * b.n1) as u64 * batch as u64;
        let h = CostModel::default_host().h;
        let cost = bytes + (h * samples as f64 * word as f64).round() as u64;
        let end_ns = trace::now_ns();
        trace::span_pair(
            b.path,
            end_ns.saturating_sub(dur_ns),
            end_ns,
            TraceKind::BlockEnd,
            [
                b.i as u64,
                b.j as u64,
                batch as u64,
                b.nnz as u64,
                bytes,
                cost,
            ],
        );
        trace::counter("samples", samples);
        trace::counter("bytes", bytes);
    }
}

/// Record one Algorithm-3-style outer block: `d1 × n1` output tile with
/// `nnz_b` nonzeros of `A` in its column range. One seek and `d1` samples
/// per nonzero. Call only when [`obskit::enabled`] is true.
pub fn count_block<T>(d1: usize, n1: usize, nnz_b: usize) {
    let (d1, n1, nnz_b) = (d1 as u64, n1 as u64, nnz_b as u64);
    obskit::add(Ctr::Samples, d1 * nnz_b);
    obskit::add(Ctr::Seeks, nnz_b);
    obskit::add(Ctr::Flops, 2 * d1 * nnz_b);
    obskit::add(Ctr::BytesA, nnz_b * nnz_bytes::<T>());
    obskit::add(Ctr::BytesOut, 2 * std::mem::size_of::<T>() as u64 * d1 * n1);
}

/// Record one Algorithm-4-style outer block: `d1 × n1` output tile with
/// `nnz_b` nonzeros, of which `rows_hit` distinct nonempty rows each cost
/// one seek and `d1` samples (the regenerated column segment is reused
/// across the row). Call only when [`obskit::enabled`] is true.
pub fn count_block_alg4<T>(d1: usize, n1: usize, nnz_b: usize, rows_hit: usize) {
    let (d1, n1, nnz_b, rows_hit) = (d1 as u64, n1 as u64, nnz_b as u64, rows_hit as u64);
    obskit::add(Ctr::Samples, d1 * rows_hit);
    obskit::add(Ctr::Seeks, rows_hit);
    obskit::add(Ctr::Flops, 2 * d1 * nnz_b);
    obskit::add(Ctr::BytesA, nnz_b * nnz_bytes::<T>());
    obskit::add(Ctr::BytesOut, 2 * std::mem::size_of::<T>() as u64 * d1 * n1);
}

/// Measured memory traffic put side by side with the §III-A model.
#[derive(Clone, Copy, Debug)]
pub struct TrafficReport {
    /// Bytes the kernel counted (operand stream + output tiles).
    pub measured_bytes: u64,
    /// Bytes the cost model says the kernel must move at this blocking:
    /// `flops / CI(ρ, n₁) × word size`.
    pub modeled_bytes: f64,
    /// `measured / modeled`; near 1 when the run behaves like the model.
    pub ratio: f64,
}

impl TrafficReport {
    /// Compare `measured_bytes` (typically `bytes_a + bytes_out` from an
    /// obskit snapshot) against the model at density `rho`, column block
    /// size `b_n`, for a kernel that performs `flops` useful flops on
    /// `word_bytes`-sized scalars.
    pub fn compare(
        model: &CostModel,
        rho: f64,
        b_n: usize,
        flops: u64,
        word_bytes: usize,
        measured_bytes: u64,
    ) -> Self {
        let ci = model.ci_at(rho.clamp(f64::MIN_POSITIVE, 1.0), (b_n as f64).max(1.0));
        let modeled_bytes = flops as f64 / ci * word_bytes as f64;
        let ratio = if modeled_bytes > 0.0 {
            measured_bytes as f64 / modeled_bytes
        } else {
            f64::NAN
        };
        Self {
            measured_bytes,
            modeled_bytes,
            ratio,
        }
    }

    /// Record this comparison as an obskit `traffic` event tagged with the
    /// kernel name (no-op when telemetry is off).
    pub fn emit(&self, kernel: &'static str) {
        obskit::event(
            "traffic",
            vec![
                ("kernel", obskit::Value::S(kernel.to_string())),
                ("measured_bytes", obskit::Value::U(self.measured_bytes)),
                ("modeled_bytes", obskit::Value::F(self.modeled_bytes)),
                ("ratio", obskit::Value::F(self.ratio)),
            ],
        );
    }

    /// One-line human rendering for run summaries.
    pub fn render(&self, kernel: &str) -> String {
        format!(
            "{kernel}: measured {:.3e} B vs model {:.3e} B  (ratio {:.2})",
            self.measured_bytes as f64, self.modeled_bytes, self.ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_ratio_is_measured_over_modeled() {
        let m = CostModel::new(1024.0 * 1024.0, 0.1, 50.0);
        let flops = 2_000_000u64;
        let r = TrafficReport::compare(&m, 0.01, 64, flops, 8, 4_000_000);
        assert!(r.modeled_bytes > 0.0);
        let expect = 4_000_000.0 / r.modeled_bytes;
        assert!((r.ratio - expect).abs() < 1e-12);
        // The model's CI is bounded by the small-ρ closed form (eq. 5), so
        // modeled bytes can't be absurdly small.
        let min_bytes = flops as f64 / m.ci_small_rho() * 8.0;
        assert!(r.modeled_bytes >= min_bytes * 0.5);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let m = CostModel::new(1e6, 0.1, 50.0);
        let r = TrafficReport::compare(&m, 0.0, 0, 0, 8, 0);
        assert!(r.ratio.is_nan() || r.ratio == 0.0);
        let _ = r.render("alg3");
    }

    // Closed-form counter checks live in the crate's `obs_counters`
    // integration test: the registry is process-global and the unit-test
    // binary's other tests (parallel drivers) record into it concurrently.
}
