//! Algorithm 3 — compute kernel variant `kji` with on-the-fly RNG.
//!
//! For each column `k` of the current vertical block of `A` and each stored
//! nonzero `A[j, k]`, the kernel re-seeks the sampler to checkpoint `(i, j)`
//! (row offset of the `Â` block, column `j` of `S`), regenerates the `d₁`
//! entries of that column segment of `S` into a scratch vector `v`, and adds
//! `A[j,k]·v` into the column of `Â` — a purely strided (axpy) update on all
//! three operands, which is why this variant wins on architectures that
//! punish random access (paper §II-B1).
//!
//! Cost signature (paper §III-B): always draws `d·nnz(A)` samples — fast-RNG
//! dependent, sparsity-pattern oblivious (Table VI).

use crate::alg1;
use crate::config::SketchConfig;
use densekit::Matrix;
use rngkit::{BlockSampler, ScaledInt};
use sparsekit::{CscMatrix, Scalar};

/// Compute `Â = S·A` with Algorithm 3 (sequential).
///
/// `sampler` defines `S`: it is cloned so the caller's generator state is
/// untouched, and every `(i, j)` checkpoint is a pure function of the
/// sampler's seed, making the result independent of iteration order over
/// blocks with the same `(b_d, b_n)`.
pub fn sketch_alg3<T, S>(a: &CscMatrix<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    let _sp = obskit::span("sketch/alg3");
    let mut ahat = Matrix::zeros(cfg.d, a.ncols());
    let mut sampler = sampler.clone();
    alg1::drive(cfg, a.ncols(), |b| {
        let t0 = crate::obs::block_timer();
        kernel(&mut ahat, a, b, &mut sampler);
        if let Some(t0) = t0 {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            let nnz_b: usize = (b.j..b.j + b.n1).map(|k| a.col(k).0.len()).sum();
            crate::obs::block_done::<T>(
                crate::obs::BlockObs {
                    path: "sketch/alg3/block",
                    i: b.i,
                    j: b.j,
                    d1: b.d1,
                    n1: b.n1,
                    nnz: nnz_b,
                    rows_hit: None,
                },
                dur_ns,
            );
        }
    });
    ahat
}

/// Algorithm 3's inner kernel on one outer block (exposed for the parallel
/// drivers).
pub(crate) fn kernel<T, S>(
    ahat: &mut Matrix<T>,
    a: &CscMatrix<T>,
    b: alg1::OuterBlock,
    sampler: &mut S,
) where
    T: Scalar,
    S: BlockSampler<T>,
{
    // Algorithm 3 consumes each regenerated column of S exactly once, so
    // generation and the d₁-long axpy are fused: samples go straight from
    // the generator's registers into Â, never through a scratch vector.
    for k in b.j..b.j + b.n1 {
        let (rows, vals) = a.col(k);
        let out = &mut ahat.col_mut(k)[b.i..b.i + b.d1];
        for (&j, &ajk) in rows.iter().zip(vals.iter()) {
            sampler.set_state(b.i, j);
            sampler.fill_axpy(ajk, out);
        }
    }
}

/// Kernel body for one block in the ±1 sign representation (exposed for the
/// parallel drivers).
pub(crate) fn kernel_signs<T, S>(
    ahat: &mut Matrix<T>,
    a: &CscMatrix<T>,
    b: alg1::OuterBlock,
    sampler: &mut S,
    v: &mut [i8],
) where
    T: Scalar,
    S: BlockSampler<i8>,
{
    let v = &mut v[..b.d1];
    for k in b.j..b.j + b.n1 {
        let (rows, vals) = a.col(k);
        let out = &mut ahat.col_mut(k)[b.i..b.i + b.d1];
        for (&j, &ajk) in rows.iter().zip(vals.iter()) {
            sampler.set_state(b.i, j);
            sampler.fill(v);
            // ±1 entries: the multiply becomes a sign-select add, and the
            // regenerated data is 8× smaller than f64 (paper §III-C).
            for (o, &s) in out.iter_mut().zip(v.iter()) {
                *o += if s >= 0 { ajk } else { -ajk };
            }
        }
    }
}

/// Compute `Â = S·A` where `S` has iid ±1 entries generated as `i8` signs —
/// the paper's cheapest distribution (Table II's "(±1)" column).
pub fn sketch_alg3_signs<T, S>(a: &CscMatrix<T>, cfg: &SketchConfig, sampler: &S) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<i8> + Clone,
{
    let _sp = obskit::span("sketch/alg3_signs");
    let mut ahat = Matrix::zeros(cfg.d, a.ncols());
    let mut sampler = sampler.clone();
    let mut v = vec![0i8; cfg.b_d.min(cfg.d)];
    alg1::drive(cfg, a.ncols(), |b| {
        let t0 = crate::obs::block_timer();
        kernel_signs(&mut ahat, a, b, &mut sampler, &mut v);
        if let Some(t0) = t0 {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            let nnz_b: usize = (b.j..b.j + b.n1).map(|k| a.col(k).0.len()).sum();
            crate::obs::block_done::<i8>(
                crate::obs::BlockObs {
                    path: "sketch/alg3_signs/block",
                    i: b.i,
                    j: b.j,
                    d1: b.d1,
                    n1: b.n1,
                    nnz: nnz_b,
                    rows_hit: None,
                },
                dur_ns,
            );
        }
    });
    ahat
}

/// Compute `Â = S·A` with the "(-1,1) scaling trick" of paper §III-C: the
/// kernel runs on raw random integers (no per-entry normalization) and the
/// single scale factor is applied to `Â` afterwards — mathematically
/// `(S·f⁻¹)·A` followed by multiplication with `f`.
pub fn sketch_alg3_scaled<T, R>(a: &CscMatrix<T>, cfg: &SketchConfig, rng: &R) -> Matrix<T>
where
    T: Scalar + rngkit::dist::Element,
    R: rngkit::BlockRng + Clone,
    ScaledInt: rngkit::dist::Distribution<T>,
{
    let sampler = rngkit::DistSampler::new(ScaledInt::new(), rng.clone());
    let mut ahat = sketch_alg3(a, cfg, &sampler);
    ahat.scale(T::from_f64(ScaledInt::SCALE));
    ahat
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::{CheckpointRng, Rademacher, UnitUniform, Xoshiro256PlusPlus};

    type Rng = CheckpointRng<Xoshiro256PlusPlus>;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            let r = (next() % m as u64) as usize;
            let c = (next() % n as u64) as usize;
            let v = (next() % 2000) as f64 / 1000.0 - 1.0;
            coo.push(r, c, v + 0.001).unwrap();
        }
        coo.to_csc().unwrap()
    }

    /// Materialize S explicitly (same sampler, same checkpoints) and verify
    /// the kernel against a dense reference multiply.
    fn reference_sketch<S: BlockSampler<f64> + Clone>(
        a: &CscMatrix<f64>,
        cfg: &SketchConfig,
        sampler: &S,
    ) -> Matrix<f64> {
        let m = a.nrows();
        let mut s_mat = Matrix::zeros(cfg.d, m);
        let mut sampler = dyn_clone(sampler);
        let mut v = vec![0.0; cfg.b_d.min(cfg.d)];
        // Materialize S block-row by block-row using the identical
        // checkpoints the kernel uses.
        let mut i = 0;
        while i < cfg.d {
            let d1 = cfg.b_d.min(cfg.d - i);
            for j in 0..m {
                sampler.set_state(i, j);
                sampler.fill(&mut v[..d1]);
                for (di, &val) in v[..d1].iter().enumerate() {
                    s_mat[(i + di, j)] = val;
                }
            }
            i += cfg.b_d;
        }
        // Dense × sparse reference.
        let mut out = Matrix::zeros(cfg.d, a.ncols());
        for k in 0..a.ncols() {
            let (rows, vals) = a.col(k);
            for (&j, &ajk) in rows.iter().zip(vals.iter()) {
                for di in 0..cfg.d {
                    out[(di, k)] += s_mat[(di, j)] * ajk;
                }
            }
        }
        out
    }

    fn dyn_clone<T: Clone>(x: &T) -> T {
        x.clone()
    }

    #[test]
    fn matches_materialized_reference() {
        let a = random_csc(40, 25, 150, 3);
        for (b_d, b_n) in [(7, 4), (64, 25), (1, 1), (100, 100)] {
            let cfg = SketchConfig::new(30, b_d, b_n, 99);
            let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
            let got = sketch_alg3(&a, &cfg, &sampler);
            let want = reference_sketch(&a, &cfg, &sampler);
            assert!(
                got.diff_norm(&want) < 1e-12 * want.fro_norm().max(1.0),
                "mismatch for blocking ({b_d},{b_n})"
            );
        }
    }

    #[test]
    fn deterministic_given_seed_and_blocking() {
        let a = random_csc(30, 20, 90, 5);
        let cfg = SketchConfig::new(25, 8, 6, 42);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let x = sketch_alg3(&a, &cfg, &sampler);
        let y = sketch_alg3(&a, &cfg, &sampler);
        assert_eq!(x, y);
    }

    #[test]
    fn different_blocking_different_sketch_with_xoshiro() {
        // Checkpointed xoshiro: the sketch depends on b_d (paper §IV-B2).
        let a = random_csc(30, 20, 90, 5);
        let c1 = SketchConfig::new(25, 8, 6, 42);
        let c2 = SketchConfig::new(25, 5, 6, 42);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(42));
        let x = sketch_alg3(&a, &c1, &sampler);
        let y = sketch_alg3(&a, &c2, &sampler);
        assert!(x.diff_norm(&y) > 1e-8);
    }

    #[test]
    fn empty_matrix_gives_zero_sketch() {
        let a = CscMatrix::<f64>::zeros(10, 5);
        let cfg = SketchConfig::new(8, 4, 2, 1);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(1));
        let got = sketch_alg3(&a, &cfg, &sampler);
        assert!(got.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_entry_matrix() {
        // A = e_2 e_1ᵀ (entry at row 2, col 1): Â column 1 must equal the
        // corresponding regenerated column of S.
        let mut coo = sparsekit::CooMatrix::new(5, 3);
        coo.push(2, 1, 2.0).unwrap();
        let a = coo.to_csc().unwrap();
        let cfg = SketchConfig::new(6, 6, 3, 7);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(7));
        let got = sketch_alg3(&a, &cfg, &sampler);
        let mut s_col = vec![0.0; 6];
        let mut s = sampler;
        s.set_state(0, 2);
        s.fill(&mut s_col);
        for i in 0..6 {
            assert!((got[(i, 1)] - 2.0 * s_col[i]).abs() < 1e-15);
            assert_eq!(got[(i, 0)], 0.0);
            assert_eq!(got[(i, 2)], 0.0);
        }
    }

    #[test]
    fn signs_variant_matches_float_rademacher() {
        let a = random_csc(25, 15, 70, 9);
        let cfg = SketchConfig::new(20, 6, 4, 11);
        let f = sketch_alg3(&a, &cfg, &Rademacher::<f64>::sampler(Rng::new(cfg.seed)));
        let s = sketch_alg3_signs(&a, &cfg, &Rademacher::<i8>::sampler(Rng::new(cfg.seed)));
        assert!(f.diff_norm(&s) < 1e-12 * f.fro_norm().max(1.0));
    }

    #[test]
    fn scaled_trick_matches_unit_uniform_distributionally() {
        // The scaling trick yields *the same values* as UnitUniform up to the
        // sign/mantissa convention; here we verify moments and range, plus
        // exact linearity: scaled output = raw-int output × SCALE.
        let a = random_csc(30, 12, 80, 13);
        let cfg = SketchConfig::new(24, 8, 5, 17);
        let rng = Rng::new(cfg.seed);
        let scaled = sketch_alg3_scaled(&a, &cfg, &rng);
        let raw = sketch_alg3(&a, &cfg, &rngkit::DistSampler::new(ScaledInt::new(), rng));
        for (s, r) in scaled.as_slice().iter().zip(raw.as_slice().iter()) {
            assert!((s - r * ScaledInt::SCALE).abs() < 1e-12 * r.abs().max(1.0));
        }
    }

    #[test]
    fn sketch_preserves_column_scaling() {
        // S(2A) = 2(SA): linearity sanity on the kernel.
        let a = random_csc(20, 10, 50, 21);
        let mut a2 = a.clone();
        a2.scale_values(2.0);
        let cfg = SketchConfig::new(15, 5, 3, 31);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let s1 = sketch_alg3(&a, &cfg, &sampler);
        let s2 = sketch_alg3(&a2, &cfg, &sampler);
        let mut s1x2 = s1.clone();
        s1x2.scale(2.0);
        assert!(s2.diff_norm(&s1x2) < 1e-12 * s2.fro_norm());
    }
}
