//! Algorithm 1 — the outer blocking driver.
//!
//! `(⌈d/b_d⌉, 1, ⌈n/b_n⌉)`-blocking of `Â = S·A`: the outermost loop walks
//! vertical blocks of `A` (encouraging the sparse data and the active panel
//! of `Â` to stay cached), the inner loop walks row blocks of `S`/`Â`, and
//! the `m` dimension is not blocked. Each `(i, j)` iterate hands a
//! `d₁×n₁` block of `Â` to a compute kernel (Algorithm 3 or 4).

use crate::config::SketchConfig;

/// One block of the outer iteration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OuterBlock {
    /// Row offset into `Â`/`S` (the `i` of Algorithm 1).
    pub i: usize,
    /// Rows in this block (`d₁ = d_stop − i + 1`).
    pub d1: usize,
    /// Column offset into `Â`/`A` (the `j` of Algorithm 1).
    pub j: usize,
    /// Columns in this block (`n₁ = n_stop − j + 1`).
    pub n1: usize,
}

/// Enumerate Algorithm 1's blocks in its loop order (columns outermost).
pub fn blocks(cfg: &SketchConfig, n: usize) -> Vec<OuterBlock> {
    let mut out = Vec::with_capacity(cfg.n_blocks(n) * cfg.d_blocks());
    let mut j = 0;
    while j < n {
        let n1 = cfg.b_n.min(n - j);
        let mut i = 0;
        while i < cfg.d {
            let d1 = cfg.b_d.min(cfg.d - i);
            out.push(OuterBlock { i, d1, j, n1 });
            i += cfg.b_d;
        }
        j += cfg.b_n;
    }
    if n == 0 {
        // Degenerate input: no column blocks, Â is d×0.
        out.clear();
    }
    out
}

/// Drive a compute kernel over Algorithm 1's blocks.
///
/// `kernel(block)` must add `S[i..i+d1, :] · A[:, j..j+n1]` into
/// `Â[i..i+d1, j..j+n1]`; the driver guarantees each block is visited
/// exactly once, in the paper's loop order.
pub fn drive<F: FnMut(OuterBlock)>(cfg: &SketchConfig, n: usize, mut kernel: F) {
    for b in blocks(cfg, n) {
        kernel(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_exactly() {
        let cfg = SketchConfig::new(10, 4, 3, 0);
        let bs = blocks(&cfg, 7);
        // 3 column blocks (3,3,1) × 3 row blocks (4,4,2).
        assert_eq!(bs.len(), 9);
        let total: usize = bs.iter().map(|b| b.d1 * b.n1).sum();
        assert_eq!(total, 10 * 7);
        // Column loop outermost: first three blocks share j = 0.
        assert!(bs[..3].iter().all(|b| b.j == 0));
        assert_eq!(bs[0].i, 0);
        assert_eq!(bs[1].i, 4);
        assert_eq!(bs[2].i, 8);
        assert_eq!(bs[2].d1, 2);
        // Ragged last column block.
        assert_eq!(bs[8].j, 6);
        assert_eq!(bs[8].n1, 1);
    }

    #[test]
    fn blocks_disjoint() {
        let cfg = SketchConfig::new(9, 2, 2, 0);
        let bs = blocks(&cfg, 5);
        let mut covered = [false; 9 * 5];
        for b in bs {
            for di in 0..b.d1 {
                for dj in 0..b.n1 {
                    let cell = (b.i + di) * 5 + (b.j + dj);
                    assert!(!covered[cell], "cell covered twice");
                    covered[cell] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn single_block_when_sizes_exceed_dims() {
        let cfg = SketchConfig::new(5, 100, 100, 0);
        let bs = blocks(&cfg, 3);
        assert_eq!(bs.len(), 1);
        assert_eq!(
            bs[0],
            OuterBlock {
                i: 0,
                d1: 5,
                j: 0,
                n1: 3
            }
        );
    }

    #[test]
    fn empty_matrix_no_blocks() {
        let cfg = SketchConfig::new(5, 2, 2, 0);
        assert!(blocks(&cfg, 0).is_empty());
    }

    #[test]
    fn drive_visits_all() {
        let cfg = SketchConfig::new(6, 5, 2, 0);
        let mut seen = Vec::new();
        drive(&cfg, 4, |b| seen.push(b));
        assert_eq!(seen, blocks(&cfg, 4));
    }
}
