#![warn(missing_docs)]
//! # baselines — materialized-`S` SpMM baselines
//!
//! The paper's Tables II and IV compare the regeneration kernels against
//! library SpMM with an explicit, pre-generated `S`: Intel MKL, Eigen and
//! Julia's SparseArrays. Those libraries are not linkable here, so this
//! crate reimplements the *kernels the paper actually timed*, preserving
//! each library's storage convention and access pattern:
//!
//! * [`mkl_style`] — MKL only supports sparse-times-dense, so the paper
//!   computes the transposed product `Âᵀ = Aᵀ·Sᵀ` with `Aᵀ` in CSR and `Sᵀ`
//!   dense row-major. (`Aᵀ`-CSR is exactly `A`-CSC reinterpreted, and
//!   `Sᵀ`-row-major is `S`-column-major reinterpreted, so no conversion is
//!   timed — same as the paper.)
//! * [`eigen_style`] — Eigen's sparse·dense: for each output column, gather
//!   `Σⱼ A[j,k]·S[:,j]` with a temporary accumulator column, then write back.
//! * [`csc_outer`] (Julia style) — straight CSC traversal updating `Â`
//!   columns in place.
//! * [`materialize_s`] / [`materialize_s_bytes`] — build the explicit `S`
//!   from the same checkpoint sampler the implicit kernels use (so baseline
//!   and regeneration kernels compute the *same* product), and report its
//!   memory footprint — the reason pre-generation fails at scale (`S` for
//!   the paper's `ch7-9-b3` needs ~44 GB).
//!
//! Generation time is kept separate from multiply time, matching the
//! paper's methodology ("we don't include generation time" for the
//! pre-generated method in Figure 4).

use densekit::Matrix;
use rngkit::BlockSampler;
use sparsekit::{CscMatrix, Scalar};

/// Materialize the implicit `S` (d×m, column-major) using the identical
/// checkpoints the regeneration kernels use with blocking `b_d`, so
/// `materialize_s(..) · A == sketch_alg3(..)` exactly.
pub fn materialize_s<T, S>(sampler: &S, d: usize, m: usize, b_d: usize) -> Matrix<T>
where
    T: Scalar,
    S: BlockSampler<T> + Clone,
{
    let mut s = sampler.clone();
    let mut out = Matrix::zeros(d, m);
    let b_d = b_d.max(1);
    let mut i = 0;
    while i < d {
        let d1 = b_d.min(d - i);
        for j in 0..m {
            s.set_state(i, j);
            s.fill(&mut out.col_mut(j)[i..i + d1]);
        }
        i += b_d;
    }
    out
}

/// Bytes needed to store an explicit `d×m` matrix of `T` — the memory wall
/// that motivates on-the-fly generation.
pub fn materialize_s_bytes<T>(d: usize, m: usize) -> usize {
    d * m * std::mem::size_of::<T>()
}

/// MKL-style transposed product: `Âᵀ = Aᵀ·Sᵀ`, `Aᵀ` in CSR (= `A`'s CSC
/// arrays), output row-major `n×d` (= `Â` column-major reinterpreted).
///
/// Returns `Â` as a `d×n` column-major matrix (the reinterpretation is free).
pub fn mkl_style<T: Scalar>(a: &CscMatrix<T>, s: &Matrix<T>) -> Matrix<T> {
    let (d, m, n) = (s.nrows(), a.nrows(), a.ncols());
    assert_eq!(s.ncols(), m, "S columns must match A rows");
    // Row i of Aᵀ is column i of A; row j of Sᵀ is column j of S (length d,
    // contiguous). The MKL kernel is out_row += a_val * s_row: a row-major
    // axpy accumulation.
    let mut out = Matrix::zeros(d, n); // column k of out = row k of Âᵀ
    for k in 0..n {
        let (rows, vals) = a.col(k); // row k of Aᵀ
        let out_row = out.col_mut(k);
        for (&j, &ajk) in rows.iter().zip(vals.iter()) {
            let s_row = s.col(j); // row j of Sᵀ
            for (o, &sv) in out_row.iter_mut().zip(s_row.iter()) {
                *o = ajk.mul_add(sv, *o);
            }
        }
    }
    out
}

/// Eigen-style sparse·dense: per output column, accumulate into a dense
/// temporary and write back once.
pub fn eigen_style<T: Scalar>(a: &CscMatrix<T>, s: &Matrix<T>) -> Matrix<T> {
    let (d, m, n) = (s.nrows(), a.nrows(), a.ncols());
    assert_eq!(s.ncols(), m, "S columns must match A rows");
    let mut out = Matrix::zeros(d, n);
    let mut acc = vec![T::ZERO; d];
    for k in 0..n {
        acc.fill(T::ZERO);
        let (rows, vals) = a.col(k);
        for (&j, &ajk) in rows.iter().zip(vals.iter()) {
            for (o, &sv) in acc.iter_mut().zip(s.col(j).iter()) {
                *o = ajk.mul_add(sv, *o);
            }
        }
        out.col_mut(k).copy_from_slice(&acc);
    }
    out
}

/// Julia-SparseArrays-style: CSC traversal updating `Â`'s columns in place.
pub fn csc_outer<T: Scalar>(a: &CscMatrix<T>, s: &Matrix<T>) -> Matrix<T> {
    let (d, m, n) = (s.nrows(), a.nrows(), a.ncols());
    assert_eq!(s.ncols(), m, "S columns must match A rows");
    let mut out = Matrix::zeros(d, n);
    for k in 0..n {
        let (rows, vals) = a.col(k);
        let out_col = out.col_mut(k);
        for (&j, &ajk) in rows.iter().zip(vals.iter()) {
            for (o, &sv) in out_col.iter_mut().zip(s.col(j).iter()) {
                *o = ajk.mul_add(sv, *o);
            }
        }
    }
    out
}

/// Pre-generated `S` inside Algorithm 1's blocked loop structure — the
/// "pre-generating S in memory" series of Figure 4: same blocking as the
/// regeneration kernels, but `v` comes from memory instead of the RNG.
pub fn pregen_blocked<T: Scalar>(
    a: &CscMatrix<T>,
    s: &Matrix<T>,
    b_d: usize,
    b_n: usize,
) -> Matrix<T> {
    let (d, m, n) = (s.nrows(), a.nrows(), a.ncols());
    assert_eq!(s.ncols(), m, "S columns must match A rows");
    let (b_d, b_n) = (b_d.max(1), b_n.max(1));
    let mut out = Matrix::zeros(d, n);
    let mut j0 = 0;
    while j0 < n {
        let n1 = b_n.min(n - j0);
        let mut i = 0;
        while i < d {
            let d1 = b_d.min(d - i);
            for k in j0..j0 + n1 {
                let (rows, vals) = a.col(k);
                let out_seg = &mut out.col_mut(k)[i..i + d1];
                for (&j, &ajk) in rows.iter().zip(vals.iter()) {
                    let s_seg = &s.col(j)[i..i + d1];
                    for (o, &sv) in out_seg.iter_mut().zip(s_seg.iter()) {
                        *o = ajk.mul_add(sv, *o);
                    }
                }
            }
            i += b_d;
        }
        j0 += b_n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::{CheckpointRng, UnitUniform, Xoshiro256PlusPlus};
    use sketchcore::{sketch_alg3, SketchConfig};

    type Rng = CheckpointRng<Xoshiro256PlusPlus>;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for _ in 0..nnz {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                (next() % 1000) as f64 / 500.0 - 0.9995,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn all_baselines_match_regeneration_kernel() {
        let a = random_csc(50, 30, 200, 1);
        let cfg = SketchConfig::new(24, 7, 5, 9);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(cfg.seed));
        let implicit = sketch_alg3(&a, &cfg, &sampler);
        let s = materialize_s(&sampler, cfg.d, a.nrows(), cfg.b_d);
        let tol = 1e-12 * implicit.fro_norm().max(1.0);
        for (name, got) in [
            ("mkl", mkl_style(&a, &s)),
            ("eigen", eigen_style(&a, &s)),
            ("julia", csc_outer(&a, &s)),
            ("pregen_blocked", pregen_blocked(&a, &s, cfg.b_d, cfg.b_n)),
        ] {
            assert!(
                got.diff_norm(&implicit) < tol,
                "{name} disagrees with the regeneration kernel"
            );
        }
    }

    #[test]
    fn s_memory_accounting() {
        assert_eq!(materialize_s_bytes::<f64>(100, 200), 160_000);
        assert_eq!(materialize_s_bytes::<f32>(100, 200), 80_000);
        // The paper-scale wall: ch7-9-b3 needs d×m = 52920×105840 f64 ≈ 44.8 GB.
        let bytes = materialize_s_bytes::<f64>(52920, 105840);
        assert!(bytes > 44_000_000_000);
    }

    #[test]
    fn materialized_s_respects_checkpoints() {
        // Entry (i, j) of S only depends on (seed, block of i, j).
        let sampler = UnitUniform::<f64>::sampler(Rng::new(7));
        let s1 = materialize_s(&sampler, 16, 10, 4);
        let s2 = materialize_s(&sampler, 16, 10, 4);
        assert_eq!(s1, s2);
        // Different b_d changes the blocking and therefore the sketch.
        let s3 = materialize_s(&sampler, 16, 10, 8);
        assert!(s1.diff_norm(&s3) > 1e-8);
    }

    #[test]
    fn empty_sparse_input() {
        let a = CscMatrix::<f64>::zeros(10, 4);
        let sampler = UnitUniform::<f64>::sampler(Rng::new(1));
        let s = materialize_s(&sampler, 6, 10, 3);
        for out in [mkl_style(&a, &s), eigen_style(&a, &s), csc_outer(&a, &s)] {
            assert!(out.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "S columns")]
    fn shape_mismatch_panics() {
        let a = CscMatrix::<f64>::zeros(10, 4);
        let s = Matrix::<f64>::zeros(6, 9);
        let _ = mkl_style(&a, &s);
    }
}
