//! O(1) checkpoint seeking for sequential generators.
//!
//! xoshiro generators have sequentially-dependent state, so they cannot jump
//! to an arbitrary `(block_row, col)` coordinate of `S` the way a
//! counter-based RNG can. The paper's solution (§IV-B2) is to treat each
//! *block* as a checkpoint: attach a unique state to each `(block_row, col)`
//! pair and re-derive it whenever a kernel seeks there. We derive the state by
//! mixing the coordinates into the seed with the SplitMix64 avalanche
//! finalizer and then expanding, which costs a handful of multiplies — far
//! cheaper than a memory round-trip, which is the whole point of
//! regeneration.
//!
//! Reproducibility caveat (also in the paper): because the checkpoint is the
//! *block* coordinate, two runs with different `b_d` partition `S` into
//! different blocks and therefore sample different sketches. Both are valid
//! draws from the same distribution; use [`crate::PhiloxSampler`] when
//! bit-reproducibility independent of blocking is required.

use crate::splitmix::{mix64, SplitMix64};
use crate::{BlockRng, Xoshiro128PlusPlus, Xoshiro256PlusPlus};

/// Derive a 64-bit stream seed for checkpoint `(block_row, col)` under a
/// master `seed`. Distinct coordinates map to distinct, well-mixed seeds.
#[inline(always)]
pub fn checkpoint_seed(seed: u64, block_row: usize, col: usize) -> u64 {
    // Two chained avalanche rounds: first bind the column, then the block
    // row. Chaining (rather than XOR-combining independent mixes) prevents
    // any algebraic cancellation between the two coordinates.
    let a = mix64(seed ^ (col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix64(a ^ (block_row as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
}

/// A sequential generator wrapped with O(1) checkpoint re-derivation.
///
/// This is the default generator of the sketching kernels: `set_state(r, j)`
/// reseeds the inner generator from [`checkpoint_seed`], after which draws
/// stream with full sequential speed.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointRng<G> {
    seed: u64,
    inner: G,
}

/// Generators that can be constructed from a 64-bit seed.
pub trait Reseed {
    /// Build a fresh generator from `seed`.
    fn reseed(seed: u64) -> Self;
}

impl Reseed for Xoshiro256PlusPlus {
    #[inline(always)]
    fn reseed(seed: u64) -> Self {
        // Direct SplitMix64 expansion — same as `new`, inlined here to keep
        // the checkpoint path allocation- and branch-free.
        Xoshiro256PlusPlus::new(seed)
    }
}

impl Reseed for Xoshiro128PlusPlus {
    #[inline(always)]
    fn reseed(seed: u64) -> Self {
        Xoshiro128PlusPlus::new(seed)
    }
}

impl Reseed for SplitMix64 {
    #[inline(always)]
    fn reseed(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl<G: Reseed> CheckpointRng<G> {
    /// Create a checkpointed generator under master `seed`, positioned at
    /// checkpoint `(0, 0)`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: G::reseed(checkpoint_seed(seed, 0, 0)),
        }
    }

    /// The master seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

macro_rules! impl_blockrng {
    ($g:ty, $next64:expr) => {
        impl BlockRng for CheckpointRng<$g> {
            #[inline(always)]
            fn set_state(&mut self, block_row: usize, col: usize) {
                self.inner = <$g>::reseed(checkpoint_seed(self.seed, block_row, col));
            }

            #[inline(always)]
            fn next_u64(&mut self) -> u64 {
                ($next64)(&mut self.inner)
            }
        }
    };
}

impl_blockrng!(Xoshiro256PlusPlus, |g: &mut Xoshiro256PlusPlus| g
    .next_u64());
impl_blockrng!(Xoshiro128PlusPlus, |g: &mut Xoshiro128PlusPlus| g
    .next_u64());
impl_blockrng!(SplitMix64, |g: &mut SplitMix64| g.next_u64());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reseek_replays_stream() {
        let mut g = CheckpointRng::<Xoshiro256PlusPlus>::new(11);
        g.set_state(2, 40);
        let a: Vec<u64> = (0..32).map(|_| g.next_u64()).collect();
        g.set_state(9, 9);
        let _ = g.next_u64();
        g.set_state(2, 40);
        let b: Vec<u64> = (0..32).map(|_| g.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_checkpoints_distinct_streams() {
        let mut g = CheckpointRng::<Xoshiro256PlusPlus>::new(5);
        let mut firsts = std::collections::HashSet::new();
        for r in 0..50 {
            for c in 0..50 {
                g.set_state(r, c);
                assert!(firsts.insert(g.next_u64()), "collision at ({r},{c})");
            }
        }
    }

    #[test]
    fn seeds_separate_sketches() {
        let mut a = CheckpointRng::<Xoshiro256PlusPlus>::new(1);
        let mut b = CheckpointRng::<Xoshiro256PlusPlus>::new(2);
        a.set_state(0, 0);
        b.set_state(0, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn checkpoint_seed_no_adjacent_collisions() {
        // (r, c) vs (r+1, c) and (r, c+1) must not collide even for
        // structured small coordinates.
        for r in 0..200usize {
            for c in 0..20usize {
                let s = checkpoint_seed(0, r, c);
                assert_ne!(s, checkpoint_seed(0, r + 1, c));
                assert_ne!(s, checkpoint_seed(0, r, c + 1));
                assert_ne!(s, checkpoint_seed(0, c, r).wrapping_add(u64::from(r == c)));
            }
        }
    }

    #[test]
    fn works_with_xoshiro128() {
        let mut g = CheckpointRng::<Xoshiro128PlusPlus>::new(3);
        g.set_state(1, 1);
        let a = g.next_u64();
        g.set_state(1, 1);
        assert_eq!(a, g.next_u64());
    }

    #[test]
    fn checkpoint_streams_statistically_balanced() {
        // Mean of unit-uniform draws across many checkpoints ~ 0.
        let mut g = CheckpointRng::<Xoshiro256PlusPlus>::new(123);
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in 0..40 {
            for c in 0..40 {
                g.set_state(r, c);
                for _ in 0..8 {
                    sum += crate::u64_to_unit_f64(g.next_u64());
                    n += 1;
                }
            }
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.01, "mean across checkpoints: {mean}");
    }
}
