//! Statistical utilities for validating generator and sketch quality.
//!
//! Used by tests throughout the workspace (and by the `repro` harness when
//! reporting sketch quality). The headline quantity for sketching is the
//! *effective distortion* of `S` for a subspace (paper §IV-B2 / RandBLAS §2):
//! how far the singular values of `S·Q` stray from 1 for an orthonormal `Q`.

/// Sample mean.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Sample variance (population normalization, matching the moment tests).
pub fn variance(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Excess-free kurtosis `E[x⁴]/Var²` (3 for a Gaussian, 1.8 for uniform).
pub fn kurtosis(v: &[f64]) -> f64 {
    let var = variance(v);
    if var == 0.0 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m).powi(4)).sum::<f64>() / v.len() as f64 / (var * var)
}

/// Pearson chi-squared statistic of `v` against a uniform distribution over
/// (-1, 1) using `bins` equiprobable bins. Under H₀ the statistic is
/// approximately χ²(bins−1); callers compare against a generous quantile.
pub fn chi2_uniform_unit(v: &[f64], bins: usize) -> f64 {
    assert!(bins >= 2);
    let mut counts = vec![0usize; bins];
    for &x in v {
        let t = ((x + 1.0) / 2.0).clamp(0.0, 1.0 - 1e-15);
        counts[(t * bins as f64) as usize] += 1;
    }
    let expected = v.len() as f64 / bins as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Lag-1 serial correlation; near zero for an iid stream.
pub fn lag1_autocorr(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    let var = variance(v);
    if var == 0.0 {
        return 0.0;
    }
    let num: f64 = v.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
    num / ((v.len() - 1) as f64 * var)
}

/// Monte-Carlo estimate of the empirical CDF distance from N(0,1)
/// (Kolmogorov–Smirnov statistic). `v` is sorted internally.
pub fn ks_normal(v: &[f64]) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in s.iter().enumerate() {
        let f = normal_cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Φ(x) via the Abramowitz–Stegun erf approximation (|err| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// erf via Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRng, CheckpointRng, Xoshiro256PlusPlus};

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [-2.5, -1.0, -0.3, 0.0, 0.7, 1.9] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn chi2_flags_nonuniform() {
        // A constant vector must yield a huge chi2; a good stream small.
        let mut r = CheckpointRng::<Xoshiro256PlusPlus>::new(8);
        r.set_state(0, 0);
        let good: Vec<f64> = (0..50_000)
            .map(|_| crate::u64_to_unit_f64(r.next_u64()))
            .collect();
        let bad = vec![0.25; 50_000];
        let c_good = chi2_uniform_unit(&good, 64);
        let c_bad = chi2_uniform_unit(&bad, 64);
        // χ²(63) has mean 63, sd ~11.2; accept < 63 + 5sd.
        assert!(c_good < 120.0, "good stream chi2 {c_good}");
        assert!(c_bad > 1e5, "constant stream chi2 {c_bad}");
    }

    #[test]
    fn lag1_autocorr_small_for_rng() {
        let mut r = CheckpointRng::<Xoshiro256PlusPlus>::new(3);
        r.set_state(0, 0);
        let v: Vec<f64> = (0..100_000)
            .map(|_| crate::u64_to_unit_f64(r.next_u64()))
            .collect();
        assert!(lag1_autocorr(&v).abs() < 0.01);
        // A sawtooth has strong lag-1 correlation.
        let saw: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 50.0 - 1.0).collect();
        assert!(lag1_autocorr(&saw) > 0.9);
    }

    #[test]
    fn ks_accepts_gaussian_rejects_uniform() {
        use crate::dist::Distribution;
        let mut d = crate::Gaussian::<f64>::new();
        let mut r = CheckpointRng::<Xoshiro256PlusPlus>::new(5);
        let mut g = vec![0.0; 20_000];
        d.fill(&mut r, &mut g);
        assert!(ks_normal(&g) < 0.015, "KS too large for gaussian");
        let u: Vec<f64> = (0..20_000).map(|i| (i as f64 / 10_000.0) - 1.0).collect();
        assert!(ks_normal(&u) > 0.05, "KS failed to reject uniform");
    }

    #[test]
    fn moments_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(kurtosis(&[2.0, 2.0]), 0.0);
        assert_eq!(lag1_autocorr(&[1.0]), 0.0);
    }
}
