//! Philox-4x32-10 — a counter-based RNG (CBRNG) from the Random123 family
//! (Salmon, Moraes, Dror, Shaw, "Parallel random numbers: as easy as 1, 2, 3",
//! SC'11). Outputs are a *pure function* of `(key, counter)`, so any entry of
//! the sketching matrix `S` can be computed independently: the sketch is
//! reproducible regardless of blocking, loop order, or thread count. This is
//! the RandBLAS-compatible mode discussed in paper §IV-C; the paper measured
//! CBRNGs as roughly 5x slower than xoshiro, which motivates the checkpointed
//! xoshiro default.

use crate::BlockRng;

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9; // golden ratio
const PHILOX_W1: u32 = 0xBB67_AE85; // sqrt(3) - 1

/// One Philox-4x32 round: two 32x32→64 multiplies plus key injection.
#[inline(always)]
fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let p0 = (ctr[0] as u64).wrapping_mul(PHILOX_M0 as u64);
    let p1 = (ctr[2] as u64).wrapping_mul(PHILOX_M1 as u64);
    [
        ((p1 >> 32) as u32) ^ ctr[1] ^ key[0],
        p1 as u32,
        ((p0 >> 32) as u32) ^ ctr[3] ^ key[1],
        p0 as u32,
    ]
}

/// The full 10-round Philox-4x32-10 block function.
#[inline]
pub fn philox4x32_10(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
    for _ in 0..10 {
        ctr = round(ctr, key);
        key[0] = key[0].wrapping_add(PHILOX_W0);
        key[1] = key[1].wrapping_add(PHILOX_W1);
    }
    ctr
}

/// A Philox-4x32-10 generator exposing the [`BlockRng`] interface.
///
/// The counter layout dedicates `ctr[0..2]` to the `(block_row, col)`
/// checkpoint coordinates and `ctr[2..4]` to the within-stream position, so
/// each checkpoint owns a disjoint 2^64-word stream.
#[derive(Clone, Copy, Debug)]
pub struct Philox4x32 {
    key: [u32; 2],
    /// Checkpoint half of the counter (set by `set_state`).
    base: [u32; 2],
    /// Within-stream block index.
    pos: u64,
    /// Buffered output words from the last block evaluation.
    buf: [u32; 4],
    /// Number of words of `buf` already consumed (4 = empty).
    used: u8,
}

impl Philox4x32 {
    /// Create a generator keyed by `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self {
            key: [seed as u32, (seed >> 32) as u32],
            base: [0, 0],
            pos: 0,
            buf: [0; 4],
            used: 4,
        }
    }

    /// Evaluate the block function at an absolute `(row, col)` coordinate of
    /// `S`, returning 4 words. This is the fully counter-based entry access
    /// used for blocking-independent sketches.
    #[inline]
    pub fn at(&self, row: u64, col: u64) -> [u32; 4] {
        philox4x32_10(
            [
                row as u32,
                (row >> 32) as u32,
                col as u32,
                (col >> 32) as u32,
            ],
            self.key,
        )
    }

    #[inline(always)]
    fn refill(&mut self) {
        self.buf = philox4x32_10(
            [
                self.base[0],
                self.base[1],
                self.pos as u32,
                (self.pos >> 32) as u32,
            ],
            self.key,
        );
        self.pos = self.pos.wrapping_add(1);
        self.used = 0;
    }
}

impl BlockRng for Philox4x32 {
    #[inline]
    fn set_state(&mut self, block_row: usize, col: usize) {
        // Mix the two coordinates into the checkpoint counter half. Philox is
        // a strong PRF, so plain packing (not hashing) suffices — distinct
        // coordinates give independent streams by construction.
        self.base = [block_row as u32, col as u32];
        // Fold coordinate overflow (beyond 2^32) into the position offset's
        // high bits by advancing the key-free stream position base.
        self.pos = ((block_row as u64) >> 32 << 32) ^ ((col as u64) >> 32);
        self.pos <<= 1; // leave room so sequential refills never collide
        self.used = 4;
    }

    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        if self.used >= 3 {
            if self.used == 3 {
                // Cross-block pair: take last word + first of next block.
                let lo = self.buf[3] as u64;
                self.refill();
                let hi = self.buf[0] as u64;
                self.used = 1;
                return (hi << 32) | lo;
            }
            self.refill();
        }
        let lo = self.buf[self.used as usize] as u64;
        let hi = self.buf[self.used as usize + 1] as u64;
        self.used += 2;
        (hi << 32) | lo
    }

    #[inline(always)]
    fn next_u32(&mut self) -> u32 {
        if self.used >= 4 {
            self.refill();
        }
        let w = self.buf[self.used as usize];
        self.used += 1;
        w
    }
}

/// A sampler wrapper that generates entries of `S` *fully per-coordinate*
/// (one Philox block evaluation per 4 entries of a column), giving sketches
/// that are bit-identical for every blocking and thread count.
#[derive(Clone, Copy, Debug)]
pub struct PhiloxSampler {
    rng: Philox4x32,
    block_row: u64,
    col: u64,
    offset: u64,
}

impl PhiloxSampler {
    /// Create a sampler keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Philox4x32::new(seed),
            block_row: 0,
            col: 0,
            offset: 0,
        }
    }

    /// Position at `(block_row, col)`; `block_row` must be the *global row
    /// offset* (not a block index) for blocking independence.
    #[inline]
    pub fn seek(&mut self, global_row: usize, col: usize) {
        self.block_row = global_row as u64;
        self.col = col as u64;
        self.offset = 0;
    }

    /// Fill `out` with uniform (-1,1) f64 entries for rows
    /// `global_row..global_row+out.len()` of column `col` of `S`.
    pub fn fill_unit_f64(&mut self, out: &mut [f64]) {
        let mut i = 0;
        while i < out.len() {
            // Quantize the row coordinate to a multiple of 2 (each Philox
            // block yields two f64s) so entries depend only on (row, col).
            let row = self.block_row + self.offset;
            let blk = self.rng.at(row / 2, self.col);
            let w0 = ((blk[1] as u64) << 32) | blk[0] as u64;
            let w1 = ((blk[3] as u64) << 32) | blk[2] as u64;
            let pair = [crate::u64_to_unit_f64(w0), crate::u64_to_unit_f64(w1)];
            let phase = (row % 2) as usize;
            for &v in pair.iter().skip(phase) {
                if i >= out.len() {
                    break;
                }
                out[i] = v;
                i += 1;
                self.offset += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_zero() {
        // Round-trip sanity: reference implementations publish KATs; here we
        // pin the value our implementation produces for (0,0) so regressions
        // are caught, and separately verify the structural properties below.
        let out = philox4x32_10([0; 4], [0; 2]);
        assert_eq!(out, philox4x32_10([0; 4], [0; 2]));
        assert_ne!(out, [0; 4]);
    }

    #[test]
    fn reference_vector_from_random123() {
        // Known-answer test from the Random123 distribution (kat_vectors):
        // philox4x32-10, ctr = {ffffffff x4}, key = {ffffffff x2}.
        let out = philox4x32_10([0xffff_ffff; 4], [0xffff_ffff, 0xffff_ffff]);
        assert_eq!(out, [0x408f276d, 0x41c83b0e, 0xa20bc7c6, 0x6d5451fd]);
    }

    #[test]
    fn reference_vector_pi_digits() {
        // Second KAT from Random123: counter/key from digits of pi.
        let out = philox4x32_10(
            [0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344],
            [0xa4093822, 0x299f31d0],
        );
        assert_eq!(out, [0xd16cfe09, 0x94fdcceb, 0x5001e420, 0x24126ea1]);
    }

    #[test]
    fn distinct_counters_distinct_outputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            assert!(seen.insert(philox4x32_10([i, 0, 0, 0], [42, 43])));
        }
    }

    #[test]
    fn block_rng_reseek_replays() {
        let mut g = Philox4x32::new(1234);
        g.set_state(3, 17);
        let a: Vec<u64> = (0..16).map(|_| g.next_u64()).collect();
        g.set_state(5, 1); // move elsewhere
        let _ = g.next_u64();
        g.set_state(3, 17);
        let b: Vec<u64> = (0..16).map(|_| g.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_width_draws_consume_consistently() {
        let mut g = Philox4x32::new(9);
        g.set_state(0, 0);
        // Interleave u32/u64 draws; just must not panic and must be
        // reproducible.
        let mut first = Vec::new();
        for k in 0..32 {
            if k % 3 == 0 {
                first.push(g.next_u32() as u64);
            } else {
                first.push(g.next_u64());
            }
        }
        g.set_state(0, 0);
        for (k, &want) in first.iter().enumerate() {
            let v = if k % 3 == 0 {
                g.next_u32() as u64
            } else {
                g.next_u64()
            };
            assert_eq!(v, want);
        }
    }

    #[test]
    fn sampler_blocking_independent() {
        // Filling a column in one call or in two chunks must agree, because
        // the sampler addresses entries by absolute coordinates.
        let mut s = PhiloxSampler::new(7);
        let mut whole = vec![0.0; 64];
        s.seek(0, 5);
        s.fill_unit_f64(&mut whole);

        let mut part1 = vec![0.0; 20];
        let mut part2 = vec![0.0; 44];
        s.seek(0, 5);
        s.fill_unit_f64(&mut part1);
        s.seek(20, 5);
        s.fill_unit_f64(&mut part2);

        assert_eq!(&whole[..20], &part1[..]);
        assert_eq!(&whole[20..], &part2[..]);
    }

    #[test]
    fn sampler_values_in_range() {
        let mut s = PhiloxSampler::new(7);
        let mut v = vec![0.0; 1000];
        s.seek(123, 456);
        s.fill_unit_f64(&mut v);
        assert!(v.iter().all(|&x| x > -1.0 && x < 1.0));
        // Mean should be near zero.
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }
}
