//! Distribution transforms for entries of the sketching matrix `S`.
//!
//! Paper §III-C / Figure 4 compares five ways of producing entries of `S`:
//! Gaussians on the fly, a pre-generated `S` in memory, uniform (-1,1) on the
//! fly, uniform (-1,1) via the *scaling trick*, and ±1 on the fly. The
//! transforms here implement the on-the-fly variants; the pre-generated
//! baseline lives in the `baselines` crate.
//!
//! * [`UnitUniform`] — divide a random signed integer by 2^31 (or the 64-bit
//!   analogue), paper's default.
//! * [`ScaledInt`] — the "(-1,1) and scaling trick": keep the raw integers as
//!   the entries of `S·f` for `f = 1/i32::MAX` and fold the scale factor into
//!   `A` (compute `(Sf)(A/f)`), skipping the int→float normalization in the
//!   innermost loop.
//! * [`Rademacher`] — iid ±1. Cheapest: 1 random *bit* per entry; the `i8`
//!   instantiation reproduces the paper's 8-bit variant, and sign-bit fills
//!   let kernels replace multiplies with add/subtract.
//! * [`Gaussian`] — Box–Muller, the straightforward (and per Figure 4,
//!   impractically slow) dense option. [`GaussianZiggurat`] is the fast
//!   rejection method, included to quantify how much of the Gaussian penalty
//!   is transform cost versus fundamental.

use crate::{u32_to_unit_f32, u64_to_open01_f64, u64_to_unit_f64, BlockRng};
use std::f64::consts::PI;
use std::marker::PhantomData;

/// Scalar types a distribution can emit. Sealed to the types the kernels use.
pub trait Element:
    Copy + Default + 'static + std::ops::Add<Output = Self> + std::ops::Mul<Output = Self>
{
}
impl Element for f32 {}
impl Element for f64 {}
impl Element for i8 {}
impl Element for i32 {}

/// A distribution that can fill a slice from a raw bit generator.
pub trait Distribution<T: Element> {
    /// Fill `out` with iid samples drawn from `rng`.
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [T]);

    /// Fused generate-and-accumulate: `out[i] += coeff · sample_i`. The
    /// default stages through a 64-element register tile; distributions with
    /// a cheap bit-to-value transform override it with a fully fused loop.
    #[inline]
    fn fill_axpy<R: BlockRng>(&mut self, rng: &mut R, coeff: T, out: &mut [T]) {
        let mut tile = [T::default(); 64];
        for chunk in out.chunks_mut(64) {
            let t = &mut tile[..chunk.len()];
            self.fill(rng, t);
            for (o, &s) in chunk.iter_mut().zip(t.iter()) {
                *o = *o + coeff * s;
            }
        }
    }

    /// Expected random *words* (64-bit draws) consumed per sample, used by
    /// the roofline model's `h` parameter (cost of generating one number).
    fn words_per_sample(&self) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// iid uniform over (-1, 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitUniform<T> {
    _t: PhantomData<T>,
}

impl<T> UnitUniform<T> {
    /// Construct the distribution marker.
    pub fn new() -> Self {
        Self { _t: PhantomData }
    }
}

impl Distribution<f64> for UnitUniform<f64> {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [f64]) {
        // Two-pass over a stack tile: a raw-bit fill (which multi-lane
        // generators implement with L-way ILP) followed by a branchless,
        // vectorizable conversion loop.
        let mut buf = [0u64; 64];
        for chunk in out.chunks_mut(64) {
            let bits = &mut buf[..chunk.len()];
            rng.fill_u64(bits);
            for (o, &w) in chunk.iter_mut().zip(bits.iter()) {
                *o = u64_to_unit_f64(w);
            }
        }
    }

    /// Fully fused: raw bits -> branchless unit conversion -> fma, one pass
    /// over `out`, samples never touching memory beyond a 64-word tile.
    #[inline]
    fn fill_axpy<R: BlockRng>(&mut self, rng: &mut R, coeff: f64, out: &mut [f64]) {
        let mut bits = [0u64; 64];
        for chunk in out.chunks_mut(64) {
            let b = &mut bits[..chunk.len()];
            rng.fill_u64(b);
            for (o, &w) in chunk.iter_mut().zip(b.iter()) {
                *o = coeff.mul_add(u64_to_unit_f64(w), *o);
            }
        }
    }

    fn words_per_sample(&self) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "uniform(-1,1) f64"
    }
}

impl Distribution<f32> for UnitUniform<f32> {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [f32]) {
        // Two f32 samples per 64-bit word, staged through a bit tile so
        // multi-lane generators fill with full ILP.
        let mut bits = [0u64; 32];
        for chunk in out.chunks_mut(64) {
            let words = chunk.len().div_ceil(2);
            let b = &mut bits[..words];
            rng.fill_u64(b);
            let mut pairs = chunk.chunks_exact_mut(2);
            for (pair, &w) in (&mut pairs).zip(b.iter()) {
                pair[0] = u32_to_unit_f32(w as u32);
                pair[1] = u32_to_unit_f32((w >> 32) as u32);
            }
            if let [o] = pairs.into_remainder() {
                *o = u32_to_unit_f32(b[words - 1] as u32);
            }
        }
    }

    /// Fused bits → f32 conversion → fma.
    #[inline]
    fn fill_axpy<R: BlockRng>(&mut self, rng: &mut R, coeff: f32, out: &mut [f32]) {
        let mut bits = [0u64; 32];
        for chunk in out.chunks_mut(64) {
            let words = chunk.len().div_ceil(2);
            let b = &mut bits[..words];
            rng.fill_u64(b);
            let mut pairs = chunk.chunks_exact_mut(2);
            for (pair, &w) in (&mut pairs).zip(b.iter()) {
                pair[0] = coeff.mul_add(u32_to_unit_f32(w as u32), pair[0]);
                pair[1] = coeff.mul_add(u32_to_unit_f32((w >> 32) as u32), pair[1]);
            }
            if let [o] = pairs.into_remainder() {
                *o = coeff.mul_add(u32_to_unit_f32(b[words - 1] as u32), *o);
            }
        }
    }

    fn words_per_sample(&self) -> f64 {
        0.5
    }

    fn name(&self) -> &'static str {
        "uniform(-1,1) f32"
    }
}

/// The scaling trick: entries are raw signed 32-bit integers, implicitly
/// representing `S·f` with `f = 1/2^31`. The consumer multiplies `A` by `1/f`
/// once (or rescales the final sketch), so the per-entry normalization
/// disappears from the inner loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScaledInt;

impl ScaledInt {
    /// The implicit scale factor `f` such that the true entry is `int * f`.
    pub const SCALE: f64 = 1.0 / (1u64 << 31) as f64;

    /// Construct the distribution marker.
    pub fn new() -> Self {
        Self
    }
}

impl Distribution<i32> for ScaledInt {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [i32]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let w = rng.next_u64();
            pair[0] = w as i32;
            pair[1] = (w >> 32) as i32;
        }
        for o in chunks.into_remainder() {
            *o = rng.next_u32() as i32;
        }
    }

    fn words_per_sample(&self) -> f64 {
        0.5
    }

    fn name(&self) -> &'static str {
        "(-1,1) scaling trick (raw i32)"
    }
}

/// Emit the scaling-trick integers widened to `f64` (what a kernel that
/// accumulates in f64 consumes); normalization still deferred to the caller.
impl Distribution<f64> for ScaledInt {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [f64]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let w = rng.next_u64();
            pair[0] = (w as i32) as f64;
            pair[1] = ((w >> 32) as i32) as f64;
        }
        for o in chunks.into_remainder() {
            *o = (rng.next_u32() as i32) as f64;
        }
    }

    fn words_per_sample(&self) -> f64 {
        0.5
    }

    fn name(&self) -> &'static str {
        "(-1,1) scaling trick (as f64)"
    }
}

/// iid Rademacher: ±1 with equal probability, one random bit per entry.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rademacher<T> {
    _t: PhantomData<T>,
}

impl<T> Rademacher<T> {
    /// Construct the distribution marker.
    pub fn new() -> Self {
        Self { _t: PhantomData }
    }
}

macro_rules! rademacher_float {
    ($t:ty, $nm:literal, $b:ty, $shift:literal) => {
        impl Distribution<$t> for Rademacher<$t> {
            #[inline]
            fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [$t]) {
                // 64 entries per random word: broadcast each bit to a sign.
                let mut chunks = out.chunks_exact_mut(64);
                for chunk in &mut chunks {
                    let mut w = rng.next_u64();
                    for o in chunk.iter_mut() {
                        *o = if w & 1 == 0 { 1.0 } else { -1.0 };
                        w >>= 1;
                    }
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let mut w = rng.next_u64();
                    for o in rem.iter_mut() {
                        *o = if w & 1 == 0 { 1.0 } else { -1.0 };
                        w >>= 1;
                    }
                }
            }

            /// Fused sign-apply: each random bit flips the sign of `coeff`
            /// via a bit-XOR on the float representation — no multiply, no
            /// branch, no scratch vector.
            #[inline]
            fn fill_axpy<R: BlockRng>(&mut self, rng: &mut R, coeff: $t, out: &mut [$t]) {
                let mut chunks = out.chunks_exact_mut(64);
                for chunk in &mut chunks {
                    let mut w = rng.next_u64();
                    for o in chunk.iter_mut() {
                        *o += <$t>::from_bits(coeff.to_bits() ^ ((w as $b & 1) << $shift));
                        w >>= 1;
                    }
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let mut w = rng.next_u64();
                    for o in rem.iter_mut() {
                        *o += <$t>::from_bits(coeff.to_bits() ^ ((w as $b & 1) << $shift));
                        w >>= 1;
                    }
                }
            }

            fn words_per_sample(&self) -> f64 {
                1.0 / 64.0
            }

            fn name(&self) -> &'static str {
                $nm
            }
        }
    };
}

rademacher_float!(f64, "±1 f64", u64, 63);
rademacher_float!(f32, "±1 f32", u32, 31);

impl Distribution<i8> for Rademacher<i8> {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [i8]) {
        let mut chunks = out.chunks_exact_mut(64);
        for chunk in &mut chunks {
            let mut w = rng.next_u64();
            for o in chunk.iter_mut() {
                *o = 1 - 2 * (w & 1) as i8;
                w >>= 1;
            }
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let mut w = rng.next_u64();
            for o in rem.iter_mut() {
                *o = 1 - 2 * (w & 1) as i8;
                w >>= 1;
            }
        }
    }

    fn words_per_sample(&self) -> f64 {
        1.0 / 64.0
    }

    fn name(&self) -> &'static str {
        "±1 i8"
    }
}

/// Standard normal via Box–Muller. Exact but requires `ln`, `sqrt`, `sincos`
/// per pair — the expensive transform that makes on-the-fly Gaussians
/// uncompetitive in Figure 4.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gaussian<T> {
    _t: PhantomData<T>,
}

impl<T> Gaussian<T> {
    /// Construct the distribution marker.
    pub fn new() -> Self {
        Self { _t: PhantomData }
    }
}

impl Distribution<f64> for Gaussian<f64> {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [f64]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let u1 = u64_to_open01_f64(rng.next_u64());
            let u2 = u64_to_open01_f64(rng.next_u64());
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * PI * u2).sin_cos();
            pair[0] = r * c;
            pair[1] = r * s;
        }
        if let [o] = chunks.into_remainder() {
            let u1 = u64_to_open01_f64(rng.next_u64());
            let u2 = u64_to_open01_f64(rng.next_u64());
            *o = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
        }
    }

    fn words_per_sample(&self) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "gaussian (Box-Muller) f64"
    }
}

impl Distribution<f32> for Gaussian<f32> {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [f32]) {
        let mut tmp = [0.0f64; 2];
        let mut g = Gaussian::<f64>::new();
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            g.fill(rng, &mut tmp);
            pair[0] = tmp[0] as f32;
            pair[1] = tmp[1] as f32;
        }
        if let [o] = chunks.into_remainder() {
            g.fill(rng, &mut tmp[..1]);
            *o = tmp[0] as f32;
        }
    }

    fn words_per_sample(&self) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "gaussian (Box-Muller) f32"
    }
}

// ----------------------------------------------------------------------------
// Ziggurat Gaussian
// ----------------------------------------------------------------------------

const ZIG_LAYERS: usize = 128;
const ZIG_R: f64 = 3.442619855899;
const ZIG_V: f64 = 9.91256303526217e-3;

/// Precomputed ziggurat layer tables for the standard normal.
struct ZigTables {
    /// Layer x-coordinates, `x[0] = R .. x[128] = 0` style layout.
    x: [f64; ZIG_LAYERS + 1],
    /// Density at the layer x-coordinates.
    y: [f64; ZIG_LAYERS + 1],
}

fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

fn zig_tables() -> &'static ZigTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut y = [0.0; ZIG_LAYERS + 1];
        // Layer 0 is the base strip: a rectangle of width V/f(R) whose
        // left part [0, R] lies under the curve and whose overhang maps to
        // the tail. Layers 1..127 are horizontal strips of equal area V.
        x[0] = ZIG_V / pdf(ZIG_R);
        y[0] = 0.0;
        x[1] = ZIG_R;
        y[1] = pdf(ZIG_R);
        for i in 2..ZIG_LAYERS {
            y[i] = y[i - 1] + ZIG_V / x[i - 1];
            x[i] = (-2.0 * y[i].ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        y[ZIG_LAYERS] = 1.0;
        ZigTables { x, y }
    })
}

/// Standard normal via the 128-layer ziggurat rejection method (Marsaglia &
/// Tsang). ~99% of samples cost one table lookup, one compare and one
/// multiply; included to separate "Gaussian transforms are slow" from
/// "Box–Muller is slow" in the Figure 4 ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct GaussianZiggurat;

impl GaussianZiggurat {
    /// Construct the distribution marker.
    pub fn new() -> Self {
        Self
    }

    #[inline]
    fn sample<R: BlockRng>(rng: &mut R, t: &ZigTables) -> f64 {
        loop {
            let w = rng.next_u64();
            let i = (w & 0x7F) as usize; // layer
            let sign = if w & 0x80 == 0 { 1.0 } else { -1.0 };
            let u = ((w >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            let x = u * t.x[i];
            if x < t.x[i + 1] {
                return sign * x;
            }
            if i == 0 {
                // Tail: Marsaglia's method for |x| > R.
                loop {
                    let u1 = u64_to_open01_f64(rng.next_u64());
                    let u2 = u64_to_open01_f64(rng.next_u64());
                    let xx = -u1.ln() / ZIG_R;
                    let yy = -u2.ln();
                    if yy + yy >= xx * xx {
                        return sign * (ZIG_R + xx);
                    }
                }
            }
            // Wedge: accept with the exact density.
            let u2 = u64_to_open01_f64(rng.next_u64());
            if t.y[i] + u2 * (t.y[i + 1] - t.y[i]) < pdf(x) {
                return sign * x;
            }
        }
    }
}

impl Distribution<f64> for GaussianZiggurat {
    #[inline]
    fn fill<R: BlockRng>(&mut self, rng: &mut R, out: &mut [f64]) {
        let t = zig_tables();
        for o in out.iter_mut() {
            *o = Self::sample(rng, t);
        }
    }

    fn words_per_sample(&self) -> f64 {
        1.03 // ~3% rejection overhead
    }

    fn name(&self) -> &'static str {
        "gaussian (ziggurat) f64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckpointRng, Xoshiro256PlusPlus};

    fn rng() -> CheckpointRng<Xoshiro256PlusPlus> {
        CheckpointRng::new(2024)
    }

    fn moments(v: &[f64]) -> (f64, f64) {
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn unit_uniform_moments() {
        let mut d = UnitUniform::<f64>::new();
        let mut r = rng();
        let mut v = vec![0.0; 200_000];
        d.fill(&mut r, &mut v);
        let (mean, var) = moments(&v);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 3.0).abs() < 0.01, "var {var} (expect 1/3)");
    }

    #[test]
    fn unit_uniform_f32_moments() {
        let mut d = UnitUniform::<f32>::new();
        let mut r = rng();
        let mut v = vec![0.0f32; 200_001]; // odd length exercises remainder
        d.fill(&mut r, &mut v);
        let v64: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let (mean, var) = moments(&v64);
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn rademacher_is_pm1_and_balanced() {
        let mut d = Rademacher::<f64>::new();
        let mut r = rng();
        let mut v = vec![0.0; 100_003];
        d.fill(&mut r, &mut v);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
        let (mean, var) = moments(&v);
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.02);
    }

    #[test]
    fn rademacher_i8_matches_f64_signs() {
        let mut df = Rademacher::<f64>::new();
        let mut di = Rademacher::<i8>::new();
        let mut r1 = rng();
        let mut r2 = rng();
        r1.set_state(4, 9);
        r2.set_state(4, 9);
        let mut vf = vec![0.0; 300];
        let mut vi = vec![0i8; 300];
        df.fill(&mut r1, &mut vf);
        di.fill(&mut r2, &mut vi);
        for (f, i) in vf.iter().zip(vi.iter()) {
            assert_eq!(*f, *i as f64);
        }
    }

    #[test]
    fn scaled_int_normalizes_to_unit_uniform() {
        let mut d = ScaledInt::new();
        let mut r = rng();
        let mut v = vec![0i32; 100_000];
        d.fill(&mut r, &mut v);
        let scaled: Vec<f64> = v.iter().map(|&x| x as f64 * ScaledInt::SCALE).collect();
        assert!(scaled.iter().all(|&x| (-1.0..1.0).contains(&x)));
        let (mean, var) = moments(&scaled);
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn scaled_int_f64_path_consistent_with_i32_path() {
        let mut d = ScaledInt::new();
        let mut r1 = rng();
        let mut r2 = rng();
        r1.set_state(2, 3);
        r2.set_state(2, 3);
        let mut vi = vec![0i32; 101];
        let mut vf = vec![0.0f64; 101];
        Distribution::<i32>::fill(&mut d, &mut r1, &mut vi);
        Distribution::<f64>::fill(&mut d, &mut r2, &mut vf);
        for (i, f) in vi.iter().zip(vf.iter()) {
            assert_eq!(*i as f64, *f);
        }
    }

    #[test]
    fn gaussian_box_muller_moments() {
        let mut d = Gaussian::<f64>::new();
        let mut r = rng();
        let mut v = vec![0.0; 200_000];
        d.fill(&mut r, &mut v);
        let (mean, var) = moments(&v);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        // Kurtosis ≈ 3 distinguishes normal from uniform.
        let kurt = v.iter().map(|x| x.powi(4)).sum::<f64>() / v.len() as f64 / (var * var);
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn gaussian_ziggurat_moments() {
        let mut d = GaussianZiggurat::new();
        let mut r = rng();
        let mut v = vec![0.0; 200_000];
        d.fill(&mut r, &mut v);
        let (mean, var) = moments(&v);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        let kurt = v.iter().map(|x| x.powi(4)).sum::<f64>() / v.len() as f64 / (var * var);
        assert!((kurt - 3.0).abs() < 0.12, "kurtosis {kurt}");
    }

    #[test]
    fn ziggurat_tail_produces_large_values() {
        let mut d = GaussianZiggurat::new();
        let mut r = rng();
        let mut v = vec![0.0; 2_000_000];
        d.fill(&mut r, &mut v);
        let beyond = v.iter().filter(|&&x| x.abs() > ZIG_R).count();
        // P(|Z| > 3.44) ≈ 5.8e-4 → expect ~1160 of 2M.
        assert!(
            (500..3000).contains(&beyond),
            "tail count {beyond} inconsistent with N(0,1)"
        );
    }

    #[test]
    fn odd_length_gaussian_fill() {
        let mut d = Gaussian::<f64>::new();
        let mut r = rng();
        let mut v = vec![0.0; 7];
        d.fill(&mut r, &mut v);
        assert!(v.iter().all(|&x| x != 0.0));
    }
}
