//! The sampler interface consumed by the sketching kernels.
//!
//! A [`BlockSampler`] is the object the pseudocode of Algorithms 3 and 4
//! calls `g`: it supports `set_state(r, j)` (O(1) checkpoint seek) and
//! `fill(v)` (`get_samples` — overwrite a scratch vector with the next `d₁`
//! entries of the current column of `S`). Kernels are generic over this
//! trait, so the same kernel body runs with xoshiro checkpoints, lane
//! (SIMD-style) generation, Philox counters, or the junk generator.

use crate::dist::{Distribution, Element};
use crate::BlockRng;

/// Relative cost metadata a sampler reports, feeding the roofline model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleCost {
    /// Expected 64-bit random words consumed per emitted sample.
    pub words_per_sample: f64,
    /// Short description of the generator + distribution pair.
    pub label: &'static str,
}

/// A positionable generator of sketch-matrix entries.
pub trait BlockSampler<T> {
    /// Seek to the checkpoint for `(block_row, col)` of `S` in O(1).
    fn set_state(&mut self, block_row: usize, col: usize);

    /// Overwrite `out` with the next `out.len()` samples of the current
    /// checkpoint stream (column-contiguous entries of `S`).
    fn fill(&mut self, out: &mut [T]);

    /// Fused generate-and-accumulate: `out[i] += coeff · sample_i` for the
    /// next `out.len()` samples. Semantically identical to `fill` into a
    /// scratch vector followed by an axpy, but implementations keep the
    /// samples in registers/a small tile — this is Algorithm 3's hot path,
    /// where every regenerated column of `S` is consumed exactly once.
    fn fill_axpy(&mut self, coeff: T, out: &mut [T]);

    /// Cost metadata for modelling and reports.
    fn cost(&self) -> SampleCost;
}

/// The standard sampler: a [`Distribution`] transform over a [`BlockRng`].
#[derive(Clone, Copy, Debug)]
pub struct DistSampler<D, R> {
    dist: D,
    rng: R,
}

impl<D, R> DistSampler<D, R> {
    /// Pair a distribution with a raw generator.
    pub fn new(dist: D, rng: R) -> Self {
        Self { dist, rng }
    }

    /// Access the underlying generator (e.g. to query its seed).
    pub fn rng(&self) -> &R {
        &self.rng
    }
}

impl<T, D, R> BlockSampler<T> for DistSampler<D, R>
where
    T: Element,
    D: Distribution<T>,
    R: BlockRng,
{
    #[inline(always)]
    fn set_state(&mut self, block_row: usize, col: usize) {
        self.rng.set_state(block_row, col);
    }

    #[inline(always)]
    fn fill(&mut self, out: &mut [T]) {
        self.dist.fill(&mut self.rng, out);
    }

    #[inline(always)]
    fn fill_axpy(&mut self, coeff: T, out: &mut [T]) {
        self.dist.fill_axpy(&mut self.rng, coeff, out);
    }

    fn cost(&self) -> SampleCost {
        SampleCost {
            words_per_sample: self.dist.words_per_sample(),
            label: self.dist.name(),
        }
    }
}

/// Convenience constructors so call sites read
/// `UnitUniform::<f64>::sampler(rng)`.
macro_rules! sampler_ctor {
    ($dist:ident) => {
        impl<T> crate::dist::$dist<T> {
            /// Pair this distribution with a raw generator.
            pub fn sampler<R: BlockRng>(rng: R) -> DistSampler<Self, R> {
                DistSampler::new(Self::new(), rng)
            }
        }
    };
    (unit $dist:ident) => {
        impl crate::dist::$dist {
            /// Pair this distribution with a raw generator.
            pub fn sampler<R: BlockRng>(rng: R) -> DistSampler<Self, R> {
                DistSampler::new(Self::new(), rng)
            }
        }
    };
}

sampler_ctor!(UnitUniform);
sampler_ctor!(Rademacher);
sampler_ctor!(Gaussian);
sampler_ctor!(unit ScaledInt);
sampler_ctor!(unit GaussianZiggurat);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckpointRng, Philox4x32, Rademacher, UnitUniform, Xoshiro256PlusPlus};

    #[test]
    fn sampler_reseek_reproducible() {
        let mut s = UnitUniform::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(1));
        let mut a = vec![0.0; 33];
        let mut b = vec![0.0; 33];
        s.set_state(6, 7);
        s.fill(&mut a);
        s.set_state(0, 0);
        s.fill(&mut b);
        s.set_state(6, 7);
        s.fill(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn sampler_generic_over_rng() {
        fn first<T, S: BlockSampler<T>>(mut s: S, n: usize) -> Vec<T>
        where
            T: crate::dist::Element + PartialEq + std::fmt::Debug,
        {
            let mut v = vec![T::default(); n];
            s.set_state(1, 2);
            s.fill(&mut v);
            v
        }
        let a: Vec<f64> = first(
            UnitUniform::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(3)),
            16,
        );
        let b: Vec<f64> = first(UnitUniform::<f64>::sampler(Philox4x32::new(3)), 16);
        assert_ne!(a, b); // different generator families, different sketch
        assert!(a.iter().chain(b.iter()).all(|&x| x > -1.0 && x < 1.0));
    }

    #[test]
    fn cost_metadata() {
        let s = Rademacher::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(3));
        let c = BlockSampler::<f64>::cost(&s);
        assert!(c.words_per_sample < 0.1);
        assert!(c.label.contains("±1"));
    }
}
