//! xoshiro128++ — the 32-bit sibling of xoshiro256++, useful when the
//! sketching kernel works in `f32` (the paper's SpMM experiments use 32-bit
//! values; one 32-bit word per entry halves generation cost).

use crate::splitmix::SplitMix64;

/// xoshiro128++ generator: 128 bits of state, period 2^128 − 1, 32-bit output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Xoshiro128PlusPlus {
    s: [u32; 4],
}

impl Xoshiro128PlusPlus {
    /// Seed via SplitMix64 expansion (two 64-bit words split into four u32s).
    #[inline]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let a = sm.next_u64();
        let b = sm.next_u64();
        let s = [a as u32, (a >> 32) as u32, b as u32, (b >> 32) as u32];
        if s == [0; 4] {
            return Self {
                s: [0x9E3779B9, 1, 2, 3],
            };
        }
        Self { s }
    }

    /// Construct from a raw 128-bit state. Must not be all zero.
    #[inline]
    pub fn from_state(s: [u32; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro128++ state must be nonzero");
        Self { s }
    }

    /// The raw state words.
    #[inline]
    pub fn state(&self) -> [u32; 4] {
        self.s
    }

    /// Next 32 bits.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(7)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 9;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(11);
        result
    }

    /// Next 64 bits (two 32-bit draws).
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Xoshiro128PlusPlus::new(7);
        let mut b = Xoshiro128PlusPlus::new(7);
        let mut c = Xoshiro128PlusPlus::new(8);
        let mut diverged = false;
        for _ in 0..100 {
            let x = a.next_u32();
            assert_eq!(x, b.next_u32());
            if x != c.next_u32() {
                diverged = true;
            }
        }
        assert!(diverged);
    }

    #[test]
    fn reference_sequence() {
        // State {1,2,3,4} prefix from the reference C implementation.
        let mut g = Xoshiro128PlusPlus::from_state([1, 2, 3, 4]);
        let expect: [u32; 4] = [641, 1573767, 3222811527, 3517856514];
        for e in expect {
            assert_eq!(g.next_u32(), e);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_state_rejected() {
        let _ = Xoshiro128PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn u64_combines_two_words() {
        let mut a = Xoshiro128PlusPlus::new(5);
        let mut b = Xoshiro128PlusPlus::new(5);
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn bit_balance() {
        let mut g = Xoshiro128PlusPlus::new(77);
        let n = 20_000;
        let ones: u64 = (0..n).map(|_| g.next_u32().count_ones() as u64).sum();
        let frac = ones as f64 / (32.0 * n as f64);
        assert!((frac - 0.5).abs() < 0.005, "bit bias: {frac}");
    }
}
