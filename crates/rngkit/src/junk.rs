//! The "junk" generator — paper §V-A, final note.
//!
//! Replacing every randomly generated entry of `S` with "a number computed
//! from simple addition" upper-bounds kernel performance with RNG cost
//! removed; the paper saw ~2x headroom on `shar_te2-b2`, arguing that a
//! hardware RNG would be impactful. [`JunkSampler`] produces such entries: a
//! cheap affine recurrence that the compiler cannot hoist entirely (values
//! still depend on position), with near-zero per-sample cost. **Not random**
//! — for ablation only; sketch quality guarantees do not apply.

use crate::dist::Element;
use crate::fill::{BlockSampler, SampleCost};

/// A deliberately trivial entry generator for RNG-cost ablations.
#[derive(Clone, Copy, Debug)]
pub struct JunkSampler {
    state: f64,
    step: f64,
}

impl JunkSampler {
    /// Create a junk sampler. `seed` only perturbs the starting value.
    pub fn new(seed: u64) -> Self {
        Self {
            state: (seed % 97) as f64 * 1e-2 + 0.1,
            step: 1.9e-3,
        }
    }
}

/// Junk fill for float element types: a bounded sawtooth in (-1, 1).
macro_rules! junk_impl {
    ($t:ty) => {
        impl BlockSampler<$t> for JunkSampler {
            #[inline(always)]
            fn set_state(&mut self, block_row: usize, col: usize) {
                // Position-dependent restart so the optimizer cannot
                // constant-fold entire columns, mirroring what "simple
                // addition" junk looks like in the paper's experiment.
                self.state = ((block_row as f64) * 7.3e-4 + (col as f64) * 1.1e-3) % 1.0 - 0.5;
            }

            #[inline(always)]
            fn fill(&mut self, out: &mut [$t]) {
                // Index-based affine ramp: no loop-carried dependency, no
                // branch — vectorizes fully, which is the point: entries
                // "computed from simple addition" at near-zero cost.
                let base = self.state;
                let step = self.step;
                for (k, o) in out.iter_mut().enumerate() {
                    *o = (k as f64).mul_add(step, base) as $t;
                }
                self.state = base + out.len() as f64 * step;
            }

            #[inline(always)]
            fn fill_axpy(&mut self, coeff: $t, out: &mut [$t]) {
                let base = self.state;
                let step = self.step;
                for (k, o) in out.iter_mut().enumerate() {
                    *o += coeff * (k as f64).mul_add(step, base) as $t;
                }
                self.state = base + out.len() as f64 * step;
            }

            fn cost(&self) -> SampleCost {
                SampleCost {
                    words_per_sample: 0.0,
                    label: "junk (RNG-free upper bound)",
                }
            }
        }
    };
}

junk_impl!(f64);
junk_impl!(f32);

impl BlockSampler<i8> for JunkSampler {
    #[inline(always)]
    fn set_state(&mut self, block_row: usize, col: usize) {
        self.state = (block_row ^ col) as f64;
    }

    #[inline(always)]
    fn fill(&mut self, out: &mut [i8]) {
        let mut s = self.state as i64;
        for o in out.iter_mut() {
            s += 1;
            *o = if s & 1 == 0 { 1 } else { -1 };
        }
        self.state = s as f64;
    }

    #[inline(always)]
    fn fill_axpy(&mut self, coeff: i8, out: &mut [i8]) {
        let mut s = self.state as i64;
        for o in out.iter_mut() {
            s += 1;
            *o += if s & 1 == 0 { coeff } else { -coeff };
        }
        self.state = s as f64;
    }

    fn cost(&self) -> SampleCost {
        SampleCost {
            words_per_sample: 0.0,
            label: "junk ±1 (RNG-free upper bound)",
        }
    }
}

// Ensure the macro's Element bound assumptions stay true if Element evolves.
const _: fn() = || {
    fn assert_element<T: Element>() {}
    assert_element::<f64>();
    assert_element::<f32>();
    assert_element::<i8>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn junk_values_finite_and_cheap_shape() {
        let mut j = JunkSampler::new(3);
        let mut v = vec![0.0f64; 10_000];
        BlockSampler::<f64>::set_state(&mut j, 0, 0);
        BlockSampler::<f64>::fill(&mut j, &mut v);
        assert!(v.iter().all(|&x| x.is_finite() && x.abs() < 100.0));
        // Affine ramp: exact second differences are zero.
        assert!((v[2] - 2.0 * v[1] + v[0]).abs() < 1e-12);
    }

    #[test]
    fn junk_is_position_dependent() {
        let mut j = JunkSampler::new(3);
        let mut a = vec![0.0f64; 8];
        let mut b = vec![0.0f64; 8];
        BlockSampler::<f64>::set_state(&mut j, 0, 1);
        BlockSampler::<f64>::fill(&mut j, &mut a);
        BlockSampler::<f64>::set_state(&mut j, 0, 2);
        BlockSampler::<f64>::fill(&mut j, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn junk_reports_zero_rng_cost() {
        let j = JunkSampler::new(0);
        assert_eq!(BlockSampler::<f64>::cost(&j).words_per_sample, 0.0);
    }

    #[test]
    fn junk_i8_alternates_signs() {
        let mut j = JunkSampler::new(0);
        let mut v = vec![0i8; 100];
        BlockSampler::<i8>::set_state(&mut j, 1, 1);
        BlockSampler::<i8>::fill(&mut j, &mut v);
        assert!(v.iter().all(|&x| x == 1 || x == -1));
        assert!(v.windows(2).all(|w| w[0] != w[1]));
    }
}
