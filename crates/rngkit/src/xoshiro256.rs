//! xoshiro256++ — the 64-bit XOR-shift-rotate generator of Blackman & Vigna
//! ("Scrambled linear pseudorandom number generators", TOMS 2021), the same
//! family the paper uses via Julia's built-in RNG (§IV-B2).

use crate::splitmix::SplitMix64;

/// xoshiro256++ generator: 256 bits of state, period 2^256 − 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed via SplitMix64 expansion, as recommended by the authors.
    #[inline]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // An all-zero state is invalid (fixed point of the linear engine);
        // SplitMix64 cannot produce four zero words from any seed, but we
        // keep the guard for states set directly.
        if s == [0; 4] {
            s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Construct from a raw 256-bit state. Must not be all zero.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must be nonzero");
        Self { s }
    }

    /// The raw state words.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next 64 bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The 2^128-step jump polynomial: advances the state as if 2^128 calls
    /// to `next_u64` had been made. Used to derive provably non-overlapping
    /// parallel streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for b in 0..64 {
                if (word >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Test vector from the reference C implementation: state
        // {1, 2, 3, 4} produces this prefix.
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expect {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::new(99);
        let mut b = Xoshiro256PlusPlus::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256PlusPlus::new(1);
        let mut b = Xoshiro256PlusPlus::new(2);
        let equal = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal <= 1, "streams should be distinct, {equal} collisions");
    }

    #[test]
    fn jump_changes_state_deterministically() {
        let mut a = Xoshiro256PlusPlus::new(5);
        let mut b = Xoshiro256PlusPlus::new(5);
        a.jump();
        b.jump();
        assert_eq!(a.state(), b.state());
        let mut c = Xoshiro256PlusPlus::new(5);
        assert_ne!(a.state(), c.state());
        let _ = c.next_u64();
    }

    #[test]
    fn output_bits_look_balanced() {
        let mut g = Xoshiro256PlusPlus::new(2024);
        let mut ones = 0u64;
        let n = 10_000;
        for _ in 0..n {
            ones += g.next_u64().count_ones() as u64;
        }
        let frac = ones as f64 / (64.0 * n as f64);
        assert!((frac - 0.5).abs() < 0.005, "bit bias: {frac}");
    }
}
