#![warn(missing_docs)]
//! # rngkit — seekable random number generation for sketching kernels
//!
//! This crate is the random-number substrate for the sketching SpMM algorithms
//! of Liang, Murray, Buluç and Demmel, *"Fast multiplication of random dense
//! matrices with sparse matrices"* (IPPS 2024). The paper's central idea is that
//! the dense random matrix `S` in the sketch `Â = S·A` is never materialized:
//! entries of `S` are **regenerated on the fly**, column-block by column-block,
//! each time a kernel needs them. That only works if the generator state for an
//! arbitrary `(block_row, column)` coordinate of `S` can be recovered in O(1)
//! time (paper §IV-B).
//!
//! Two generator families are provided, mirroring the paper:
//!
//! * [`Xoshiro256PlusPlus`] / [`Xoshiro128PlusPlus`] — XOR-shift based
//!   generators (Blackman–Vigna). Fast, but sequential: O(1) seeking is
//!   obtained by *re-deriving* a fresh state from `(seed, block_row, col)`
//!   with a strong avalanche mix. This is the paper's "blocks as checkpoints"
//!   scheme: reproducibility of the sketch depends on the blocking.
//! * [`Philox4x32`] — a counter-based RNG (Salmon et al., Random123). Entries
//!   are a pure function of `(seed, row, col)`, so the sketch is reproducible
//!   independent of blocking and thread count (the RandBLAS-compatible mode,
//!   paper §IV-C). The paper found CBRNGs ~5x slower than xoshiro; our
//!   benchmarks reproduce that gap's direction.
//!
//! On top of the raw generators sit the distribution fills of paper §III-C /
//! Figure 4: uniform over (-1,1), Rademacher ±1 (including a bit-sliced sign
//! mode), Gaussian (Box–Muller and Ziggurat), the "(-1,1) scaling trick"
//! (raw integers + a deferred scale factor), and a deliberately trivial
//! [`junk`] generator used to upper-bound kernel speed when RNG cost is
//! removed (paper §V-A, final note).
//!
//! ## The core abstraction
//!
//! [`BlockSampler`] is what the sketching kernels consume: "position yourself
//! at block-checkpoint `(r, j)` of `S`, then fill this slice with the next
//! `d₁` entries of column `j`". See the trait docs for the exact contract.
//!
//! ```
//! use rngkit::{BlockSampler, CheckpointRng, Xoshiro256PlusPlus, UnitUniform};
//!
//! let mut gen = UnitUniform::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(42));
//! let mut v = vec![0.0; 8];
//! gen.set_state(0, 17);       // checkpoint: block-row 0 of S, column 17
//! gen.fill(&mut v);           // v <- S[0..8, 17]
//! let first = v.clone();
//! gen.set_state(0, 17);       // O(1) reseek
//! gen.fill(&mut v);
//! assert_eq!(v, first);       // perfectly reproducible
//! ```

pub mod checkpoint;
pub mod dist;
pub mod fill;
pub mod junk;
pub mod lanes;
pub mod philox;
pub mod simd;
pub mod splitmix;
pub mod stats;
pub mod xoshiro128;
pub mod xoshiro256;

pub use checkpoint::CheckpointRng;
pub use dist::{Gaussian, GaussianZiggurat, Rademacher, ScaledInt, UnitUniform};
pub use fill::{BlockSampler, DistSampler, SampleCost};
pub use junk::JunkSampler;
pub use lanes::Lanes;
pub use philox::{Philox4x32, PhiloxSampler};
pub use splitmix::SplitMix64;
pub use xoshiro128::Xoshiro128PlusPlus;
pub use xoshiro256::Xoshiro256PlusPlus;

pub use simd::SimdXoshiro256PP;

/// The recommended high-throughput generator: eight struct-of-arrays
/// xoshiro256++ lanes (AVX-512-width) with O(1) checkpoint seeking — the
/// portable analogue of the SIMD xoshiro the paper uses through Julia's
/// `RandomNumbers.jl`.
pub type FastRng = SimdXoshiro256PP<8>;

/// A raw pseudo-random word generator that can be repositioned in O(1) to a
/// checkpoint addressed by `(block_row, col)`.
///
/// `block_row` indexes the block-row of the implicit sketching matrix `S`
/// (i.e. `i / b_d` in Algorithm 1 of the paper) and `col` indexes the column
/// of `S` (equivalently the row of the sparse matrix `A`). After
/// `set_state(r, j)`, successive `next_u64` calls enumerate a stream that is a
/// pure function of `(seed, r, j)` — re-seeking to the same coordinates
/// replays the identical stream.
pub trait BlockRng {
    /// Reposition the generator at the checkpoint for `(block_row, col)`.
    fn set_state(&mut self, block_row: usize, col: usize);

    /// Next 64 random bits of the current checkpoint stream.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits. Default takes the high half of [`next_u64`],
    /// which has better low-bit quality for `++`-scrambled generators.
    ///
    /// [`next_u64`]: BlockRng::next_u64
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a slice with raw 64-bit words. The default draws sequentially;
    /// multi-lane generators override this with an interleaved fill that
    /// breaks the sequential dependency chain (the scalar analogue of the
    /// paper's SIMD xoshiro).
    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        for o in out {
            *o = self.next_u64();
        }
    }

    /// Whether streams at the same `(block_row, col)` are identical regardless
    /// of how many words earlier checkpoints consumed. True for counter-based
    /// generators and for checkpoint-rederived sequential generators; the
    /// sketching kernels rely on this to regenerate columns of `S` at will.
    fn is_seekable(&self) -> bool {
        true
    }
}

/// Convert 64 random bits into a `f64` uniform over `(-1, 1)`.
///
/// Branchless: the bits are reinterpreted as a signed 54-bit integer (low
/// bit forced odd to exclude the endpoints) and scaled by `2^-53` — one
/// shift, one or, one int→float convert, one multiply, all vectorizable.
#[inline(always)]
pub fn u64_to_unit_f64(x: u64) -> f64 {
    (((x as i64) >> 10) | 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convert 32 random bits into an `f32` uniform over `(-1, 1)` (branchless,
/// same construction as [`u64_to_unit_f64`]).
#[inline(always)]
pub fn u32_to_unit_f32(x: u32) -> f32 {
    (((x as i32) >> 7) | 1) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Convert 64 random bits into a `f64` uniform over `[0, 1)`.
#[inline(always)]
pub fn u64_to_open01_f64(x: u64) -> f64 {
    ((x >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_f64_in_range() {
        let mut s = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = u64_to_unit_f64(s.next_u64());
            assert!(v > -1.0 && v < 1.0, "out of range: {v}");
        }
    }

    #[test]
    fn unit_f32_in_range() {
        let mut s = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = u32_to_unit_f32(s.next_u64() as u32);
            assert!(v > -1.0 && v < 1.0, "out of range: {v}");
        }
    }

    #[test]
    fn open01_in_range() {
        let mut s = SplitMix64::new(11);
        for _ in 0..10_000 {
            let v = u64_to_open01_f64(s.next_u64());
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_f64_sign_balanced() {
        let mut s = SplitMix64::new(13);
        let n = 100_000;
        let neg = (0..n)
            .filter(|_| u64_to_unit_f64(s.next_u64()) < 0.0)
            .count();
        let frac = neg as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "sign imbalance: {frac}");
    }
}
