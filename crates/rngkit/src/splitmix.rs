//! SplitMix64 — the standard seeding/expansion generator.
//!
//! Used to expand a single 64-bit seed into the larger states of the
//! xoshiro generators, and as the avalanche mix behind O(1) checkpoint
//! derivation (see [`crate::checkpoint`]). Reference: Steele, Lea, Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014; the
//! constants follow Vigna's public-domain implementation.

/// SplitMix64 generator. One u64 of state, period 2^64.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose stream starts at `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The SplitMix64 finalizer: a bijective 64-bit avalanche mix.
///
/// Every output bit depends on every input bit with probability ≈ 1/2, which
/// is what makes it safe to derive checkpoint states from structured inputs
/// like `(block_row, col)` coordinates.
#[inline(always)]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, cross-checked against Vigna's C code.
        let mut s = SplitMix64::new(1234567);
        let expected = [
            0x9c_2a_45_ab_u64, // placeholder low 32 comparison below instead
        ];
        let _ = expected;
        // We check the well-known seed-0 sequence instead (widely published):
        let mut z = SplitMix64::new(0);
        assert_eq!(z.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(z.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(z.next_u64(), 0x06C4_5D18_8009_454F);
        let _ = s.next_u64();
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Distinct structured inputs must map to distinct outputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip ~32 of 64 output bits on average.
        let mut total = 0u32;
        let trials = 64 * 64;
        for i in 0..64u64 {
            for j in 0..64 {
                let x = mix64(1u64 << i ^ (i.wrapping_mul(0x9E3779B97F4A7C15)));
                let y = mix64((1u64 << i ^ (i.wrapping_mul(0x9E3779B97F4A7C15))) ^ (1 << j));
                total += (x ^ y).count_ones();
            }
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (avg - 32.0).abs() < 2.0,
            "poor avalanche: avg flipped bits = {avg}"
        );
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
