//! Interleaved multi-lane generation — the scalar analogue of SIMD RNG.
//!
//! The paper leans on Julia's SIMD xoshiro (4–8 generator copies advanced in
//! lockstep, one per vector lane). In portable Rust we express the same
//! structure as `L` independent generator copies advanced round-robin; the
//! fixed-count inner loops are unrolled and auto-vectorized by LLVM. The lane
//! states are derived from the checkpoint seed plus a lane index, so a lane
//! fill is reproducible for a given `(seed, block_row, col, L)`.

use crate::checkpoint::{checkpoint_seed, Reseed};
use crate::splitmix::mix64;
use crate::{BlockRng, Xoshiro256PlusPlus};

/// `L` interleaved generator lanes behind the [`BlockRng`] interface.
#[derive(Clone, Copy, Debug)]
pub struct Lanes<G, const L: usize> {
    seed: u64,
    lanes: [G; L],
    cursor: usize,
}

impl<G: Reseed + Copy, const L: usize> Lanes<G, L> {
    /// Create an `L`-lane generator under master `seed` at checkpoint (0,0).
    pub fn new(seed: u64) -> Self {
        assert!(L > 0 && L.is_power_of_two(), "lane count must be 2^k > 0");
        let mut s = Self {
            seed,
            lanes: [G::reseed(0); L],
            cursor: 0,
        };
        s.set_lanes(0, 0);
        s
    }

    #[inline(always)]
    fn set_lanes(&mut self, block_row: usize, col: usize) {
        let base = checkpoint_seed(self.seed, block_row, col);
        for (l, lane) in self.lanes.iter_mut().enumerate() {
            // Each lane gets an avalanche-separated sub-seed.
            *lane = G::reseed(mix64(base ^ (l as u64).wrapping_mul(0xA076_1D64_78BD_642F)));
        }
        self.cursor = 0;
    }
}

impl<const L: usize> Lanes<Xoshiro256PlusPlus, L> {
    /// Fill `out` with raw 64-bit words, `L` lanes interleaved. The loop body
    /// over the lane array has a compile-time trip count, which LLVM unrolls
    /// and vectorizes — this is the hot path of Algorithm 3's `get_samples`.
    #[inline]
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut chunks = out.chunks_exact_mut(L);
        for chunk in &mut chunks {
            for (o, lane) in chunk.iter_mut().zip(self.lanes.iter_mut()) {
                *o = lane.next_u64();
            }
        }
        for (o, lane) in chunks
            .into_remainder()
            .iter_mut()
            .zip(self.lanes.iter_mut())
        {
            *o = lane.next_u64();
        }
    }
}

impl<G, const L: usize> BlockRng for Lanes<G, L>
where
    G: Reseed + Copy,
    G: LaneWord,
{
    #[inline(always)]
    fn set_state(&mut self, block_row: usize, col: usize) {
        self.set_lanes(block_row, col);
    }

    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        let w = self.lanes[self.cursor].word();
        self.cursor = (self.cursor + 1) % L;
        w
    }

    /// Interleaved fill: `L` independent recurrences advance in lockstep,
    /// giving the superscalar core `L`-way instruction parallelism.
    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        let mut chunks = out.chunks_exact_mut(L);
        for chunk in &mut chunks {
            for (o, lane) in chunk.iter_mut().zip(self.lanes.iter_mut()) {
                *o = lane.word();
            }
        }
        for (o, lane) in chunks
            .into_remainder()
            .iter_mut()
            .zip(self.lanes.iter_mut())
        {
            *o = lane.word();
        }
    }
}

/// A generator that can emit one 64-bit word (lane-advance step).
pub trait LaneWord {
    /// Advance this lane by one word.
    fn word(&mut self) -> u64;
}

impl LaneWord for Xoshiro256PlusPlus {
    #[inline(always)]
    fn word(&mut self) -> u64 {
        self.next_u64()
    }
}

impl LaneWord for crate::Xoshiro128PlusPlus {
    #[inline(always)]
    fn word(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type L4 = Lanes<Xoshiro256PlusPlus, 4>;

    #[test]
    fn reseek_replays() {
        let mut g = L4::new(4);
        g.set_state(1, 2);
        let mut a = vec![0u64; 37];
        g.fill_u64(&mut a);
        g.set_state(3, 3);
        let mut junk = vec![0u64; 5];
        g.fill_u64(&mut junk);
        g.set_state(1, 2);
        let mut b = vec![0u64; 37];
        g.fill_u64(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn blockrng_matches_fill() {
        let mut g1 = L4::new(4);
        let mut g2 = L4::new(4);
        g1.set_state(7, 8);
        g2.set_state(7, 8);
        let mut filled = vec![0u64; 16];
        g1.fill_u64(&mut filled);
        for (i, &w) in filled.iter().enumerate() {
            assert_eq!(g2.next_u64(), w, "word {i}");
        }
    }

    #[test]
    fn lanes_are_independent() {
        let mut g = L4::new(10);
        g.set_state(0, 0);
        let mut out = vec![0u64; 4];
        g.fill_u64(&mut out);
        // All four lane outputs distinct.
        let set: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_rejected() {
        let _ = Lanes::<Xoshiro256PlusPlus, 0>::new(1);
    }

    #[test]
    fn remainder_handling() {
        // Length not divisible by L must still fill every slot.
        let mut g = L4::new(2);
        g.set_state(0, 1);
        let mut out = vec![0u64; 7];
        g.fill_u64(&mut out);
        assert!(
            out.iter().all(|&w| w != 0),
            "unfilled slot (p≈2^-64 false alarm)"
        );
    }
}
