//! Struct-of-arrays SIMD xoshiro256++ — the workhorse generator.
//!
//! `L` xoshiro256++ lanes stored as four `[u64; L]` state arrays so that one
//! generator step is a handful of elementwise array operations; with
//! `-C target-cpu=native` LLVM lowers each to a single AVX-512/AVX2 vector
//! instruction, reproducing the throughput of the SIMD xoshiro the paper
//! uses via Julia (§IV-A). Lane `l`'s stream is *bit-identical* to lane `l`
//! of [`crate::Lanes<Xoshiro256PlusPlus, L>`] at the same checkpoint — the
//! two differ only in memory layout (tested below).

use crate::checkpoint::checkpoint_seed;
use crate::splitmix::mix64;
use crate::BlockRng;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_SEP: u64 = 0xA076_1D64_78BD_642F;

/// `L`-lane struct-of-arrays xoshiro256++ with O(1) checkpoint seeking.
#[derive(Clone, Copy, Debug)]
pub struct SimdXoshiro256PP<const L: usize> {
    seed: u64,
    s0: [u64; L],
    s1: [u64; L],
    s2: [u64; L],
    s3: [u64; L],
    /// Buffered words for the scalar [`BlockRng::next_u64`] interface.
    buf: [u64; L],
    used: usize,
}

impl<const L: usize> SimdXoshiro256PP<L> {
    /// Create a generator under master `seed`, positioned at checkpoint (0,0).
    pub fn new(seed: u64) -> Self {
        assert!(L > 0 && L.is_power_of_two(), "lane count must be 2^k > 0");
        let mut g = Self {
            seed,
            s0: [0; L],
            s1: [0; L],
            s2: [0; L],
            s3: [0; L],
            buf: [0; L],
            used: L,
        };
        g.seek(0, 0);
        g
    }

    /// Reseed every lane from the `(block_row, col)` checkpoint. Matches
    /// `Lanes<Xoshiro256PlusPlus, L>`: lane `l`'s sub-seed is
    /// `mix64(base ^ l·LANE_SEP)` and the state words are the SplitMix64
    /// expansion of that sub-seed.
    #[inline]
    fn seek(&mut self, block_row: usize, col: usize) {
        let base = checkpoint_seed(self.seed, block_row, col);
        for l in 0..L {
            let lane_seed = mix64(base ^ (l as u64).wrapping_mul(LANE_SEP));
            self.s0[l] = mix64(lane_seed.wrapping_add(GOLDEN));
            self.s1[l] = mix64(lane_seed.wrapping_add(GOLDEN.wrapping_mul(2)));
            self.s2[l] = mix64(lane_seed.wrapping_add(GOLDEN.wrapping_mul(3)));
            self.s3[l] = mix64(lane_seed.wrapping_add(GOLDEN.wrapping_mul(4)));
        }
        self.used = L;
    }

    /// One lockstep xoshiro256++ round: `L` output words.
    // Indexed lane loops keep each statement a single vectorizable L-wide op;
    // iterator forms obscure that shape from LLVM's vectorizer.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn step(&mut self, out: &mut [u64; L]) {
        for l in 0..L {
            out[l] = self.s0[l]
                .wrapping_add(self.s3[l])
                .rotate_left(23)
                .wrapping_add(self.s0[l]);
        }
        let mut t = [0u64; L];
        for l in 0..L {
            t[l] = self.s1[l] << 17;
        }
        for l in 0..L {
            self.s2[l] ^= self.s0[l];
        }
        for l in 0..L {
            self.s3[l] ^= self.s1[l];
        }
        for l in 0..L {
            self.s1[l] ^= self.s2[l];
        }
        for l in 0..L {
            self.s0[l] ^= self.s3[l];
        }
        for l in 0..L {
            self.s2[l] ^= t[l];
        }
        for l in 0..L {
            self.s3[l] = self.s3[l].rotate_left(45);
        }
    }
}

impl<const L: usize> BlockRng for SimdXoshiro256PP<L> {
    #[inline(always)]
    fn set_state(&mut self, block_row: usize, col: usize) {
        self.seek(block_row, col);
    }

    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        if self.used >= L {
            let mut out = [0u64; L];
            self.step(&mut out);
            self.buf = out;
            self.used = 0;
        }
        let w = self.buf[self.used];
        self.used += 1;
        w
    }

    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        let mut chunks = out.chunks_exact_mut(L);
        let mut block = [0u64; L];
        for chunk in &mut chunks {
            self.step(&mut block);
            chunk.copy_from_slice(&block);
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            self.step(&mut block);
            rem.copy_from_slice(&block[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::Lanes;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn matches_aos_lanes_bit_exactly() {
        let mut soa = SimdXoshiro256PP::<4>::new(99);
        let mut aos = Lanes::<Xoshiro256PlusPlus, 4>::new(99);
        for &(r, c) in &[(0usize, 0usize), (3, 17), (120, 5)] {
            soa.set_state(r, c);
            aos.set_state(r, c);
            let mut a = vec![0u64; 64];
            let mut b = vec![0u64; 64];
            soa.fill_u64(&mut a);
            aos.fill_u64(&mut b);
            assert_eq!(a, b, "SoA and AoS lanes diverge at ({r},{c})");
        }
    }

    #[test]
    fn reseek_replays() {
        let mut g = SimdXoshiro256PP::<8>::new(5);
        g.set_state(2, 9);
        let mut a = vec![0u64; 100];
        g.fill_u64(&mut a);
        g.set_state(0, 0);
        let _ = g.next_u64();
        g.set_state(2, 9);
        let mut b = vec![0u64; 100];
        g.fill_u64(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn next_u64_matches_fill_prefix() {
        let mut g1 = SimdXoshiro256PP::<8>::new(7);
        let mut g2 = SimdXoshiro256PP::<8>::new(7);
        g1.set_state(1, 2);
        g2.set_state(1, 2);
        let mut filled = vec![0u64; 24];
        g1.fill_u64(&mut filled);
        for (i, &w) in filled.iter().enumerate() {
            assert_eq!(g2.next_u64(), w, "word {i}");
        }
    }

    #[test]
    fn bit_balance() {
        let mut g = SimdXoshiro256PP::<8>::new(1234);
        g.set_state(0, 0);
        let mut v = vec![0u64; 100_000];
        g.fill_u64(&mut v);
        let ones: u64 = v.iter().map(|w| w.count_ones() as u64).sum();
        let frac = ones as f64 / (64.0 * v.len() as f64);
        assert!((frac - 0.5).abs() < 0.005, "bit bias {frac}");
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_rejected() {
        let _ = SimdXoshiro256PP::<0>::new(1);
    }
}
