#![warn(missing_docs)]
//! # faultkit — deterministic, seeded fault injection
//!
//! A failpoint-style injection layer for the hardening stack. Library code
//! marks *sites* (`faultkit::fire("sketch/nan_stream")`) at which a fault
//! *may* be injected; whether it actually fires is decided by a plan loaded
//! from the `SKETCH_FAULTS` environment variable or installed
//! programmatically with [`set_plan_str`].
//!
//! Design constraints, mirroring obskit's gate:
//!
//! * **Disabled path = one relaxed atomic load.** When no plan is armed,
//!   [`fire`] is a single `Relaxed` load of a process-global byte and a
//!   predictable branch — cheap enough to sit on kernel block boundaries.
//!   Hot per-nonzero loops must additionally hoist [`armed`] out of the loop
//!   (the robust sketch drivers check once per kernel entry).
//! * **Determinism.** Probabilistic triggers hash `(seed, site, hit index)`
//!   through splitmix64 — the same plan, seed and call sequence always fires
//!   the same faults, so every chaoscheck cell is reproducible.
//!
//! ## Plan grammar
//!
//! `SKETCH_FAULTS` is a comma-separated list of `site=trigger` clauses:
//!
//! ```text
//! SKETCH_FAULTS="sketch/nan_stream=once,parkit/worker=nth:3,sketch/alloc=p:0.25"
//! ```
//!
//! | trigger   | meaning                                             |
//! |-----------|-----------------------------------------------------|
//! | `always`  | fires on every hit                                  |
//! | `once`    | fires on the first hit only                         |
//! | `nth:N`   | fires on the N-th hit (1-based), once               |
//! | `every:N` | fires on every N-th hit                             |
//! | `p:F`     | fires with probability F, deterministically seeded  |
//! | `off`     | never fires (site stays counted)                    |
//!
//! `SKETCH_FAULTS_SEED` (u64, default `0xFA17`) seeds the `p:` triggers.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

const GATE_INIT: u8 = 1;
const GATE_ARMED: u8 = 2;

/// Process-global gate byte: bit 0 = env examined, bit 1 = a plan is armed.
static GATE: AtomicU8 = AtomicU8::new(0);

/// How a fault site decides whether a given hit fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit only.
    Once,
    /// Fire on the N-th hit (1-based), once.
    Nth(u64),
    /// Fire on every N-th hit.
    Every(u64),
    /// Fire with probability `p`, deterministically derived from
    /// `(seed, site, hit index)`.
    Prob(f64),
    /// Never fire.
    Off,
}

#[derive(Clone, Debug)]
struct Point {
    site: String,
    trigger: Trigger,
    hits: u64,
    fired: u64,
}

#[derive(Clone, Debug, Default)]
struct Plan {
    seed: u64,
    points: Vec<Point>,
}

static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

fn lock_plan() -> std::sync::MutexGuard<'static, Option<Plan>> {
    // A poisoned plan lock only means a panic landed between fault-injection
    // bookkeeping updates; the plan itself stays coherent (plain fields, no
    // invariants spanning the lock), so recover rather than propagate.
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_site(site: &str) -> u64 {
    // FNV-1a, good enough to separate the handful of site names.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Parse one trigger clause (`always`, `once`, `nth:3`, `every:2`, `p:0.5`,
/// `off`).
fn parse_trigger(s: &str) -> Result<Trigger, String> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix("nth:") {
        let n: u64 = n.parse().map_err(|_| format!("bad nth count {n:?}"))?;
        if n == 0 {
            return Err("nth:0 is meaningless (hits are 1-based)".into());
        }
        return Ok(Trigger::Nth(n));
    }
    if let Some(n) = s.strip_prefix("every:") {
        let n: u64 = n.parse().map_err(|_| format!("bad every count {n:?}"))?;
        if n == 0 {
            return Err("every:0 is meaningless".into());
        }
        return Ok(Trigger::Every(n));
    }
    if let Some(p) = s.strip_prefix("p:") {
        let p: f64 = p.parse().map_err(|_| format!("bad probability {p:?}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} outside [0, 1]"));
        }
        return Ok(Trigger::Prob(p));
    }
    match s {
        "always" => Ok(Trigger::Always),
        "once" => Ok(Trigger::Once),
        "off" => Ok(Trigger::Off),
        other => Err(format!("unknown trigger {other:?}")),
    }
}

fn parse_plan(spec: &str, seed: u64) -> Result<Plan, String> {
    let mut points = Vec::new();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, trig) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause {clause:?} is not site=trigger"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("empty site in clause {clause:?}"));
        }
        points.push(Point {
            site: site.to_string(),
            trigger: parse_trigger(trig)?,
            hits: 0,
            fired: 0,
        });
    }
    Ok(Plan { seed, points })
}

fn init_from_env() {
    let seed = std::env::var("SKETCH_FAULTS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0xFA17);
    let armed = match std::env::var("SKETCH_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => match parse_plan(&spec, seed) {
            Ok(plan) => {
                let has_live = plan.points.iter().any(|p| p.trigger != Trigger::Off);
                *lock_plan() = Some(plan);
                has_live
            }
            Err(e) => {
                eprintln!("faultkit: ignoring malformed SKETCH_FAULTS: {e}");
                false
            }
        },
        _ => false,
    };
    let bits = GATE_INIT | if armed { GATE_ARMED } else { 0 };
    // Another thread may have raced the init; `fetch_or` keeps both outcomes.
    GATE.fetch_or(bits, Ordering::Release);
}

/// Is any fault plan armed? One relaxed load on the common (disarmed) path.
///
/// Hot loops should hoist this to their entry: the contract is one load per
/// *kernel or block invocation*, not per element.
#[inline(always)]
pub fn armed() -> bool {
    let g = GATE.load(Ordering::Relaxed);
    if g & GATE_INIT == 0 {
        init_slow();
        return GATE.load(Ordering::Relaxed) & GATE_ARMED != 0;
    }
    g & GATE_ARMED != 0
}

#[cold]
fn init_slow() {
    init_from_env();
}

/// Install a fault plan programmatically (tests, chaoscheck). Replaces any
/// existing plan and arms the gate; an empty/`off`-only spec disarms it.
///
/// Returns `Err` with a description if the spec does not parse; the previous
/// plan is left untouched in that case.
pub fn set_plan_str(spec: &str, seed: u64) -> Result<(), String> {
    let plan = parse_plan(spec, seed)?;
    let live = plan.points.iter().any(|p| p.trigger != Trigger::Off);
    *lock_plan() = Some(plan);
    if live {
        GATE.store(GATE_INIT | GATE_ARMED, Ordering::Release);
    } else {
        GATE.store(GATE_INIT, Ordering::Release);
    }
    Ok(())
}

/// Remove the active plan and disarm the gate (fault sites become free again
/// apart from the single relaxed load).
pub fn clear() {
    *lock_plan() = None;
    GATE.store(GATE_INIT, Ordering::Release);
}

/// Should the fault at `site` fire on this hit?
///
/// Disarmed: one relaxed load, returns `false`. Armed: takes the plan lock,
/// bumps the site's hit counter and evaluates its trigger. Unknown sites
/// never fire (and are not tracked).
pub fn fire(site: &str) -> bool {
    if !armed() {
        return false;
    }
    let mut guard = lock_plan();
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let seed = plan.seed;
    let Some(p) = plan.points.iter_mut().find(|p| p.site == site) else {
        return false;
    };
    p.hits += 1;
    let fires = match p.trigger {
        Trigger::Always => true,
        Trigger::Once => p.hits == 1,
        Trigger::Nth(n) => p.hits == n,
        Trigger::Every(n) => p.hits.is_multiple_of(n),
        Trigger::Prob(prob) => {
            let z = splitmix64(seed ^ hash_site(site) ^ p.hits);
            // 53 high bits → uniform in [0, 1).
            let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            u < prob
        }
        Trigger::Off => false,
    };
    if fires {
        p.fired += 1;
    }
    fires
}

/// How many times `site` has fired under the current plan.
pub fn fired_count(site: &str) -> u64 {
    lock_plan()
        .as_ref()
        .and_then(|p| p.points.iter().find(|pt| pt.site == site))
        .map_or(0, |pt| pt.fired)
}

/// How many times `site` has been hit (evaluated) under the current plan.
pub fn hit_count(site: &str) -> u64 {
    lock_plan()
        .as_ref()
        .and_then(|p| p.points.iter().find(|pt| pt.site == site))
        .map_or(0, |pt| pt.hits)
}

/// All sites of the active plan with their `(hits, fired)` counters, for
/// reports. Empty when disarmed.
pub fn site_stats() -> Vec<(String, u64, u64)> {
    lock_plan().as_ref().map_or_else(Vec::new, |p| {
        p.points
            .iter()
            .map(|pt| (pt.site.clone(), pt.hits, pt.fired))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The gate and plan are process-global and the harness runs tests
    // concurrently in one binary, so everything lives in one test function.
    #[test]
    fn plan_lifecycle_and_triggers() {
        // Disarmed: fire is free and false.
        clear();
        assert!(!armed());
        assert!(!fire("x/y"));

        // always / once / nth / every.
        set_plan_str("a=always,b=once,c=nth:3,d=every:2,e=off", 7).unwrap();
        assert!(armed());
        assert!(fire("a") && fire("a") && fire("a"));
        assert!(fire("b"));
        assert!(!fire("b") && !fire("b"));
        assert!(!fire("c") && !fire("c"));
        assert!(fire("c"));
        assert!(!fire("c"));
        assert!(!fire("d"));
        assert!(fire("d"));
        assert!(!fire("d"));
        assert!(fire("d"));
        assert!(!fire("e") && !fire("e"));
        assert_eq!(fired_count("a"), 3);
        assert_eq!(hit_count("c"), 4);
        assert_eq!(fired_count("c"), 1);
        assert_eq!(fired_count("e"), 0);
        assert_eq!(hit_count("e"), 2);

        // Unknown sites never fire and are not tracked.
        assert!(!fire("unknown/site"));
        assert_eq!(hit_count("unknown/site"), 0);

        // p: determinism — identical plan+seed ⇒ identical firing sequence;
        // rate lands near p for a fair trigger.
        let run = |seed: u64| -> Vec<bool> {
            set_plan_str("p/site=p:0.25", seed).unwrap();
            (0..400).map(|_| fire("p/site")).collect()
        };
        let s1 = run(42);
        let s2 = run(42);
        assert_eq!(s1, s2, "seeded probabilistic trigger must be deterministic");
        let rate = s1.iter().filter(|&&f| f).count() as f64 / s1.len() as f64;
        assert!((rate - 0.25).abs() < 0.08, "p:0.25 fired at rate {rate}");
        let s3 = run(43);
        assert_ne!(s1, s3, "different seeds should fire differently");

        // site_stats reflects the last plan.
        let stats = site_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "p/site");
        assert_eq!(stats[0].1, 400);

        // Malformed specs are rejected without clobbering the active plan.
        assert!(set_plan_str("novalue", 0).is_err());
        assert!(set_plan_str("x=nth:0", 0).is_err());
        assert!(set_plan_str("x=p:1.5", 0).is_err());
        assert!(set_plan_str("x=wat", 0).is_err());
        assert_eq!(hit_count("p/site"), 400, "failed parse must not clobber");

        // Off-only plans leave the gate disarmed.
        set_plan_str("x=off", 0).unwrap();
        assert!(!armed());

        clear();
        assert!(!armed());
    }
}
