//! Stand-ins for the paper's Table VIII least-squares matrices.
//!
//! The seven originals span three conditioning regimes, and the stand-ins
//! reproduce each regime's *mechanism* (not just a number), because the
//! mechanism is what differentiates the solvers in Tables IX–XI. Three
//! independent knobs are composed per matrix:
//!
//! * **chain** — right-multiplication by the bidiagonal `W = bidiag(1, c)`:
//!   column `j` becomes `colⱼ + c·colⱼ₋₁`. `W`'s spectrum is a *continuum*
//!   spanning `[1−c, 1+c]`, so `cond(A·W) ≈ (1+c)/(1−c)` resists diagonal
//!   equilibration and forces LSQR-D into its slow spread-spectrum regime —
//!   exactly the rail matrices' behaviour (cond(AD) ≈ 200–350, thousands of
//!   iterations).
//! * **scale** — geometric column scaling over `k` orders of magnitude:
//!   inflates `cond(A)` in a way equilibration *removes* (`spal_004`,
//!   `specular`: cond 4e4/2e14 collapsing to 1e3/30 after scaling).
//! * **dup** — near-duplicate column pairs at relative distance `ε`:
//!   numerical rank deficiency no scaling fixes (`connectus`, `landmark`:
//!   cond ~1e16–1e18 before *and* after equilibration) — the SAP-SVD regime.
//!
//! Matrices whose original orientation is wide (`rail*`, `connectus`) are
//! generated directly in the transposed (tall) orientation, as the paper
//! transposes them before solving.

use crate::uniform::uniform_random;
use rngkit::{BlockRng, CheckpointRng, Xoshiro256PlusPlus};
use sparsekit::{CscMatrix, Scalar};

/// Conditioning regime of a stand-in (drives the suite's knob choices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondKind {
    /// Spread-spectrum conditioning that equilibration roughly preserves.
    Benign,
    /// Ill-conditioning dominated by uneven column norms; fixed by
    /// equilibration.
    ColumnScaled,
    /// Numerically dependent columns; equilibration does not help.
    RankDeficient,
}

/// Conditioning recipe: the three composable mechanisms.
#[derive(Clone, Copy, Debug)]
pub struct CondSpec {
    /// log10 of the chain conditioning target (0 = no chain). Sets the
    /// equilibration-resistant part of the spectrum: `cond(AD) ≈ 10^x`.
    pub chain_cond_log10: f64,
    /// Orders of magnitude of geometric column scaling (0 = none).
    pub scale_orders: f64,
    /// Relative distance `10^-x` of near-duplicate column pairs
    /// (0 = none; ≥ 12 gives numerical rank deficiency at f64 precision).
    pub dup_eps_log10: f64,
}

impl CondSpec {
    /// No conditioning mechanism: a plain well-conditioned sparse matrix.
    pub const WELL: CondSpec = CondSpec {
        chain_cond_log10: 0.0,
        scale_orders: 0.0,
        dup_eps_log10: 0.0,
    };

    /// Spread-spectrum chain only (the rails' regime).
    pub fn chain(cond_log10: f64) -> Self {
        CondSpec {
            chain_cond_log10: cond_log10,
            ..Self::WELL
        }
    }

    /// Column scaling over `orders`, with a mild chain of `cond_log10`.
    pub fn scaled(orders: f64, cond_log10: f64) -> Self {
        CondSpec {
            chain_cond_log10: cond_log10,
            scale_orders: orders,
            dup_eps_log10: 0.0,
        }
    }

    /// Rank-deficiency via duplicates at 10^-eps, plus a mild chain.
    pub fn deficient(eps_log10: f64, cond_log10: f64) -> Self {
        CondSpec {
            chain_cond_log10: cond_log10,
            scale_orders: 0.0,
            dup_eps_log10: eps_log10,
        }
    }
}

/// Published Table VIII properties (original orientation, before transpose).
#[derive(Clone, Copy, Debug)]
pub struct LsqPaperRow {
    /// Matrix name in the paper.
    pub name: &'static str,
    /// Original rows.
    pub rows: usize,
    /// Original columns.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Published cond(A).
    pub cond: f64,
    /// Published cond(A·D) after diagonal equilibration.
    pub cond_ad: f64,
    /// Conditioning mechanism (inferred from the cond / cond(AD) pair).
    pub kind: CondKind,
    /// Whether the paper uses the QR (true) or SVD (false) flavour of SAP.
    pub sap_qr: bool,
}

/// The seven least-squares matrices of Table VIII.
pub const TABLE8: [LsqPaperRow; 7] = [
    LsqPaperRow {
        name: "rail2586",
        rows: 2586,
        cols: 923269,
        nnz: 8011362,
        cond: 496.0,
        cond_ad: 263.44,
        kind: CondKind::Benign,
        sap_qr: true,
    },
    LsqPaperRow {
        name: "spal_004",
        rows: 10203,
        cols: 321696,
        nnz: 46168124,
        cond: 39389.87,
        cond_ad: 1147.79,
        kind: CondKind::ColumnScaled,
        sap_qr: true,
    },
    LsqPaperRow {
        name: "rail4284",
        rows: 4284,
        cols: 1096894,
        nnz: 11284032,
        cond: 399.78,
        cond_ad: 333.87,
        kind: CondKind::Benign,
        sap_qr: true,
    },
    LsqPaperRow {
        name: "rail582",
        rows: 582,
        cols: 56097,
        nnz: 402290,
        cond: 185.91,
        cond_ad: 180.49,
        kind: CondKind::Benign,
        sap_qr: true,
    },
    LsqPaperRow {
        name: "specular",
        rows: 477976,
        cols: 1442,
        nnz: 7647040,
        cond: 2.31e14,
        cond_ad: 29.85,
        kind: CondKind::ColumnScaled,
        sap_qr: false,
    },
    LsqPaperRow {
        name: "connectus",
        rows: 458,
        cols: 394792,
        nnz: 1127525,
        cond: 1.27e16,
        cond_ad: 1.28e16,
        kind: CondKind::RankDeficient,
        sap_qr: false,
    },
    LsqPaperRow {
        name: "landmark",
        rows: 71952,
        cols: 2704,
        nnz: 1146848,
        cond: 1.39e18,
        cond_ad: 2.30e17,
        kind: CondKind::RankDeficient,
        sap_qr: false,
    },
];

/// A generated least-squares problem.
pub struct LsqProblem {
    /// Name of the original matrix.
    pub name: &'static str,
    /// Tall data matrix (already transposed when the original is wide).
    pub a: CscMatrix<f64>,
    /// Published properties.
    pub paper: LsqPaperRow,
    /// The recipe used to generate the stand-in.
    pub spec: CondSpec,
}

impl LsqProblem {
    /// Tall dimensions `(m, n)` with `m ≥ n`.
    pub fn shape(&self) -> (usize, usize) {
        (self.a.nrows(), self.a.ncols())
    }
}

/// Generate a tall stand-in with the given conditioning recipe.
pub fn tall_conditioned(
    m: usize,
    n: usize,
    density: f64,
    spec: CondSpec,
    seed: u64,
) -> CscMatrix<f64> {
    assert!(m >= n, "stand-ins are tall: m >= n");
    // The chain doubles per-column nnz; compensate to hit the target density.
    let base_density = if spec.chain_cond_log10 > 0.0 {
        density / 2.0
    } else {
        density
    };
    let mut a = uniform_random::<f64>(m, n, base_density, seed);
    a = ensure_structural_rank(a, seed ^ 0x5EED);
    if spec.chain_cond_log10 > 0.0 {
        let kappa = 10f64.powf(spec.chain_cond_log10);
        let c = (kappa - 1.0) / (kappa + 1.0);
        a = chain_columns(&a, c);
    }
    if spec.scale_orders > 0.0 {
        a = scale_columns_geometric(&a, spec.scale_orders);
    }
    if spec.dup_eps_log10 > 0.0 {
        a = duplicate_columns(&a, 10f64.powf(-spec.dup_eps_log10), seed ^ 0xDEF1);
    }
    a
}

/// `A ← A·W` with `W = bidiag(1, c)`: column `j` becomes `colⱼ + c·colⱼ₋₁`.
fn chain_columns(a: &CscMatrix<f64>, c: f64) -> CscMatrix<f64> {
    let (m, n) = (a.nrows(), a.ncols());
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx = Vec::with_capacity(2 * a.nnz());
    let mut values = Vec::with_capacity(2 * a.nnz());
    for j in 0..n {
        let (rows, vals) = a.col(j);
        if j == 0 {
            row_idx.extend_from_slice(rows);
            values.extend_from_slice(vals);
        } else {
            // Sparse merge of col_j and c·col_{j-1}.
            let (prows, pvals) = a.col(j - 1);
            let (mut ia, mut ib) = (0usize, 0usize);
            while ia < rows.len() || ib < prows.len() {
                let ra = rows.get(ia).copied().unwrap_or(usize::MAX);
                let rb = prows.get(ib).copied().unwrap_or(usize::MAX);
                if ra < rb {
                    row_idx.push(ra);
                    values.push(vals[ia]);
                    ia += 1;
                } else if rb < ra {
                    row_idx.push(rb);
                    values.push(c * pvals[ib]);
                    ib += 1;
                } else {
                    let v = vals[ia] + c * pvals[ib];
                    if v != 0.0 {
                        row_idx.push(ra);
                        values.push(v);
                    }
                    ia += 1;
                    ib += 1;
                }
            }
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// Scale column `j` by `10^(-orders·j/(n-1))`.
fn scale_columns_geometric(a: &CscMatrix<f64>, orders: f64) -> CscMatrix<f64> {
    let (m, n) = (a.nrows(), a.ncols());
    let col_ptr = a.col_ptr().to_vec();
    let row_idx = a.row_idx().to_vec();
    let mut values = a.values().to_vec();
    for j in 0..n {
        let s = 10f64.powf(-orders * j as f64 / (n.max(2) - 1) as f64);
        for v in &mut values[col_ptr[j]..col_ptr[j + 1]] {
            *v *= s;
        }
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// Overwrite every 8th column (beyond the first) with a copy of its
/// predecessor at relative distance `eps`.
fn duplicate_columns(base: &CscMatrix<f64>, eps: f64, seed: u64) -> CscMatrix<f64> {
    let (m, n) = (base.nrows(), base.ncols());
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    rng.set_state(0, 0);
    let mut coo = sparsekit::CooMatrix::with_capacity(m, n, base.nnz());
    for j in 0..n {
        if j % 8 == 1 {
            let (rows, vals) = base.col(j - 1);
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                let p = rngkit::u64_to_unit_f64(rng.next_u64()) * eps;
                coo.push_unchecked(r, j, v * (1.0 + p));
            }
        } else {
            let (rows, vals) = base.col(j);
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                coo.push_unchecked(r, j, v);
            }
        }
    }
    match coo.to_csc() {
        Ok(a) => a,
        Err(e) => unreachable!("bounds preserved: {e}"),
    }
}

/// Add `1.0` at `(j + shift, j)` for every column `j`, ensuring nonempty
/// rows/columns without changing the density materially.
fn ensure_structural_rank<T: Scalar>(a: CscMatrix<T>, seed: u64) -> CscMatrix<T> {
    let (m, n) = (a.nrows(), a.ncols());
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    rng.set_state(0, 0);
    let shift = (rng.next_u64() % (m - n + 1).max(1) as u64) as usize;
    let mut coo = sparsekit::CooMatrix::with_capacity(m, n, a.nnz() + n);
    for j in 0..n {
        let (rows, vals) = a.col(j);
        let diag_row = j + shift;
        let mut has_diag = false;
        for (&r, &v) in rows.iter().zip(vals.iter()) {
            if r == diag_row {
                has_diag = true;
            }
            coo.push_unchecked(r, j, v);
        }
        if !has_diag {
            coo.push_unchecked(diag_row, j, T::ONE);
        }
    }
    match coo.to_csc() {
        Ok(a) => a,
        Err(e) => unreachable!("bounds preserved: {e}"),
    }
}

/// The per-matrix recipes, calibrated to the published cond / cond(AD).
pub fn paper_spec(name: &str) -> CondSpec {
    match name {
        // Rails: chain cond ≈ published cond(AD).
        "rail2586" => CondSpec::chain(2.42),
        "rail4284" => CondSpec::chain(2.52),
        "rail582" => CondSpec::chain(2.26),
        // spal_004: ~4.5 orders of scaling over a 1e3 chain.
        "spal_004" => CondSpec::scaled(1.54, 3.06),
        // specular: ~12.6 orders of scaling over a mild 30x chain.
        "specular" => CondSpec::scaled(12.6, 1.48),
        // connectus: rank deficiency, mild spread (LSQR-D needed only 73
        // iterations in the paper).
        "connectus" => CondSpec::deficient(14.0, 1.5),
        // landmark: rank deficiency over a stronger chain (462 iterations).
        "landmark" => CondSpec::deficient(14.0, 2.4),
        _ => CondSpec::WELL,
    }
}

/// Generate the Table VIII suite at dimension divisor `scale` (≥ 1). Wide
/// originals are emitted in transposed (tall) orientation.
pub fn lsq_suite(scale: usize) -> Vec<LsqProblem> {
    let scale = scale.max(1);
    TABLE8
        .iter()
        .map(|&paper| {
            // Tall orientation.
            let (tm, tn) = if paper.rows >= paper.cols {
                (paper.rows, paper.cols)
            } else {
                (paper.cols, paper.rows)
            };
            let m = (tm / scale).max(64);
            let n = (tn / scale).max(16).min(m);
            let density = paper.nnz as f64 / (paper.rows as f64 * paper.cols as f64);
            let spec = paper_spec(paper.name);
            let a = tall_conditioned(m, n, density, spec, 0xA11 + paper.rows as u64);
            LsqProblem {
                name: paper.name,
                a,
                paper,
                spec,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekit::cond::{cond2, cond2_equilibrated};
    use densekit::Matrix;

    fn densify(a: &CscMatrix<f64>) -> Matrix<f64> {
        Matrix::from_fn(a.nrows(), a.ncols(), |i, j| a.get(i, j))
    }

    #[test]
    fn well_conditioned_baseline() {
        let a = tall_conditioned(400, 40, 0.02, CondSpec::WELL, 3);
        let c = cond2(&densify(&a));
        assert!(
            c.is_finite() && c < 1e3,
            "well-conditioned stand-in cond {c}"
        );
    }

    #[test]
    fn chain_spreads_spectrum_and_resists_equilibration() {
        let a = tall_conditioned(600, 48, 0.05, CondSpec::chain(2.4), 5);
        let d = densify(&a);
        let c = cond2(&d);
        let c_ad = cond2_equilibrated(&d);
        // cond ≈ 10^2.4 ≈ 250, within a factor ~4 either way.
        assert!(c > 60.0 && c < 2500.0, "chain cond {c}");
        // Equilibration must NOT collapse it.
        assert!(
            c_ad > c / 10.0,
            "equilibration killed the chain: {c_ad} vs {c}"
        );
        // And the spectrum must be spread, not clustered: the chain's
        // |1 + c·e^{iθ}| continuum puts ~16% of values below σmax/2.
        let sv = densekit::svd::svd_values(&d);
        let small = sv.iter().filter(|&&s| s < sv[0] / 2.0).count();
        assert!(small > 5, "spectrum not spread: only {small} below σmax/2");
    }

    #[test]
    fn column_scaled_fixed_by_equilibration() {
        let a = tall_conditioned(300, 30, 0.05, CondSpec::scaled(8.0, 1.0), 5);
        let d = densify(&a);
        let c = cond2(&d);
        let c_ad = cond2_equilibrated(&d);
        assert!(c > 1e6, "expected large cond, got {c}");
        assert!(c_ad < 1e3, "equilibration should fix it, got {c_ad}");
    }

    #[test]
    fn rank_deficient_not_fixed_by_equilibration() {
        let a = tall_conditioned(300, 32, 0.05, CondSpec::deficient(13.0, 1.0), 7);
        let d = densify(&a);
        let c = cond2(&d);
        let c_ad = cond2_equilibrated(&d);
        assert!(c > 1e10, "expected near-singular, got {c}");
        assert!(
            c_ad > 1e8,
            "equilibration must NOT fix dependence, got {c_ad}"
        );
    }

    #[test]
    fn chain_preserves_target_density() {
        let a = tall_conditioned(2000, 100, 0.01, CondSpec::chain(2.0), 9);
        assert!(
            (a.density() - 0.01).abs() < 0.004,
            "density {}",
            a.density()
        );
    }

    #[test]
    fn no_empty_cols() {
        let a = tall_conditioned(200, 50, 0.01, CondSpec::WELL, 1);
        assert!(a.empty_cols().is_empty());
    }

    #[test]
    fn suite_shapes_and_orientation() {
        let suite = lsq_suite(256);
        assert_eq!(suite.len(), 7);
        for p in &suite {
            let (m, n) = p.shape();
            assert!(m >= n, "{} not tall: {m}x{n}", p.name);
        }
        let rail = &suite[0];
        assert_eq!(rail.a.nrows(), (923269usize / 256));
        let spec = suite.iter().find(|p| p.name == "specular").unwrap();
        assert_eq!(spec.a.nrows(), (477976usize / 256));
    }

    #[test]
    fn suite_deterministic() {
        let a = lsq_suite(512);
        let b = lsq_suite(512);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.a, y.a, "{} not deterministic", x.name);
        }
    }

    #[test]
    #[should_panic(expected = "tall")]
    fn wide_request_rejected() {
        let _ = tall_conditioned(10, 20, 0.1, CondSpec::WELL, 0);
    }
}
