//! Uniformly random sparse matrices at a prescribed density.
//!
//! The §III-A analysis assumes "a uniformly distributed sparse matrix with a
//! density of ρ" — every entry independently nonzero with probability ρ.
//! The generator samples each column's nonzero count from Binomial(m, ρ)
//! (via inversion for small mρ, normal approximation otherwise) and then
//! picks that many distinct rows, which matches the iid model exactly and
//! runs in `O(nnz)` expected time rather than `O(m·n)`.

use rngkit::{BlockRng, CheckpointRng, Xoshiro256PlusPlus};
use sparsekit::{CscMatrix, Scalar};

/// Generate an `m×n` sparse matrix with iid Bernoulli(ρ) sparsity and
/// uniform(-1,1) values.
pub fn uniform_random<T: Scalar>(m: usize, n: usize, density: f64, seed: u64) -> CscMatrix<T> {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<usize> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    let mut scratch: Vec<usize> = Vec::new();

    for j in 0..n {
        rng.set_state(0, j);
        let k = sample_binomial(m, density, &mut rng);
        sample_distinct_rows(m, k, &mut rng, &mut scratch);
        scratch.sort_unstable();
        for &r in &scratch {
            row_idx.push(r);
            values.push(T::from_f64(rngkit::u64_to_unit_f64(rng.next_u64())));
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// Binomial(m, p) sampler: exact inversion when `m·p` is small, normal
/// approximation with continuity correction otherwise.
fn sample_binomial<R: BlockRng>(m: usize, p: f64, rng: &mut R) -> usize {
    if p <= 0.0 || m == 0 {
        return 0;
    }
    if p >= 1.0 {
        return m;
    }
    let mean = m as f64 * p;
    if mean < 32.0 {
        // Inversion by counting geometric skips: O(k) expected.
        let log_q = (1.0 - p).ln();
        let mut count = 0usize;
        let mut sum = 0.0f64;
        loop {
            let u = rngkit::u64_to_open01_f64(rng.next_u64());
            sum += u.ln() / log_q;
            if sum >= m as f64 {
                return count.min(m);
            }
            count += 1;
            if count >= m {
                return m;
            }
        }
    }
    // Normal approximation.
    let sd = (mean * (1.0 - p)).sqrt();
    let u1 = rngkit::u64_to_open01_f64(rng.next_u64());
    let u2 = rngkit::u64_to_open01_f64(rng.next_u64());
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let k = (mean + sd * z + 0.5).floor();
    k.clamp(0.0, m as f64) as usize
}

/// Sample `k` distinct rows in `[0, m)` into `out` (unsorted). Uses Floyd's
/// algorithm for sparse draws, dense Fisher–Yates when `k` approaches `m`.
fn sample_distinct_rows<R: BlockRng>(m: usize, k: usize, rng: &mut R, out: &mut Vec<usize>) {
    out.clear();
    if k == 0 {
        return;
    }
    assert!(k <= m);
    if k * 4 >= m {
        // Partial Fisher–Yates over the full range.
        let mut idx: Vec<usize> = (0..m).collect();
        for i in 0..k {
            let j = i + (rng.next_u64() % (m - i) as u64) as usize;
            idx.swap(i, j);
        }
        out.extend_from_slice(&idx[..k]);
        return;
    }
    // Floyd's subset sampling: O(k) expected with a small hash set.
    let mut chosen = std::collections::HashSet::with_capacity(k * 2);
    for j in m - k..m {
        let t = (rng.next_u64() % (j as u64 + 1)) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    out.extend(chosen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_target() {
        for rho in [1e-3, 0.01, 0.2] {
            let a = uniform_random::<f64>(2000, 500, rho, 42);
            let got = a.density();
            assert!(
                (got - rho).abs() < 0.15 * rho + 1e-4,
                "density {got} vs target {rho}"
            );
        }
    }

    #[test]
    fn extreme_densities() {
        let empty = uniform_random::<f64>(100, 50, 0.0, 1);
        assert_eq!(empty.nnz(), 0);
        let full = uniform_random::<f64>(40, 30, 1.0, 1);
        assert_eq!(full.nnz(), 40 * 30);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_random::<f64>(300, 100, 0.05, 7);
        let b = uniform_random::<f64>(300, 100, 0.05, 7);
        let c = uniform_random::<f64>(300, 100, 0.05, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_unit_range() {
        let a = uniform_random::<f64>(200, 80, 0.1, 3);
        assert!(a.values().iter().all(|&v| v > -1.0 && v < 1.0));
        // Roughly mean-zero.
        let mean: f64 = a.values().iter().sum::<f64>() / a.nnz() as f64;
        assert!(mean.abs() < 0.05, "value mean {mean}");
    }

    #[test]
    fn structure_is_valid_csc() {
        let a = uniform_random::<f64>(500, 200, 0.02, 9);
        // Rebuild through the validating constructor.
        let validated = CscMatrix::try_new(
            a.nrows(),
            a.ncols(),
            a.col_ptr().to_vec(),
            a.row_idx().to_vec(),
            a.values().to_vec(),
        );
        assert!(validated.is_ok(), "{:?}", validated.err());
    }

    #[test]
    fn binomial_moments() {
        let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(5);
        // Small-mean regime.
        let n = 20_000;
        let (m, p) = (1000, 0.002);
        let sum: usize = (0..n).map(|_| sample_binomial(m, p, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "small-mean binomial mean {mean}");
        // Large-mean regime.
        let (m, p) = (10_000, 0.05);
        let sum: usize = (0..2000).map(|_| sample_binomial(m, p, &mut rng)).sum();
        let mean = sum as f64 / 2000.0;
        assert!(
            (mean - 500.0).abs() < 5.0,
            "large-mean binomial mean {mean}"
        );
    }

    #[test]
    fn distinct_rows_are_distinct() {
        let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(11);
        let mut out = Vec::new();
        for (m, k) in [(100, 5), (100, 80), (10, 10), (1000, 1)] {
            sample_distinct_rows(m, k, &mut rng, &mut out);
            assert_eq!(out.len(), k);
            let set: std::collections::HashSet<_> = out.iter().collect();
            assert_eq!(set.len(), k, "duplicates for (m={m}, k={k})");
            assert!(out.iter().all(|&r| r < m));
        }
    }
}
