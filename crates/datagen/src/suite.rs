//! Named stand-ins for the paper's Table I SpMM test matrices.
//!
//! The originals come from the SuiteSparse collection. Most are simplicial
//! boundary matrices (`mk-12`, `ch7-9-b3`, `shar_te2-b2`, `cis-n4c6-b4`)
//! whose rows hold a *constant* number of ±1 entries at combinatorially
//! scattered columns — the published nnz counts are exact multiples of the
//! row counts (3, 4, 3 and 5 entries per row respectively). `mesh_deform` is
//! a FEM mesh with ≈3.65 entries per row and strong banded locality. The
//! stand-ins reproduce dimensions, nnz-per-row structure, value pattern and
//! (for the mesh) locality at a configurable `scale` divisor, so kernel
//! behaviour (sample counts, access patterns) matches the originals; see
//! DESIGN.md for the substitution rationale.

use rngkit::{BlockRng, CheckpointRng, Xoshiro256PlusPlus};
use sparsekit::{CooMatrix, CscMatrix, Scalar};

/// Properties of one Table I row (the paper's published values).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Matrix name in the paper.
    pub name: &'static str,
    /// Sketch size `d = 3n` used by the paper.
    pub d: usize,
    /// Rows of `A`.
    pub m: usize,
    /// Columns of `A`.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
}

/// The five SpMM benchmark matrices of Table I.
pub const TABLE1: [PaperRow; 5] = [
    PaperRow {
        name: "mk-12",
        d: 4455,
        m: 13860,
        n: 1485,
        nnz: 41580,
    },
    PaperRow {
        name: "ch7-9-b3",
        d: 52920,
        m: 105840,
        n: 17640,
        nnz: 423360,
    },
    PaperRow {
        name: "shar_te2-b2",
        d: 51480,
        m: 200200,
        n: 17160,
        nnz: 600600,
    },
    PaperRow {
        name: "mesh_deform",
        d: 28179,
        m: 234023,
        n: 9393,
        nnz: 853829,
    },
    PaperRow {
        name: "cis-n4c6-b4",
        d: 17910,
        m: 20058,
        n: 5970,
        nnz: 100290,
    },
];

/// A generated stand-in together with the paper row it models.
pub struct NamedMatrix {
    /// Name of the original matrix.
    pub name: &'static str,
    /// The generated stand-in.
    pub matrix: CscMatrix<f64>,
    /// Sketch size `d = 3·ncols` at the generated scale.
    pub d: usize,
    /// The paper's published properties (unscaled).
    pub paper: PaperRow,
}

/// Boundary-matrix style: each row holds exactly `k` ±1 entries at distinct
/// random columns.
pub fn boundary_like<T: Scalar>(m: usize, n: usize, k: usize, seed: u64) -> CscMatrix<T> {
    assert!(k <= n, "rows cannot hold more entries than columns exist");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut coo = CooMatrix::with_capacity(m, n, m * k);
    let mut cols = Vec::with_capacity(k);
    for i in 0..m {
        rng.set_state(0, i);
        cols.clear();
        while cols.len() < k {
            let c = (rng.next_u64() % n as u64) as usize;
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        for &c in &cols {
            let v = if rng.next_u64() & 1 == 0 {
                T::ONE
            } else {
                -T::ONE
            };
            coo.push_unchecked(i, c, v);
        }
    }
    match coo.to_csc() {
        Ok(a) => a,
        Err(e) => unreachable!("indices in bounds by construction: {e}"),
    }
}

/// Mesh style: each row holds `k_min..=k_max` real entries clustered near
/// the diagonal band `col ≈ row·n/m`, with `band` columns of spread.
pub fn mesh_like<T: Scalar>(
    m: usize,
    n: usize,
    k_min: usize,
    k_max: usize,
    band: usize,
    seed: u64,
) -> CscMatrix<T> {
    assert!(k_min >= 1 && k_min <= k_max && k_max <= n);
    let band = band.max(k_max);
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut coo = CooMatrix::with_capacity(m, n, m * (k_min + k_max) / 2);
    let mut cols = Vec::with_capacity(k_max);
    for i in 0..m {
        rng.set_state(1, i);
        let k = k_min + (rng.next_u64() % (k_max - k_min + 1) as u64) as usize;
        let center = i * n / m;
        let lo = center.saturating_sub(band / 2).min(n - band.min(n));
        cols.clear();
        while cols.len() < k {
            let c = (lo + (rng.next_u64() % band.min(n) as u64) as usize).min(n - 1);
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        for &c in &cols {
            let v = T::from_f64(rngkit::u64_to_unit_f64(rng.next_u64()));
            coo.push_unchecked(i, c, v);
        }
    }
    match coo.to_csc() {
        Ok(a) => a,
        Err(e) => unreachable!("indices in bounds by construction: {e}"),
    }
}

/// Generate the full Table I suite at dimension divisor `scale` (≥ 1):
/// every dimension is divided by `scale`, keeping per-row structure intact.
pub fn spmm_suite(scale: usize) -> Vec<NamedMatrix> {
    let scale = scale.max(1);
    TABLE1
        .iter()
        .map(|&paper| {
            let m = (paper.m / scale).max(16);
            let n = (paper.n / scale).max(8);
            let per_row = (paper.nnz + paper.m / 2) / paper.m; // rounded
            let matrix = match paper.name {
                "mesh_deform" => {
                    // ≈3.65 entries/row, banded: draw 3 or 4 per row.
                    mesh_like::<f64>(m, n, 3, 4, (n / 20).max(8), 0xD5)
                }
                _ => boundary_like::<f64>(m, n, per_row.max(1), 0xB0 + paper.d as u64),
            };
            NamedMatrix {
                name: paper.name,
                d: 3 * n,
                matrix,
                paper,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants_match_paper() {
        for row in TABLE1 {
            assert_eq!(row.d, 3 * row.n, "{}: d must be 3n", row.name);
        }
        // Exact per-row counts for the boundary matrices.
        assert_eq!(TABLE1[0].nnz, 3 * TABLE1[0].m); // mk-12
        assert_eq!(TABLE1[1].nnz, 4 * TABLE1[1].m); // ch7-9-b3
        assert_eq!(TABLE1[2].nnz, 3 * TABLE1[2].m); // shar_te2-b2
        assert_eq!(TABLE1[4].nnz, 5 * TABLE1[4].m); // cis-n4c6-b4
    }

    #[test]
    fn boundary_like_has_exact_row_counts() {
        let a = boundary_like::<f64>(200, 50, 4, 1);
        assert_eq!(a.nnz(), 800);
        let csr = a.to_csr();
        for i in 0..200 {
            assert_eq!(csr.row_nnz(i), 4, "row {i}");
        }
        assert!(a.values().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn mesh_like_is_banded() {
        let (m, n) = (1000, 200);
        let a = mesh_like::<f64>(m, n, 3, 4, 16, 2);
        let csr = a.to_csr();
        for i in (0..m).step_by(97) {
            let (cols, _) = csr.row(i);
            let center = i * n / m;
            for &c in cols {
                assert!(
                    (c as i64 - center as i64).unsigned_abs() as usize <= 24,
                    "row {i}: column {c} far from band center {center}"
                );
            }
        }
    }

    #[test]
    fn suite_scales_consistently() {
        let suite = spmm_suite(64);
        assert_eq!(suite.len(), 5);
        for nm in &suite {
            assert_eq!(nm.d, 3 * nm.matrix.ncols(), "{}", nm.name);
            assert_eq!(nm.matrix.nrows(), (nm.paper.m / 64).max(16), "{}", nm.name);
            // Per-row density structure preserved: nnz/m ratio within 25%
            // of the paper's.
            let got = nm.matrix.nnz() as f64 / nm.matrix.nrows() as f64;
            let want = nm.paper.nnz as f64 / nm.paper.m as f64;
            assert!(
                (got - want).abs() / want < 0.25,
                "{}: nnz/row {got} vs paper {want}",
                nm.name
            );
        }
    }

    #[test]
    fn suite_deterministic() {
        let a = spmm_suite(128);
        let b = spmm_suite(128);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    #[should_panic(expected = "more entries")]
    fn boundary_overfull_rejected() {
        let _ = boundary_like::<f64>(5, 3, 4, 0);
    }
}
