//! The exotic sparsity patterns of paper Table VI.
//!
//! All three have the same dimensions and comparable density but radically
//! different layouts, exposing Algorithm 4's sensitivity to patterns whose
//! nonzeros concentrate in columns (Abnormal_C) versus rows (Abnormal_A):
//!
//! * **Abnormal_A** — every `stride`-th row is dense, all other rows zero.
//!   Ideal for Algorithm 4: few nonempty rows → few regenerated columns of
//!   `S`, each reused across an entire dense row.
//! * **Abnormal_B** — almost all nonzeros concentrated in the middle-third
//!   vertical block (the paper puts ≈ 2998/3000 of them there).
//! * **Abnormal_C** — every `stride`-th column dense, all other columns
//!   zero. Worst case for Algorithm 4: every row of every touched block is
//!   nonempty but holds a single entry, so nothing is reused.

use rngkit::{BlockRng, CheckpointRng, Xoshiro256PlusPlus};
use sparsekit::{CooMatrix, CscMatrix, Scalar};

fn unit<T: Scalar, R: BlockRng>(rng: &mut R) -> T {
    T::from_f64(rngkit::u64_to_unit_f64(rng.next_u64()))
}

/// Every `stride`-th row dense (rows `0, stride, 2·stride, …`), others zero.
pub fn abnormal_a<T: Scalar>(m: usize, n: usize, stride: usize, seed: u64) -> CscMatrix<T> {
    assert!(stride > 0, "stride must be positive");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let dense_rows: Vec<usize> = (0..m).step_by(stride).collect();
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::with_capacity(dense_rows.len() * n);
    let mut values = Vec::with_capacity(dense_rows.len() * n);
    for j in 0..n {
        rng.set_state(0, j);
        for &r in &dense_rows {
            row_idx.push(r);
            values.push(unit::<T, _>(&mut rng));
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// Nonzeros overwhelmingly concentrated in the middle-third vertical block:
/// `concentration` of the total mass lands in columns `[n/3, 2n/3)`, the
/// remainder is uniform over the rest (paper: 2998/3000 ≈ 0.99933).
pub fn abnormal_b<T: Scalar>(
    m: usize,
    n: usize,
    total_nnz: usize,
    concentration: f64,
    seed: u64,
) -> CscMatrix<T> {
    assert!((0.0..=1.0).contains(&concentration));
    assert!(n >= 3, "need at least 3 columns for a middle third");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    rng.set_state(0, 0);
    let mid_lo = n / 3;
    let mid_hi = 2 * n / 3;
    let mid_nnz = (total_nnz as f64 * concentration) as usize;
    let out_nnz = total_nnz - mid_nnz;

    let mut coo = CooMatrix::with_capacity(m, n, total_nnz);
    let mut seen = std::collections::HashSet::with_capacity(total_nnz * 2);
    let mid_cap = m * (mid_hi - mid_lo);
    let mut placed = 0usize;
    while placed < mid_nnz.min(mid_cap) {
        let r = (rng.next_u64() % m as u64) as usize;
        let c = mid_lo + (rng.next_u64() % (mid_hi - mid_lo) as u64) as usize;
        if seen.insert((r, c)) {
            coo.push_unchecked(r, c, unit::<T, _>(&mut rng));
            placed += 1;
        }
    }
    let outside = n - (mid_hi - mid_lo);
    let out_cap = m * outside;
    placed = 0;
    while placed < out_nnz.min(out_cap) {
        let r = (rng.next_u64() % m as u64) as usize;
        let mut c = (rng.next_u64() % outside as u64) as usize;
        if c >= mid_lo {
            c += mid_hi - mid_lo;
        }
        if seen.insert((r, c)) {
            coo.push_unchecked(r, c, unit::<T, _>(&mut rng));
            placed += 1;
        }
    }
    coo.to_csc().expect("generated indices are in bounds")
}

/// Every `stride`-th column dense (columns `0, stride, …`), others zero.
pub fn abnormal_c<T: Scalar>(m: usize, n: usize, stride: usize, seed: u64) -> CscMatrix<T> {
    assert!(stride > 0, "stride must be positive");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::new();
    let mut values = Vec::new();
    for j in 0..n {
        if j % stride == 0 {
            rng.set_state(1, j);
            for r in 0..m {
                row_idx.push(r);
                values.push(unit::<T, _>(&mut rng));
            }
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abnormal_a_structure() {
        let a = abnormal_a::<f64>(100, 20, 10, 1);
        // 10 dense rows × 20 cols.
        assert_eq!(a.nnz(), 10 * 20);
        assert_eq!(a.empty_rows().len(), 90);
        assert!(a.empty_cols().is_empty());
        assert!(!(a.get(0, 0) == 0.0));
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn abnormal_c_structure() {
        let a = abnormal_c::<f64>(50, 30, 10, 2);
        // Columns 0, 10, 20 dense.
        assert_eq!(a.nnz(), 3 * 50);
        assert_eq!(a.empty_cols().len(), 27);
        assert!(a.empty_rows().is_empty());
        assert_eq!(a.col_nnz(0), 50);
        assert_eq!(a.col_nnz(1), 0);
    }

    #[test]
    fn abnormal_b_concentration() {
        let (m, n, nnz) = (1000, 300, 30_000);
        let a = abnormal_b::<f64>(m, n, nnz, 0.999, 3);
        let mid_lo = n / 3;
        let mid_hi = 2 * n / 3;
        let mid_count: usize = (mid_lo..mid_hi).map(|j| a.col_nnz(j)).sum();
        let frac = mid_count as f64 / a.nnz() as f64;
        assert!(frac > 0.99, "middle-block fraction {frac}");
        // Duplicate collisions shrink nnz slightly but not drastically.
        assert!(a.nnz() > nnz * 9 / 10);
    }

    #[test]
    fn comparable_density_across_patterns() {
        // Scaled-down versions of the paper's m=100000, n=10000, ρ≈1e-3.
        let (m, n, stride) = (10_000, 1_000, 100);
        let a = abnormal_a::<f64>(m, n, stride, 1);
        let c = abnormal_c::<f64>(m, n, stride, 1);
        let b = abnormal_b::<f64>(m, n, a.nnz(), 2998.0 / 3000.0, 1);
        let target = 1.0 / stride as f64;
        for (name, mtx) in [("A", &a), ("B", &b), ("C", &c)] {
            let rel = (mtx.density() - target).abs() / target;
            assert!(rel < 0.15, "pattern {name} density {}", mtx.density());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            abnormal_a::<f64>(50, 10, 5, 9),
            abnormal_a::<f64>(50, 10, 5, 9)
        );
        assert_eq!(
            abnormal_b::<f64>(50, 12, 100, 0.9, 9),
            abnormal_b::<f64>(50, 12, 100, 0.9, 9)
        );
        assert_eq!(
            abnormal_c::<f64>(50, 10, 5, 9),
            abnormal_c::<f64>(50, 10, 5, 9)
        );
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = abnormal_a::<f64>(10, 10, 0, 0);
    }
}
