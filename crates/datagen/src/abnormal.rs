//! The exotic sparsity patterns of paper Table VI.
//!
//! All three have the same dimensions and comparable density but radically
//! different layouts, exposing Algorithm 4's sensitivity to patterns whose
//! nonzeros concentrate in columns (Abnormal_C) versus rows (Abnormal_A):
//!
//! * **Abnormal_A** — every `stride`-th row is dense, all other rows zero.
//!   Ideal for Algorithm 4: few nonempty rows → few regenerated columns of
//!   `S`, each reused across an entire dense row.
//! * **Abnormal_B** — almost all nonzeros concentrated in the middle-third
//!   vertical block (the paper puts ≈ 2998/3000 of them there).
//! * **Abnormal_C** — every `stride`-th column dense, all other columns
//!   zero. Worst case for Algorithm 4: every row of every touched block is
//!   nonempty but holds a single entry, so nothing is reused.
//!
//! Alongside the pattern study, this module also generates *numerically*
//! abnormal inputs for the hardening tests: [`rank_deficient`] (exactly
//! dependent columns, driving SAP's QR→SVD fallback), [`nan_laced`]
//! (structurally valid but with NaN payloads, caught by `validate()`), and
//! [`badly_scaled`] (column scales spanning many decades, stressing the
//! preconditioner).

use rngkit::{BlockRng, CheckpointRng, Xoshiro256PlusPlus};
use sparsekit::{CooMatrix, CscMatrix, Scalar};

fn unit<T: Scalar, R: BlockRng>(rng: &mut R) -> T {
    T::from_f64(rngkit::u64_to_unit_f64(rng.next_u64()))
}

/// Every `stride`-th row dense (rows `0, stride, 2·stride, …`), others zero.
pub fn abnormal_a<T: Scalar>(m: usize, n: usize, stride: usize, seed: u64) -> CscMatrix<T> {
    assert!(stride > 0, "stride must be positive");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let dense_rows: Vec<usize> = (0..m).step_by(stride).collect();
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::with_capacity(dense_rows.len() * n);
    let mut values = Vec::with_capacity(dense_rows.len() * n);
    for j in 0..n {
        rng.set_state(0, j);
        for &r in &dense_rows {
            row_idx.push(r);
            values.push(unit::<T, _>(&mut rng));
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// Nonzeros overwhelmingly concentrated in the middle-third vertical block:
/// `concentration` of the total mass lands in columns `[n/3, 2n/3)`, the
/// remainder is uniform over the rest (paper: 2998/3000 ≈ 0.99933).
pub fn abnormal_b<T: Scalar>(
    m: usize,
    n: usize,
    total_nnz: usize,
    concentration: f64,
    seed: u64,
) -> CscMatrix<T> {
    assert!((0.0..=1.0).contains(&concentration));
    assert!(n >= 3, "need at least 3 columns for a middle third");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    rng.set_state(0, 0);
    let mid_lo = n / 3;
    let mid_hi = 2 * n / 3;
    let mid_nnz = (total_nnz as f64 * concentration) as usize;
    let out_nnz = total_nnz - mid_nnz;

    let mut coo = CooMatrix::with_capacity(m, n, total_nnz);
    let mut seen = std::collections::HashSet::with_capacity(total_nnz * 2);
    let mid_cap = m * (mid_hi - mid_lo);
    let mut placed = 0usize;
    while placed < mid_nnz.min(mid_cap) {
        let r = (rng.next_u64() % m as u64) as usize;
        let c = mid_lo + (rng.next_u64() % (mid_hi - mid_lo) as u64) as usize;
        if seen.insert((r, c)) {
            coo.push_unchecked(r, c, unit::<T, _>(&mut rng));
            placed += 1;
        }
    }
    let outside = n - (mid_hi - mid_lo);
    let out_cap = m * outside;
    placed = 0;
    while placed < out_nnz.min(out_cap) {
        let r = (rng.next_u64() % m as u64) as usize;
        let mut c = (rng.next_u64() % outside as u64) as usize;
        if c >= mid_lo {
            c += mid_hi - mid_lo;
        }
        if seen.insert((r, c)) {
            coo.push_unchecked(r, c, unit::<T, _>(&mut rng));
            placed += 1;
        }
    }
    match coo.to_csc() {
        Ok(a) => a,
        Err(e) => unreachable!("generated indices are in bounds: {e}"),
    }
}

/// Every `stride`-th column dense (columns `0, stride, …`), others zero.
pub fn abnormal_c<T: Scalar>(m: usize, n: usize, stride: usize, seed: u64) -> CscMatrix<T> {
    assert!(stride > 0, "stride must be positive");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::new();
    let mut values = Vec::new();
    for j in 0..n {
        if j % stride == 0 {
            rng.set_state(1, j);
            for r in 0..m {
                row_idx.push(r);
                values.push(unit::<T, _>(&mut rng));
            }
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// `k` sorted distinct row indices in `[0, m)`.
fn sorted_rows<R: BlockRng>(rng: &mut R, m: usize, k: usize) -> Vec<usize> {
    let mut rows = std::collections::BTreeSet::new();
    while rows.len() < k.min(m) {
        rows.insert((rng.next_u64() % m as u64) as usize);
    }
    rows.into_iter().collect()
}

/// A tall sparse matrix with numerical rank exactly `rank`: the first
/// `rank` columns are independent random sparse columns, and every later
/// column `j` is column `j % rank` scaled by `1 + j/rank` — exactly
/// dependent, so a sketch of it is rank-deficient too (the input SAP's
/// QR rank check must detect).
pub fn rank_deficient<T: Scalar>(
    m: usize,
    n: usize,
    rank: usize,
    nnz_per_col: usize,
    seed: u64,
) -> CscMatrix<T> {
    assert!(rank > 0 && rank <= n, "need 0 < rank <= n");
    assert!(nnz_per_col > 0, "need at least one entry per column");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut base: Vec<(Vec<usize>, Vec<f64>)> = Vec::with_capacity(rank);
    for j in 0..rank {
        rng.set_state(0, j);
        let rows = sorted_rows(&mut rng, m, nnz_per_col);
        // Shift away from zero so a column never degenerates to all-zeros.
        let vals = rows
            .iter()
            .map(|_| 0.5 + rngkit::u64_to_unit_f64(rng.next_u64()))
            .collect();
        base.push((rows, vals));
    }
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::with_capacity(n * nnz_per_col);
    let mut values = Vec::with_capacity(n * nnz_per_col);
    for j in 0..n {
        let (rows, vals) = &base[j % rank];
        let scale = 1.0 + (j / rank) as f64;
        row_idx.extend_from_slice(rows);
        values.extend(vals.iter().map(|&v| T::from_f64(v * scale)));
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// A structurally valid random sparse matrix with `lace_count` of its
/// stored values replaced by NaN. Construction succeeds (the CSC invariants
/// hold); `CscMatrix::validate` and the hardened drivers reject it with a
/// `NotFinite` error.
pub fn nan_laced<T: Scalar>(
    m: usize,
    n: usize,
    nnz_per_col: usize,
    lace_count: usize,
    seed: u64,
) -> CscMatrix<T> {
    assert!(nnz_per_col > 0, "need at least one entry per column");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::with_capacity(n * nnz_per_col);
    let mut values: Vec<T> = Vec::with_capacity(n * nnz_per_col);
    for j in 0..n {
        rng.set_state(0, j);
        let rows = sorted_rows(&mut rng, m, nnz_per_col);
        for &r in &rows {
            row_idx.push(r);
            values.push(unit::<T, _>(&mut rng));
        }
        col_ptr.push(row_idx.len());
    }
    let nnz = values.len();
    if nnz > 0 {
        rng.set_state(1, 0);
        for _ in 0..lace_count {
            let at = (rng.next_u64() % nnz as u64) as usize;
            values[at] = T::from_f64(f64::NAN);
        }
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

/// A full-rank random sparse matrix whose column norms span `decades`
/// orders of magnitude (column `j` scaled by `10^(-decades·j/(n-1))`) —
/// conditioning that diagonal equilibration can remove but that stresses
/// raw LSQR and the sketch factorization.
pub fn badly_scaled<T: Scalar>(
    m: usize,
    n: usize,
    nnz_per_col: usize,
    decades: f64,
    seed: u64,
) -> CscMatrix<T> {
    assert!(nnz_per_col > 0, "need at least one entry per column");
    assert!(n >= 2, "need at least two columns to spread scales");
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    let mut row_idx = Vec::new();
    let mut values: Vec<T> = Vec::new();
    for j in 0..n {
        rng.set_state(0, j);
        let scale = 10f64.powf(-decades * j as f64 / (n - 1) as f64);
        // A diagonal anchor keeps the matrix full rank despite the scaling.
        let mut rows = sorted_rows(&mut rng, m, nnz_per_col);
        if j < m && !rows.contains(&j) {
            rows.push(j);
            rows.sort_unstable();
        }
        for &r in &rows {
            row_idx.push(r);
            let v = if r == j {
                2.0
            } else {
                rngkit::u64_to_unit_f64(rng.next_u64()) * 2.0 - 1.0
            };
            values.push(T::from_f64(v * scale));
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(m, n, col_ptr, row_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abnormal_a_structure() {
        let a = abnormal_a::<f64>(100, 20, 10, 1);
        // 10 dense rows × 20 cols.
        assert_eq!(a.nnz(), 10 * 20);
        assert_eq!(a.empty_rows().len(), 90);
        assert!(a.empty_cols().is_empty());
        assert!(!(a.get(0, 0) == 0.0));
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn abnormal_c_structure() {
        let a = abnormal_c::<f64>(50, 30, 10, 2);
        // Columns 0, 10, 20 dense.
        assert_eq!(a.nnz(), 3 * 50);
        assert_eq!(a.empty_cols().len(), 27);
        assert!(a.empty_rows().is_empty());
        assert_eq!(a.col_nnz(0), 50);
        assert_eq!(a.col_nnz(1), 0);
    }

    #[test]
    fn abnormal_b_concentration() {
        let (m, n, nnz) = (1000, 300, 30_000);
        let a = abnormal_b::<f64>(m, n, nnz, 0.999, 3);
        let mid_lo = n / 3;
        let mid_hi = 2 * n / 3;
        let mid_count: usize = (mid_lo..mid_hi).map(|j| a.col_nnz(j)).sum();
        let frac = mid_count as f64 / a.nnz() as f64;
        assert!(frac > 0.99, "middle-block fraction {frac}");
        // Duplicate collisions shrink nnz slightly but not drastically.
        assert!(a.nnz() > nnz * 9 / 10);
    }

    #[test]
    fn comparable_density_across_patterns() {
        // Scaled-down versions of the paper's m=100000, n=10000, ρ≈1e-3.
        let (m, n, stride) = (10_000, 1_000, 100);
        let a = abnormal_a::<f64>(m, n, stride, 1);
        let c = abnormal_c::<f64>(m, n, stride, 1);
        let b = abnormal_b::<f64>(m, n, a.nnz(), 2998.0 / 3000.0, 1);
        let target = 1.0 / stride as f64;
        for (name, mtx) in [("A", &a), ("B", &b), ("C", &c)] {
            let rel = (mtx.density() - target).abs() / target;
            assert!(rel < 0.15, "pattern {name} density {}", mtx.density());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            abnormal_a::<f64>(50, 10, 5, 9),
            abnormal_a::<f64>(50, 10, 5, 9)
        );
        assert_eq!(
            abnormal_b::<f64>(50, 12, 100, 0.9, 9),
            abnormal_b::<f64>(50, 12, 100, 0.9, 9)
        );
        assert_eq!(
            abnormal_c::<f64>(50, 10, 5, 9),
            abnormal_c::<f64>(50, 10, 5, 9)
        );
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = abnormal_a::<f64>(10, 10, 0, 0);
    }

    #[test]
    fn rank_deficient_columns_exactly_dependent() {
        let a = rank_deficient::<f64>(60, 12, 4, 5, 7);
        assert!(a.validate().is_ok());
        // Column 4 must be column 0 scaled by 2 (j/rank = 1).
        let (p, idx, vals) = (a.col_ptr(), a.row_idx(), a.values());
        let c0: Vec<_> = (p[0]..p[1]).map(|k| (idx[k], vals[k])).collect();
        let c4: Vec<_> = (p[4]..p[5]).map(|k| (idx[k], vals[k])).collect();
        assert_eq!(c0.len(), c4.len());
        for ((r0, v0), (r4, v4)) in c0.iter().zip(c4.iter()) {
            assert_eq!(r0, r4);
            assert!((v4 - 2.0 * v0).abs() < 1e-15);
        }
        assert_eq!(a, rank_deficient::<f64>(60, 12, 4, 5, 7));
    }

    #[test]
    fn nan_laced_fails_validation_only_on_values() {
        let a = nan_laced::<f64>(50, 10, 4, 3, 11);
        // Structure is sound…
        assert!(CscMatrix::try_new(
            50,
            10,
            a.col_ptr().to_vec(),
            a.row_idx().to_vec(),
            a.values().to_vec()
        )
        .is_ok());
        // …but the full validation catches the NaNs.
        assert!(matches!(
            a.validate(),
            Err(sparsekit::SparseError::NotFinite { .. })
        ));
        assert!(a.values().iter().any(|v| v.is_nan()));
    }

    #[test]
    fn badly_scaled_spans_decades() {
        let a = badly_scaled::<f64>(80, 16, 4, 10.0, 13);
        assert!(a.validate().is_ok());
        let norm = |j: usize| {
            let (p, vals) = (a.col_ptr(), a.values());
            (p[j]..p[j + 1])
                .map(|k| vals[k] * vals[k])
                .sum::<f64>()
                .sqrt()
        };
        let ratio = norm(0) / norm(15);
        assert!(ratio > 1e9, "column-scale span only {ratio:.3e}");
    }
}
