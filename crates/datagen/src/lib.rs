#![warn(missing_docs)]
//! # datagen — synthetic test matrices for the paper's experiments
//!
//! The paper evaluates on SuiteSparse collection matrices (Tables I and
//! VIII) that are not redistributable inside this repository and on
//! synthetic "abnormal" patterns (Table VI). This crate generates:
//!
//! * [`uniform`] — iid-uniform sparsity at a prescribed density, the §III-A
//!   model's input and Figure 4's workload;
//! * [`abnormal`] — the Abnormal_A/B/C patterns of Table VI (dense rows /
//!   middle-block concentration / dense columns);
//! * [`suite`] — named stand-ins for the Table I SpMM matrices, matching
//!   their dimensions, nnz, per-row structure (most are simplicial-boundary
//!   matrices with a constant number of ±1 entries per row) at a
//!   configurable scale factor;
//! * [`lsq`] — stand-ins for the Table VIII least-squares matrices with the
//!   published aspect ratios, densities and conditioning *mechanisms*
//!   (benign, badly column-scaled, or genuinely near rank-deficient);
//! * [`rhs`] — right-hand-side construction, `b = A·x + ε` with `ε ~ N(0,I)`
//!   (paper §V-C).
//!
//! All generators are deterministic in their seed. Real Matrix Market files
//! can be substituted via `sparsekit::io` when available; the harnesses take
//! either source.

pub mod abnormal;
pub mod lsq;
pub mod rhs;
pub mod suite;
pub mod uniform;

pub use abnormal::{abnormal_a, abnormal_b, abnormal_c, badly_scaled, nan_laced, rank_deficient};
pub use lsq::{lsq_suite, tall_conditioned, CondKind, CondSpec, LsqProblem};
pub use rhs::make_rhs;
pub use suite::{spmm_suite, NamedMatrix};
pub use uniform::uniform_random;
