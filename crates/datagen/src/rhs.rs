//! Right-hand-side construction for the least-squares experiments.
//!
//! Paper §V-C: "We set b in (2) to a random vector in the range of A plus a
//! random Gaussian vector drawn from N(0, I)." The range component makes the
//! problem meaningfully consistent; the Gaussian component gives it a
//! nontrivial residual.

use rngkit::dist::Distribution;
use rngkit::{CheckpointRng, Gaussian, UnitUniform, Xoshiro256PlusPlus};
use sparsekit::CscMatrix;

/// Build `b = A·x₀ + g` with `x₀` uniform(-1,1) and `g ~ N(0, I_m)`.
///
/// Returns `(b, x₀)`; `x₀` is *not* the least-squares solution (the noise
/// moves it), but it is useful for scale checks.
pub fn make_rhs(a: &CscMatrix<f64>, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let (m, n) = (a.nrows(), a.ncols());
    let mut rng = CheckpointRng::<Xoshiro256PlusPlus>::new(seed);
    let mut x0 = vec![0.0; n];
    let mut uni = UnitUniform::<f64>::new();
    uni.fill(&mut rng, &mut x0);

    let mut b = vec![0.0; m];
    a.spmv(&x0, &mut b);

    let mut g = vec![0.0; m];
    let mut gauss = Gaussian::<f64>::new();
    gauss.fill(&mut rng, &mut g);
    for (bi, gi) in b.iter_mut().zip(g.iter()) {
        *bi += gi;
    }
    (b, x0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::uniform_random;

    #[test]
    fn rhs_has_range_plus_noise_structure() {
        let a = uniform_random::<f64>(500, 20, 0.1, 3);
        let (b, x0) = make_rhs(&a, 11);
        assert_eq!(b.len(), 500);
        assert_eq!(x0.len(), 20);
        // b minus A·x₀ should look like N(0,1): mean ~0, var ~1.
        let mut ax = vec![0.0; 500];
        a.spmv(&x0, &mut ax);
        let noise: Vec<f64> = b.iter().zip(ax.iter()).map(|(b, a)| b - a).collect();
        let mean = noise.iter().sum::<f64>() / noise.len() as f64;
        let var = noise.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / noise.len() as f64;
        assert!(mean.abs() < 0.2, "noise mean {mean}");
        assert!((var - 1.0).abs() < 0.3, "noise var {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = uniform_random::<f64>(100, 10, 0.2, 1);
        assert_eq!(make_rhs(&a, 5).0, make_rhs(&a, 5).0);
        assert_ne!(make_rhs(&a, 5).0, make_rhs(&a, 6).0);
    }
}
