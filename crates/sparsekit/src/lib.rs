#![warn(missing_docs)]
//! # sparsekit — sparse matrix formats for sketching SpMM
//!
//! The sparse-matrix substrate of the IPPS'24 sketching paper reproduction.
//! The paper takes **CSC as the default input format** (its Algorithm 3
//! consumes plain CSC), and Algorithm 4 requires an auxiliary **blocked CSR**
//! structure: the columns of `A` are partitioned into vertical blocks and
//! each block is stored row-major so that a kernel can stream a *row* of a
//! block while reusing one regenerated column of `S` (paper §II-B2, §III-B).
//!
//! Provided here:
//!
//! * [`CooMatrix`] — triplet builder format.
//! * [`CscMatrix`] / [`CsrMatrix`] — compressed column / row storage with
//!   validation, slicing, transposition and reference SpMV/SpMM.
//! * [`BlockedCsr`] — Algorithm 4's structure, with sequential and parallel
//!   (parkit) construction from CSC; construction cost matches the paper's
//!   `O(⌈n/b_n⌉·m + nnz(A))` analysis and is measured in the Table IV/VI
//!   benches.
//! * [`io`] — Matrix Market exchange format reader/writer, so the real
//!   SuiteSparse matrices can be dropped into the harness when available.
//! * [`spy`] — sparsity-pattern rendering (Figure 5).

pub mod blocked;
pub mod coo;
pub mod corrupt;
pub mod csb;
pub mod csc;
pub mod csr;
pub mod io;
pub mod order;
pub mod scalar;
pub mod spy;
pub mod stats;
pub(crate) mod validate;

pub use blocked::BlockedCsr;
pub use coo::CooMatrix;
pub use csb::CsbMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use scalar::Scalar;

/// Errors produced by sparse-format construction and I/O.
#[derive(Debug)]
pub enum SparseError {
    /// An index exceeded the declared dimensions.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Declared shape.
        shape: (usize, usize),
    },
    /// Structure arrays are inconsistent (lengths, endpoints).
    Malformed(String),
    /// A compressed pointer array decreased between consecutive slots.
    NonMonotonePtr {
        /// 0-based outer index (column for CSC, row for CSR) whose pointer
        /// exceeds its successor.
        at: usize,
    },
    /// Inner indices are not strictly increasing within an outer slot
    /// (covers both unsorted and duplicate indices).
    UnsortedIndices {
        /// Outer slot (column for CSC, row for CSR).
        outer: usize,
        /// Position within the slot at which order breaks.
        at: usize,
    },
    /// A stored value is NaN or infinite.
    NotFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A Matrix Market parse problem, with 1-based line number.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// Description.
        msg: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "entry ({row}, {col}) outside matrix of shape {}x{}",
                shape.0, shape.1
            ),
            SparseError::Malformed(m) => write!(f, "malformed sparse structure: {m}"),
            SparseError::NonMonotonePtr { at } => {
                write!(f, "compressed pointer array decreases at slot {at}")
            }
            SparseError::UnsortedIndices { outer, at } => write!(
                f,
                "indices not strictly increasing in slot {outer} at position {at}"
            ),
            SparseError::NotFinite { row, col } => {
                write!(f, "non-finite value stored at ({row}, {col})")
            }
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
