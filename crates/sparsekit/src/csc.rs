//! CSC (compressed sparse column) — the paper's default input format.
//!
//! Algorithm 3 consumes plain CSC directly: its outer loop walks columns of
//! `A`, and within a column the stored rows select which columns of `S` must
//! be regenerated. The format here is the standard three-array layout with
//! sorted, duplicate-free rows within each column (validated on
//! construction).

use crate::scalar::Scalar;
use crate::{CsrMatrix, Result};

/// Compressed sparse column matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Construct with full structural validation: `col_ptr` monotone with the
    /// right endpoints, row indices in bounds and strictly increasing within
    /// each column.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        crate::validate::CompressedParts {
            outer_len: ncols,
            inner_len: nrows,
            ptr: &col_ptr,
            idx: &row_idx,
            outer_is_col: true,
            shape: (nrows, ncols),
        }
        .check_structure(values.len())?;
        Ok(Self {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Re-check every storage invariant of an already-built matrix, plus a
    /// NaN/Inf scan of the values.
    ///
    /// Construction via [`CscMatrix::try_new`] only enforces *structure*
    /// (NaN payloads are legal to build — the abnormal-input generators rely
    /// on that); library entry points that cannot tolerate poisoned data
    /// call this before trusting the matrix. The pointer array is vetted
    /// before any slot slice is formed, so a corrupted matrix can never
    /// panic the validator.
    pub fn validate(&self) -> Result<()> {
        let parts = crate::validate::CompressedParts {
            outer_len: self.ncols,
            inner_len: self.nrows,
            ptr: &self.col_ptr,
            idx: &self.row_idx,
            outer_is_col: true,
            shape: (self.nrows, self.ncols),
        };
        parts.check_structure(self.values.len())?;
        parts.check_finite(&self.values)
    }

    /// Construct without validation. The caller guarantees the CSC
    /// invariants; debug builds still spot-check endpoints.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), ncols + 1);
        debug_assert_eq!(*col_ptr.last().unwrap_or(&0), row_idx.len());
        debug_assert_eq!(row_idx.len(), values.len());
        Self {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// An all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n).collect(),
            values: vec![T::ONE; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Column pointer array (length `ncols + 1`).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array (length `nnz`).
    #[inline]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Values array (length `nnz`).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Rows and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[T]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Value at `(i, j)` (binary search; zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => T::ZERO,
        }
    }

    /// Memory footprint in bytes of the three arrays (the `mem(A)` column of
    /// the paper's Tables VIII and XI).
    pub fn memory_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<T>()
    }

    /// Sparse matrix-vector product `y = A·x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        y.fill(T::ZERO);
        for (j, &xj) in x.iter().enumerate() {
            if xj == T::ZERO {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals.iter()) {
                y[i] += v * xj;
            }
        }
    }

    /// Transposed sparse matrix-vector product `y = Aᵀ·x`.
    pub fn spmv_t(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows, "x length mismatch");
        assert_eq!(y.len(), self.ncols, "y length mismatch");
        for (j, yj) in y.iter_mut().enumerate() {
            let (rows, vals) = self.col(j);
            let mut acc = T::ZERO;
            for (&i, &v) in rows.iter().zip(vals.iter()) {
                acc = v.mul_add(x[i], acc);
            }
            *yj = acc;
        }
    }

    /// Transpose into CSR of the same logical matrix (shares the algorithm
    /// with CSC→CSR conversion: the arrays are reinterpreted).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // Count nonzeros per row.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut cursor = row_counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals.iter()) {
                let k = cursor[i];
                col_idx[k] = j;
                values[k] = v;
                cursor[i] += 1;
            }
        }
        // Columns within each row come out sorted because we scanned j in
        // increasing order.
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, row_counts, col_idx, values)
    }

    /// The transpose `Aᵀ` as a CSC matrix.
    pub fn transpose(&self) -> CscMatrix<T> {
        let csr = self.to_csr();
        // CSR of A reinterpreted as CSC of Aᵀ.
        CscMatrix::from_parts_unchecked(
            self.ncols,
            self.nrows,
            csr.row_ptr().to_vec(),
            csr.col_idx().to_vec(),
            csr.values().to_vec(),
        )
    }

    /// Extract the column range `[j0, j1)` as a standalone CSC matrix (used
    /// by tests and by the blocked construction).
    pub fn col_range(&self, j0: usize, j1: usize) -> CscMatrix<T> {
        assert!(j0 <= j1 && j1 <= self.ncols);
        let base = self.col_ptr[j0];
        let col_ptr: Vec<usize> = self.col_ptr[j0..=j1].iter().map(|&p| p - base).collect();
        CscMatrix::from_parts_unchecked(
            self.nrows,
            j1 - j0,
            col_ptr,
            self.row_idx[base..self.col_ptr[j1]].to_vec(),
            self.values[base..self.col_ptr[j1]].to_vec(),
        )
    }

    /// Scale every stored value by `s` in place (used by the scaling trick:
    /// compute `(S·f)(A/f)`).
    pub fn scale_values(&mut self, s: T) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Column 2-norms, `‖A_j‖₂` for each `j` (used by the LSQR-D diagonal
    /// preconditioner).
    pub fn col_norms(&self) -> Vec<T> {
        (0..self.ncols)
            .map(|j| {
                let (_, vals) = self.col(j);
                let mut acc = T::ZERO;
                for &v in vals {
                    acc = v.mul_add(v, acc);
                }
                acc.sqrt()
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> T {
        let mut acc = T::ZERO;
        for &v in &self.values {
            acc = v.mul_add(v, acc);
        }
        acc.sqrt()
    }

    /// Indices of columns that contain no nonzeros.
    pub fn empty_cols(&self) -> Vec<usize> {
        (0..self.ncols).filter(|&j| self.col_nnz(j) == 0).collect()
    }

    /// Indices of rows that contain no nonzeros.
    pub fn empty_rows(&self) -> Vec<usize> {
        let mut seen = vec![false; self.nrows];
        for &r in &self.row_idx {
            seen[r] = true;
        }
        (0..self.nrows).filter(|&i| !seen[i]).collect()
    }

    /// Drop the listed columns (e.g. the paper removes 158 empty columns
    /// from "specular"). Indices must be sorted ascending and unique.
    pub fn drop_cols(&self, cols: &[usize]) -> CscMatrix<T> {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let keep: Vec<usize> = {
            let mut mask = vec![true; self.ncols];
            for &c in cols {
                mask[c] = false;
            }
            (0..self.ncols).filter(|&j| mask[j]).collect()
        };
        let mut col_ptr = Vec::with_capacity(keep.len() + 1);
        col_ptr.push(0);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for &j in &keep {
            let (rows, vals) = self.col(j);
            row_idx.extend_from_slice(rows);
            values.extend_from_slice(vals);
            col_ptr.push(row_idx.len());
        }
        CscMatrix::from_parts_unchecked(self.nrows, keep.len(), col_ptr, row_idx, values)
    }

    /// Drop the listed rows (sorted ascending, unique), renumbering the rest.
    pub fn drop_rows(&self, rows_to_drop: &[usize]) -> CscMatrix<T> {
        debug_assert!(rows_to_drop.windows(2).all(|w| w[0] < w[1]));
        let mut remap = vec![usize::MAX; self.nrows];
        let mut drop_iter = rows_to_drop.iter().peekable();
        let mut next = 0usize;
        for (i, slot) in remap.iter_mut().enumerate() {
            if drop_iter.peek() == Some(&&i) {
                drop_iter.next();
            } else {
                *slot = next;
                next += 1;
            }
        }
        let mut col_ptr = Vec::with_capacity(self.ncols + 1);
        col_ptr.push(0);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                if remap[r] != usize::MAX {
                    row_idx.push(remap[r]);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix::from_parts_unchecked(next, self.ncols, col_ptr, row_idx, values)
    }

    /// Dense row-major expansion (tests and small examples only).
    pub fn to_dense_row_major(&self) -> Vec<T> {
        let mut out = vec![T::ZERO; self.nrows * self.ncols];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals.iter()) {
                out[i * self.ncols + j] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small() -> CscMatrix<f64> {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (2, 0, 4.0),
            (1, 1, 3.0),
            (0, 2, 2.0),
            (2, 2, 5.0),
        ] {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn validation_catches_bad_structures() {
        // Bad col_ptr length.
        assert!(CscMatrix::<f64>::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Bad endpoint.
        assert!(CscMatrix::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
        // Row out of bounds.
        assert!(CscMatrix::<f64>::try_new(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        // Unsorted rows.
        assert!(CscMatrix::<f64>::try_new(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
        // Duplicate rows.
        assert!(CscMatrix::<f64>::try_new(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Non-monotone col_ptr.
        assert!(CscMatrix::<f64>::try_new(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // Value length mismatch.
        assert!(CscMatrix::<f64>::try_new(2, 2, vec![0, 1, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn getters_and_density() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 5);
        assert!((a.density() - 5.0 / 9.0).abs() < 1e-15);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.col_nnz(1), 1);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn spmv_t_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv_t(&x, &mut y);
        // Aᵀx: col j of A dotted with x.
        assert_eq!(y, [1.0 + 12.0, 6.0, 2.0 + 15.0]);
    }

    #[test]
    fn to_csr_round_trip() {
        let a = small();
        let csr = a.to_csr();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), csr.get(i, j), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        // And Aᵀ really transposes.
        let at = a.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), at.get(j, i));
            }
        }
    }

    #[test]
    fn col_range_slices() {
        let a = small();
        let sub = a.col_range(1, 3);
        assert_eq!(sub.ncols(), 2);
        assert_eq!(sub.get(1, 0), 3.0); // old column 1
        assert_eq!(sub.get(2, 1), 5.0); // old column 2
        assert_eq!(sub.nnz(), 3);

        // Degenerate empty range.
        let empty = a.col_range(2, 2);
        assert_eq!(empty.ncols(), 0);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn identity_and_zeros() {
        let i3 = CscMatrix::<f64>::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        i3.spmv(&x, &mut y);
        assert_eq!(y, x);
        let z = CscMatrix::<f64>::zeros(2, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.density(), 0.0);
    }

    #[test]
    fn col_norms_and_fro() {
        let a = small();
        let norms = a.col_norms();
        assert!((norms[0] - (1.0f64 + 16.0).sqrt()).abs() < 1e-15);
        assert!((norms[1] - 3.0).abs() < 1e-15);
        assert!((norms[2] - (4.0f64 + 25.0).sqrt()).abs() < 1e-15);
        let fro = a.fro_norm();
        assert!((fro - (1.0f64 + 16.0 + 9.0 + 4.0 + 25.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn empty_rows_cols_detection() {
        let mut coo = CooMatrix::<f64>::new(4, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(3, 0, 2.0).unwrap();
        let a = coo.to_csc().unwrap();
        assert_eq!(a.empty_cols(), vec![1, 2, 3]);
        assert_eq!(a.empty_rows(), vec![1, 2]);
    }

    #[test]
    fn drop_cols_and_rows() {
        let a = small();
        let b = a.drop_cols(&[1]);
        assert_eq!(b.ncols(), 2);
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(0, 1), 2.0);

        let c = a.drop_rows(&[1]);
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 0), 4.0); // old row 2 renumbered to 1
        assert_eq!(c.get(1, 2), 5.0);
    }

    #[test]
    fn memory_bytes_accounting() {
        let a = small();
        let expected = 4 * 8 + 5 * 8 + 5 * 8; // col_ptr + row_idx + values
        assert_eq!(a.memory_bytes(), expected);
    }

    #[test]
    fn scale_values_in_place() {
        let mut a = small();
        a.scale_values(2.0);
        assert_eq!(a.get(2, 2), 10.0);
    }

    #[test]
    fn dense_expansion() {
        let a = small();
        let d = a.to_dense_row_major();
        assert_eq!(d, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        small().get(3, 0);
    }
}
