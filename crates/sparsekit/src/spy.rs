//! Sparsity-pattern rendering — reproduces Figure 5's spy plots.
//!
//! Downsamples an `m×n` pattern onto a character or pixel grid; each cell's
//! darkness is the nonzero density of the sub-rectangle it covers. Output is
//! ASCII (for terminals / EXPERIMENTS.md) or binary PGM (P5) images.

use crate::scalar::Scalar;
use crate::CscMatrix;
use std::io::Write;
use std::path::Path;

/// A downsampled density grid of a sparsity pattern.
#[derive(Clone, Debug)]
pub struct SpyGrid {
    /// Grid height (rows of cells).
    pub height: usize,
    /// Grid width (columns of cells).
    pub width: usize,
    /// Row-major cell densities in `[0, 1]`.
    pub cells: Vec<f64>,
}

/// Compute the density grid for `a` at the given grid resolution.
pub fn spy_grid<T: Scalar>(a: &CscMatrix<T>, height: usize, width: usize) -> SpyGrid {
    assert!(height > 0 && width > 0, "grid must be non-degenerate");
    let mut counts = vec![0usize; height * width];
    let (m, n) = (a.nrows().max(1), a.ncols().max(1));
    for j in 0..a.ncols() {
        let gx = j * width / n;
        let (rows, _) = a.col(j);
        for &i in rows {
            let gy = i * height / m;
            counts[gy * width + gx] += 1;
        }
    }
    // Cell capacity: entries of A covered by one grid cell.
    let cell_rows = (m as f64 / height as f64).max(1.0);
    let cell_cols = (n as f64 / width as f64).max(1.0);
    let cap = cell_rows * cell_cols;
    let cells = counts.iter().map(|&c| (c as f64 / cap).min(1.0)).collect();
    SpyGrid {
        height,
        width,
        cells,
    }
}

/// Render the pattern as ASCII art. Darker characters = denser cells.
pub fn spy_ascii<T: Scalar>(a: &CscMatrix<T>, height: usize, width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let grid = spy_grid(a, height, width);
    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push_str("+\n");
    for y in 0..height {
        out.push('|');
        for x in 0..width {
            let d = grid.cells[y * width + x];
            // Nonzero cells always render at least the faintest mark.
            let idx = if d == 0.0 {
                0
            } else {
                1 + ((d * (RAMP.len() - 2) as f64) as usize).min(RAMP.len() - 2)
            };
            out.push(RAMP[idx] as char);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push_str("+\n");
    out
}

/// Write the pattern as a binary PGM (P5) image, dark = dense.
pub fn spy_pgm<T: Scalar, P: AsRef<Path>>(
    a: &CscMatrix<T>,
    height: usize,
    width: usize,
    path: P,
) -> std::io::Result<()> {
    let grid = spy_grid(a, height, width);
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(w, "P5\n{} {}\n255\n", width, height)?;
    let bytes: Vec<u8> = grid
        .cells
        .iter()
        .map(|&d| (255.0 * (1.0 - d.sqrt())) as u8) // sqrt for visual gamma
        .collect();
    w.write_all(&bytes)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn diag(n: usize) -> CscMatrix<f64> {
        CscMatrix::identity(n)
    }

    #[test]
    fn diagonal_pattern_hits_diagonal_cells() {
        let a = diag(100);
        let g = spy_grid(&a, 10, 10);
        for y in 0..10 {
            for x in 0..10 {
                let d = g.cells[y * 10 + x];
                if x == y {
                    assert!(d > 0.0, "diagonal cell ({y},{x}) empty");
                } else {
                    assert_eq!(d, 0.0, "off-diagonal cell ({y},{x}) nonzero");
                }
            }
        }
    }

    #[test]
    fn dense_matrix_saturates() {
        let mut coo = CooMatrix::<f64>::new(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let a = coo.to_csc().unwrap();
        let g = spy_grid(&a, 4, 4);
        assert!(g.cells.iter().all(|&d| (d - 1.0).abs() < 1e-12));
    }

    #[test]
    fn ascii_has_expected_shape() {
        let a = diag(50);
        let art = spy_ascii(&a, 5, 12);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 7); // top border + 5 rows + bottom border
        assert!(lines[0].starts_with('+'));
        assert_eq!(lines[1].len(), 14); // | + 12 + |
        assert!(art.contains(|c: char| "`.:-=+*#%@".contains(c)));
    }

    #[test]
    fn pgm_file_valid_header() {
        let a = diag(20);
        let dir = std::env::temp_dir().join("sparsekit_spy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spy.pgm");
        spy_pgm(&a, 16, 16, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n16 16\n255\n"));
        assert_eq!(data.len(), 13 + 16 * 16);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn grid_smaller_matrix_than_grid() {
        // 3x3 matrix onto 10x10 grid must not panic or index out of bounds.
        let a = diag(3);
        let g = spy_grid(&a, 10, 10);
        assert_eq!(g.cells.len(), 100);
        assert!(g.cells.iter().sum::<f64>() > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn zero_grid_panics() {
        let a = diag(3);
        let _ = spy_grid(&a, 0, 5);
    }
}
