//! CSB — Compressed Sparse Blocks (Buluç, Fineman, Frigo, Gilbert,
//! Leiserson, SPAA 2009), the paper's reference [3].
//!
//! The matrix is tiled into a 2D grid of `β×β` blocks; each block stores its
//! entries as triplets with 16-bit *local* coordinates. Unlike CSR/CSC, the
//! layout is symmetric in rows and columns, so `A·x` and `Aᵀ·x` parallelize
//! equally well — `A·x` over block-rows (each owns a disjoint slice of `y`),
//! `Aᵀ·x` over block-columns. The iterative phase of the least-squares
//! pipeline is exactly such an `A·x`/`Aᵀ·x` ping-pong, which is why blocked
//! sparse structures appear in the paper's related work.

use crate::scalar::Scalar;
use crate::CscMatrix;

/// One tile: local coordinates (≤ 16 bits each) and values.
#[derive(Clone, Debug, Default, PartialEq)]
struct Block<T> {
    rows: Vec<u16>,
    cols: Vec<u16>,
    vals: Vec<T>,
}

/// A sparse matrix in Compressed Sparse Blocks layout.
#[derive(Clone, Debug)]
pub struct CsbMatrix<T> {
    nrows: usize,
    ncols: usize,
    /// Block edge (power of two, ≤ 65536).
    beta: usize,
    /// Grid dimensions.
    grid: (usize, usize),
    /// Blocks in block-row-major order.
    blocks: Vec<Block<T>>,
}

impl<T: Scalar> CsbMatrix<T> {
    /// Build from CSC with block edge `beta` (clamped to [256, 65536] and
    /// rounded up to a power of two).
    pub fn from_csc(a: &CscMatrix<T>, beta: usize) -> Self {
        let beta = beta.clamp(256, 65_536).next_power_of_two();
        let (m, n) = (a.nrows(), a.ncols());
        let grid = (m.div_ceil(beta).max(1), n.div_ceil(beta).max(1));
        let mut blocks: Vec<Block<T>> = vec![Block::default(); grid.0 * grid.1];
        for j in 0..n {
            let bj = j / beta;
            let lj = (j % beta) as u16;
            let (rows, vals) = a.col(j);
            for (&i, &v) in rows.iter().zip(vals.iter()) {
                let bi = i / beta;
                let blk = &mut blocks[bi * grid.1 + bj];
                blk.rows.push((i % beta) as u16);
                blk.cols.push(lj);
                blk.vals.push(v);
            }
        }
        Self {
            nrows: m,
            ncols: n,
            beta,
            grid,
            blocks,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Block edge.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.vals.len()).sum()
    }

    /// Memory footprint: 2×u16 + value per entry plus the grid index.
    pub fn memory_bytes(&self) -> usize {
        self.nnz() * (4 + std::mem::size_of::<T>())
            + self.blocks.len() * std::mem::size_of::<Block<T>>()
    }

    /// Sequential `y = A·x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        y.fill(T::ZERO);
        for bi in 0..self.grid.0 {
            let y_off = bi * self.beta;
            for bj in 0..self.grid.1 {
                let x_off = bj * self.beta;
                let blk = &self.blocks[bi * self.grid.1 + bj];
                for ((&r, &c), &v) in blk.rows.iter().zip(blk.cols.iter()).zip(blk.vals.iter()) {
                    y[y_off + r as usize] = v.mul_add(x[x_off + c as usize], y[y_off + r as usize]);
                }
            }
        }
    }

    /// Parallel `y = A·x`: one parkit task per block-row (disjoint `y` slices).
    pub fn spmv_par(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        let beta = self.beta;
        let gcols = self.grid.1;
        parkit::for_each_chunk_mut(y, beta, |bi, y_slice| {
            y_slice.fill(T::ZERO);
            for bj in 0..gcols {
                let x_off = bj * beta;
                let blk = &self.blocks[bi * gcols + bj];
                for ((&r, &c), &v) in blk.rows.iter().zip(blk.cols.iter()).zip(blk.vals.iter()) {
                    y_slice[r as usize] = v.mul_add(x[x_off + c as usize], y_slice[r as usize]);
                }
            }
        });
    }

    /// Sequential `y = Aᵀ·x`.
    pub fn spmv_t(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows, "x length mismatch");
        assert_eq!(y.len(), self.ncols, "y length mismatch");
        y.fill(T::ZERO);
        for bj in 0..self.grid.1 {
            let y_off = bj * self.beta;
            for bi in 0..self.grid.0 {
                let x_off = bi * self.beta;
                let blk = &self.blocks[bi * self.grid.1 + bj];
                for ((&r, &c), &v) in blk.rows.iter().zip(blk.cols.iter()).zip(blk.vals.iter()) {
                    y[y_off + c as usize] = v.mul_add(x[x_off + r as usize], y[y_off + c as usize]);
                }
            }
        }
    }

    /// Parallel `y = Aᵀ·x`: one parkit task per block-column — the symmetric
    /// twin of [`CsbMatrix::spmv_par`], CSB's raison d'être (CSR cannot
    /// parallelize the transposed product without a reduction).
    pub fn spmv_t_par(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows, "x length mismatch");
        assert_eq!(y.len(), self.ncols, "y length mismatch");
        let beta = self.beta;
        let (grows, gcols) = self.grid;
        parkit::for_each_chunk_mut(y, beta, |bj, y_slice| {
            y_slice.fill(T::ZERO);
            for bi in 0..grows {
                let x_off = bi * beta;
                let blk = &self.blocks[bi * gcols + bj];
                for ((&r, &c), &v) in blk.rows.iter().zip(blk.cols.iter()).zip(blk.vals.iter()) {
                    y_slice[c as usize] = v.mul_add(x[x_off + r as usize], y_slice[c as usize]);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 11
        };
        let mut coo = CooMatrix::new(m, n);
        for _ in 0..nnz {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                (next() % 1000) as f64 / 500.0 - 0.9995,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn spmv_matches_csc() {
        for (m, n, beta) in [(1000, 700, 256), (300, 900, 512), (256, 256, 256)] {
            let a = random_csc(m, n, 3 * (m + n), 1);
            let csb = CsbMatrix::from_csc(&a, beta);
            assert_eq!(csb.nnz(), a.nnz());
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let mut y1 = vec![0.0; m];
            let mut y2 = vec![0.0; m];
            a.spmv(&x, &mut y1);
            csb.spmv(&x, &mut y2);
            for (p, q) in y1.iter().zip(y2.iter()) {
                assert!((p - q).abs() < 1e-12 * p.abs().max(1.0));
            }
        }
    }

    #[test]
    fn spmv_t_matches_csc() {
        let a = random_csc(800, 500, 4000, 2);
        let csb = CsbMatrix::from_csc(&a, 256);
        let x: Vec<f64> = (0..800).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y1 = vec![0.0; 500];
        let mut y2 = vec![0.0; 500];
        a.spmv_t(&x, &mut y1);
        csb.spmv_t(&x, &mut y2);
        for (p, q) in y1.iter().zip(y2.iter()) {
            assert!((p - q).abs() < 1e-12 * p.abs().max(1.0));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_csc(1500, 1100, 9000, 3);
        let csb = CsbMatrix::from_csc(&a, 256);
        let x: Vec<f64> = (0..1100).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let xt: Vec<f64> = (0..1500).map(|i| ((i * 3) % 11) as f64 - 5.0).collect();
        let mut seq = vec![0.0; 1500];
        let mut par = vec![0.0; 1500];
        csb.spmv(&x, &mut seq);
        csb.spmv_par(&x, &mut par);
        assert_eq!(seq, par);
        let mut seq_t = vec![0.0; 1100];
        let mut par_t = vec![0.0; 1100];
        csb.spmv_t(&xt, &mut seq_t);
        csb.spmv_t_par(&xt, &mut par_t);
        assert_eq!(seq_t, par_t);
    }

    #[test]
    fn beta_is_clamped_and_power_of_two() {
        let a = random_csc(100, 100, 200, 5);
        let csb = CsbMatrix::from_csc(&a, 300);
        assert_eq!(csb.beta(), 512);
        let tiny = CsbMatrix::from_csc(&a, 1);
        assert_eq!(tiny.beta(), 256);
    }

    #[test]
    fn empty_matrix() {
        let a = CscMatrix::<f64>::zeros(10, 10);
        let csb = CsbMatrix::from_csc(&a, 256);
        assert_eq!(csb.nnz(), 0);
        let mut y = vec![1.0; 10];
        csb.spmv(&[0.0; 10], &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn memory_accounting_positive() {
        let a = random_csc(400, 400, 2000, 7);
        let csb = CsbMatrix::from_csc(&a, 256);
        // 12 bytes/entry (2 u16 + f64) beats CSC's 16 (usize idx + f64).
        assert!(csb.memory_bytes() < a.memory_bytes());
    }
}
