//! Structural statistics of sparse matrices.
//!
//! Used by the experiment harness to characterize test matrices (Table I /
//! Table VIII properties), by `datagen`'s validation, and by the
//! pattern-aware kernel model's reports.

use crate::scalar::Scalar;
use crate::CscMatrix;

/// Summary statistics of a sparsity pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternStats {
    /// Rows, columns, stored nonzeros.
    pub shape: (usize, usize, usize),
    /// Fraction of entries stored.
    pub density: f64,
    /// Min/mean/max nonzeros per row.
    pub row_nnz: (usize, f64, usize),
    /// Min/mean/max nonzeros per column.
    pub col_nnz: (usize, f64, usize),
    /// Number of completely empty rows.
    pub empty_rows: usize,
    /// Number of completely empty columns.
    pub empty_cols: usize,
    /// Matrix bandwidth: max |i − j| over stored entries.
    pub bandwidth: usize,
    /// Fraction of nonzeros in the densest decile of columns — a
    /// concentration measure (≈0.1 for uniform patterns, →1 for
    /// Abnormal_C-like layouts).
    pub top_decile_col_mass: f64,
}

/// Compute [`PatternStats`] in one pass over the structure.
pub fn pattern_stats<T: Scalar>(a: &CscMatrix<T>) -> PatternStats {
    let (m, n, nnz) = (a.nrows(), a.ncols(), a.nnz());
    let mut row_counts = vec![0usize; m];
    let mut bandwidth = 0usize;
    for j in 0..n {
        let (rows, _) = a.col(j);
        for &i in rows {
            row_counts[i] += 1;
            bandwidth = bandwidth.max(i.abs_diff(j));
        }
    }
    let col_counts: Vec<usize> = (0..n).map(|j| a.col_nnz(j)).collect();

    let agg = |counts: &[usize]| -> (usize, f64, usize) {
        if counts.is_empty() {
            return (0, 0.0, 0);
        }
        let min = counts.iter().min().copied().unwrap_or(0);
        let max = counts.iter().max().copied().unwrap_or(0);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        (min, mean, max)
    };

    let mut sorted_cols = col_counts.clone();
    sorted_cols.sort_unstable_by(|a, b| b.cmp(a));
    let decile = (n.div_ceil(10)).max(1).min(n.max(1));
    let top_mass: usize = sorted_cols.iter().take(decile).sum();

    PatternStats {
        shape: (m, n, nnz),
        density: a.density(),
        row_nnz: agg(&row_counts),
        col_nnz: agg(&col_counts),
        empty_rows: row_counts.iter().filter(|&&c| c == 0).count(),
        empty_cols: col_counts.iter().filter(|&&c| c == 0).count(),
        bandwidth,
        top_decile_col_mass: if nnz == 0 {
            0.0
        } else {
            top_mass as f64 / nnz as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn identity_stats() {
        let a = CscMatrix::<f64>::identity(10);
        let s = pattern_stats(&a);
        assert_eq!(s.shape, (10, 10, 10));
        assert_eq!(s.row_nnz, (1, 1.0, 1));
        assert_eq!(s.col_nnz, (1, 1.0, 1));
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.empty_rows, 0);
        assert!((s.top_decile_col_mass - 0.1).abs() < 1e-12);
    }

    #[test]
    fn concentration_detects_dense_columns() {
        // One dense column among 20.
        let mut coo = CooMatrix::<f64>::new(50, 20);
        for i in 0..50 {
            coo.push(i, 7, 1.0).unwrap();
        }
        coo.push(3, 0, 1.0).unwrap();
        let a = coo.to_csc().unwrap();
        let s = pattern_stats(&a);
        assert!(s.top_decile_col_mass > 0.9);
        assert_eq!(s.empty_cols, 18);
        assert_eq!(s.col_nnz.2, 50);
    }

    #[test]
    fn bandwidth_of_band_matrix() {
        let mut coo = CooMatrix::<f64>::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 1.0).unwrap();
            if i + 2 < 10 {
                coo.push(i, i + 2, 1.0).unwrap();
            }
        }
        let a = coo.to_csc().unwrap();
        assert_eq!(pattern_stats(&a).bandwidth, 2);
    }

    #[test]
    fn empty_matrix() {
        let a = CscMatrix::<f64>::zeros(5, 4);
        let s = pattern_stats(&a);
        assert_eq!(s.shape, (5, 4, 0));
        assert_eq!(s.empty_rows, 5);
        assert_eq!(s.empty_cols, 4);
        assert_eq!(s.top_decile_col_mass, 0.0);
    }
}
