//! Matrix Market exchange format I/O.
//!
//! The paper's test matrices come from the SuiteSparse collection, which is
//! distributed in this format. Supports `coordinate` matrices with `real`,
//! `integer` and `pattern` fields and `general`, `symmetric` and
//! `skew-symmetric` symmetry (symmetric entries are expanded on read).
//! Pattern entries read as 1.0.

use crate::scalar::Scalar;
use crate::{CooMatrix, CscMatrix, Result, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Read a Matrix Market `coordinate` file into CSC.
pub fn read_matrix_market<T: Scalar, P: AsRef<Path>>(path: P) -> Result<CscMatrix<T>> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Read Matrix Market data from any reader.
pub fn read_matrix_market_from<T: Scalar, R: Read>(reader: R) -> Result<CscMatrix<T>> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header line.
    let (line_no, header) = match lines.next() {
        Some((i, l)) => (i + 1, l?),
        None => {
            return Err(SparseError::Parse {
                line: 1,
                msg: "empty file".into(),
            })
        }
    };
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(SparseError::Parse {
            line: line_no,
            msg: format!("bad header: {header:?}"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: line_no,
            msg: format!("only 'coordinate' format supported, got {:?}", toks[2]),
        });
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                msg: format!("unsupported field {other:?}"),
            })
        }
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                msg: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // Size line (after comments).
    let mut size: Option<(usize, usize, usize)> = None;
    let mut size_line = 0;
    for (i, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(SparseError::Parse {
                line: i + 1,
                msg: format!("expected 'rows cols nnz', got {t:?}"),
            });
        }
        let parse = |s: &str| -> Result<usize> {
            s.parse().map_err(|_| SparseError::Parse {
                line: i + 1,
                msg: format!("bad integer {s:?}"),
            })
        };
        size = Some((parse(parts[0])?, parse(parts[1])?, parse(parts[2])?));
        size_line = i + 1;
        break;
    }
    let (nrows, ncols, nnz) = size.ok_or(SparseError::Parse {
        line: size_line.max(2),
        msg: "missing size line".into(),
    })?;

    let cap = match symmetry {
        Symmetry::General => nnz,
        _ => 2 * nnz,
    };
    let mut coo = CooMatrix::<T>::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (rs, cs) = match (parts.next(), parts.next()) {
            (Some(r), Some(c)) => (r, c),
            _ => {
                return Err(SparseError::Parse {
                    line: i + 1,
                    msg: format!("short entry line {t:?}"),
                })
            }
        };
        let r: usize = rs.parse().map_err(|_| SparseError::Parse {
            line: i + 1,
            msg: format!("bad row index {rs:?}"),
        })?;
        let c: usize = cs.parse().map_err(|_| SparseError::Parse {
            line: i + 1,
            msg: format!("bad col index {cs:?}"),
        })?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: i + 1,
                msg: "matrix market indices are 1-based".into(),
            });
        }
        let v = match field {
            Field::Pattern => T::ONE,
            _ => {
                let vs = parts.next().ok_or(SparseError::Parse {
                    line: i + 1,
                    msg: "missing value".into(),
                })?;
                T::from_f64(vs.parse::<f64>().map_err(|_| SparseError::Parse {
                    line: i + 1,
                    msg: format!("bad value {vs:?}"),
                })?)
            }
        };
        coo.push(r - 1, c - 1, v)?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, v)?;
                }
            }
            Symmetry::SkewSymmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, -v)?;
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: size_line,
            msg: format!("declared {nnz} entries, found {seen}"),
        });
    }
    coo.to_csc()
}

/// Write CSC to a Matrix Market `coordinate real general` file.
pub fn write_matrix_market<T: Scalar, P: AsRef<Path>>(a: &CscMatrix<T>, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market_to(a, BufWriter::new(file))
}

/// Write Matrix Market data to any writer.
pub fn write_matrix_market_to<T: Scalar, W: Write>(a: &CscMatrix<T>, mut w: W) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sparsekit")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for j in 0..a.ncols() {
        let (rows, vals) = a.col(j);
        for (&i, &v) in rows.iter().zip(vals.iter()) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v.to_f64())?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_general_real() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 1 1.5\n\
                    3 2 -2.0\n\
                    2 3 4.0\n";
        let a: CscMatrix<f64> = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(2, 1), -2.0);
        assert_eq!(a.get(1, 2), 4.0);
    }

    #[test]
    fn read_symmetric_expands() {
        let data = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 5.0\n\
                    2 1 3.0\n";
        let a: CscMatrix<f64> = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 3.0);
    }

    #[test]
    fn read_skew_symmetric() {
        let data = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a: CscMatrix<f64> = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.get(0, 1), -3.0);
    }

    #[test]
    fn read_pattern_as_ones() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a: CscMatrix<f64> = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_headers() {
        for data in [
            "",
            "not a header\n1 1 0\n",
            "%%MatrixMarket matrix array real general\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
        ] {
            assert!(
                read_matrix_market_from::<f64, _>(Cursor::new(data)).is_err(),
                "accepted {data:?}"
            );
        }
    }

    #[test]
    fn rejects_wrong_counts_and_indices() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market_from::<f64, _>(Cursor::new(short)).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market_from::<f64, _>(Cursor::new(zero_based)).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from::<f64, _>(Cursor::new(oob)).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let mut coo = CooMatrix::<f64>::new(4, 3);
        coo.push(0, 0, 1.25).unwrap();
        coo.push(3, 2, -7.5e-3).unwrap();
        coo.push(1, 1, 1e100).unwrap();
        let a = coo.to_csc().unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to(&a, &mut buf).unwrap();
        let b: CscMatrix<f64> = read_matrix_market_from(Cursor::new(buf)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sparsekit_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let a = CscMatrix::<f64>::identity(5);
        write_matrix_market(&a, &path).unwrap();
        let b: CscMatrix<f64> = read_matrix_market(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_between_entries_ok() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    % interleaved comment\n\
                    2 2 2.0\n";
        let a: CscMatrix<f64> = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(a.nnz(), 2);
    }
}
