//! COO (coordinate / triplet) format — the builder format.
//!
//! Generators and the Matrix Market reader accumulate `(row, col, value)`
//! triplets here, then convert to CSC/CSR once. Duplicate coordinates are
//! summed during conversion, matching the Matrix Market convention.

use crate::scalar::Scalar;
use crate::{CscMatrix, Result, SparseError};

/// A sparse matrix in coordinate (triplet) form.
#[derive(Clone, Debug)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Pre-allocate for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate summation).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append a triplet, validating bounds.
    pub fn push(&mut self, row: usize, col: usize, val: T) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Append a triplet without bounds checking (generator hot path).
    ///
    /// # Panics
    /// Debug builds assert bounds; release builds defer detection to
    /// [`CooMatrix::to_csc`].
    #[inline]
    pub fn push_unchecked(&mut self, row: usize, col: usize, val: T) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Iterate stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSC, summing duplicates and dropping explicit zeros that
    /// result from cancellation. O(nnz + n) counting sort — no comparison
    /// sort involved.
    pub fn to_csc(&self) -> Result<CscMatrix<T>> {
        for (&r, &c) in self.rows.iter().zip(self.cols.iter()) {
            if r >= self.nrows || c >= self.ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    shape: (self.nrows, self.ncols),
                });
            }
        }
        // Column counting pass.
        let mut col_counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            col_counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            col_counts[j + 1] += col_counts[j];
        }
        // Scatter into column buckets.
        let mut cursor = col_counts.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        for ((&r, &c), &v) in self.rows.iter().zip(self.cols.iter()).zip(self.vals.iter()) {
            let k = cursor[c];
            row_idx[k] = r;
            values[k] = v;
            cursor[c] += 1;
        }
        // Sort each column by row (counting-sorted via per-column sort; the
        // columns are short on average, a comparison sort per column is
        // cache-friendly) and merge duplicates.
        let mut out_ptr = vec![0usize; self.ncols + 1];
        let mut out_rows = Vec::with_capacity(self.nnz());
        let mut out_vals = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for j in 0..self.ncols {
            let (lo, hi) = (col_counts[j], col_counts[j + 1]);
            scratch.clear();
            scratch.extend(
                row_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let r = scratch[k].0;
                let mut acc = T::ZERO;
                while k < scratch.len() && scratch[k].0 == r {
                    acc += scratch[k].1;
                    k += 1;
                }
                if acc != T::ZERO {
                    out_rows.push(r);
                    out_vals.push(acc);
                }
            }
            out_ptr[j + 1] = out_rows.len();
        }
        CscMatrix::try_new(self.nrows, self.ncols, out_ptr, out_rows, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 1, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let csc = coo.to_csc().unwrap();
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.get(0, 0), 1.0);
        assert_eq!(csc.get(1, 1), 3.0);
        assert_eq!(csc.get(2, 1), 2.0);
        assert_eq!(csc.get(2, 2), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        let csc = coo.to_csc().unwrap();
        assert_eq!(csc.nnz(), 1);
        assert_eq!(csc.get(0, 0), 3.5);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(1, 1, 4.0).unwrap();
        coo.push(1, 1, -4.0).unwrap();
        let csc = coo.to_csc().unwrap();
        assert_eq!(csc.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::<f64>::new(4, 5);
        let csc = coo.to_csc().unwrap();
        assert_eq!(csc.nrows(), 4);
        assert_eq!(csc.ncols(), 5);
        assert_eq!(csc.nnz(), 0);
    }

    #[test]
    fn columns_sorted_after_conversion() {
        let mut coo = CooMatrix::<f64>::new(5, 1);
        for &r in &[4usize, 0, 3, 1] {
            coo.push(r, 0, r as f64 + 1.0).unwrap();
        }
        let csc = coo.to_csc().unwrap();
        let (rows, vals) = csc.col(0);
        assert_eq!(rows, &[0, 1, 3, 4]);
        assert_eq!(vals, &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn iter_round_trip() {
        let mut coo = CooMatrix::<f32>::new(3, 3);
        coo.push(1, 2, 7.0).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(1, 2, 7.0f32)]);
    }
}
