//! Blocked CSR — the auxiliary structure required by Algorithm 4.
//!
//! Algorithm 4 (variant `jki` with RNG) processes one *row* of a vertical
//! block of `A` per regenerated column of `S`, so the block must be stored
//! row-major. The structure here partitions the columns of `A` into vertical
//! blocks of width `b_n` and stores each block in CSR with block-local column
//! indices (paper §II-B2).
//!
//! Construction from CSC costs `O(⌈n/b_n⌉·m + nnz(A))` sequentially — each
//! block pays `O(m)` for its row-count array plus a scatter of its nonzeros —
//! and `O(⌈n/(T·b_n)⌉·m + max_t nnz(A_t))` with `T` parkit workers, matching
//! the paper's §III-B analysis. The Table IV/VI experiments time exactly this
//! conversion.

use crate::scalar::Scalar;
use crate::{CscMatrix, CsrMatrix};

/// A vertical partition of a sparse matrix with row-major blocks.
#[derive(Clone, Debug)]
pub struct BlockedCsr<T> {
    nrows: usize,
    ncols: usize,
    block_width: usize,
    blocks: Vec<CsrMatrix<T>>,
}

impl<T: Scalar> BlockedCsr<T> {
    /// Build sequentially from CSC with vertical blocks of width `b_n`.
    pub fn from_csc(a: &CscMatrix<T>, b_n: usize) -> Self {
        assert!(b_n > 0, "block width must be positive");
        let nblocks = a.ncols().div_ceil(b_n).max(1);
        let blocks = (0..nblocks)
            .map(|b| Self::build_block(a, b * b_n, (b * b_n + b_n).min(a.ncols())))
            .collect();
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            block_width: b_n,
            blocks,
        }
    }

    /// Build in parallel: blocks are independent, one parkit task per block
    /// (the paper's parallel construction, §III-B).
    pub fn from_csc_parallel(a: &CscMatrix<T>, b_n: usize) -> Self {
        assert!(b_n > 0, "block width must be positive");
        let nblocks = a.ncols().div_ceil(b_n).max(1);
        let blocks: Vec<CsrMatrix<T>> = parkit::map_collect(nblocks, |b| {
            Self::build_block(a, b * b_n, (b * b_n + b_n).min(a.ncols()))
        });
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            block_width: b_n,
            blocks,
        }
    }

    /// Transpose-scatter one vertical block `A[:, j0..j1]` into CSR with
    /// block-local column indices.
    fn build_block(a: &CscMatrix<T>, j0: usize, j1: usize) -> CsrMatrix<T> {
        let m = a.nrows();
        // O(m) row-count array — the memory-intensive part the paper calls out.
        let mut row_ptr = vec![0usize; m + 1];
        for j in j0..j1 {
            let (rows, _) = a.col(j);
            for &r in rows {
                row_ptr[r + 1] += 1;
            }
        }
        for i in 0..m {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[m];
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![T::ZERO; nnz];
        // Scanning j in increasing order keeps each row's columns sorted.
        for j in j0..j1 {
            let (rows, vals) = a.col(j);
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                let k = cursor[r];
                col_idx[k] = j - j0;
                values[k] = v;
                cursor[r] += 1;
            }
        }
        CsrMatrix::from_parts_unchecked(m, j1 - j0, row_ptr, col_idx, values)
    }

    /// Number of rows of the full matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the full matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The block width `b_n` used for partitioning.
    #[inline]
    pub fn block_width(&self) -> usize {
        self.block_width
    }

    /// Number of vertical blocks.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// The CSR storage of block `b`.
    #[inline]
    pub fn block(&self, b: usize) -> &CsrMatrix<T> {
        &self.blocks[b]
    }

    /// Global column offset of block `b`.
    #[inline]
    pub fn block_col_offset(&self, b: usize) -> usize {
        b * self.block_width
    }

    /// Total stored nonzeros across blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// Memory footprint in bytes, including every block's `O(m)` row-pointer
    /// array — the construction-memory cost the paper's §III-B highlights.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.memory_bytes()).sum()
    }

    /// Value at global `(i, j)` (test convenience).
    pub fn get(&self, i: usize, j: usize) -> T {
        let b = j / self.block_width;
        self.blocks[b].get(i, j - self.block_col_offset(b))
    }

    /// Reassemble into CSC (for verification round trips).
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut col_ptr = vec![0usize; self.ncols + 1];
        for (b, blk) in self.blocks.iter().enumerate() {
            let off = self.block_col_offset(b);
            for &c in blk.col_idx() {
                col_ptr[off + c + 1] += 1;
            }
        }
        for j in 0..self.ncols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        for (b, blk) in self.blocks.iter().enumerate() {
            let off = self.block_col_offset(b);
            for i in 0..blk.nrows() {
                let (cols, vals) = blk.row(i);
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    let k = cursor[off + c];
                    row_idx[k] = i;
                    values[k] = v;
                    cursor[off + c] += 1;
                }
            }
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, col_ptr, row_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn random_csc(m: usize, n: usize, nnz: usize, seed: u64) -> CscMatrix<f64> {
        // Simple LCG-driven random matrix (tests only).
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            state
        };
        let mut coo = CooMatrix::new(m, n);
        for _ in 0..nnz {
            let r = (next() % m as u64) as usize;
            let c = (next() % n as u64) as usize;
            let v = (next() % 1000) as f64 / 500.0 - 1.0;
            coo.push(r, c, v + 1.5).unwrap(); // offset avoids cancellation to zero
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn blocked_matches_source() {
        let a = random_csc(50, 37, 200, 1);
        let blk = BlockedCsr::from_csc(&a, 10);
        assert_eq!(blk.nblocks(), 4);
        assert_eq!(blk.nnz(), a.nnz());
        for i in 0..50 {
            for j in 0..37 {
                assert_eq!(a.get(i, j), blk.get(i, j), "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_csc(80, 64, 500, 7);
        let s = BlockedCsr::from_csc(&a, 9);
        let p = BlockedCsr::from_csc_parallel(&a, 9);
        assert_eq!(s.nblocks(), p.nblocks());
        for b in 0..s.nblocks() {
            assert_eq!(s.block(b), p.block(b), "block {b} differs");
        }
    }

    #[test]
    fn round_trip_to_csc() {
        let a = random_csc(30, 25, 120, 3);
        let blk = BlockedCsr::from_csc(&a, 7);
        assert_eq!(blk.to_csc(), a);
    }

    #[test]
    fn block_width_wider_than_matrix() {
        let a = random_csc(20, 5, 30, 11);
        let blk = BlockedCsr::from_csc(&a, 100);
        assert_eq!(blk.nblocks(), 1);
        assert_eq!(blk.to_csc(), a);
    }

    #[test]
    fn empty_matrix() {
        let a = CscMatrix::<f64>::zeros(10, 8);
        let blk = BlockedCsr::from_csc(&a, 3);
        assert_eq!(blk.nnz(), 0);
        assert_eq!(blk.nblocks(), 3);
        assert_eq!(blk.to_csc(), a);
    }

    #[test]
    #[should_panic(expected = "block width")]
    fn zero_block_width_panics() {
        let a = CscMatrix::<f64>::zeros(2, 2);
        let _ = BlockedCsr::from_csc(&a, 0);
    }

    #[test]
    fn rows_sorted_within_blocks() {
        let a = random_csc(40, 40, 300, 5);
        let blk = BlockedCsr::from_csc(&a, 13);
        for b in 0..blk.nblocks() {
            let csr = blk.block(b);
            for i in 0..csr.nrows() {
                let (cols, _) = csr.row(i);
                assert!(cols.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn memory_includes_row_pointers() {
        // Each block's row_ptr is O(m): with many narrow blocks the memory
        // must grow accordingly (the §III-B warning).
        let a = random_csc(100, 60, 100, 9);
        let wide = BlockedCsr::from_csc(&a, 60);
        let narrow = BlockedCsr::from_csc(&a, 5);
        assert!(narrow.memory_bytes() > 5 * wide.memory_bytes() / 2);
    }
}
