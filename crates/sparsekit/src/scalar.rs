//! The scalar element trait shared by the sparse and dense substrates.
//!
//! Kernels in this workspace are generic over `f32`/`f64`; the trait exposes
//! exactly the operations the kernels need (including `mul_add`, which maps
//! to fused multiply-add and matters for the inner loops' throughput).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type for matrices and kernels.
pub trait Scalar:
    Copy
    + Default
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Send
    + Sync
    + Sum
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Is the value neither NaN nor infinite?
    fn is_finite(self) -> bool;
    /// Binary maximum (NaN-propagating comparison not required).
    fn max_s(self, other: Self) -> Self;
    /// Binary minimum.
    fn min_s(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max_s(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn min_s(self, other: Self) -> Self {
                if self < other {
                    self
                } else {
                    other
                }
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(v: &[T]) -> T {
        let mut acc = T::ZERO;
        for &x in v {
            acc += x;
        }
        acc
    }

    #[test]
    fn basic_ops_f64() {
        assert_eq!(generic_sum(&[1.0f64, 2.0, 3.0]), 6.0);
        assert_eq!(f64::from_f64(2.5), 2.5);
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(2.0f64.mul_add(3.0, 1.0), 7.0);
        assert_eq!(1.0f64.max_s(2.0), 2.0);
        assert_eq!(1.0f64.min_s(2.0), 1.0);
    }

    #[test]
    fn basic_ops_f32() {
        assert_eq!(generic_sum(&[1.0f32, 2.0]), 3.0);
        assert_eq!(f32::from_f64(0.5), 0.5f32);
        assert!((f32::EPSILON as f64) > f64::EPSILON);
    }
}
