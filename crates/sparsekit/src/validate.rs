//! Shared invariant checker for the two compressed formats.
//!
//! CSC and CSR are the same layout with the roles of the axes swapped, so
//! one walker validates both; the `outer_is_col` flag only controls how
//! violations are reported (`IndexOutOfBounds`/`NotFinite` speak in logical
//! `(row, col)` coordinates regardless of storage order).
//!
//! Check order matters for safety: the pointer array is vetted completely
//! (endpoints, monotonicity) *before* any per-slot slice is formed, so a
//! corrupted pointer can never push a slice range past the index array and
//! panic inside the validator itself.

use crate::scalar::Scalar;
use crate::{Result, SparseError};

pub(crate) struct CompressedParts<'a> {
    /// Slot count along the storage-major axis (`ncols` for CSC).
    pub outer_len: usize,
    /// Extent of the indexed axis (`nrows` for CSC).
    pub inner_len: usize,
    pub ptr: &'a [usize],
    pub idx: &'a [usize],
    /// True for CSC (outer = column), false for CSR (outer = row).
    pub outer_is_col: bool,
    /// Logical `(nrows, ncols)` for error reporting.
    pub shape: (usize, usize),
}

impl CompressedParts<'_> {
    fn coords(&self, outer: usize, inner: usize) -> (usize, usize) {
        if self.outer_is_col {
            (inner, outer)
        } else {
            (outer, inner)
        }
    }

    /// Structural invariants: pointer endpoints and monotonicity, then
    /// per-slot index bounds and strict ordering.
    pub fn check_structure(&self, nvals: usize) -> Result<()> {
        let axis = if self.outer_is_col { "col" } else { "row" };
        if self.ptr.len() != self.outer_len + 1 {
            return Err(SparseError::Malformed(format!(
                "{axis}_ptr length {} != {} + 1",
                self.ptr.len(),
                self.outer_len
            )));
        }
        if self.ptr[0] != 0 {
            return Err(SparseError::Malformed(format!(
                "{axis}_ptr must start at 0, found {}",
                self.ptr[0]
            )));
        }
        for j in 0..self.outer_len {
            if self.ptr[j] > self.ptr[j + 1] {
                return Err(SparseError::NonMonotonePtr { at: j });
            }
        }
        if self.ptr[self.outer_len] != self.idx.len() {
            return Err(SparseError::Malformed(format!(
                "{axis}_ptr endpoint {} != nnz {}",
                self.ptr[self.outer_len],
                self.idx.len()
            )));
        }
        if self.idx.len() != nvals {
            return Err(SparseError::Malformed(format!(
                "index array length {} != values length {nvals}",
                self.idx.len()
            )));
        }
        // The pointer array is now coherent; slot slices are safe to form.
        for j in 0..self.outer_len {
            let slot = &self.idx[self.ptr[j]..self.ptr[j + 1]];
            for (k, &i) in slot.iter().enumerate() {
                if i >= self.inner_len {
                    let (row, col) = self.coords(j, i);
                    return Err(SparseError::IndexOutOfBounds {
                        row,
                        col,
                        shape: self.shape,
                    });
                }
                if k > 0 && slot[k - 1] >= i {
                    return Err(SparseError::UnsortedIndices { outer: j, at: k });
                }
            }
        }
        Ok(())
    }

    /// NaN/Inf scan over the stored values, attributing the first offender
    /// to its logical `(row, col)`. Assumes `check_structure` passed.
    pub fn check_finite<T: Scalar>(&self, values: &[T]) -> Result<()> {
        for j in 0..self.outer_len {
            let (lo, hi) = (self.ptr[j], self.ptr[j + 1]);
            for (k, v) in values[lo..hi].iter().enumerate() {
                if !v.is_finite() {
                    let (row, col) = self.coords(j, self.idx[lo + k]);
                    return Err(SparseError::NotFinite { row, col });
                }
            }
        }
        Ok(())
    }
}
