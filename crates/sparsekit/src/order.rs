//! Column orderings and permutations.
//!
//! Fill-in of a sparse QR factorization depends on the column order of `A`
//! (equivalently the row/column order of `AᵀA`). Direct solvers such as
//! SuiteSparseQR apply a fill-reducing ordering before factorizing; this
//! module provides the classical **reverse Cuthill–McKee** (RCM) ordering on
//! the column-intersection graph plus the permutation plumbing, so the
//! George–Heath stand-in can be run ordered vs unordered (see the
//! `ablate_ordering` bench) and the memory numbers of Table XI can be put in
//! context.

use crate::scalar::Scalar;
use crate::CscMatrix;

/// Apply a column permutation: returns `A·P` where column `j` of the result
/// is column `perm[j]` of `a`.
pub fn permute_cols<T: Scalar>(a: &CscMatrix<T>, perm: &[usize]) -> CscMatrix<T> {
    assert_eq!(perm.len(), a.ncols(), "permutation length mismatch");
    debug_assert!(is_permutation(perm));
    let mut col_ptr = Vec::with_capacity(a.ncols() + 1);
    col_ptr.push(0usize);
    let mut row_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for &src in perm {
        let (rows, vals) = a.col(src);
        row_idx.extend_from_slice(rows);
        values.extend_from_slice(vals);
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_parts_unchecked(a.nrows(), a.ncols(), col_ptr, row_idx, values)
}

/// Apply a row permutation: returns `P·A` where row `i` of the result is row
/// `perm[i]` of `a`.
pub fn permute_rows<T: Scalar>(a: &CscMatrix<T>, perm: &[usize]) -> CscMatrix<T> {
    assert_eq!(perm.len(), a.nrows(), "permutation length mismatch");
    debug_assert!(is_permutation(perm));
    // inverse map: old row -> new row.
    let mut inv = vec![0usize; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut coo = crate::CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for j in 0..a.ncols() {
        let (rows, vals) = a.col(j);
        for (&r, &v) in rows.iter().zip(vals.iter()) {
            coo.push_unchecked(inv[r], j, v);
        }
    }
    match coo.to_csc() {
        Ok(m) => m,
        // push_unchecked only relocated in-bounds rows through a bijection.
        Err(e) => unreachable!("permutation preserves bounds: {e}"),
    }
}

/// Invert a permutation.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    perm.iter().all(|&p| {
        if p >= perm.len() || seen[p] {
            false
        } else {
            seen[p] = true;
            true
        }
    })
}

/// Reverse Cuthill–McKee ordering of `A`'s columns on the column-intersection
/// graph (columns adjacent iff they share a nonzero row — the graph of
/// `AᵀA`). Returns a permutation suitable for [`permute_cols`].
///
/// Runs in `O(Σ_rows nnz_row²)` to build adjacency; rows denser than
/// `dense_row_cutoff` are skipped in graph construction (a standard
/// heuristic — a dense row makes a clique of all its columns and carries no
/// ordering information).
pub fn rcm_ordering<T: Scalar>(a: &CscMatrix<T>, dense_row_cutoff: usize) -> Vec<usize> {
    let n = a.ncols();
    if n == 0 {
        return Vec::new();
    }
    // Build the column graph from row cliques.
    let csr = a.to_csr();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..csr.nrows() {
        let (cols, _) = csr.row(i);
        if cols.len() < 2 || cols.len() > dense_row_cutoff {
            continue;
        }
        for (k, &c1) in cols.iter().enumerate() {
            for &c2 in &cols[k + 1..] {
                adj[c1].push(c2 as u32);
                adj[c2].push(c1 as u32);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    // BFS from a minimum-degree vertex of each component, neighbours in
    // increasing-degree order (Cuthill–McKee), then reverse.
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut nodes: Vec<usize> = (0..n).collect();
    nodes.sort_by_key(|&v| degree[v]);
    let mut scratch: Vec<u32> = Vec::new();
    for &start in &nodes {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            scratch.clear();
            scratch.extend(adj[v].iter().copied().filter(|&u| !visited[u as usize]));
            scratch.sort_unstable_by_key(|&u| degree[u as usize]);
            for &u in &scratch {
                visited[u as usize] = true;
                queue.push_back(u as usize);
            }
        }
    }
    order.reverse();
    order
}

/// Column-graph bandwidth proxy: the maximum index spread of any row's
/// columns under the given ordering (smaller ⇒ less potential QR fill).
pub fn column_spread<T: Scalar>(a: &CscMatrix<T>, perm: &[usize]) -> usize {
    let inv = invert_permutation(perm);
    let csr = a.to_csr();
    let mut max_spread = 0usize;
    for i in 0..csr.nrows() {
        let (cols, _) = csr.row(i);
        if cols.is_empty() {
            continue;
        }
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &c in cols {
            let p = inv[c];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        max_spread = max_spread.max(hi - lo);
    }
    max_spread
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn banded(m: usize, n: usize, band: usize) -> CscMatrix<f64> {
        let mut coo = CooMatrix::new(m, n);
        for i in 0..m {
            let c0 = (i * n / m).min(n - 1);
            for b in 0..band {
                let c = (c0 + b).min(n - 1);
                let _ = coo.push(i, c, 1.0 + (i + b) as f64);
            }
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn permutation_round_trip() {
        let a = banded(20, 10, 3);
        let perm: Vec<usize> = (0..10).rev().collect();
        let b = permute_cols(&a, &perm);
        let back = permute_cols(&b, &invert_permutation(&perm));
        assert_eq!(a, back);
        for (j, &pj) in perm.iter().enumerate() {
            let (r1, v1) = a.col(pj);
            let (r2, v2) = b.col(j);
            assert_eq!(r1, r2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn row_permutation_moves_rows() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 1, 5.0).unwrap();
        let a = coo.to_csc().unwrap();
        let b = permute_rows(&a, &[2, 0, 1]); // new row 0 = old row 2
        assert_eq!(b.get(0, 1), 5.0);
        assert_eq!(b.get(1, 0), 1.0);
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = banded(50, 30, 4);
        let p = rcm_ordering(&a, 100);
        assert_eq!(p.len(), 30);
        assert!(is_permutation(&p));
    }

    #[test]
    fn rcm_recovers_band_structure_from_shuffle() {
        // Take a banded matrix, scramble its columns, and check RCM shrinks
        // the spread back toward the band.
        let a = banded(400, 100, 3);
        // Deterministic shuffle.
        let mut perm: Vec<usize> = (0..100).collect();
        let mut s = 12345u64;
        for i in (1..100usize).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let scrambled = permute_cols(&a, &perm);
        let identity: Vec<usize> = (0..100).collect();
        let spread_scrambled = column_spread(&scrambled, &identity);
        let rcm = rcm_ordering(&scrambled, 100);
        let spread_rcm = column_spread(&scrambled, &rcm);
        assert!(
            spread_rcm * 3 < spread_scrambled,
            "RCM failed to reduce spread: {spread_rcm} vs {spread_scrambled}"
        );
    }

    #[test]
    fn empty_and_degenerate() {
        let a = CscMatrix::<f64>::zeros(5, 0);
        assert!(rcm_ordering(&a, 10).is_empty());
        let b = CscMatrix::<f64>::zeros(5, 4);
        let p = rcm_ordering(&b, 10);
        assert!(is_permutation(&p));
        assert_eq!(column_spread(&b, &p), 0);
    }

    #[test]
    #[should_panic(expected = "permutation length")]
    fn wrong_perm_length_panics() {
        let a = banded(4, 4, 2);
        let _ = permute_cols(&a, &[0, 1]);
    }
}
