//! Deterministic single-field corruptions of compressed matrices.
//!
//! The hardening layer's test surface: each [`Corruption`] breaks exactly
//! one storage invariant of a well-formed matrix, at a position derived
//! from a seed, so the validator property tests and the chaoscheck fault
//! matrix can assert that [`crate::CscMatrix::validate`] /
//! [`crate::CsrMatrix::validate`] reject the mutation with the *matching*
//! [`crate::SparseError`] variant — not merely "some error".
//!
//! Corrupted matrices are built with `from_parts_unchecked`; they are
//! poisoned objects whose only legitimate use is being fed to a validator
//! or a hardened entry point.

use crate::scalar::Scalar;
use crate::{CscMatrix, CsrMatrix};

/// A single-invariant mutation of a compressed matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Swap two adjacent inner indices within one slot (breaks strict
    /// ordering; detected as `UnsortedIndices`).
    SwapAdjacentIndices,
    /// Push one inner index past the matrix dimension (detected as
    /// `IndexOutOfBounds`).
    OutOfBoundsIndex,
    /// Raise one interior pointer above its successor (detected as
    /// `NonMonotonePtr`).
    NonMonotonePtr,
    /// Replace one stored value with NaN (detected as `NotFinite`).
    NanValue,
    /// Replace one stored value with +∞ (detected as `NotFinite`).
    InfValue,
}

impl Corruption {
    /// Every corruption kind, in a fixed order (for sweep harnesses).
    pub const ALL: [Corruption; 5] = [
        Corruption::SwapAdjacentIndices,
        Corruption::OutOfBoundsIndex,
        Corruption::NonMonotonePtr,
        Corruption::NanValue,
        Corruption::InfValue,
    ];
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(seed: u64, n: usize) -> usize {
    (splitmix64(seed) % n as u64) as usize
}

/// Apply `kind` to raw compressed arrays. Returns `false` (arrays untouched)
/// when the matrix is too small to host that corruption.
fn corrupt_parts<T: Scalar>(
    inner_len: usize,
    ptr: &mut [usize],
    idx: &mut [usize],
    values: &mut [T],
    kind: Corruption,
    seed: u64,
) -> bool {
    let outer_len = ptr.len() - 1;
    match kind {
        Corruption::SwapAdjacentIndices => {
            // Need a slot with at least two entries.
            let fat: Vec<usize> = (0..outer_len)
                .filter(|&j| ptr[j + 1] - ptr[j] >= 2)
                .collect();
            if fat.is_empty() {
                return false;
            }
            let j = fat[pick(seed, fat.len())];
            let k = ptr[j] + pick(seed ^ 1, ptr[j + 1] - ptr[j] - 1);
            idx.swap(k, k + 1);
            true
        }
        Corruption::OutOfBoundsIndex => {
            if idx.is_empty() {
                return false;
            }
            let k = pick(seed, idx.len());
            idx[k] = inner_len + pick(seed ^ 2, 7);
            true
        }
        Corruption::NonMonotonePtr => {
            if outer_len < 2 {
                return false;
            }
            // Interior pointer k ∈ [1, outer_len): exceed its successor.
            let k = 1 + pick(seed, outer_len - 1);
            ptr[k] = ptr[k + 1] + 1 + pick(seed ^ 3, 5);
            true
        }
        Corruption::NanValue | Corruption::InfValue => {
            if values.is_empty() {
                return false;
            }
            let k = pick(seed, values.len());
            values[k] = if kind == Corruption::NanValue {
                T::from_f64(f64::NAN)
            } else {
                T::from_f64(f64::INFINITY)
            };
            true
        }
    }
}

/// Return a copy of `a` with exactly one invariant broken, or `None` when
/// the matrix is too small to host that corruption (e.g. swapping indices
/// in a matrix with no slot of two entries).
pub fn corrupt_csc<T: Scalar>(
    a: &CscMatrix<T>,
    kind: Corruption,
    seed: u64,
) -> Option<CscMatrix<T>> {
    let mut ptr = a.col_ptr().to_vec();
    let mut idx = a.row_idx().to_vec();
    let mut values = a.values().to_vec();
    corrupt_parts(a.nrows(), &mut ptr, &mut idx, &mut values, kind, seed)
        .then(|| CscMatrix::from_parts_unchecked(a.nrows(), a.ncols(), ptr, idx, values))
}

/// CSR twin of [`corrupt_csc`].
pub fn corrupt_csr<T: Scalar>(
    a: &CsrMatrix<T>,
    kind: Corruption,
    seed: u64,
) -> Option<CsrMatrix<T>> {
    let mut ptr = a.row_ptr().to_vec();
    let mut idx = a.col_idx().to_vec();
    let mut values = a.values().to_vec();
    corrupt_parts(a.ncols(), &mut ptr, &mut idx, &mut values, kind, seed)
        .then(|| CsrMatrix::from_parts_unchecked(a.nrows(), a.ncols(), ptr, idx, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, SparseError};

    fn sample() -> CscMatrix<f64> {
        let mut coo = CooMatrix::new(6, 5);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (3, 0, -2.0),
            (1, 1, 3.0),
            (4, 1, 0.5),
            (5, 1, 2.5),
            (2, 3, -1.0),
            (0, 4, 4.0),
            (5, 4, 1.5),
        ] {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn each_corruption_trips_the_matching_variant() {
        let a = sample();
        assert!(a.validate().is_ok());
        for seed in 0..8u64 {
            for kind in Corruption::ALL {
                let bad = corrupt_csc(&a, kind, seed).expect("sample hosts all corruptions");
                let err = bad.validate().expect_err("corruption must be rejected");
                match kind {
                    Corruption::SwapAdjacentIndices => {
                        assert!(matches!(err, SparseError::UnsortedIndices { .. }), "{err}")
                    }
                    Corruption::OutOfBoundsIndex => {
                        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }), "{err}")
                    }
                    Corruption::NonMonotonePtr => {
                        assert!(matches!(err, SparseError::NonMonotonePtr { .. }), "{err}")
                    }
                    Corruption::NanValue | Corruption::InfValue => {
                        assert!(matches!(err, SparseError::NotFinite { .. }), "{err}")
                    }
                }
                // Same seed, same corruption: deterministic (values compared
                // bitwise — NaN payloads defeat PartialEq).
                let again = corrupt_csc(&a, kind, seed).unwrap();
                assert_eq!(bad.col_ptr(), again.col_ptr());
                assert_eq!(bad.row_idx(), again.row_idx());
                let bits = |m: &CscMatrix<f64>| -> Vec<u64> {
                    m.values().iter().map(|v| v.to_bits()).collect()
                };
                assert_eq!(bits(&bad), bits(&again));
            }
        }
    }

    #[test]
    fn csr_corruptions_also_trip() {
        let a = sample().to_csr();
        assert!(a.validate().is_ok());
        for kind in Corruption::ALL {
            let bad = corrupt_csr(&a, kind, 3).expect("sample hosts all corruptions");
            assert!(bad.validate().is_err(), "{kind:?} not rejected");
        }
    }

    #[test]
    fn degenerate_matrices_refuse_unhostable_corruptions() {
        let z = CscMatrix::<f64>::zeros(3, 3);
        assert!(corrupt_csc(&z, Corruption::SwapAdjacentIndices, 0).is_none());
        assert!(corrupt_csc(&z, Corruption::OutOfBoundsIndex, 0).is_none());
        assert!(corrupt_csc(&z, Corruption::NanValue, 0).is_none());
        // Pointer corruption still possible (ptr array always exists).
        let bad = corrupt_csc(&z, Corruption::NonMonotonePtr, 0).unwrap();
        assert!(matches!(
            bad.validate(),
            Err(SparseError::NonMonotonePtr { .. })
        ));
    }
}
