//! CSR (compressed sparse row) storage.
//!
//! Used by the MKL-style baseline (MKL times sparse-times-dense with `A` in
//! CSR, paper Table II) and as the per-block storage inside [`crate::BlockedCsr`].

use crate::scalar::Scalar;
use crate::{CscMatrix, Result};

/// Compressed sparse row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Construct with full structural validation (mirror of
    /// [`CscMatrix::try_new`]).
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        crate::validate::CompressedParts {
            outer_len: nrows,
            inner_len: ncols,
            ptr: &row_ptr,
            idx: &col_idx,
            outer_is_col: false,
            shape: (nrows, ncols),
        }
        .check_structure(values.len())?;
        Ok(Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Re-check every storage invariant plus a NaN/Inf scan (mirror of
    /// [`CscMatrix::validate`]).
    pub fn validate(&self) -> Result<()> {
        let parts = crate::validate::CompressedParts {
            outer_len: self.nrows,
            inner_len: self.ncols,
            ptr: &self.row_ptr,
            idx: &self.col_idx,
            outer_is_col: false,
            shape: (self.nrows, self.ncols),
        };
        parts.check_structure(self.values.len())?;
        parts.check_finite(&self.values)
    }

    /// Construct without validation (hot conversion paths).
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Columns and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Value at `(i, j)` (binary search; zero if absent).
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => T::ZERO,
        }
    }

    /// Convert to CSC (transpose of the reinterpretation trick).
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut col_counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            col_counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            col_counts[j + 1] += col_counts[j];
        }
        let mut cursor = col_counts.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                let k = cursor[j];
                row_idx[k] = i;
                values[k] = v;
                cursor[j] += 1;
            }
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, col_counts, row_idx, values)
    }

    /// Memory footprint of the three arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<T>()
    }

    /// Sparse matrix-vector product `y = A·x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = T::ZERO;
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                acc = v.mul_add(x[j], acc);
            }
            *yi = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 3 0]
        CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let a = small();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.row_nnz(0), 2);
        let (cols, vals) = a.row(1);
        assert_eq!(cols, &[1]);
        assert_eq!(vals, &[3.0]);
    }

    #[test]
    fn validation() {
        assert!(CsrMatrix::<f64>::try_new(1, 1, vec![0], vec![], vec![]).is_err());
        assert!(CsrMatrix::<f64>::try_new(1, 1, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::<f64>::try_new(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        assert!(CsrMatrix::<f64>::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn csc_round_trip() {
        let a = small();
        let csc = a.to_csc();
        let back = csc.to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 2];
        a.spmv(&x, &mut y);
        assert_eq!(y, [7.0, 6.0]);
    }

    #[test]
    fn memory_accounting() {
        let a = small();
        assert_eq!(a.memory_bytes(), 3 * 8 + 3 * 8 + 3 * 8);
    }
}
