//! Column-major dense matrix.
//!
//! The sketch `Â` produced by the kernels is dense and is updated
//! column-contiguously by Algorithm 3 (variant `kji` streams columns of `G`),
//! so column-major is the natural layout. Row-major views are provided where
//! the MKL-style baseline needs them.

use crate::Scalar;

/// Dense matrix in column-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// An all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Wrap an existing column-major buffer.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer length mismatch");
        Self { nrows, ncols, data }
    }

    /// Build from a row-major buffer (transposing copy).
    pub fn from_row_major(nrows: usize, ncols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer length mismatch");
        Self::from_fn(nrows, ncols, |i, j| data[i * ncols + j])
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Underlying column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Underlying column-major slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct columns mutably (for rotation kernels).
    ///
    /// # Panics
    /// If `j1 == j2`.
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(j1, j2, "columns must be distinct");
        let n = self.nrows;
        if j1 < j2 {
            let (a, b) = self.data.split_at_mut(j2 * n);
            (&mut a[j1 * n..(j1 + 1) * n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(j1 * n);
            let (x, y) = (&mut b[..n], &mut a[j2 * n..(j2 + 1) * n]);
            (x, y)
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `y = A·x`.
    pub fn matvec(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(T::ZERO);
        for (j, &xj) in x.iter().enumerate() {
            if xj == T::ZERO {
                continue;
            }
            for (yi, &aij) in y.iter_mut().zip(self.col(j).iter()) {
                *yi = aij.mul_add(xj, *yi);
            }
        }
    }

    /// Transposed matrix-vector product `y = Aᵀ·x`.
    pub fn matvec_t(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (&aij, &xi) in self.col(j).iter().zip(x.iter()) {
                acc = aij.mul_add(xi, acc);
            }
            *yj = acc;
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> T {
        let mut acc = T::ZERO;
        for &v in &self.data {
            acc = v.mul_add(v, acc);
        }
        acc.sqrt()
    }

    /// Max absolute entry.
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |m, &v| m.max_s(v.abs()))
    }

    /// Sub-matrix copy `A[r0..r1, c0..c1]`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix<T> {
        assert!(r0 <= r1 && r1 <= self.nrows && c0 <= c1 && c1 <= self.ncols);
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Memory footprint of the value buffer in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Scale all entries in place.
    pub fn scale(&mut self, s: T) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Elementwise difference Frobenius norm `‖self − other‖_F`
    /// (verification helper).
    pub fn diff_norm(&self, other: &Matrix<T>) -> T {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut acc = T::ZERO;
        for (&a, &b) in self.data.iter().zip(other.data.iter()) {
            let d = a - b;
            acc = d.mul_add(d, acc);
        }
        acc.sqrt()
    }
}

/// Expand a sparse CSC matrix to dense column-major in O(m·n) — prefer this
/// over `Matrix::from_fn(|i, j| a.get(i, j))`, which pays a binary search per
/// entry.
pub fn densify<T: Scalar>(a: &sparsekit::CscMatrix<T>) -> Matrix<T> {
    let mut out = Matrix::zeros(a.nrows(), a.ncols());
    for j in 0..a.ncols() {
        let (rows, vals) = a.col(j);
        let col = out.col_mut(j);
        for (&i, &v) in rows.iter().zip(vals.iter()) {
            col[i] = v;
        }
    }
    out
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.col(1), &[1.0, 11.0]);
    }

    #[test]
    fn row_major_round_trip() {
        let rm = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = Matrix::from_row_major(2, 3, &rm);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 4.0);
        let t = m.transpose();
        assert_eq!(t[(1, 0)], 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = [0.0; 2];
        m.matvec(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, [6.0, 15.0]);
        let mut z = [0.0; 3];
        m.matvec_t(&[1.0, 1.0], &mut z);
        assert_eq!(z, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        {
            let (a, b) = m.two_cols_mut(1, 3);
            a[0] = 1.0;
            b[2] = 2.0;
        }
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(2, 3)], 2.0);
        // Reversed order.
        {
            let (a, b) = m.two_cols_mut(3, 1);
            assert_eq!(b[0], 1.0);
            a[0] = 5.0;
        }
        assert_eq!(m[(0, 3)], 5.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn two_cols_same_panics() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        let _ = m.two_cols_mut(1, 1);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_row_major(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert_eq!(m.fro_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        let z = Matrix::<f64>::zeros(2, 2);
        assert_eq!(m.diff_norm(&z), 5.0);
    }

    #[test]
    fn submatrix_extraction() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn densify_matches_get() {
        let mut coo = sparsekit::CooMatrix::<f64>::new(4, 3);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(3, 2, -2.0).unwrap();
        coo.push(1, 1, 7.0).unwrap();
        let a = coo.to_csc().unwrap();
        let d = densify(&a);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(d[(i, j)], a.get(i, j));
            }
        }
    }

    #[test]
    fn identity_matvec() {
        let i = Matrix::<f64>::identity(3);
        let mut y = [0.0; 3];
        i.matvec(&[7.0, 8.0, 9.0], &mut y);
        assert_eq!(y, [7.0, 8.0, 9.0]);
    }
}
