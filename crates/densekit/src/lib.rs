#![warn(missing_docs)]
//! # densekit — dense linear algebra substrate
//!
//! Dense matrices and factorizations needed by the sketching pipeline:
//!
//! * [`Matrix`] — column-major dense storage (the sketch `Â = S·A` is dense,
//!   and column-major matches Algorithm 3's column-wise updates).
//! * [`gemm`] — cache-blocked matrix-matrix multiply, used by the
//!   materialized-`S` baselines and for verification.
//! * [`qr`] — Householder QR; the R factor of the sketch is the
//!   preconditioner in SAP-QR (paper §V-C1).
//! * [`svd`] — Golub–Kahan–Reinsch SVD (bidiagonalization + implicit-shift
//!   QR); `V·Σ⁻¹` from the sketch is the SAP-SVD preconditioner for
//!   rank-deficient problems, with singular values below
//!   `σ_max/10¹²` dropped exactly as the paper prescribes.
//! * [`solve`] — triangular solves used when applying preconditioners.
//! * [`cond`] — condition-number computation for the Table VIII properties.

pub mod cholesky;
pub mod cond;
pub mod gemm;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod svd;

pub use cholesky::Cholesky;
pub use cond::cond2;
pub use matrix::{densify, Matrix};
pub use qr::{householder_qr_r, HouseholderQr};
pub use solve::{solve_lower, solve_lower_t, solve_upper, solve_upper_t};
pub use svd::{svd_values, ThinSvd};

pub use sparsekit::Scalar;
