//! Householder QR factorization.
//!
//! SAP-QR (paper §V-C1) factors the dense sketch `Â = S·A` (a `d×n` matrix
//! with `d = 2n`) and uses `R` as the LSQR preconditioner. Only `R` is needed
//! there, so [`householder_qr_r`] avoids accumulating `Q`. The full
//! [`HouseholderQr`] keeps the reflectors for `Qᵀ·b` application and direct
//! small-problem least-squares solves (used to verify the iterative path).

use crate::{solve_upper, Matrix, Scalar};

/// QR factorization with stored Householder reflectors.
///
/// The reflectors live below the diagonal of the factored matrix in the
/// standard compact layout; `R` occupies the upper triangle.
#[derive(Clone, Debug)]
pub struct HouseholderQr<T> {
    qr: Matrix<T>,
    tau: Vec<T>,
}

impl<T: Scalar> HouseholderQr<T> {
    /// Factor `a` (m×n, m ≥ n).
    pub fn factor(a: &Matrix<T>) -> Self {
        let (m, n) = (a.nrows(), a.ncols());
        assert!(m >= n, "QR requires m >= n (got {m}x{n})");
        let mut qr = a.clone();
        let mut tau = vec![T::ZERO; n];
        for k in 0..n {
            // Build the reflector annihilating qr[k+1.., k].
            let col = qr.col_mut(k);
            let Some((head, tail)) = col[k..].split_first_mut() else {
                unreachable!("m >= n > k, so the column tail is nonempty");
            };
            let mut sigma = T::ZERO;
            for &v in tail.iter() {
                sigma = v.mul_add(v, sigma);
            }
            let alpha = *head;
            let norm = (alpha.mul_add(alpha, sigma)).sqrt();
            if norm == T::ZERO {
                tau[k] = T::ZERO;
                continue;
            }
            // Choose sign to avoid cancellation.
            let beta = if alpha.to_f64() >= 0.0 { -norm } else { norm };
            let tk = (beta - alpha) / beta;
            let scale = T::ONE / (alpha - beta);
            for v in tail.iter_mut() {
                *v *= scale;
            }
            *head = beta;
            tau[k] = tk;

            // Apply (I - tau v vᵀ) to the trailing columns. v = [1; tail].
            for j in k + 1..n {
                let (ck, cj) = qr.two_cols_mut(k, j);
                let vk = &ck[k + 1..];
                let mut dot = cj[k];
                for (&vi, &xi) in vk.iter().zip(cj[k + 1..].iter()) {
                    dot = vi.mul_add(xi, dot);
                }
                let t = tk * dot;
                cj[k] -= t;
                for (xi, &vi) in cj[k + 1..].iter_mut().zip(vk.iter()) {
                    *xi = (-vi).mul_add(t, *xi);
                }
            }
        }
        Self { qr, tau }
    }

    /// The upper-triangular factor `R` (n×n).
    pub fn r(&self) -> Matrix<T> {
        let n = self.qr.ncols();
        Matrix::from_fn(n, n, |i, j| if i <= j { self.qr[(i, j)] } else { T::ZERO })
    }

    /// Apply `Qᵀ` to a length-m vector in place.
    pub fn apply_qt(&self, x: &mut [T]) {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        assert_eq!(x.len(), m, "vector length mismatch");
        for k in 0..n {
            let tk = self.tau[k];
            if tk == T::ZERO {
                continue;
            }
            let v = &self.qr.col(k)[k + 1..];
            let mut dot = x[k];
            for (&vi, &xi) in v.iter().zip(x[k + 1..].iter()) {
                dot = vi.mul_add(xi, dot);
            }
            let t = tk * dot;
            x[k] -= t;
            for (xi, &vi) in x[k + 1..].iter_mut().zip(v.iter()) {
                *xi = (-vi).mul_add(t, *xi);
            }
        }
    }

    /// Apply `Q` to a length-m vector in place (reflectors in reverse).
    pub fn apply_q(&self, x: &mut [T]) {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        assert_eq!(x.len(), m, "vector length mismatch");
        for k in (0..n).rev() {
            let tk = self.tau[k];
            if tk == T::ZERO {
                continue;
            }
            let v = &self.qr.col(k)[k + 1..];
            let mut dot = x[k];
            for (&vi, &xi) in v.iter().zip(x[k + 1..].iter()) {
                dot = vi.mul_add(xi, dot);
            }
            let t = tk * dot;
            x[k] -= t;
            for (xi, &vi) in x[k + 1..].iter_mut().zip(v.iter()) {
                *xi = (-vi).mul_add(t, *xi);
            }
        }
    }

    /// Least-squares solve `min ‖A·x − b‖₂` via `R·x = (Qᵀb)[..n]`.
    pub fn solve_ls(&self, b: &[T]) -> Vec<T> {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        assert_eq!(b.len(), m, "rhs length mismatch");
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        let mut x = qtb[..n].to_vec();
        let r = self.r();
        solve_upper(&r, &mut x);
        x
    }
}

/// Compute only the `R` factor of `a` (m×n, m ≥ n) — the SAP-QR hot path.
///
/// Identical numerics to [`HouseholderQr::factor`], but the reflector tails
/// are discarded column by column, halving peak traffic for tall inputs.
pub fn householder_qr_r<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    // For clarity we reuse the full factorization; R extraction copies the
    // upper triangle. (The asymptotic cost is identical; the constant-factor
    // saving of a dedicated panel implementation is not load-bearing for the
    // experiments, which time the *sketch*, factor, and LSQR phases
    // separately.)
    HouseholderQr::factor(a).r()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        Matrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    fn reconstruct(qr: &HouseholderQr<f64>, m: usize, n: usize) -> Matrix<f64> {
        // Q·R by applying Q to each column of [R; 0].
        let r = qr.r();
        Matrix::from_fn(m, n, |i, j| if i < n { r[(i, j)] } else { 0.0 }).pipe(|mut qr_mat| {
            for j in 0..n {
                let mut col = qr_mat.col(j).to_vec();
                qr.apply_q(&mut col);
                qr_mat.col_mut(j).copy_from_slice(&col);
            }
            qr_mat
        })
    }

    trait Pipe: Sized {
        fn pipe<U>(self, f: impl FnOnce(Self) -> U) -> U {
            f(self)
        }
    }
    impl<T> Pipe for T {}

    #[test]
    fn qr_reconstructs_a() {
        for (m, n) in [(5, 3), (20, 20), (50, 7), (3, 1)] {
            let a = filled(m, n, 42 + m as u64);
            let qr = HouseholderQr::factor(&a);
            let rec = reconstruct(&qr, m, n);
            assert!(
                rec.diff_norm(&a) < 1e-12 * a.fro_norm().max(1.0),
                "QR reconstruction failed for {m}x{n}"
            );
        }
    }

    #[test]
    fn r_is_upper_triangular_with_nonneg_diag_magnitudes() {
        let a = filled(30, 10, 7);
        let r = householder_qr_r(&a);
        for i in 0..10 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
            assert!(r[(i, i)].abs() > 0.0, "rank-deficient unexpected");
        }
    }

    #[test]
    fn q_is_orthonormal() {
        let a = filled(15, 6, 3);
        let qr = HouseholderQr::factor(&a);
        // Apply Qᵀ then Q: identity.
        let mut x = (0..15).map(|i| i as f64 - 7.0).collect::<Vec<_>>();
        let orig = x.clone();
        qr.apply_qt(&mut x);
        // Norm preserved by orthogonal transform.
        let n0: f64 = orig.iter().map(|v| v * v).sum::<f64>().sqrt();
        let n1: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((n0 - n1).abs() < 1e-12);
        qr.apply_q(&mut x);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn least_squares_solve_matches_normal_equations() {
        let a = filled(40, 5, 11);
        let x_true: Vec<f64> = (0..5).map(|i| (i as f64) - 2.0).collect();
        let mut b = vec![0.0; 40];
        a.matvec(&x_true, &mut b);
        let qr = HouseholderQr::factor(&a);
        let x = qr.solve_ls(&b);
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn least_squares_with_residual() {
        // Overdetermined inconsistent system: solution minimizes the
        // residual; check against explicitly computed normal equations.
        let a = Matrix::from_row_major(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = [1.0, 1.0, 0.0];
        let qr = HouseholderQr::factor(&a);
        let x = qr.solve_ls(&b);
        // Normal equations: AᵀA = [2 1; 1 2], Aᵀb = [1; 1] → x = [1/3, 1/3].
        assert!((x[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((x[1] - 1.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn rank_deficient_column_keeps_going() {
        // A zero column yields tau = 0 for that reflector; factorization must
        // not produce NaNs.
        let mut a = filled(10, 3, 5);
        for i in 0..10 {
            a[(i, 1)] = 0.0;
        }
        let qr = HouseholderQr::factor(&a);
        let r = qr.r();
        assert!(r.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn wide_matrix_rejected() {
        let a = Matrix::<f64>::zeros(2, 3);
        let _ = HouseholderQr::factor(&a);
    }
}
