//! Triangular solves.
//!
//! The SAP solvers apply their preconditioner as `R⁻¹` (QR) or implicitly via
//! `V·Σ⁻¹` (SVD); the QR path needs forward/back substitution with the dense
//! triangular factor of the sketch, in both plain and transposed forms
//! (LSQR applies `M` and `Mᵀ` per iteration).

use crate::{Matrix, Scalar};

/// Solve `U·x = b` for upper-triangular `U`, in place in `b`.
///
/// # Panics
/// On dimension mismatch or a zero diagonal entry.
pub fn solve_upper<T: Scalar>(u: &Matrix<T>, b: &mut [T]) {
    let n = u.ncols();
    assert_eq!(u.nrows(), n, "U must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    for j in (0..n).rev() {
        let d = u[(j, j)];
        assert!(d != T::ZERO, "singular triangular factor at {j}");
        let xj = b[j] / d;
        b[j] = xj;
        // Update remaining rhs with column j above the diagonal.
        let col = &u.col(j)[..j];
        for (bi, &uij) in b[..j].iter_mut().zip(col.iter()) {
            *bi = (-uij).mul_add(xj, *bi);
        }
    }
}

/// Solve `Uᵀ·x = b` (forward substitution through the upper factor), in place.
pub fn solve_upper_t<T: Scalar>(u: &Matrix<T>, b: &mut [T]) {
    let n = u.ncols();
    assert_eq!(u.nrows(), n, "U must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    for j in 0..n {
        // Row j of Uᵀ is column j of U: entries U[0..j, j] multiply x[0..j].
        let col = &u.col(j)[..j];
        let mut acc = b[j];
        for (&uij, &xi) in col.iter().zip(b[..j].iter()) {
            acc = (-uij).mul_add(xi, acc);
        }
        let d = u[(j, j)];
        assert!(d != T::ZERO, "singular triangular factor at {j}");
        b[j] = acc / d;
    }
}

/// Solve `L·x = b` for lower-triangular `L`, in place.
pub fn solve_lower<T: Scalar>(l: &Matrix<T>, b: &mut [T]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "L must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    for j in 0..n {
        let d = l[(j, j)];
        assert!(d != T::ZERO, "singular triangular factor at {j}");
        let xj = b[j] / d;
        b[j] = xj;
        let col = &l.col(j)[j + 1..];
        for (bi, &lij) in b[j + 1..].iter_mut().zip(col.iter()) {
            *bi = (-lij).mul_add(xj, *bi);
        }
    }
}

/// Solve `Lᵀ·x = b`, in place.
pub fn solve_lower_t<T: Scalar>(l: &Matrix<T>, b: &mut [T]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "L must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    for j in (0..n).rev() {
        let col = &l.col(j)[j + 1..];
        let mut acc = b[j];
        for (&lij, &xi) in col.iter().zip(b[j + 1..].iter()) {
            acc = (-lij).mul_add(xi, acc);
        }
        let d = l[(j, j)];
        assert!(d != T::ZERO, "singular triangular factor at {j}");
        b[j] = acc / d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upper3() -> Matrix<f64> {
        Matrix::from_row_major(3, 3, &[2.0, 1.0, -1.0, 0.0, 3.0, 2.0, 0.0, 0.0, 4.0])
    }

    fn lower3() -> Matrix<f64> {
        upper3().transpose()
    }

    #[test]
    fn upper_solve_round_trip() {
        let u = upper3();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = [0.0; 3];
        u.matvec(&x_true, &mut b);
        solve_upper(&u, &mut b);
        for (a, e) in b.iter().zip(x_true.iter()) {
            assert!((a - e).abs() < 1e-14);
        }
    }

    #[test]
    fn upper_t_solve_round_trip() {
        let u = upper3();
        let ut = u.transpose();
        let x_true = [0.25, 3.0, -1.0];
        let mut b = [0.0; 3];
        ut.matvec(&x_true, &mut b);
        solve_upper_t(&u, &mut b);
        for (a, e) in b.iter().zip(x_true.iter()) {
            assert!((a - e).abs() < 1e-14);
        }
    }

    #[test]
    fn lower_solve_round_trip() {
        let l = lower3();
        let x_true = [2.0, 0.0, -3.0];
        let mut b = [0.0; 3];
        l.matvec(&x_true, &mut b);
        solve_lower(&l, &mut b);
        for (a, e) in b.iter().zip(x_true.iter()) {
            assert!((a - e).abs() < 1e-14);
        }
    }

    #[test]
    fn lower_t_solve_round_trip() {
        let l = lower3();
        let lt = l.transpose();
        let x_true = [1.0, 1.0, 1.0];
        let mut b = [0.0; 3];
        lt.matvec(&x_true, &mut b);
        solve_lower_t(&l, &mut b);
        for (a, e) in b.iter().zip(x_true.iter()) {
            assert!((a - e).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn zero_diagonal_panics() {
        let mut u = upper3();
        u[(1, 1)] = 0.0;
        let mut b = [1.0, 1.0, 1.0];
        solve_upper(&u, &mut b);
    }

    #[test]
    fn identity_solves_are_noops() {
        let i = Matrix::<f64>::identity(4);
        let mut b = [1.0, 2.0, 3.0, 4.0];
        let orig = b;
        solve_upper(&i, &mut b);
        assert_eq!(b, orig);
        solve_lower(&i, &mut b);
        assert_eq!(b, orig);
        solve_upper_t(&i, &mut b);
        assert_eq!(b, orig);
        solve_lower_t(&i, &mut b);
        assert_eq!(b, orig);
    }
}
