//! Dense Cholesky factorization.
//!
//! Used by the normal-equations baseline solver (`lstsq::normal`): the Gram
//! matrix `AᵀA` of a tall sparse `A` is a small dense SPD matrix. Classical
//! but numerically inferior to QR/SAP — `cond(AᵀA) = cond(A)²` — which the
//! least-squares comparison quantifies.

use crate::{Matrix, Scalar};

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
#[derive(Clone, Debug)]
pub struct Cholesky<T> {
    l: Matrix<T>,
}

/// Error: the matrix is not numerically positive definite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the factorization broke down.
    pub at: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.at)
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl<T: Scalar> Cholesky<T> {
    /// Factor a symmetric positive-definite matrix (only the lower triangle
    /// of `a` is read).
    pub fn factor(a: &Matrix<T>) -> Result<Self, NotPositiveDefinite> {
        let n = a.ncols();
        assert_eq!(a.nrows(), n, "Cholesky needs a square matrix");
        let mut l = Matrix::<T>::zeros(n, n);
        for j in 0..n {
            // d = a_jj − Σ_k l_jk².
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d = (-ljk).mul_add(ljk, d);
            }
            if d.to_f64() <= 0.0 {
                return Err(NotPositiveDefinite { at: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            // Column below the pivot.
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s = (-l[(i, k)]).mul_add(l[(j, k)], s);
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix<T> {
        &self.l
    }

    /// Solve `A·x = b` in place (forward then back substitution).
    pub fn solve_in_place(&self, b: &mut [T]) {
        crate::solve_lower(&self.l, b);
        crate::solve_lower_t(&self.l, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        // B random, A = BᵀB + n·I is SPD.
        let mut s = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((s >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        });
        let mut a = Matrix::zeros(n, n);
        densekit_gemm(&b.transpose(), &b, &mut a);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn densekit_gemm(x: &Matrix<f64>, y: &Matrix<f64>, z: &mut Matrix<f64>) {
        crate::gemm::gemm(x, y, z);
    }

    #[test]
    fn factor_and_solve() {
        let a = spd(12, 3);
        let chol = Cholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64) / 3.0 - 2.0).collect();
        let mut b = vec![0.0; 12];
        a.matvec(&x_true, &mut b);
        chol.solve_in_place(&mut b);
        for (got, want) in b.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-11, "{got} vs {want}");
        }
    }

    #[test]
    fn reconstruction() {
        let a = spd(8, 5);
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.l();
        let mut rec = Matrix::zeros(8, 8);
        crate::gemm::gemm(l, &l.transpose(), &mut rec);
        assert!(rec.diff_norm(&a) < 1e-11 * a.fro_norm());
        // L is lower triangular with positive diagonal.
        for i in 0..8 {
            assert!(l[(i, i)] > 0.0);
            for j in i + 1..8 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let mut a = Matrix::<f64>::identity(3);
        a[(2, 2)] = -1.0;
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.at, 2);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_rejected() {
        let a = Matrix::<f64>::zeros(3, 2);
        let _ = Cholesky::factor(&a);
    }
}
