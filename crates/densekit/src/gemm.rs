//! Cache-blocked dense GEMM.
//!
//! Used by the materialized-`S` baselines (which multiply an explicit dense
//! `S` against densified blocks) and by verification paths. The blocking
//! follows the classic `O(√M)` tiling the paper's §III-A contrasts against:
//! GEMM's computational intensity is `O(√M)`, which the sketching kernels
//! beat by a factor `√M` when `h` (RNG cost) is small.

use crate::{Matrix, Scalar};

/// Tile edge for the blocked kernel; 64×64 f64 tiles ≈ 32 KiB, sized for L1.
const TILE: usize = 64;

/// `C += A·B` with cache blocking. Shapes: A is m×k, B is k×n, C is m×n.
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>) {
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    assert_eq!(b.nrows(), k, "inner dimension mismatch");
    assert_eq!(c.nrows(), m, "output rows mismatch");
    assert_eq!(c.ncols(), n, "output cols mismatch");

    for jc in (0..n).step_by(TILE) {
        let jhi = (jc + TILE).min(n);
        for pc in (0..k).step_by(TILE) {
            let phi = (pc + TILE).min(k);
            for ic in (0..m).step_by(TILE) {
                let ihi = (ic + TILE).min(m);
                // Micro-kernel on the tile: jpi ordering, column-contiguous
                // access to A and C.
                for j in jc..jhi {
                    for p in pc..phi {
                        let bpj = b[(p, j)];
                        if bpj == T::ZERO {
                            continue;
                        }
                        let a_col = &a.col(p)[ic..ihi];
                        let c_col = &mut c.col_mut(j)[ic..ihi];
                        for (cv, &av) in c_col.iter_mut().zip(a_col.iter()) {
                            *cv = av.mul_add(bpj, *cv);
                        }
                    }
                }
            }
        }
    }
}

/// `C += A·B` parallelized over column panels of `C` with parkit.
pub fn gemm_parallel<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>) {
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    assert_eq!(b.nrows(), k, "inner dimension mismatch");
    assert_eq!(c.nrows(), m, "output rows mismatch");
    assert_eq!(c.ncols(), n, "output cols mismatch");

    // Each worker owns a disjoint panel of C's columns: data-race free by
    // construction (parkit chunks are disjoint &mut slices).
    parkit::for_each_chunk_mut(c.as_mut_slice(), m * TILE.max(1), |panel, c_panel| {
        let jc = panel * TILE;
        let jhi = (jc + TILE).min(n);
        for pc in (0..k).step_by(TILE) {
            let phi = (pc + TILE).min(k);
            for ic in (0..m).step_by(TILE) {
                let ihi = (ic + TILE).min(m);
                for j in jc..jhi {
                    let local = j - jc;
                    for p in pc..phi {
                        let bpj = b[(p, j)];
                        if bpj == T::ZERO {
                            continue;
                        }
                        let a_col = &a.col(p)[ic..ihi];
                        let c_col = &mut c_panel[local * m + ic..local * m + ihi];
                        for (cv, &av) in c_col.iter_mut().zip(a_col.iter()) {
                            *cv = av.mul_add(bpj, *cv);
                        }
                    }
                }
            }
        }
    });
}

/// Reference triple-loop GEMM for verification (`C = A·B`, overwriting).
pub fn gemm_reference<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    assert_eq!(b.nrows(), k);
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        for p in 0..k {
            let bpj = b[(p, j)];
            for i in 0..m {
                c[(i, j)] = a[(i, p)].mul_add(bpj, c[(i, j)]);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        Matrix::from_fn(m, n, |i, j| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 31 + j as u64);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    #[test]
    fn blocked_matches_reference() {
        for (m, k, n) in [
            (5, 7, 3),
            (64, 64, 64),
            (100, 33, 129),
            (1, 1, 1),
            (130, 65, 64),
        ] {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            let reference = gemm_reference(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm(&a, &b, &mut c);
            assert!(
                c.diff_norm(&reference) < 1e-10 * reference.fro_norm().max(1.0),
                "blocked gemm mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn parallel_matches_reference() {
        for (m, k, n) in [(33, 70, 129), (64, 64, 200), (7, 3, 5)] {
            let a = filled(m, k, 3);
            let b = filled(k, n, 4);
            let reference = gemm_reference(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm_parallel(&a, &b, &mut c);
            assert!(
                c.diff_norm(&reference) < 1e-10 * reference.fro_norm().max(1.0),
                "parallel gemm mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = Matrix::<f64>::identity(3);
        let b = filled(3, 3, 9);
        let mut c = b.clone();
        gemm(&a, &b, &mut c); // c = b + I*b = 2b
        let mut twice = b.clone();
        twice.scale(2.0);
        assert!(c.diff_norm(&twice) < 1e-14);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm(&a, &b, &mut c);
    }
}
