//! Thin SVD via Golub–Kahan bidiagonalization and Golub–Reinsch
//! implicit-shift QR iteration.
//!
//! SAP-SVD (paper §V-C1) computes the SVD of the sketch `Â = S·A` and
//! preconditions LSQR with `V·Σ⁻¹`, dropping singular values below
//! `σ_max/10¹²`. Only `Σ` and `V` are needed, so the left reflectors and
//! rotations are discarded — the factorization below accumulates the right
//! side only, which keeps it `O(d·n²)` work and `O(n²)` extra memory.

use crate::{Matrix, Scalar};

/// Thin SVD result: singular values (descending) and right singular vectors.
///
/// Satisfies `‖A·vⱼ‖₂ = σⱼ` with the `vⱼ` orthonormal; the left vectors are
/// not formed.
#[derive(Clone, Debug)]
pub struct ThinSvd<T> {
    /// Singular values, sorted descending. Length `n`.
    pub sigma: Vec<T>,
    /// Right singular vectors as columns of an `n×n` orthogonal matrix.
    pub v: Matrix<T>,
}

/// Maximum QR sweeps per singular value before declaring non-convergence.
const MAX_SWEEPS: usize = 75;

impl<T: Scalar> ThinSvd<T> {
    /// Factor `a` (m×n, m ≥ n).
    ///
    /// # Panics
    /// If `m < n` or the QR iteration fails to converge (pathological
    /// non-finite input).
    pub fn factor(a: &Matrix<T>) -> Self {
        let (m, n) = (a.nrows(), a.ncols());
        assert!(m >= n, "thin SVD requires m >= n (got {m}x{n})");
        if n == 0 {
            return Self {
                sigma: Vec::new(),
                v: Matrix::zeros(0, 0),
            };
        }

        // ---- Phase 1: Golub–Kahan bidiagonalization ----
        // Work on a copy; accumulate right reflectors into V.
        let mut w = a.clone();
        let mut v = Matrix::<T>::identity(n);
        let mut d = vec![T::ZERO; n]; // diagonal of B
        let mut e = vec![T::ZERO; n]; // superdiagonal of B (e[n-1] unused)

        for k in 0..n {
            // Left reflector: annihilate w[k+1.., k].
            d[k] = Self::house_col(&mut w, k);
            // Right reflector: annihilate w[k, k+2..].
            if k + 2 <= n {
                e[k] = Self::house_row(&mut w, k, &mut v);
            }
        }

        // ---- Phase 2: implicit-shift QR iteration on the bidiagonal ----
        let eps = T::EPSILON;
        // Norm of the bidiagonal: absolute deflation floor. Entries below
        // eps·bnorm are numerically zero relative to σ_max — the standard
        // absolute-accuracy mode, which keeps strongly graded inputs (e.g.
        // columns scaled across 12+ orders of magnitude) from stalling.
        let bnorm = d
            .iter()
            .chain(e.iter())
            .fold(T::ZERO, |acc, &x| acc.max_s(x.abs()));
        let floor = eps * bnorm;
        let mut hi = n; // active block is d[0..hi]
        let mut total_iters = 0usize;
        let iter_budget = (MAX_SWEEPS * n).max(500);
        while hi > 0 {
            // Deflate converged superdiagonal entries.
            let mut split = 0usize;
            let mut deflated = false;
            for i in (0..hi - 1).rev() {
                let tol = eps * (d[i].abs() + d[i + 1].abs());
                if e[i].abs() <= tol.max_s(floor) {
                    e[i] = T::ZERO;
                    if i == hi - 2 {
                        hi -= 1;
                        deflated = true;
                        break;
                    }
                    split = split.max(i + 1);
                }
            }
            if deflated {
                continue;
            }
            if hi == 1 {
                hi = 0;
                continue;
            }
            let lo = split;

            // Numerically zero diagonal inside the block: rotate the
            // offending row away so the block splits.
            let mut zero_diag = false;
            for i in lo..hi - 1 {
                if d[i].abs() <= floor {
                    // Chase e[i] rightwards with left Givens rotations
                    // (which we don't accumulate).
                    d[i] = T::ZERO;
                    let mut f = e[i];
                    e[i] = T::ZERO;
                    for j in i + 1..hi {
                        let (c, s, r) = givens(d[j], f);
                        d[j] = r;
                        if j < hi - 1 {
                            f = -s * e[j];
                            e[j] = c * e[j];
                        }
                    }
                    zero_diag = true;
                    break;
                }
            }
            if zero_diag {
                continue;
            }

            total_iters += 1;
            assert!(
                total_iters <= iter_budget,
                "SVD QR iteration failed to converge (non-finite input?)"
            );

            // Wilkinson shift from the trailing 2x2 of BᵀB.
            let dm = d[hi - 2];
            let dn = d[hi - 1];
            let em = e[hi - 2];
            let el = if hi >= 3 { e[hi - 3] } else { T::ZERO };
            let t11 = dm.mul_add(dm, el * el);
            let t12 = dm * em;
            let t22 = dn.mul_add(dn, em * em);
            let delta = (t11 - t22) / (T::from_f64(2.0));
            let denom = delta.abs() + (delta.mul_add(delta, t12 * t12)).sqrt();
            let mu = if denom == T::ZERO {
                t22
            } else {
                let sign = if delta.to_f64() >= 0.0 {
                    T::ONE
                } else {
                    -T::ONE
                };
                t22 - sign * t12 * t12 / denom
            };

            // Bulge chase.
            let mut f = d[lo].mul_add(d[lo], -mu);
            let mut g = d[lo] * e[lo];
            for k in lo..hi - 1 {
                // Right rotation on columns (k, k+1): accumulate into V.
                let (c, s, _r) = givens(f, g);
                if k > lo {
                    e[k - 1] = hypot_t(f, g);
                }
                let t1 = d[k];
                let t2 = e[k];
                d[k] = c.mul_add(t1, s * t2);
                e[k] = (-s).mul_add(t1, c * t2);
                let t3 = d[k + 1];
                let bulge = s * t3;
                d[k + 1] = c * t3;
                rotate_cols(&mut v, k, k + 1, c, s);

                // Left rotation on rows (k, k+1): not accumulated.
                let (c2, s2, r2) = givens(d[k], bulge);
                d[k] = r2;
                let t4 = e[k];
                let t5 = d[k + 1];
                e[k] = c2.mul_add(t4, s2 * t5);
                d[k + 1] = (-s2).mul_add(t4, c2 * t5);
                if k + 2 < hi {
                    let t6 = e[k + 1];
                    f = e[k];
                    g = s2 * t6;
                    e[k + 1] = c2 * t6;
                } else {
                    f = e[k];
                    g = T::ZERO;
                }
            }
        }

        // ---- Phase 3: sign fixup and descending sort ----
        let mut sigma = d;
        for (j, s) in sigma.iter_mut().enumerate() {
            if s.to_f64() < 0.0 {
                *s = -*s;
                for i in 0..n {
                    let x = v[(i, j)];
                    v[(i, j)] = -x;
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            sigma[j]
                .partial_cmp(&sigma[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let sigma_sorted: Vec<T> = order.iter().map(|&k| sigma[k]).collect();
        let v_sorted = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);

        Self {
            sigma: sigma_sorted,
            v: v_sorted,
        }
    }

    /// Householder reflector on column `k` of `w` (annihilates below the
    /// diagonal); returns the new diagonal value. Applies to trailing
    /// columns.
    fn house_col(w: &mut Matrix<T>, k: usize) -> T {
        let (m, n) = (w.nrows(), w.ncols());
        let mut norm2 = T::ZERO;
        for i in k..m {
            let x = w[(i, k)];
            norm2 = x.mul_add(x, norm2);
        }
        let norm = norm2.sqrt();
        if norm == T::ZERO {
            return T::ZERO;
        }
        let alpha = w[(k, k)];
        let beta = if alpha.to_f64() >= 0.0 { -norm } else { norm };
        let scale = T::ONE / (alpha - beta);
        for i in k + 1..m {
            let x = w[(i, k)];
            w[(i, k)] = x * scale;
        }
        let tau = (beta - alpha) / beta;
        w[(k, k)] = T::ONE; // v head implied 1; store temporarily
        for j in k + 1..n {
            let mut dot = T::ZERO;
            for i in k..m {
                dot = w[(i, k)].mul_add(w[(i, j)], dot);
            }
            let t = tau * dot;
            for i in k..m {
                let vk = w[(i, k)];
                let x = w[(i, j)];
                w[(i, j)] = (-vk).mul_add(t, x);
            }
        }
        w[(k, k)] = beta;
        beta
    }

    /// Householder reflector on row `k`, columns `k+1..` (annihilates beyond
    /// the superdiagonal); accumulates into `v`; returns the superdiagonal.
    fn house_row(w: &mut Matrix<T>, k: usize, v: &mut Matrix<T>) -> T {
        let (m, n) = (w.nrows(), w.ncols());
        let mut norm2 = T::ZERO;
        for j in k + 1..n {
            let x = w[(k, j)];
            norm2 = x.mul_add(x, norm2);
        }
        let norm = norm2.sqrt();
        if norm == T::ZERO {
            return T::ZERO;
        }
        let alpha = w[(k, k + 1)];
        let beta = if alpha.to_f64() >= 0.0 { -norm } else { norm };
        let scale = T::ONE / (alpha - beta);
        for j in k + 2..n {
            let x = w[(k, j)];
            w[(k, j)] = x * scale;
        }
        let tau = (beta - alpha) / beta;

        // Apply from the right to the trailing rows of w: u = [1, w[k, k+2..]].
        for i in k + 1..m {
            let mut dot = w[(i, k + 1)];
            for j in k + 2..n {
                dot = w[(k, j)].mul_add(w[(i, j)], dot);
            }
            let t = tau * dot;
            w[(i, k + 1)] -= t;
            for j in k + 2..n {
                let u = w[(k, j)];
                let x = w[(i, j)];
                w[(i, j)] = (-u).mul_add(t, x);
            }
        }
        // Accumulate into V (n×n): V ← V·H.
        for i in 0..n {
            let mut dot = v[(i, k + 1)];
            for j in k + 2..n {
                dot = w[(k, j)].mul_add(v[(i, j)], dot);
            }
            let t = tau * dot;
            v[(i, k + 1)] -= t;
            for j in k + 2..n {
                let u = w[(k, j)];
                let x = v[(i, j)];
                v[(i, j)] = (-u).mul_add(t, x);
            }
        }
        beta
    }

    /// Numerical rank at the paper's drop tolerance `σ_max/10¹²`.
    pub fn rank_at_paper_tol(&self) -> usize {
        self.rank(T::from_f64(1e-12))
    }

    /// Number of singular values above `rel_tol · σ_max`.
    pub fn rank(&self, rel_tol: T) -> usize {
        match self.sigma.first() {
            None => 0,
            Some(&smax) => {
                let cut = smax * rel_tol;
                self.sigma.iter().take_while(|&&s| s > cut).count()
            }
        }
    }
}

/// Stable Givens rotation: returns `(c, s, r)` with
/// `[c s; -s c]ᵀ·[a; b] = [r; 0]`.
#[inline]
fn givens<T: Scalar>(a: T, b: T) -> (T, T, T) {
    if b == T::ZERO {
        return (T::ONE, T::ZERO, a);
    }
    if a == T::ZERO {
        return (T::ZERO, T::ONE, b);
    }
    let r = hypot_t(a, b);
    (a / r, b / r, r)
}

/// Overflow-safe `sqrt(a² + b²)`.
#[inline]
fn hypot_t<T: Scalar>(a: T, b: T) -> T {
    let (a, b) = (a.abs(), b.abs());
    let (big, small) = if a > b { (a, b) } else { (b, a) };
    if big == T::ZERO {
        return T::ZERO;
    }
    let q = small / big;
    big * (q.mul_add(q, T::ONE)).sqrt()
}

/// Apply a right Givens rotation to columns (j1, j2) of `m`.
#[inline]
fn rotate_cols<T: Scalar>(m: &mut Matrix<T>, j1: usize, j2: usize, c: T, s: T) {
    let (col1, col2) = m.two_cols_mut(j1, j2);
    for (x, y) in col1.iter_mut().zip(col2.iter_mut()) {
        let xv = *x;
        let yv = *y;
        *x = c.mul_add(xv, s * yv);
        *y = (-s).mul_add(xv, c * yv);
    }
}

/// Singular values only, sorted descending.
pub fn svd_values<T: Scalar>(a: &Matrix<T>) -> Vec<T> {
    if a.nrows() >= a.ncols() {
        ThinSvd::factor(a).sigma
    } else {
        ThinSvd::factor(&a.transpose()).sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        Matrix::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    /// ‖A·vⱼ‖ must equal σⱼ and V must be orthonormal.
    fn check_svd(a: &Matrix<f64>, svd: &ThinSvd<f64>, tol: f64) {
        let n = a.ncols();
        let scale = svd.sigma.first().copied().unwrap_or(1.0).max(1.0);
        for j in 0..n {
            let vj = svd.v.col(j);
            let mut av = vec![0.0; a.nrows()];
            a.matvec(vj, &mut av);
            let norm: f64 = av.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                (norm - svd.sigma[j]).abs() < tol * scale,
                "‖A v_{j}‖ = {norm} but σ_{j} = {}",
                svd.sigma[j]
            );
        }
        // Orthonormality of V.
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = svd
                    .v
                    .col(i)
                    .iter()
                    .zip(svd.v.col(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-10,
                    "V not orthonormal at ({i},{j}): {dot}"
                );
            }
        }
        // Sorted descending.
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn diagonal_matrix_exact() {
        let mut a = Matrix::<f64>::zeros(4, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let svd = ThinSvd::factor(&a);
        assert!((svd.sigma[0] - 3.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-12);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-12);
        check_svd(&a, &svd, 1e-12);
    }

    #[test]
    fn random_matrices_satisfy_invariants() {
        for (m, n, seed) in [(10, 10, 1), (30, 12, 2), (7, 7, 3), (100, 20, 4), (5, 1, 5)] {
            let a = filled(m, n, seed);
            let svd = ThinSvd::factor(&a);
            check_svd(&a, &svd, 1e-10);
        }
    }

    #[test]
    fn frobenius_identity() {
        // ‖A‖_F² = Σ σᵢ².
        let a = filled(25, 10, 9);
        let svd = ThinSvd::factor(&a);
        let fro2: f64 = a.fro_norm().powi(2);
        let sum2: f64 = svd.sigma.iter().map(|s| s * s).sum();
        assert!((fro2 - sum2).abs() < 1e-10 * fro2);
    }

    #[test]
    fn known_2x2() {
        // A = [3 0; 4 5] has σ = {√45, √5}.
        let a = Matrix::from_row_major(2, 2, &[3.0, 0.0, 4.0, 5.0]);
        let svd = ThinSvd::factor(&a);
        assert!((svd.sigma[0] - 45.0f64.sqrt()).abs() < 1e-12);
        assert!((svd.sigma[1] - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns → one zero singular value.
        let base = filled(20, 1, 13);
        let a = Matrix::from_fn(20, 3, |i, j| match j {
            0 | 1 => base[(i, 0)],
            _ => base[(i, 0)] * 2.0 + (i as f64) * 0.01,
        });
        let svd = ThinSvd::factor(&a);
        assert!(svd.sigma[2] < 1e-12 * svd.sigma[0]);
        assert_eq!(svd.rank_at_paper_tol(), 2);
        check_svd(&a, &svd, 1e-10);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(5, 3);
        let svd = ThinSvd::factor(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-12), 0);
    }

    #[test]
    fn wide_values_via_transpose() {
        let a = filled(4, 9, 21);
        let sv = svd_values(&a);
        assert_eq!(sv.len(), 4);
        let at_sv = svd_values(&a.transpose());
        for (x, y) in sv.iter().zip(at_sv.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn prescribed_spectrum_recovered() {
        // Build A = U Σ Vᵀ from random orthogonal factors (via QR) and check
        // the spectrum comes back.
        use crate::qr::HouseholderQr;
        let m = 30;
        let n = 8;
        let sig: Vec<f64> = (0..n).map(|i| 10.0f64.powi(-(i as i32))).collect();
        let qu = HouseholderQr::factor(&filled(m, n, 31));
        let qv = HouseholderQr::factor(&filled(n, n, 32));
        // A = Q_u diag(sig) Q_vᵀ: build by applying Q to scaled unit columns.
        let mut a = Matrix::<f64>::zeros(m, n);
        for j in 0..n {
            // column j of Q_v (n-vector)
            let mut vq = vec![0.0; n];
            vq[j] = 1.0;
            qv.apply_q(&mut vq); // row j of Q_vᵀ... (vq = Q_v e_j)
            for k in 0..n {
                // accumulate sig[k] * (Q_u e_k) * (Q_v e_k)ᵀ — do lazily below
                let _ = k;
            }
            let _ = vq;
        }
        // Simpler: A = Σ_k sig[k] u_k v_kᵀ.
        for k in 0..n {
            let mut uk = vec![0.0; m];
            uk[k] = 1.0;
            qu.apply_q(&mut uk);
            let mut vk = vec![0.0; n];
            vk[k] = 1.0;
            qv.apply_q(&mut vk);
            for j in 0..n {
                for i in 0..m {
                    a[(i, j)] += sig[k] * uk[i] * vk[j];
                }
            }
        }
        let svd = ThinSvd::factor(&a);
        for (got, want) in svd.sigma.iter().zip(sig.iter()) {
            assert!(
                (got - want).abs() < 1e-10 * sig[0],
                "spectrum mismatch: {got} vs {want}"
            );
        }
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn wide_factor_rejected() {
        let a = Matrix::<f64>::zeros(2, 3);
        let _ = ThinSvd::factor(&a);
    }
}
