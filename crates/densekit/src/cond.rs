//! Condition-number computation for reporting matrix properties.
//!
//! Table VIII of the paper lists `cond(A)` and `cond(A·D)` (the diagonally
//! scaled matrix used by LSQR-D) for each least-squares test matrix. For the
//! synthetic stand-ins the spectrum is known by construction; this module
//! provides the independent measurement used to cross-check them.

use crate::svd::svd_values;
use crate::{Matrix, Scalar};

/// 2-norm condition number `σ_max/σ_min` of a dense matrix.
///
/// Singular values that are exactly zero make the matrix rank-deficient; the
/// returned value is `f64::INFINITY` in that case (matching how the paper's
/// Table VIII reports `cond ~ 1e16+` for numerically rank-deficient inputs —
/// finite but enormous values also round-trip fine).
pub fn cond2<T: Scalar>(a: &Matrix<T>) -> f64 {
    let sv = svd_values(a);
    match (sv.first(), sv.last()) {
        (Some(&smax), Some(&smin)) if smin > T::ZERO => smax.to_f64() / smin.to_f64(),
        (Some(_), Some(_)) => f64::INFINITY,
        _ => 1.0,
    }
}

/// Condition number of `A·D` where `D` is the column-equilibration diagonal
/// `D_jj = 1/‖A_j‖₂` (the paper's `cond(AD)` column).
pub fn cond2_equilibrated<T: Scalar>(a: &Matrix<T>) -> f64 {
    let (m, n) = (a.nrows(), a.ncols());
    let mut scaled = Matrix::<T>::zeros(m, n);
    for j in 0..n {
        let col = a.col(j);
        let mut norm2 = T::ZERO;
        for &x in col {
            norm2 = x.mul_add(x, norm2);
        }
        let norm = norm2.sqrt();
        let s = if norm == T::ZERO {
            T::ONE
        } else {
            T::ONE / norm
        };
        for (dst, &x) in scaled.col_mut(j).iter_mut().zip(col.iter()) {
            *dst = x * s;
        }
    }
    cond2(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_perfectly_conditioned() {
        let i = Matrix::<f64>::identity(6);
        assert!((cond2(&i) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_condition_exact() {
        let mut a = Matrix::<f64>::zeros(4, 3);
        a[(0, 0)] = 100.0;
        a[(1, 1)] = 10.0;
        a[(2, 2)] = 0.5;
        assert!((cond2(&a) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_is_infinite() {
        let mut a = Matrix::<f64>::zeros(3, 2);
        a[(0, 0)] = 1.0; // second column zero
        assert!(cond2(&a).is_infinite());
    }

    #[test]
    fn equilibration_fixes_column_scaling() {
        // Badly column-scaled but otherwise orthogonal matrix: cond(A) large,
        // cond(AD) = 1.
        let mut a = Matrix::<f64>::zeros(4, 2);
        a[(0, 0)] = 1e8;
        a[(1, 1)] = 1e-8;
        assert!(cond2(&a) > 1e15);
        assert!((cond2_equilibrated(&a) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn equilibration_cannot_fix_correlation() {
        // Nearly parallel columns stay ill-conditioned after scaling.
        let a = Matrix::from_row_major(3, 2, &[1.0, 1.0, 1.0, 1.0 + 1e-8, 0.0, 0.0]);
        assert!(cond2_equilibrated(&a) > 1e6);
    }
}
