#![warn(missing_docs)]
//! # microbench — an offline, criterion-shaped bench harness
//!
//! The bench files in `crates/bench/benches/` were written against
//! criterion's API (`criterion_group!`, `Criterion::benchmark_group`,
//! `Bencher::iter`, `Throughput`). This crate re-implements exactly that
//! surface with std-only code so the benches build and run without any
//! registry access; `crates/bench` aliases it as `criterion` in its
//! manifest (`criterion = { package = "microbench", .. }`).
//!
//! Methodology is intentionally simple: per benchmark, one warm-up call,
//! then `sample_size` timed samples (cheap closures are batched until a
//! sample exceeds ~20µs so timer resolution doesn't dominate). The median,
//! min and max are printed, plus derived throughput when the group set one.
//! Every result is also recorded as an obskit `bench` event, so a
//! `SKETCH_OBS_JSON=path cargo bench` run leaves a machine-readable JSONL
//! trail behind.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Throughput declaration for a benchmark group (criterion-compatible).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (criterion-compatible).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        // Batch cheap closures so one sample is at least ~20µs.
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().as_secs_f64();
        let batch = if probe > 0.0 && probe < 2e-5 {
            ((2e-5 / probe).ceil() as usize).clamp(1, 1 << 20)
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let (lo, hi) = (s[0], s[s.len() - 1]);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / median / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:.3} GB/s", n as f64 / median / 1e9)
            }
            _ => String::new(),
        };
        println!(
            "{}/{label}: median {} (range {} .. {}, {} samples){rate}",
            self.name,
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi),
            s.len()
        );
        obskit::event(
            "bench",
            vec![
                ("group", obskit::Value::S(self.name.clone())),
                ("name", obskit::Value::S(label)),
                ("median_s", obskit::Value::F(median)),
                ("min_s", obskit::Value::F(lo)),
                ("max_s", obskit::Value::F(hi)),
            ],
        );
    }

    /// Run one benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<N: Display, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is bookkeeping only).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle (criterion-compatible).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Called by `criterion_main!` after all groups: exports obskit JSONL when
/// `SKETCH_OBS_JSON` is set.
pub fn finalize() {
    if let Some(path) = obskit::json_path_from_env() {
        let snap = obskit::snapshot();
        match snap.write_jsonl(&path) {
            Ok(()) => eprintln!("obskit: wrote {path}"),
            Err(e) => eprintln!("obskit: failed to write {path}: {e}"),
        }
    }
}

/// Define a benchmark group function from target functions
/// (criterion-compatible subset: positional form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` from benchmark group functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // warm-up + probe + 3 samples × batch ≥ 1 ⇒ at least 5 calls.
        assert!(runs >= 5, "ran {runs} times");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("sum", 3), &data, |b, d| {
            b.iter(|| {
                seen = d.iter().sum();
                seen
            })
        });
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
