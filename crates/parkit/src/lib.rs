#![warn(missing_docs)]
//! # parkit — std-only fork/join parallelism
//!
//! A deliberately small replacement for the rayon patterns the kernels used
//! (`par_chunks_mut`, `into_par_iter().for_each`, indexed `map`+`collect`,
//! scoped thread pools), built on `std::thread::scope` and an atomic work
//! index so it needs no external dependencies and builds fully offline.
//!
//! Work items are claimed dynamically: each worker repeatedly
//! `fetch_add`s a shared index, so uneven items (sparse blocks with skewed
//! nonzero counts) still balance. The thread count comes from, in order:
//! a [`with_threads`] override on the calling thread, the `SKETCH_THREADS`
//! or `RAYON_NUM_THREADS` environment variables, then
//! `available_parallelism`.
//!
//! Every worker closure ends with [`obskit::flush_thread`], so per-thread
//! telemetry accumulated inside parallel regions is merged into the global
//! registry exactly at the join point — the caller sees a consistent
//! snapshot as soon as any parkit call returns.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> usize {
    for var in ["SKETCH_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    0
}

/// The worker count parallel calls on this thread will use.
pub fn current_threads() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with parallel calls on this thread capped at `threads` workers —
/// the Table VII thread-sweep helper (rayon's `install` equivalent).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|c| c.replace(threads.max(1)));
    let r = f();
    OVERRIDE.with(|c| c.set(prev));
    r
}

/// Run `f(index, chunk)` for every `chunk_len`-sized chunk of `slice`
/// (last chunk may be shorter), in parallel. Chunks are disjoint `&mut`
/// windows, claimed dynamically by an atomic index.
pub fn for_each_chunk_mut<T, F>(slice: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = slice.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let nchunks = len.div_ceil(chunk_len);
    let threads = current_threads().min(nchunks);
    if threads <= 1 {
        for (i, c) in slice.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    let base = SendPtr(slice.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= nchunks {
                        break;
                    }
                    let start = i * chunk_len;
                    let n = chunk_len.min(len - start);
                    // SAFETY: chunk `i` covers `[start, start+n)`; distinct
                    // `i` give disjoint ranges inside the borrowed slice, and
                    // the scope keeps the parent borrow alive past the join.
                    let c = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), n) };
                    f(i, c);
                }
                obskit::flush_thread();
            });
        }
    });
}

/// Consume `items`, running `f` on each in parallel (order unspecified).
pub fn for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = current_threads().min(n);
    if threads <= 1 {
        for it in items {
            f(it);
        }
        return;
    }
    // Static round-robin partition: one owned bin per worker, no unsafe.
    let mut bins: Vec<Vec<I>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, it) in items.into_iter().enumerate() {
        bins[i % threads].push(it);
    }
    std::thread::scope(|s| {
        for bin in bins {
            s.spawn(|| {
                for it in bin {
                    f(it);
                }
                obskit::flush_thread();
            });
        }
    });
}

/// Parallel indexed map: `(0..n).map(f).collect()`, preserving order.
pub fn map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = current_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let base = SendPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    // SAFETY: slot `i` is written by exactly one worker (the
                    // atomic index hands each `i` out once) and the scope
                    // outlives all writes.
                    unsafe { *base.get().add(i) = Some(r) };
                }
                obskit::flush_thread();
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Run two closures in parallel and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            let r = b();
            obskit::flush_thread();
            r
        });
        let ra = a();
        (ra, hb.join().expect("parkit::join worker panicked"))
    })
}

/// A raw pointer that may cross thread boundaries; every use carries its own
/// disjointness argument at the call site. Accessed via [`SendPtr::get`] so
/// closures capture the (Sync) wrapper, not the raw pointer field.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_slice_once() {
        let mut v = vec![0u64; 1003];
        for_each_chunk_mut(&mut v, 17, |_i, c| {
            for x in c.iter_mut() {
                *x += 1; // mark visited exactly once
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_match_offsets() {
        let mut v: Vec<usize> = vec![0; 100];
        for_each_chunk_mut(&mut v, 7, |i, c| {
            for (k, x) in c.iter_mut().enumerate() {
                *x = i * 7 + k;
            }
        });
        let want: Vec<usize> = (0..100).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn map_collect_preserves_order() {
        let out = map_collect(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn for_each_consumes_all_items() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        for_each((1..=100u64).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_threads();
        let inside = with_threads(3, current_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_threads(), outside);
        // Nested override wins.
        let nested = with_threads(2, || with_threads(5, current_threads));
        assert_eq!(nested, 5);
    }

    #[test]
    fn single_thread_paths_work() {
        with_threads(1, || {
            let mut v = vec![0; 10];
            for_each_chunk_mut(&mut v, 3, |_, c| c.fill(9));
            assert!(v.iter().all(|&x| x == 9));
            assert_eq!(map_collect(4, |i| i), vec![0, 1, 2, 3]);
            let (a, b) = join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        });
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 40 + 1, || "two");
        assert_eq!(a, 41);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut v: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut v, 4, |_, _| panic!("no chunks expected"));
        for_each(Vec::<u8>::new(), |_| panic!("no items expected"));
        assert!(map_collect(0, |i| i).is_empty());
    }
}
