#![warn(missing_docs)]
//! # parkit — std-only fork/join parallelism
//!
//! A deliberately small replacement for the rayon patterns the kernels used
//! (`par_chunks_mut`, `into_par_iter().for_each`, indexed `map`+`collect`,
//! scoped thread pools), built on `std::thread::scope` and an atomic work
//! index so it needs no external dependencies and builds fully offline.
//!
//! Work items are claimed dynamically: each worker repeatedly
//! `fetch_add`s a shared index, so uneven items (sparse blocks with skewed
//! nonzero counts) still balance. The thread count comes from, in order:
//! a [`with_threads`] override on the calling thread, the `SKETCH_THREADS`
//! or `RAYON_NUM_THREADS` environment variables, then
//! `available_parallelism`.
//!
//! Every worker closure ends with [`obskit::flush_thread`], so per-thread
//! telemetry accumulated inside parallel regions is merged into the global
//! registry exactly at the join point — the caller sees a consistent
//! snapshot as soon as any parkit call returns.
//!
//! ## Panic behaviour
//!
//! A panic inside a worker does **not** abort the process. Each worker runs
//! its items under `catch_unwind`; the first panic payload is stashed, the
//! remaining workers stop claiming new items, every worker still flushes
//! its thread-local telemetry (so counters and trace span pairs stay
//! balanced), and the *original* payload is re-raised on the calling thread
//! with `resume_unwind` once the scope has joined. Callers that need a
//! typed error instead of a panic wrap the parkit call in their own
//! `catch_unwind` (see sketchcore's hardened drivers).
//!
//! For fault-injection testing, every work item claim passes the
//! `parkit/worker` faultkit site: arming it (e.g.
//! `SKETCH_FAULTS=parkit/worker=once`) panics a worker at claim time,
//! before any span opens, exercising exactly this recovery path.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// First panic payload captured across a scope's workers.
type PanicSlot = Mutex<Option<Box<dyn Any + Send>>>;

/// Deterministic injected fault: panic a worker at item-claim time.
#[inline]
fn maybe_inject_worker_fault() {
    if faultkit::fire("parkit/worker") {
        panic!("faultkit: injected parkit/worker panic");
    }
}

/// Stash `payload` if it is the first one; later panics are dropped (the
/// caller can only re-raise one).
fn stash_panic(slot: &PanicSlot, payload: Box<dyn Any + Send>) {
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_none() {
        *guard = Some(payload);
    }
}

/// Re-raise the stashed payload, if any, on the calling thread.
fn rethrow(slot: PanicSlot) {
    if let Some(p) = slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(p);
    }
}

thread_local! {
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> usize {
    for var in ["SKETCH_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    0
}

/// The worker count parallel calls on this thread will use.
pub fn current_threads() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with parallel calls on this thread capped at `threads` workers —
/// the Table VII thread-sweep helper (rayon's `install` equivalent).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|c| c.replace(threads.max(1)));
    let r = f();
    OVERRIDE.with(|c| c.set(prev));
    r
}

/// Run `f(index, chunk)` for every `chunk_len`-sized chunk of `slice`
/// (last chunk may be shorter), in parallel. Chunks are disjoint `&mut`
/// windows, claimed dynamically by an atomic index.
pub fn for_each_chunk_mut<T, F>(slice: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = slice.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let nchunks = len.div_ceil(chunk_len);
    let threads = current_threads().min(nchunks);
    if threads <= 1 {
        for (i, c) in slice.chunks_mut(chunk_len).enumerate() {
            maybe_inject_worker_fault();
            f(i, c);
        }
        return;
    }
    let base = SendPtr(slice.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_slot: PanicSlot = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= nchunks {
                        break;
                    }
                    let start = i * chunk_len;
                    let n = chunk_len.min(len - start);
                    // SAFETY: chunk `i` covers `[start, start+n)`; distinct
                    // `i` give disjoint ranges inside the borrowed slice, and
                    // the scope keeps the parent borrow alive past the join.
                    let c = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), n) };
                    // AssertUnwindSafe: on panic the payload is re-raised on
                    // the caller, which then cannot observe the half-written
                    // chunk — same exposure as the pre-hardening abort path.
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                        maybe_inject_worker_fault();
                        f(i, c);
                    })) {
                        abort.store(true, Ordering::Relaxed);
                        stash_panic(&panic_slot, p);
                        break;
                    }
                }
                obskit::flush_thread();
            });
        }
    });
    rethrow(panic_slot);
}

/// Consume `items`, running `f` on each in parallel (order unspecified).
pub fn for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = current_threads().min(n);
    if threads <= 1 {
        for it in items {
            maybe_inject_worker_fault();
            f(it);
        }
        return;
    }
    // Static round-robin partition: one owned bin per worker, no unsafe.
    let mut bins: Vec<Vec<I>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, it) in items.into_iter().enumerate() {
        bins[i % threads].push(it);
    }
    let abort = AtomicBool::new(false);
    let panic_slot: PanicSlot = Mutex::new(None);
    std::thread::scope(|s| {
        for bin in bins {
            s.spawn(|| {
                for it in bin {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                        maybe_inject_worker_fault();
                        f(it);
                    })) {
                        abort.store(true, Ordering::Relaxed);
                        stash_panic(&panic_slot, p);
                        break;
                    }
                }
                obskit::flush_thread();
            });
        }
    });
    rethrow(panic_slot);
}

/// Parallel indexed map: `(0..n).map(f).collect()`, preserving order.
pub fn map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = current_threads().min(n);
    if threads <= 1 {
        return (0..n)
            .map(|i| {
                maybe_inject_worker_fault();
                f(i)
            })
            .collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let base = SendPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_slot: PanicSlot = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| {
                        maybe_inject_worker_fault();
                        f(i)
                    })) {
                        // SAFETY: slot `i` is written by exactly one worker
                        // (the atomic index hands each `i` out once) and the
                        // scope outlives all writes.
                        Ok(r) => unsafe { *base.get().add(i) = Some(r) },
                        Err(p) => {
                            abort.store(true, Ordering::Relaxed);
                            stash_panic(&panic_slot, p);
                            break;
                        }
                    }
                }
                obskit::flush_thread();
            });
        }
    });
    rethrow(panic_slot);
    out.into_iter()
        .map(|r| match r {
            Some(v) => v,
            // rethrow() above re-raises if any worker panicked; a surviving
            // empty slot would mean the atomic index skipped it.
            None => unreachable!("map_collect slot unfilled after panic-free run"),
        })
        .collect()
}

/// Run two closures in parallel and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            let r = catch_unwind(AssertUnwindSafe(b));
            obskit::flush_thread();
            r
        });
        // Run `a` caught as well so the spawned side is always joined before
        // any unwind leaves this frame.
        let ra = catch_unwind(AssertUnwindSafe(a));
        let rb = match hb.join() {
            Ok(r) => r,
            // The worker closure is fully caught; a join error means the
            // panic happened inside obskit::flush_thread itself.
            Err(p) => Err(p),
        };
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            // Propagate the first panic with its original payload.
            (Err(p), _) => resume_unwind(p),
            (_, Err(p)) => resume_unwind(p),
        }
    })
}

/// A raw pointer that may cross thread boundaries; every use carries its own
/// disjointness argument at the call site. Accessed via [`SendPtr::get`] so
/// closures capture the (Sync) wrapper, not the raw pointer field.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_slice_once() {
        let mut v = vec![0u64; 1003];
        for_each_chunk_mut(&mut v, 17, |_i, c| {
            for x in c.iter_mut() {
                *x += 1; // mark visited exactly once
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_match_offsets() {
        let mut v: Vec<usize> = vec![0; 100];
        for_each_chunk_mut(&mut v, 7, |i, c| {
            for (k, x) in c.iter_mut().enumerate() {
                *x = i * 7 + k;
            }
        });
        let want: Vec<usize> = (0..100).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn map_collect_preserves_order() {
        let out = map_collect(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn for_each_consumes_all_items() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        for_each((1..=100u64).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_threads();
        let inside = with_threads(3, current_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_threads(), outside);
        // Nested override wins.
        let nested = with_threads(2, || with_threads(5, current_threads));
        assert_eq!(nested, 5);
    }

    #[test]
    fn single_thread_paths_work() {
        with_threads(1, || {
            let mut v = vec![0; 10];
            for_each_chunk_mut(&mut v, 3, |_, c| c.fill(9));
            assert!(v.iter().all(|&x| x == 9));
            assert_eq!(map_collect(4, |i| i), vec![0, 1, 2, 3]);
            let (a, b) = join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        });
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 40 + 1, || "two");
        assert_eq!(a, 41);
        assert_eq!(b, "two");
    }

    #[test]
    fn worker_panic_payload_propagates() {
        // The original payload (not a generic "worker panicked" string) must
        // reach the caller, from every driver, at any thread count.
        for threads in [1usize, 4] {
            let caught = std::panic::catch_unwind(|| {
                with_threads(threads, || {
                    let mut v = vec![0u8; 64];
                    for_each_chunk_mut(&mut v, 4, |i, _| {
                        if i == 7 {
                            std::panic::panic_any("chunk payload 7");
                        }
                    });
                })
            });
            let p = caught.expect_err("panic must propagate");
            assert_eq!(*p.downcast_ref::<&str>().unwrap(), "chunk payload 7");

            let caught = std::panic::catch_unwind(|| {
                with_threads(threads, || {
                    map_collect(32, |i| {
                        if i == 11 {
                            std::panic::panic_any(String::from("map payload"));
                        }
                        i
                    })
                })
            });
            let p = caught.expect_err("panic must propagate");
            assert_eq!(p.downcast_ref::<String>().unwrap(), "map payload");

            let caught = std::panic::catch_unwind(|| {
                with_threads(threads, || {
                    for_each(vec![1, 2, 3], |x| {
                        if x == 2 {
                            std::panic::panic_any("item payload");
                        }
                    })
                })
            });
            let p = caught.expect_err("panic must propagate");
            assert_eq!(*p.downcast_ref::<&str>().unwrap(), "item payload");
        }

        // join: either side's payload survives.
        let caught = std::panic::catch_unwind(|| {
            with_threads(2, || join(|| 1, || std::panic::panic_any("side b")))
        });
        assert_eq!(
            *caught.unwrap_err().downcast_ref::<&str>().unwrap(),
            "side b"
        );
        let caught = std::panic::catch_unwind(|| {
            with_threads(2, || join(|| std::panic::panic_any("side a"), || 2))
        });
        assert_eq!(
            *caught.unwrap_err().downcast_ref::<&str>().unwrap(),
            "side a"
        );
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut v: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut v, 4, |_, _| panic!("no chunks expected"));
        for_each(Vec::<u8>::new(), |_| panic!("no items expected"));
        assert!(map_collect(0, |i| i).is_empty());
    }
}
