//! Typed failures of the least-squares layer.

use sketchcore::SketchError;

/// Why a hardened SAP solve failed (terminally — transient faults are
/// retried by [`crate::try_solve_sap`]'s escalation loop first).
#[derive(Debug)]
pub enum SolveError {
    /// The sketch phase failed (invalid input, budget, worker panic, …).
    Sketch(SketchError),
    /// Right-hand side length disagrees with the matrix.
    DimensionMismatch {
        /// Expected extent (`a.nrows()`).
        expected: usize,
        /// Actual extent (`b.len()`).
        got: usize,
    },
    /// The sketch factorization (QR or SVD) panicked or produced a
    /// non-finite factor.
    FactorizationFailed {
        /// What went wrong, stringified.
        detail: String,
    },
    /// The sketch has numerical rank zero — every column of the input is
    /// (numerically) zero, so no preconditioner can be built.
    RankDeficient {
        /// Numerical rank retained.
        rank: usize,
        /// Number of columns.
        n: usize,
    },
    /// LSQR made no progress over a full stall window.
    Stagnated {
        /// Iterations performed before giving up.
        iters: usize,
        /// Best relative normal-equation residual reached.
        best_rel_atr: f64,
    },
    /// LSQR produced non-finite iterates (broken preconditioner or
    /// poisoned data).
    Diverged {
        /// Iterations performed before the blow-up.
        iters: usize,
    },
    /// Bounded escalation (γ doubling, re-seeding, QR→SVD fallback) ran out
    /// of attempts; carries the last attempt's failure.
    RecoveryExhausted {
        /// Attempts made.
        attempts: u32,
        /// The failure of the final attempt.
        last: Box<SolveError>,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Sketch(e) => write!(f, "sketch phase failed: {e}"),
            SolveError::DimensionMismatch { expected, got } => {
                write!(f, "rhs length mismatch: expected {expected}, got {got}")
            }
            SolveError::FactorizationFailed { detail } => {
                write!(f, "sketch factorization failed: {detail}")
            }
            SolveError::RankDeficient { rank, n } => {
                write!(f, "sketch rank {rank} of {n} — cannot precondition")
            }
            SolveError::Stagnated {
                iters,
                best_rel_atr,
            } => write!(
                f,
                "LSQR stagnated after {iters} iterations (best rel ‖Aᵀr‖ {best_rel_atr:.3e})"
            ),
            SolveError::Diverged { iters } => {
                write!(
                    f,
                    "LSQR diverged (non-finite iterates) after {iters} iterations"
                )
            }
            SolveError::RecoveryExhausted { attempts, last } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempts; last: {last}"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Sketch(e) => Some(e),
            SolveError::RecoveryExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<SketchError> for SolveError {
    fn from(e: SketchError) -> Self {
        SolveError::Sketch(e)
    }
}
