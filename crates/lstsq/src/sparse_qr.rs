//! George–Heath sparse QR — the direct-method baseline standing in for
//! SuiteSparseQR.
//!
//! Processes the rows of `A` one at a time, rotating each into an upper
//! triangular `R` with Givens rotations (George & Heath, "Solution of sparse
//! linear least squares problems using Givens rotations", 1980). The
//! rotations are simultaneously applied to the right-hand side, so `x`
//! follows from back substitution — a genuine classical direct solver whose
//! *fill-in* in `R` and whose Householder/Givens "Q-side" volume we account
//! the way SuiteSparseQR's factors occupy memory in the paper's Table XI.
//!
//! Substitution note (see DESIGN.md): SuiteSparseQR is a multifrontal
//! Householder code; this row-Givens method has the same asymptotic fill
//! behaviour and produces the same `R` (up to signs), which is what the
//! memory and runtime comparisons probe. The Q factor is not retained in
//! memory — `q_bytes` reports what *storing* it (as SuiteSparse does) would
//! cost, while `peak_bytes` reports this implementation's true peak.

use sparsekit::CscMatrix;

/// Report from the direct sparse QR solve.
#[derive(Clone, Debug)]
pub struct SparseQrReport {
    /// Solution of `min ‖Ax − b‖₂`.
    pub x: Vec<f64>,
    /// Stored nonzeros of the final `R` factor.
    pub r_nnz: usize,
    /// Peak stored nonzeros of `R` plus the active row during factorization.
    pub peak_r_nnz: usize,
    /// Total Givens rotations performed (the Q-factor volume).
    pub rotations: u64,
    /// Bytes to store the factors the way a Q-keeping direct solver does:
    /// `R` (index + value per entry) plus one (index, c, s) triple per
    /// rotation.
    pub factor_bytes: u64,
    /// Actual peak workspace of this implementation in bytes.
    pub peak_bytes: u64,
    /// Wall-clock seconds for factorization + solve.
    pub seconds: f64,
    /// Numerical rank detected during back substitution (columns with an
    /// empty or zero pivot are skipped with `x_j = 0`).
    pub rank: usize,
}

/// One stored row of `R`: columns strictly sorted, first column is the pivot.
struct RRow {
    cols: Vec<u32>,
    vals: Vec<f64>,
    /// The rotated right-hand-side entry associated with this pivot row.
    rhs: f64,
}

/// Solve `min ‖Ax − b‖₂` directly via row-Givens sparse QR.
pub fn sparse_qr_solve(a: &CscMatrix<f64>, b: &[f64]) -> SparseQrReport {
    let t0 = std::time::Instant::now();
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(b.len(), m, "rhs length mismatch");

    // Row access: CSR of A.
    let csr = a.to_csr();

    let mut r: Vec<Option<RRow>> = (0..n).map(|_| None).collect();
    let mut rotations: u64 = 0;
    let mut r_nnz: usize = 0;
    let mut peak_r_nnz: usize = 0;

    // Scratch for the active row.
    let mut w_cols: Vec<u32> = Vec::new();
    let mut w_vals: Vec<f64> = Vec::new();
    let mut merged_cols: Vec<u32> = Vec::new();
    let mut merged_r: Vec<f64> = Vec::new();
    let mut merged_w: Vec<f64> = Vec::new();

    for (i, &bi) in b.iter().enumerate().take(m) {
        let (cols, vals) = csr.row(i);
        if cols.is_empty() {
            continue;
        }
        w_cols.clear();
        w_vals.clear();
        w_cols.extend(cols.iter().map(|&c| c as u32));
        w_vals.extend_from_slice(vals);
        let mut w_rhs = bi;

        while let Some(&lead) = w_cols.first() {
            let slot = &mut r[lead as usize];
            match slot {
                None => {
                    // New pivot row.
                    r_nnz += w_cols.len();
                    peak_r_nnz = peak_r_nnz.max(r_nnz);
                    *slot = Some(RRow {
                        cols: w_cols.clone(),
                        vals: w_vals.clone(),
                        rhs: w_rhs,
                    });
                    break;
                }
                Some(row) => {
                    // Givens eliminating w's leading entry against the pivot.
                    let rp = row.vals[0];
                    let wp = w_vals[0];
                    let rho = rp.hypot(wp);
                    let (c, s) = (rp / rho, wp / rho);
                    rotations += 1;

                    // Merge the two sparse rows over the union of columns.
                    merged_cols.clear();
                    merged_r.clear();
                    merged_w.clear();
                    let (mut ia, mut ib) = (0usize, 0usize);
                    while ia < row.cols.len() || ib < w_cols.len() {
                        let ca = row.cols.get(ia).copied().unwrap_or(u32::MAX);
                        let cb = w_cols.get(ib).copied().unwrap_or(u32::MAX);
                        let (col, rv, wv) = if ca < cb {
                            let v = (row.vals[ia], 0.0);
                            ia += 1;
                            (ca, v.0, v.1)
                        } else if cb < ca {
                            let v = (0.0, w_vals[ib]);
                            ib += 1;
                            (cb, v.0, v.1)
                        } else {
                            let v = (row.vals[ia], w_vals[ib]);
                            ia += 1;
                            ib += 1;
                            (ca, v.0, v.1)
                        };
                        merged_cols.push(col);
                        merged_r.push(c * rv + s * wv);
                        merged_w.push(-s * rv + c * wv);
                    }
                    let new_rhs_r = c * row.rhs + s * w_rhs;
                    w_rhs = -s * row.rhs + c * w_rhs;

                    // Rebuild the pivot row (drop exact zeros beyond pivot).
                    let old_len = row.cols.len();
                    row.cols.clear();
                    row.vals.clear();
                    for (k, &col) in merged_cols.iter().enumerate() {
                        let v = merged_r[k];
                        if k == 0 || v != 0.0 {
                            row.cols.push(col);
                            row.vals.push(v);
                        }
                    }
                    row.rhs = new_rhs_r;
                    r_nnz = r_nnz + row.cols.len() - old_len;

                    // The rotated working row: leading entry annihilated.
                    w_cols.clear();
                    w_vals.clear();
                    for (k, &col) in merged_cols.iter().enumerate() {
                        let v = merged_w[k];
                        if k > 0 && v != 0.0 {
                            w_cols.push(col);
                            w_vals.push(v);
                        }
                    }
                    peak_r_nnz = peak_r_nnz.max(r_nnz + w_cols.len());
                    if w_cols.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    // Back substitution on the sparse triangular R. Numerically negligible
    // pivots are dropped (x_j = 0), mirroring SuiteSparseQR's rank-revealing
    // default tolerance — without this, rank-deficient inputs divide by
    // roundoff-sized pivots and destroy the solution.
    let max_piv = r
        .iter()
        .flatten()
        .map(|row| row.vals[0].abs())
        .fold(0.0f64, f64::max);
    let piv_tol = max_piv * (m.max(n) as f64) * f64::EPSILON;
    let mut x = vec![0.0; n];
    let mut rank = 0usize;
    for j in (0..n).rev() {
        match &r[j] {
            None => {
                // Structurally rank-deficient column.
            }
            Some(row) => {
                let piv = row.vals[0];
                if piv.abs() <= piv_tol {
                    continue;
                }
                rank += 1;
                let mut acc = row.rhs;
                for (k, &col) in row.cols.iter().enumerate().skip(1) {
                    acc -= row.vals[k] * x[col as usize];
                }
                x[j] = acc / piv;
            }
        }
    }

    // Memory accounting. R entries as (u32 index + f64 value) = 12 bytes;
    // a stored rotation as (u32 row index, f64 c, f64 s) = 20 bytes — the
    // Q-keeping layout a SuiteSparse-style solver retains.
    let r_bytes = r_nnz as u64 * 12;
    let q_bytes = rotations * 20;
    let peak_bytes = (peak_r_nnz as u64) * 12 + (n as u64) * 24 + (csr.memory_bytes() as u64);

    SparseQrReport {
        x,
        r_nnz,
        peak_r_nnz,
        rotations,
        factor_bytes: r_bytes + q_bytes,
        peak_bytes,
        seconds: t0.elapsed().as_secs_f64(),
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekit::HouseholderQr;
    use densekit::Matrix;
    use sparsekit::CooMatrix;

    fn random_tall(m: usize, n: usize, extra: usize, seed: u64) -> CscMatrix<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 11
        };
        let mut coo = CooMatrix::new(m, n);
        for j in 0..n {
            coo.push(j, j, 2.0 + (next() % 100) as f64 / 100.0).unwrap();
        }
        for _ in 0..extra {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                (next() % 1000) as f64 / 500.0 - 0.9995,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    fn densify(a: &CscMatrix<f64>) -> Matrix<f64> {
        Matrix::from_fn(a.nrows(), a.ncols(), |i, j| a.get(i, j))
    }

    #[test]
    fn matches_dense_householder_solution() {
        let a = random_tall(50, 12, 150, 1);
        let b: Vec<f64> = (0..50).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let report = sparse_qr_solve(&a, &b);
        let dense = HouseholderQr::factor(&densify(&a));
        let x_ref = dense.solve_ls(&b);
        for (got, want) in report.x.iter().zip(x_ref.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert_eq!(report.rank, 12);
        assert!(report.rotations > 0);
    }

    #[test]
    fn consistent_system_exact() {
        let a = random_tall(40, 8, 60, 2);
        let x_true: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let mut b = vec![0.0; 40];
        a.spmv(&x_true, &mut b);
        let report = sparse_qr_solve(&a, &b);
        for (got, want) in report.x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn diagonal_matrix_no_fill_no_rotations_beyond_duplicates() {
        // Pure diagonal: every row becomes a pivot row directly.
        let a = CscMatrix::<f64>::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let report = sparse_qr_solve(&a, &b);
        assert_eq!(report.rotations, 0);
        assert_eq!(report.r_nnz, 10);
        for (i, &xi) in report.x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn rank_deficiency_detected() {
        // A column that never appears: structurally deficient.
        let mut coo = CooMatrix::new(6, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        coo.push(2, 2, 3.0).unwrap();
        let a = coo.to_csc().unwrap();
        let b = vec![1.0; 6];
        let report = sparse_qr_solve(&a, &b);
        assert_eq!(report.rank, 2);
        assert_eq!(report.x[1], 0.0);
    }

    #[test]
    fn fill_in_grows_memory_reporting() {
        // Dense-ish random rows produce fill: factor_bytes must exceed the
        // input's value bytes, and peak ≥ final.
        let a = random_tall(120, 30, 1500, 3);
        let b = vec![1.0; 120];
        let report = sparse_qr_solve(&a, &b);
        assert!(report.peak_r_nnz >= report.r_nnz);
        assert!(report.factor_bytes > (a.nnz() * 8) as u64);
        assert!(report.seconds >= 0.0);
    }

    #[test]
    fn empty_rows_are_skipped() {
        let mut coo = CooMatrix::new(5, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(4, 1, 2.0).unwrap();
        let a = coo.to_csc().unwrap();
        let b = vec![3.0; 5];
        let report = sparse_qr_solve(&a, &b);
        assert!((report.x[0] - 3.0).abs() < 1e-15);
        assert!((report.x[1] - 1.5).abs() < 1e-15);
    }
}
