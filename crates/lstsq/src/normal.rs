//! Normal-equations baseline: `x = (AᵀA)⁻¹·Aᵀb` via dense Cholesky of the
//! Gram matrix.
//!
//! The third classical approach alongside QR and iterative methods. Fast for
//! very tall `A` (one pass to form the small `n×n` Gram, `O(n³/3)` to
//! factor) but numerically the worst: `cond(AᵀA) = cond(A)²`, so it loses
//! half the digits SAP/QR keep — which the accuracy comparison in the
//! `ablate_solvers` path quantifies. Included as a baseline, not used by the
//! paper's pipeline.

use densekit::cholesky::{Cholesky, NotPositiveDefinite};
use densekit::Matrix;
use sparsekit::CscMatrix;

/// Report of a normal-equations solve.
#[derive(Clone, Debug)]
pub struct NormalEqReport {
    /// Solution.
    pub x: Vec<f64>,
    /// Seconds to form the Gram matrix `AᵀA`.
    pub gram_s: f64,
    /// Seconds to factor and solve.
    pub solve_s: f64,
    /// Bytes of the dense Gram + factor workspace.
    pub memory_bytes: usize,
}

/// Form the dense Gram matrix `AᵀA` of a sparse tall matrix in one pass over
/// the columns: `G[i, j] = ⟨A_i, A_j⟩`, computed by sparse dot products with
/// a scatter workspace (O(nnz·avg_col_nnz) total).
pub fn gram<T: sparsekit::Scalar>(a: &CscMatrix<T>) -> Matrix<T> {
    let n = a.ncols();
    let m = a.nrows();
    let mut g = Matrix::<T>::zeros(n, n);
    // Scatter column j into a dense workspace, then dot every other column
    // with overlapping support against it. Exploits symmetry (j ≥ i).
    let mut work = vec![T::ZERO; m];
    for j in 0..n {
        let (rows_j, vals_j) = a.col(j);
        for (&r, &v) in rows_j.iter().zip(vals_j.iter()) {
            work[r] = v;
        }
        for i in 0..=j {
            let (rows_i, vals_i) = a.col(i);
            let mut acc = T::ZERO;
            for (&r, &v) in rows_i.iter().zip(vals_i.iter()) {
                acc = v.mul_add(work[r], acc);
            }
            g[(i, j)] = acc;
            g[(j, i)] = acc;
        }
        for &r in rows_j {
            work[r] = T::ZERO;
        }
    }
    g
}

/// Solve `min ‖Ax − b‖₂` by normal equations + Cholesky.
pub fn solve_normal_equations(
    a: &CscMatrix<f64>,
    b: &[f64],
) -> Result<NormalEqReport, NotPositiveDefinite> {
    let t0 = std::time::Instant::now();
    let g = gram(a);
    let gram_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let chol = Cholesky::factor(&g)?;
    let mut x = vec![0.0; a.ncols()];
    a.spmv_t(b, &mut x);
    chol.solve_in_place(&mut x);
    let solve_s = t1.elapsed().as_secs_f64();

    Ok(NormalEqReport {
        x,
        gram_s,
        solve_s,
        memory_bytes: g.memory_bytes() * 2, // Gram + factor
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::backward_error;
    use datagen::lsq::{tall_conditioned, CondSpec};
    use datagen::make_rhs;

    #[test]
    fn gram_matches_definition() {
        let a = datagen::uniform_random::<f64>(60, 10, 0.2, 1);
        let g = gram(&a);
        let dense = Matrix::from_fn(60, 10, |i, j| a.get(i, j));
        let mut expect = Matrix::zeros(10, 10);
        densekit::gemm::gemm(&dense.transpose(), &dense, &mut expect);
        assert!(g.diff_norm(&expect) < 1e-11 * expect.fro_norm().max(1.0));
    }

    #[test]
    fn solves_well_conditioned_problem() {
        let a = tall_conditioned(800, 40, 0.05, CondSpec::WELL, 3);
        let (b, _) = make_rhs(&a, 5);
        let rep = solve_normal_equations(&a, &b).unwrap();
        assert!(backward_error(&a, &rep.x, &b) < 1e-11);
        assert!(rep.gram_s >= 0.0 && rep.solve_s >= 0.0);
    }

    #[test]
    fn loses_forward_accuracy_on_squared_conditioning() {
        // Normal equations make ‖Aᵀr‖ tiny *by construction* (they solve
        // AᵀAx = Aᵀb directly), so the backward metric cannot expose them;
        // the damage is in forward error: cond(AᵀA) = cond(A)² amplifies
        // roundoff in x itself. Reference: dense Householder QR.
        // Column *scaling* is benign for Cholesky (its error bounds follow
        // the equilibrated condition number), and the chain's κ is capped at
        // O(n) for small n — near-duplicate columns at distance 1e-6 give a
        // genuine, equilibration-proof κ(A) ≈ 1e6, so κ(AᵀA) ≈ 1e12.
        let a = tall_conditioned(600, 48, 0.08, CondSpec::deficient(6.0, 1.0), 7);
        let (b, _) = make_rhs(&a, 9);
        let ne = solve_normal_equations(&a, &b).unwrap();
        let dense = Matrix::from_fn(a.nrows(), a.ncols(), |i, j| a.get(i, j));
        let x_ref = densekit::HouseholderQr::factor(&dense).solve_ls(&b);
        let scale: f64 = x_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
        let fwd_ne: f64 =
            ne.x.iter()
                .zip(x_ref.iter())
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt()
                / scale;
        // With cond ~ 1e6, NE forward error ~ cond²·eps ≈ 1e-4; QR-grade
        // methods sit near cond·eps ≈ 1e-10. Require a visible gap.
        assert!(
            fwd_ne > 1e-9,
            "normal equations unexpectedly accurate: forward error {fwd_ne}"
        );
        // And the SAP solution stays QR-grade on the same problem.
        let sap = crate::sap::solve_sap(
            &a,
            &b,
            &crate::sap::SapOptions {
                gamma: 2,
                b_d: 64,
                b_n: 16,
                seed: 2,
                flavor: crate::sap::SapFlavor::Qr,
                lsqr: crate::lsqr::LsqrOptions::default(),
            },
        );
        let fwd_sap: f64 = sap
            .x
            .iter()
            .zip(x_ref.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
            / scale;
        assert!(
            fwd_sap * 10.0 < fwd_ne,
            "SAP forward error {fwd_sap} not clearly better than NE {fwd_ne}"
        );
    }

    #[test]
    fn rank_deficient_gram_rejected() {
        // Duplicate columns → AᵀA exactly singular → Cholesky must refuse.
        let mut coo = sparsekit::CooMatrix::new(10, 3);
        for i in 0..10 {
            coo.push(i, 0, 1.0 + i as f64).unwrap();
            coo.push(i, 1, 1.0 + i as f64).unwrap();
            coo.push(i, 2, 0.5).unwrap();
        }
        let a = coo.to_csc().unwrap();
        assert!(solve_normal_equations(&a, &[1.0; 10]).is_err());
    }
}
