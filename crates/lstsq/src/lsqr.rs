//! LSQR — Paige & Saunders' iterative least-squares solver (TOMS 1982).
//!
//! Solves `min ‖A·x − b‖₂` via Golub–Kahan bidiagonalization of `A`, using
//! only `apply`/`apply_t`. The stopping rule follows the paper's §V-C2
//! setup: iterate until LSQR's internal estimate of
//! `‖Aᵀr‖ / (‖A‖·‖r‖)` — measured with respect to the (preconditioned)
//! system the solver actually sees — falls below `atol = 1e-14`.

use crate::op::LinOp;

/// Why LSQR stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// `‖Aᵀr‖/(‖A‖·‖r‖) ≤ atol` — the paper's criterion.
    AtolSatisfied,
    /// `‖r‖ ≤ btol·‖b‖ + atol·‖A‖·‖x‖` — the consistent-system criterion
    /// (Paige & Saunders' first test; decisive for min-norm solves where
    /// the residual itself goes to zero).
    BtolSatisfied,
    /// The residual itself vanished (consistent system solved exactly).
    ResidualZero,
    /// Iteration limit reached.
    MaxIters,
    /// No improvement of the best `‖Aᵀr‖/(‖A‖·‖r‖)` for a full
    /// [`LsqrOptions::stall_window`] — the solver is grinding without
    /// converging (e.g. a broken preconditioner).
    Stagnated,
    /// An iterate went non-finite — poisoned data or a singular
    /// preconditioner. Iteration cannot recover; stop immediately.
    Diverged,
}

/// LSQR options.
#[derive(Clone, Copy, Debug)]
pub struct LsqrOptions {
    /// Tolerance on the normal-equation residual estimate (paper: 1e-14).
    pub atol: f64,
    /// Tolerance on the relative residual for consistent systems.
    pub btol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop with [`StopReason::Stagnated`] when the best
    /// `‖Aᵀr‖/(‖A‖·‖r‖)` has not improved for this many consecutive
    /// iterations. `0` disables the check (the default — plain solves keep
    /// grinding to `max_iters`, as before).
    pub stall_window: usize,
}

impl Default for LsqrOptions {
    fn default() -> Self {
        Self {
            atol: 1e-14,
            btol: 1e-14,
            max_iters: 100_000,
            stall_window: 0,
        }
    }
}

/// LSQR result.
#[derive(Clone, Debug)]
pub struct LsqrResult {
    /// Solution (in the operator's column space — un-precondition it
    /// yourself if the operator was `A∘M`).
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Final estimate of `‖r‖`.
    pub resid_norm: f64,
    /// Final estimate of `‖Aᵀr‖/(‖A‖·‖r‖)`.
    pub rel_atr: f64,
    /// Why iteration stopped.
    pub stop: StopReason,
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn scale_in_place(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Run LSQR on `op` with right-hand side `b`.
///
/// When obskit telemetry is on, every `SKETCH_OBS_SOLVER_STRIDE`-th
/// iteration (and the stopping one) is recorded as an `lsqr_iter` event
/// carrying the iteration number, the relative normal-equation residual and
/// the elapsed seconds — the convergence traces behind Table IX.
pub fn lsqr<A: LinOp>(op: &mut A, b: &[f64], opts: &LsqrOptions) -> LsqrResult {
    let _sp = obskit::span("lstsq/lsqr");
    let t_start = std::time::Instant::now();
    let stride = if obskit::enabled() {
        obskit::solver_event_stride()
    } else {
        0
    };
    let tracing = obskit::trace_enabled();
    let m = op.nrows();
    let n = op.ncols();
    assert_eq!(b.len(), m, "rhs length mismatch");

    let mut x = vec![0.0; n];
    let mut u = b.to_vec();
    let bnorm = norm2(&u);
    let mut beta = bnorm;
    if beta == 0.0 {
        return LsqrResult {
            x,
            iters: 0,
            resid_norm: 0.0,
            rel_atr: 0.0,
            stop: StopReason::ResidualZero,
        };
    }
    scale_in_place(&mut u, 1.0 / beta);

    let mut v = vec![0.0; n];
    op.apply_t(&u, &mut v);
    let mut alpha = norm2(&v);
    if alpha == 0.0 {
        // b ⟂ range(A): x = 0 is the solution.
        return LsqrResult {
            x,
            iters: 0,
            resid_norm: beta,
            rel_atr: 0.0,
            stop: StopReason::AtolSatisfied,
        };
    }
    scale_in_place(&mut v, 1.0 / alpha);

    let mut w = v.clone();
    let mut phibar = beta;
    let mut rhobar = alpha;
    let mut anorm2 = 0.0f64; // running ‖A‖_F² estimate

    let mut scratch_m = vec![0.0; m];
    let mut scratch_n = vec![0.0; n];

    let mut iters = 0;
    let mut stop = StopReason::MaxIters;
    let mut rel_atr = f64::INFINITY;
    let mut best_rel_atr = f64::INFINITY;
    let mut best_iter = 0usize;

    while iters < opts.max_iters {
        iters += 1;
        let t_it = (stride > 0 || tracing).then(std::time::Instant::now);

        // Bidiagonalization step: β·u = A·v − α·u.
        op.apply(&v, &mut scratch_m);
        for (ui, &avi) in u.iter_mut().zip(scratch_m.iter()) {
            *ui = avi - alpha * *ui;
        }
        beta = norm2(&u);
        if beta > 0.0 {
            scale_in_place(&mut u, 1.0 / beta);
        }

        // α·v = Aᵀ·u − β·v.
        op.apply_t(&u, &mut scratch_n);
        for (vi, &atui) in v.iter_mut().zip(scratch_n.iter()) {
            *vi = atui - beta * *vi;
        }
        alpha = norm2(&v);
        if alpha > 0.0 {
            scale_in_place(&mut v, 1.0 / alpha);
        }

        anorm2 += alpha * alpha + beta * beta;

        // Orthogonal transformation of the bidiagonal system.
        let rho = rhobar.hypot(beta);
        let c = rhobar / rho;
        let s = beta / rho;
        let theta = s * alpha;
        rhobar = -c * alpha;
        let phi = c * phibar;
        phibar *= s;

        // Update x and the search direction w.
        let t1 = phi / rho;
        let t2 = -theta / rho;
        for ((xi, wi), &vi) in x.iter_mut().zip(w.iter_mut()).zip(v.iter()) {
            *xi += t1 * *wi;
            *wi = vi + t2 * *wi;
        }

        // Convergence estimates (Paige–Saunders):
        // ‖r‖ ≈ phibar, ‖Aᵀr‖ ≈ phibar·alpha·|c|, ‖A‖ ≈ sqrt(anorm2).
        let rnorm = phibar;
        let atr = phibar * alpha * c.abs();
        let anorm = anorm2.sqrt();
        rel_atr = if rnorm > 0.0 && anorm > 0.0 {
            atr / (anorm * rnorm)
        } else {
            0.0
        };
        if rel_atr < best_rel_atr {
            best_rel_atr = rel_atr;
            best_iter = iters;
        }
        let stopping = if !rnorm.is_finite() || !alpha.is_finite() || !beta.is_finite() {
            Some(StopReason::Diverged)
        } else if rnorm == 0.0 {
            Some(StopReason::ResidualZero)
        } else if rel_atr <= opts.atol {
            Some(StopReason::AtolSatisfied)
        } else if rnorm <= opts.btol * bnorm + opts.atol * anorm * norm2(&x) {
            Some(StopReason::BtolSatisfied)
        } else if opts.stall_window > 0 && iters - best_iter >= opts.stall_window {
            Some(StopReason::Stagnated)
        } else {
            None
        };
        if let Some(t_it) = t_it {
            let dur_ns = t_it.elapsed().as_nanos() as u64;
            if stride > 0 {
                obskit::hist_record_ns("lstsq/lsqr/iter", dur_ns);
            }
            if tracing {
                let end_ns = obskit::trace::now_ns();
                obskit::trace::span_pair(
                    "lstsq/lsqr/iter",
                    end_ns.saturating_sub(dur_ns),
                    end_ns,
                    obskit::trace::TraceKind::IterEnd,
                    [iters as u64, rel_atr.to_bits(), 0, 0, 0, 0],
                );
            }
        }
        let last = stopping.is_some() || iters == opts.max_iters;
        if stride > 0 && (last || (iters as u64).is_multiple_of(stride)) {
            obskit::event(
                "lsqr_iter",
                vec![
                    ("iter", obskit::Value::U(iters as u64)),
                    ("rel_resid", obskit::Value::F(rel_atr)),
                    ("resid_norm", obskit::Value::F(rnorm)),
                    (
                        "elapsed_s",
                        obskit::Value::F(t_start.elapsed().as_secs_f64()),
                    ),
                ],
            );
        }
        if let Some(reason) = stopping {
            stop = reason;
            break;
        }
    }
    obskit::add(obskit::Ctr::SolverIters, iters as u64);

    LsqrResult {
        x,
        iters,
        resid_norm: phibar,
        rel_atr,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CscOp;
    use sparsekit::{CooMatrix, CscMatrix};

    fn random_tall(m: usize, n: usize, seed: u64) -> CscMatrix<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 11
        };
        let mut coo = CooMatrix::new(m, n);
        // Shifted diagonal ensures full rank, plus random fill.
        for j in 0..n {
            coo.push(j, j, 2.0 + (next() % 100) as f64 / 100.0).unwrap();
        }
        for _ in 0..(3 * m) {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                (next() % 1000) as f64 / 500.0 - 0.9995,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn solves_consistent_system() {
        let a = random_tall(60, 15, 1);
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64) / 7.0 - 1.0).collect();
        let mut b = vec![0.0; 60];
        a.spmv(&x_true, &mut b);
        let mut op = CscOp::new(&a);
        let r = lsqr(&mut op, &b, &LsqrOptions::default());
        assert!(matches!(
            r.stop,
            StopReason::AtolSatisfied | StopReason::BtolSatisfied | StopReason::ResidualZero
        ));
        for (got, want) in r.x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn solves_inconsistent_system_to_normal_equations() {
        let a = random_tall(80, 10, 2);
        let b: Vec<f64> = (0..80).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let mut op = CscOp::new(&a);
        let r = lsqr(&mut op, &b, &LsqrOptions::default());
        assert_eq!(r.stop, StopReason::AtolSatisfied);
        // Check Aᵀ(Ax − b) ≈ 0 directly.
        let mut ax = vec![0.0; 80];
        a.spmv(&r.x, &mut ax);
        let res: Vec<f64> = ax.iter().zip(b.iter()).map(|(a, b)| a - b).collect();
        let mut atr = vec![0.0; 10];
        a.spmv_t(&res, &mut atr);
        let rel = norm2(&atr) / (a.fro_norm() * norm2(&res));
        assert!(rel < 1e-10, "normal-equation residual {rel}");
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = random_tall(20, 5, 3);
        let mut op = CscOp::new(&a);
        let r = lsqr(&mut op, &[0.0; 20], &LsqrOptions::default());
        assert_eq!(r.iters, 0);
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert_eq!(r.stop, StopReason::ResidualZero);
    }

    #[test]
    fn max_iters_respected() {
        let a = random_tall(100, 40, 4);
        let b: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut op = CscOp::new(&a);
        let r = lsqr(
            &mut op,
            &b,
            &LsqrOptions {
                atol: 1e-30,
                btol: 1e-14,
                max_iters: 3,
                stall_window: 0,
            },
        );
        assert_eq!(r.iters, 3);
        assert_eq!(r.stop, StopReason::MaxIters);
    }

    #[test]
    fn preconditioning_cuts_iterations() {
        // Badly column-scaled matrix: plain LSQR needs many iterations,
        // diagonal preconditioning collapses them.
        let mut coo = CooMatrix::new(200, 20);
        let mut s = 9u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 11
        };
        for j in 0..20 {
            let scale = 10f64.powi(-(j as i32) / 3);
            coo.push(j, j, 2.0 * scale).unwrap();
            for _ in 0..8 {
                let i = (next() % 200) as usize;
                coo.push(i, j, ((next() % 1000) as f64 / 500.0 - 1.0) * scale)
                    .unwrap();
            }
        }
        let a = coo.to_csc().unwrap();
        let b: Vec<f64> = (0..200).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();

        let opts = LsqrOptions {
            atol: 1e-12,
            btol: 1e-14,
            max_iters: 10_000,
            stall_window: 0,
        };
        let mut plain_op = CscOp::new(&a);
        let plain = lsqr(&mut plain_op, &b, &opts);

        let m = crate::precond::DiagPrecond::from_col_norms(&a);
        let mut aop = CscOp::new(&a);
        let mut pop = crate::op::PrecondOp::new(&mut aop, &m);
        let pre = lsqr(&mut pop, &b, &opts);

        assert!(
            pre.iters * 2 < plain.iters,
            "preconditioning didn't help: {} vs {}",
            pre.iters,
            plain.iters
        );
        // Both find the same least-squares solution.
        use crate::precond::Preconditioner;
        let mut x_pre = vec![0.0; 20];
        m.apply(&pre.x, &mut x_pre);
        let diff: f64 = x_pre
            .iter()
            .zip(plain.x.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale = norm2(&plain.x).max(1.0);
        assert!(diff / scale < 1e-6, "solutions diverge: {diff}");
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn wrong_rhs_length_panics() {
        let a = random_tall(10, 3, 5);
        let mut op = CscOp::new(&a);
        let _ = lsqr(&mut op, &[1.0; 5], &LsqrOptions::default());
    }
}
