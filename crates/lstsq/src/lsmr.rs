//! LSMR — Fong & Saunders' least-squares solver (SIAM J. Sci. Comput. 2011).
//!
//! Like LSQR it runs on the Golub–Kahan bidiagonalization, but it is
//! mathematically equivalent to MINRES on the normal equations, so the
//! quantity the paper's stopping rule watches — `‖Aᵀr‖` — decreases
//! **monotonically**. Included alongside LSQR because the two are the
//! standard pair in sketch-and-precondition pipelines (RandBLAS exposes
//! both); `repro`'s solver ablation can swap them.

use crate::lsqr::StopReason;
use crate::op::LinOp;

/// LSMR options.
#[derive(Clone, Copy, Debug)]
pub struct LsmrOptions {
    /// Tolerance on `‖Aᵀr‖/(‖A‖·‖r‖)`.
    pub atol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Refresh the true residual every `refresh` iterations (robustness
    /// against drift of the recurrences; costs one extra `apply`).
    pub refresh: usize,
}

impl Default for LsmrOptions {
    fn default() -> Self {
        Self {
            atol: 1e-14,
            max_iters: 100_000,
            refresh: 64,
        }
    }
}

/// LSMR result.
#[derive(Clone, Debug)]
pub struct LsmrResult {
    /// Solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Final `‖Aᵀr‖` estimate (`|ζ̄|`).
    pub atr_norm: f64,
    /// Why iteration stopped.
    pub stop: StopReason,
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn scale_in_place(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Run LSMR on `op` with right-hand side `b`.
///
/// Emits `lsmr_iter` obskit events (iteration, relative `‖Aᵀr‖`, elapsed
/// seconds) at the `SKETCH_OBS_SOLVER_STRIDE` cadence when telemetry is on.
pub fn lsmr<A: LinOp>(op: &mut A, b: &[f64], opts: &LsmrOptions) -> LsmrResult {
    let _sp = obskit::span("lstsq/lsmr");
    let t_start = std::time::Instant::now();
    let stride = if obskit::enabled() {
        obskit::solver_event_stride()
    } else {
        0
    };
    let tracing = obskit::trace_enabled();
    let m = op.nrows();
    let n = op.ncols();
    assert_eq!(b.len(), m, "rhs length mismatch");

    let mut x = vec![0.0; n];
    let mut u = b.to_vec();
    let beta1 = norm2(&u);
    if beta1 == 0.0 {
        return LsmrResult {
            x,
            iters: 0,
            atr_norm: 0.0,
            stop: StopReason::ResidualZero,
        };
    }
    scale_in_place(&mut u, 1.0 / beta1);

    let mut v = vec![0.0; n];
    op.apply_t(&u, &mut v);
    let alpha1 = norm2(&v);
    if alpha1 == 0.0 {
        return LsmrResult {
            x,
            iters: 0,
            atr_norm: 0.0,
            stop: StopReason::AtolSatisfied,
        };
    }
    scale_in_place(&mut v, 1.0 / alpha1);

    let mut alpha = alpha1;
    let mut zetabar = alpha1 * beta1;
    let mut alphabar = alpha1;
    let mut rho = 1.0f64;
    let mut rhobar = 1.0f64;
    let mut cbar = 1.0f64;
    let mut sbar = 0.0f64;

    let mut h = v.clone();
    let mut hbar = vec![0.0; n];

    let mut anorm2 = alpha1 * alpha1;
    let mut scratch_m = vec![0.0; m];
    let mut scratch_n = vec![0.0; n];

    let mut iters = 0;
    let mut stop = StopReason::MaxIters;

    while iters < opts.max_iters {
        iters += 1;
        let t_it = (stride > 0 || tracing).then(std::time::Instant::now);

        // Bidiagonalization continue.
        op.apply(&v, &mut scratch_m);
        for (ui, &avi) in u.iter_mut().zip(scratch_m.iter()) {
            *ui = avi - alpha * *ui;
        }
        let beta = norm2(&u);
        if beta > 0.0 {
            scale_in_place(&mut u, 1.0 / beta);
        }
        op.apply_t(&u, &mut scratch_n);
        for (vi, &atui) in v.iter_mut().zip(scratch_n.iter()) {
            *vi = atui - beta * *vi;
        }
        alpha = norm2(&v);
        if alpha > 0.0 {
            scale_in_place(&mut v, 1.0 / alpha);
        }
        anorm2 += alpha * alpha + beta * beta;

        // Rotation P_k.
        let rho_old = rho;
        rho = alphabar.hypot(beta);
        let c = alphabar / rho;
        let s = beta / rho;
        let thetanew = s * alpha;
        alphabar = c * alpha;

        // Rotation P̄_k.
        let rhobar_old = rhobar;
        let thetabar = sbar * rho;
        let rhotemp = cbar * rho;
        rhobar = rhotemp.hypot(thetanew);
        cbar = rhotemp / rhobar;
        sbar = thetanew / rhobar;
        let zeta = cbar * zetabar;
        zetabar *= -sbar;

        // Update h̄, x, h.
        let coef_hbar = thetabar * rho / (rho_old * rhobar_old);
        for (hb, &hi) in hbar.iter_mut().zip(h.iter()) {
            *hb = hi - coef_hbar * *hb;
        }
        let coef_x = zeta / (rho * rhobar);
        for (xi, &hb) in x.iter_mut().zip(hbar.iter()) {
            *xi += coef_x * hb;
        }
        let coef_h = thetanew / rho;
        for (hi, &vi) in h.iter_mut().zip(v.iter()) {
            *hi = vi - coef_h * *hi;
        }

        // Convergence: ‖Aᵀr‖ = |ζ̄| (exact in exact arithmetic).
        let atr = zetabar.abs();
        // Periodic exact residual for a trustworthy denominator; otherwise a
        // cheap upper bound ‖r‖ ≤ ‖b‖ is used (conservative).
        let rnorm = if iters % opts.refresh == 0 {
            op.apply(&x, &mut scratch_m);
            let mut acc = 0.0;
            for (avi, &bi) in scratch_m.iter().zip(b.iter()) {
                let d = avi - bi;
                acc += d * d;
            }
            acc.sqrt().max(f64::MIN_POSITIVE)
        } else {
            beta1
        };
        let rel_atr = atr / (anorm2.sqrt() * rnorm).max(f64::MIN_POSITIVE);
        if let Some(t_it) = t_it {
            let dur_ns = t_it.elapsed().as_nanos() as u64;
            if stride > 0 {
                obskit::hist_record_ns("lstsq/lsmr/iter", dur_ns);
            }
            if tracing {
                let end_ns = obskit::trace::now_ns();
                obskit::trace::span_pair(
                    "lstsq/lsmr/iter",
                    end_ns.saturating_sub(dur_ns),
                    end_ns,
                    obskit::trace::TraceKind::IterEnd,
                    [iters as u64, rel_atr.to_bits(), 0, 0, 0, 0],
                );
            }
        }
        let stopping = atr == 0.0 || atr <= opts.atol * anorm2.sqrt() * rnorm;
        let last = stopping || iters == opts.max_iters;
        if stride > 0 && (last || (iters as u64).is_multiple_of(stride)) {
            obskit::event(
                "lsmr_iter",
                vec![
                    ("iter", obskit::Value::U(iters as u64)),
                    ("rel_resid", obskit::Value::F(rel_atr)),
                    ("atr_norm", obskit::Value::F(atr)),
                    (
                        "elapsed_s",
                        obskit::Value::F(t_start.elapsed().as_secs_f64()),
                    ),
                ],
            );
        }
        if stopping {
            stop = StopReason::AtolSatisfied;
            break;
        }
    }
    obskit::add(obskit::Ctr::SolverIters, iters as u64);

    LsmrResult {
        x,
        iters,
        atr_norm: zetabar.abs(),
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::{lsqr, LsqrOptions};
    use crate::op::CscOp;
    use sparsekit::{CooMatrix, CscMatrix};

    fn random_tall(m: usize, n: usize, seed: u64) -> CscMatrix<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 11
        };
        let mut coo = CooMatrix::new(m, n);
        for j in 0..n {
            coo.push(j, j, 2.0 + (next() % 100) as f64 / 100.0).unwrap();
        }
        for _ in 0..(4 * m) {
            coo.push(
                (next() % m as u64) as usize,
                (next() % n as u64) as usize,
                (next() % 1000) as f64 / 500.0 - 0.9995,
            )
            .unwrap();
        }
        coo.to_csc().unwrap()
    }

    #[test]
    fn agrees_with_lsqr_on_inconsistent_system() {
        let a = random_tall(120, 18, 1);
        let b: Vec<f64> = (0..120).map(|i| ((i * 29) % 23) as f64 - 11.0).collect();
        let mut op1 = CscOp::new(&a);
        let r_lsqr = lsqr(&mut op1, &b, &LsqrOptions::default());
        let mut op2 = CscOp::new(&a);
        let r_lsmr = lsmr(&mut op2, &b, &LsmrOptions::default());
        let scale = norm2(&r_lsqr.x).max(1.0);
        let diff: f64 = r_lsqr
            .x
            .iter()
            .zip(r_lsmr.x.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-8 * scale, "LSQR/LSMR disagree by {diff}");
        assert_eq!(r_lsmr.stop, StopReason::AtolSatisfied);
    }

    #[test]
    fn consistent_system_exact() {
        let a = random_tall(80, 12, 5);
        let x_true: Vec<f64> = (0..12).map(|i| i as f64 / 5.0 - 1.0).collect();
        let mut b = vec![0.0; 80];
        a.spmv(&x_true, &mut b);
        let mut op = CscOp::new(&a);
        let r = lsmr(&mut op, &b, &LsmrOptions::default());
        for (got, want) in r.x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn atr_norm_monotone_under_snapshots() {
        // Run with increasing iteration caps; ‖Aᵀr‖ must not increase —
        // LSMR's defining property vs LSQR.
        let a = random_tall(200, 40, 9);
        let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut last = f64::INFINITY;
        for iters in [5, 10, 20, 40, 80] {
            let mut op = CscOp::new(&a);
            let r = lsmr(
                &mut op,
                &b,
                &LsmrOptions {
                    atol: 0.0,
                    max_iters: iters,
                    refresh: 1000,
                },
            );
            // True ‖Aᵀr‖.
            let mut ax = vec![0.0; 200];
            a.spmv(&r.x, &mut ax);
            let resid: Vec<f64> = ax.iter().zip(b.iter()).map(|(p, q)| p - q).collect();
            let mut atr = vec![0.0; 40];
            a.spmv_t(&resid, &mut atr);
            let now = norm2(&atr);
            assert!(
                now <= last * (1.0 + 1e-9),
                "‖Aᵀr‖ increased: {now} after {iters} iters (was {last})"
            );
            last = now;
        }
    }

    #[test]
    fn zero_rhs() {
        let a = random_tall(20, 4, 2);
        let mut op = CscOp::new(&a);
        let r = lsmr(&mut op, &[0.0; 20], &LsmrOptions::default());
        assert_eq!(r.iters, 0);
        assert!(r.x.iter().all(|&v| v == 0.0));
    }
}
