//! Linear-operator abstraction for the iterative solvers.
//!
//! LSQR only needs `y = A·x` and `y = Aᵀ·x`. Right preconditioning composes
//! an operator with a [`crate::Preconditioner`]: the solver iterates on
//! `A·M` and the solution is recovered as `x = M·y`.

use crate::precond::Preconditioner;
use sparsekit::CscMatrix;

/// A (possibly implicit) linear operator with transpose application.
///
/// `&mut self` receivers let implementors keep scratch buffers.
pub trait LinOp {
    /// Number of rows.
    fn nrows(&self) -> usize;
    /// Number of columns.
    fn ncols(&self) -> usize;
    /// `y = A·x`.
    fn apply(&mut self, x: &[f64], y: &mut [f64]);
    /// `y = Aᵀ·x`.
    fn apply_t(&mut self, x: &[f64], y: &mut [f64]);
}

/// A sparse CSC matrix viewed as an operator.
pub struct CscOp<'a> {
    a: &'a CscMatrix<f64>,
}

impl<'a> CscOp<'a> {
    /// Wrap a CSC matrix.
    pub fn new(a: &'a CscMatrix<f64>) -> Self {
        Self { a }
    }
}

impl LinOp for CscOp<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn ncols(&self) -> usize {
        self.a.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y);
    }

    fn apply_t(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_t(x, y);
    }
}

/// Right-preconditioned operator `A∘M`: `apply(y) = A(M·y)`.
///
/// The preconditioner may reduce the dimension (SAP-SVD with dropped
/// singular values maps `R^r → R^n`), so `ncols` is `M`'s input dimension.
pub struct PrecondOp<'a, A, M> {
    a: &'a mut A,
    m: &'a M,
    scratch: Vec<f64>,
}

impl<'a, A: LinOp, M: Preconditioner> PrecondOp<'a, A, M> {
    /// Compose `a` with right preconditioner `m`.
    pub fn new(a: &'a mut A, m: &'a M) -> Self {
        let n = a.ncols();
        assert_eq!(
            m.output_dim(),
            n,
            "preconditioner output dim must match A's columns"
        );
        Self {
            a,
            m,
            scratch: vec![0.0; n],
        }
    }
}

impl<A: LinOp, M: Preconditioner> LinOp for PrecondOp<'_, A, M> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn ncols(&self) -> usize {
        self.m.input_dim()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.m.apply(x, &mut self.scratch);
        self.a.apply(&self.scratch, y);
    }

    fn apply_t(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.apply_t(x, &mut self.scratch);
        self.m.apply_t(&self.scratch, y);
    }
}

/// A CSB matrix viewed as an operator: both `A·x` and `Aᵀ·x` parallelize
/// (parkit over block-rows / block-columns), which accelerates LSQR's
/// per-iteration cost on multicore hosts.
pub struct CsbOp {
    a: sparsekit::CsbMatrix<f64>,
}

impl CsbOp {
    /// Convert a CSC matrix into the CSB operator with block edge `beta`.
    pub fn from_csc(a: &CscMatrix<f64>, beta: usize) -> Self {
        Self {
            a: sparsekit::CsbMatrix::from_csc(a, beta),
        }
    }
}

impl LinOp for CsbOp {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_par(x, y);
    }
    fn apply_t(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_t_par(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{DiagPrecond, Preconditioner};
    use sparsekit::CooMatrix;

    fn small() -> CscMatrix<f64> {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.to_csc().unwrap()
    }

    #[test]
    fn csc_op_matches_spmv() {
        let a = small();
        let mut op = CscOp::new(&a);
        let mut y = [0.0; 3];
        op.apply(&[1.0, 2.0], &mut y);
        assert_eq!(y, [2.0, -1.0, 6.0]);
        let mut z = [0.0; 2];
        op.apply_t(&[1.0, 1.0, 1.0], &mut z);
        assert_eq!(z, [1.0, 3.0]);
    }

    #[test]
    fn precond_op_composes() {
        let a = small();
        let m = DiagPrecond::from_diag(vec![0.5, 2.0]);
        let mut aop = CscOp::new(&a);
        let mut op = PrecondOp::new(&mut aop, &m);
        assert_eq!(op.nrows(), 3);
        assert_eq!(op.ncols(), 2);
        let mut y = [0.0; 3];
        op.apply(&[1.0, 1.0], &mut y); // A·diag(0.5,2)·[1,1] = A·[0.5,2]
        assert_eq!(y, [1.0, -0.5, 6.0]);
        // Transpose: M ᵀAᵀ.
        let mut z = [0.0; 2];
        op.apply_t(&[1.0, 0.0, 1.0], &mut z);
        // Aᵀ[1,0,1] = [2, 3]; Mᵀ = diag → [1, 6].
        assert_eq!(z, [1.0, 6.0]);
        let _ = m.input_dim();
    }

    #[test]
    #[should_panic(expected = "output dim")]
    fn mismatched_preconditioner_rejected() {
        let a = small();
        let m = DiagPrecond::from_diag(vec![1.0; 5]);
        let mut aop = CscOp::new(&a);
        let _ = PrecondOp::new(&mut aop, &m);
    }
}
