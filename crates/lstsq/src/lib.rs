#![warn(missing_docs)]
//! # lstsq — least-squares solvers built on the sketching kernel
//!
//! The paper's §V-C pipeline: solve `min ‖Ax − b‖₂` for extremely tall
//! sparse `A` by *sketch-and-precondition* (SAP) — compute `Â = S·A` with the
//! regeneration kernel, factor the small dense sketch (QR, or SVD when the
//! problem is near rank-deficient), and run LSQR on the original `A`
//! preconditioned by the factor. Compared here, as in the paper:
//!
//! * [`solve_lsqr_d`] — LSQR with the diagonal column-equilibration
//!   preconditioner (`D_ii = 1/‖A_i‖₂`, with the ε-guard of §V-C1).
//! * [`solve_sap`] — SAP-QR and SAP-SVD (singular values below
//!   `σ_max/10¹²` dropped).
//! * [`sparse_qr`] — a George–Heath row-Givens sparse QR **direct** solver
//!   standing in for SuiteSparseQR, with honest fill-in and Q-factor
//!   accounting for the Table XI memory comparison.
//!
//! The error metric of Table X, `‖Aᵀ(Ax−b)‖ / (‖A‖_F·‖Ax−b‖)`, lives in
//! [`metrics`].

pub mod error;
pub mod lsmr;
pub mod lsqr;
pub mod lsrn;
pub mod metrics;
pub mod minnorm;
pub mod normal;
pub mod op;
pub mod precond;
pub mod sap;
pub mod sparse_qr;

pub use error::SolveError;
pub use lsmr::{lsmr, LsmrOptions, LsmrResult};
pub use lsqr::{lsqr, LsqrOptions, LsqrResult, StopReason};
pub use lsrn::{solve_lsrn, LsrnReport, LsrnSketch};
pub use metrics::{backward_error, MemoryReport};
pub use minnorm::{solve_min_norm_sap, MinNormReport};
pub use normal::{solve_normal_equations, NormalEqReport};
pub use op::{CsbOp, CscOp, LinOp, PrecondOp};
pub use precond::{DiagPrecond, IdentityPrecond, Preconditioner, SvdPrecond, UpperTriPrecond};
pub use sap::{
    solve_lsqr_d, solve_sap, try_solve_sap, try_solve_sap_with, RecoveryPolicy, SapFlavor,
    SapOptions, SapReport,
};
pub use sparse_qr::{sparse_qr_solve, SparseQrReport};
