//! Sketch-and-precondition (SAP) least-squares solvers — paper §V-C.
//!
//! Pipeline: `Â = S·A` via the regeneration kernel (Algorithm 3, parallel
//! over column panels), factor the small `d×n` sketch (`d = γ·n`, γ = 2),
//! precondition LSQR with `R⁻¹` (SAP-QR) or `V·Σ⁻¹` (SAP-SVD, singular
//! values under `σ_max/10¹²` dropped), and iterate on the original sparse
//! `A`. The effective distortion theory (paper §V intro) bounds the
//! preconditioned condition number by `(√γ+1)/(√γ−1)` ≈ 5.8 for γ = 2, which
//! is why the paper's SAP iteration counts sit near 80 for *every* matrix —
//! the invariance the tests below check.

use crate::error::SolveError;
use crate::lsqr::{lsqr, LsqrOptions, LsqrResult, StopReason};
use crate::op::{CscOp, PrecondOp};
use crate::precond::{DiagPrecond, Preconditioner, SvdPrecond, UpperTriPrecond};
use densekit::{householder_qr_r, Matrix, ThinSvd};
use rngkit::{FastRng, UnitUniform};
use sketchcore::error::panic_payload_to_string;
use sketchcore::{sketch_alg3_par_cols, try_sketch_alg3_par_cols, SketchConfig, SketchError};
use sparsekit::CscMatrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Which factorization of the sketch to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SapFlavor {
    /// Householder QR of the sketch; preconditioner `R⁻¹`.
    Qr,
    /// Thin SVD of the sketch; preconditioner `V·Σ⁻¹` with drop tolerance
    /// `σ_max/10¹²`. For problems with near-zero singular values.
    Svd,
}

/// SAP solver options.
#[derive(Clone, Copy, Debug)]
pub struct SapOptions {
    /// Oversampling factor γ (`d = γ·n`; the paper's least-squares runs use 2).
    pub gamma: usize,
    /// Sketch blocking along `d`.
    pub b_d: usize,
    /// Sketch blocking along `n`.
    pub b_n: usize,
    /// Seed of the sketching matrix.
    pub seed: u64,
    /// Factorization flavour.
    pub flavor: SapFlavor,
    /// LSQR settings (paper: `atol = 1e-14`).
    pub lsqr: LsqrOptions,
}

impl Default for SapOptions {
    fn default() -> Self {
        Self {
            gamma: 2,
            b_d: 3000,
            b_n: 500,
            seed: 0x5AB,
            flavor: SapFlavor::Qr,
            lsqr: LsqrOptions::default(),
        }
    }
}

/// Outcome of a SAP solve with the phase breakdown of Table IX.
#[derive(Clone, Debug)]
pub struct SapReport {
    /// Least-squares solution.
    pub x: Vec<f64>,
    /// LSQR iterations.
    pub iters: usize,
    /// Seconds to compute the sketch `Â = S·A`.
    pub sketch_s: f64,
    /// Seconds to factor the sketch (QR or SVD).
    pub factor_s: f64,
    /// Seconds inside LSQR.
    pub solve_s: f64,
    /// End-to-end seconds.
    pub total_s: f64,
    /// Extra memory: the dense sketch plus the retained factor, bytes
    /// (Table XI's SAP column).
    pub memory_bytes: usize,
    /// Numerical rank retained (SVD flavour; `n` for QR).
    pub rank: usize,
    /// The raw LSQR diagnostics.
    pub lsqr_result: LsqrResult,
    /// Escalation attempts consumed before this solve succeeded
    /// ([`try_solve_sap`]; always 0 from [`solve_sap`]).
    pub retries: u32,
    /// Whether a rank-deficient QR was replaced by the SVD flavour
    /// mid-attempt ([`try_solve_sap`]; always false from [`solve_sap`]).
    pub fallback_svd: bool,
}

/// Solve `min ‖Ax − b‖₂` by sketch-and-precondition.
pub fn solve_sap(a: &CscMatrix<f64>, b: &[f64], opts: &SapOptions) -> SapReport {
    let _sp = obskit::span("lstsq/sap");
    let t_start = Instant::now();
    let n = a.ncols();
    assert!(n > 0, "empty matrix");
    assert!(opts.gamma >= 1, "gamma must be at least 1");
    let d = (opts.gamma * n).max(n);

    // Phase 1: sketch.
    let t0 = Instant::now();
    let cfg = SketchConfig::new(d, opts.b_d, opts.b_n, opts.seed);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(opts.seed));
    let ahat = {
        let _sp = obskit::span("lstsq/sap/sketch");
        sketch_alg3_par_cols(a, &cfg, &sampler)
    };
    // Normalize variance so σ(SQ) ≈ 1·‖Q‖: entries are uniform(-1,1) with
    // variance 1/3; divide by √(d/3) to make E‖S q‖² = ‖q‖².
    let mut ahat = ahat;
    ahat.scale(1.0 / ((d as f64) / 3.0).sqrt());
    let sketch_s = t0.elapsed().as_secs_f64();
    let sketch_bytes = ahat.memory_bytes();

    // Phase 2: factor.
    let _sp_factor = obskit::span("lstsq/sap/factor");
    let t1 = Instant::now();
    let (precond, factor_bytes, rank): (Box<dyn Preconditioner>, usize, usize) = match opts.flavor {
        SapFlavor::Qr => {
            let r = householder_qr_r(&ahat);
            let p = UpperTriPrecond::new(r);
            let bytes = p.memory_bytes();
            (Box::new(p), bytes, n)
        }
        SapFlavor::Svd => {
            let svd = ThinSvd::factor(&ahat);
            let p = SvdPrecond::from_svd(&svd, 1e-12);
            let bytes = p.memory_bytes();
            let rank = p.rank();
            (Box::new(p), bytes, rank)
        }
    };
    let factor_s = t1.elapsed().as_secs_f64();
    drop(_sp_factor);
    drop(ahat); // the sketch is no longer needed once factored

    // Phase 3: preconditioned LSQR on the original A.
    let t2 = Instant::now();
    let mut aop = CscOp::new(a);
    let mut pop = BoxedPrecondOp::new(&mut aop, precond.as_ref());
    let result = {
        let _sp = obskit::span("lstsq/sap/solve");
        lsqr(&mut pop, b, &opts.lsqr)
    };
    let mut x = vec![0.0; n];
    precond.apply(&result.x, &mut x);
    let solve_s = t2.elapsed().as_secs_f64();

    obskit::event(
        "sap",
        vec![
            ("flavor", obskit::Value::S(format!("{:?}", opts.flavor))),
            ("n", obskit::Value::U(n as u64)),
            ("d", obskit::Value::U(d as u64)),
            ("iters", obskit::Value::U(result.iters as u64)),
            ("sketch_s", obskit::Value::F(sketch_s)),
            ("factor_s", obskit::Value::F(factor_s)),
            ("solve_s", obskit::Value::F(solve_s)),
        ],
    );

    SapReport {
        x,
        iters: result.iters,
        sketch_s,
        factor_s,
        solve_s,
        total_s: t_start.elapsed().as_secs_f64(),
        memory_bytes: sketch_bytes + factor_bytes,
        rank,
        lsqr_result: result,
        retries: 0,
        fallback_svd: false,
    }
}

/// Bounds for [`try_solve_sap`]'s escalation loop.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Maximum attempts. Attempt `k` doubles γ `k` times and shifts the
    /// sketch seed, so a bad random draw cannot repeat.
    pub max_attempts: u32,
    /// LSQR stall window forwarded to [`LsqrOptions::stall_window`] (0
    /// would disable stagnation detection entirely).
    pub stall_window: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            stall_window: 500,
        }
    }
}

/// Is this failure worth another (escalated) attempt? Structural problems
/// — corrupt input, wrong shapes, budget, zero rank — will not improve
/// with a fresh sketch; transient ones might.
fn retryable(e: &SolveError) -> bool {
    matches!(
        e,
        SolveError::Sketch(SketchError::NonFiniteSketch { .. })
            | SolveError::Sketch(SketchError::WorkerPanic(_))
            | SolveError::FactorizationFailed { .. }
            | SolveError::Stagnated { .. }
            | SolveError::Diverged { .. }
    )
}

/// Factor the sketch into a preconditioner, with typed failure and the
/// QR→SVD rank-deficiency fallback.
///
/// Returns `(preconditioner, factor_bytes, rank, fell_back_to_svd)`.
#[allow(clippy::type_complexity)]
fn try_factor(
    ahat: &Matrix<f64>,
    flavor: SapFlavor,
) -> Result<(Box<dyn Preconditioner>, usize, usize, bool), SolveError> {
    let n = ahat.ncols();
    match flavor {
        SapFlavor::Qr => {
            let r = catch_unwind(AssertUnwindSafe(|| householder_qr_r(ahat))).map_err(|p| {
                SolveError::FactorizationFailed {
                    detail: panic_payload_to_string(p.as_ref()),
                }
            })?;
            // Rank check on diag(R): |R_jj| spans the column scales QR saw;
            // a (near-)zero diagonal makes R⁻¹ useless as a preconditioner.
            let mut dmin = f64::INFINITY;
            let mut dmax = 0.0f64;
            for j in 0..n {
                let d = r.col(j)[j].abs();
                if !d.is_finite() {
                    return Err(SolveError::FactorizationFailed {
                        detail: format!("non-finite R diagonal at column {j}"),
                    });
                }
                dmin = dmin.min(d);
                dmax = dmax.max(d);
            }
            if dmin <= dmax * 1e-12 || dmax == 0.0 {
                // Rank-deficient sketch: fall back to the SVD flavour, which
                // drops the null directions instead of dividing by them.
                obskit::add(obskit::Ctr::SapFallbackSvd, 1);
                let (p, bytes, rank, _) = try_factor(ahat, SapFlavor::Svd)?;
                return Ok((p, bytes, rank, true));
            }
            let p = UpperTriPrecond::new(r);
            let bytes = p.memory_bytes();
            Ok((Box::new(p), bytes, n, false))
        }
        SapFlavor::Svd => {
            let svd = catch_unwind(AssertUnwindSafe(|| ThinSvd::factor(ahat))).map_err(|p| {
                SolveError::FactorizationFailed {
                    detail: panic_payload_to_string(p.as_ref()),
                }
            })?;
            let p = SvdPrecond::from_svd(&svd, 1e-12);
            let rank = p.rank();
            if rank == 0 {
                return Err(SolveError::RankDeficient { rank: 0, n });
            }
            let bytes = p.memory_bytes();
            Ok((Box::new(p), bytes, rank, false))
        }
    }
}

/// One hardened SAP attempt at a given oversampling and seed.
fn sap_attempt(
    a: &CscMatrix<f64>,
    b: &[f64],
    opts: &SapOptions,
    gamma: usize,
    seed: u64,
    stall_window: usize,
    t_start: Instant,
) -> Result<SapReport, SolveError> {
    let n = a.ncols();
    let d = (gamma * n).max(n);

    // Phase 1: sketch (validated input, budget-fitted blocks, output scan).
    let t0 = Instant::now();
    let cfg = SketchConfig::new(d, opts.b_d, opts.b_n, seed);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
    let mut ahat = {
        let _sp = obskit::span("lstsq/sap/sketch");
        try_sketch_alg3_par_cols(a, &cfg, &sampler)?
    };
    ahat.scale(1.0 / ((d as f64) / 3.0).sqrt());
    let sketch_s = t0.elapsed().as_secs_f64();
    let sketch_bytes = ahat.memory_bytes();

    // Phase 2: factor, with rank-deficiency fallback.
    let t1 = Instant::now();
    let (precond, factor_bytes, rank, fallback_svd) = {
        let _sp = obskit::span("lstsq/sap/factor");
        try_factor(&ahat, opts.flavor)?
    };
    let factor_s = t1.elapsed().as_secs_f64();
    drop(ahat);

    // Phase 3: preconditioned LSQR with stagnation/divergence detection.
    let t2 = Instant::now();
    let lsqr_opts = LsqrOptions {
        stall_window,
        ..opts.lsqr
    };
    let mut aop = CscOp::new(a);
    let mut pop = BoxedPrecondOp::new(&mut aop, precond.as_ref());
    let result = {
        let _sp = obskit::span("lstsq/sap/solve");
        lsqr(&mut pop, b, &lsqr_opts)
    };
    match result.stop {
        StopReason::Diverged => {
            return Err(SolveError::Diverged {
                iters: result.iters,
            })
        }
        StopReason::Stagnated | StopReason::MaxIters => {
            return Err(SolveError::Stagnated {
                iters: result.iters,
                best_rel_atr: result.rel_atr,
            })
        }
        _ => {}
    }
    let mut x = vec![0.0; n];
    precond.apply(&result.x, &mut x);
    let solve_s = t2.elapsed().as_secs_f64();

    obskit::event(
        "sap",
        vec![
            ("flavor", obskit::Value::S(format!("{:?}", opts.flavor))),
            ("n", obskit::Value::U(n as u64)),
            ("d", obskit::Value::U(d as u64)),
            ("iters", obskit::Value::U(result.iters as u64)),
            ("sketch_s", obskit::Value::F(sketch_s)),
            ("factor_s", obskit::Value::F(factor_s)),
            ("solve_s", obskit::Value::F(solve_s)),
        ],
    );

    Ok(SapReport {
        x,
        iters: result.iters,
        sketch_s,
        factor_s,
        solve_s,
        total_s: t_start.elapsed().as_secs_f64(),
        memory_bytes: sketch_bytes + factor_bytes,
        rank,
        lsqr_result: result,
        retries: 0,
        fallback_svd,
    })
}

/// Self-healing SAP: [`solve_sap`]'s pipeline with typed errors and bounded
/// recovery under [`RecoveryPolicy::default`] (3 attempts, stall window 500).
///
/// Detection: invalid/corrupt input (via the hardened sketch path), sketch
/// worker panics, factorization failure, rank deficiency (from `diag(R)`),
/// LSQR stagnation and divergence. Recovery, per retry: γ doubles and the
/// sketch seed shifts (a fresh, larger random draw), and a rank-deficient QR
/// falls back to SVD *within* an attempt without consuming a retry. Each
/// retry bumps the `sap.retries` counter; each fallback `sap.fallback_svd`.
pub fn try_solve_sap(
    a: &CscMatrix<f64>,
    b: &[f64],
    opts: &SapOptions,
) -> Result<SapReport, SolveError> {
    try_solve_sap_with(a, b, opts, &RecoveryPolicy::default())
}

/// [`try_solve_sap`] with explicit escalation bounds.
pub fn try_solve_sap_with(
    a: &CscMatrix<f64>,
    b: &[f64],
    opts: &SapOptions,
    policy: &RecoveryPolicy,
) -> Result<SapReport, SolveError> {
    let _sp = obskit::span("lstsq/sap");
    let t_start = Instant::now();
    let n = a.ncols();
    if n == 0 {
        return Err(SolveError::RankDeficient { rank: 0, n: 0 });
    }
    if b.len() != a.nrows() {
        return Err(SolveError::DimensionMismatch {
            expected: a.nrows(),
            got: b.len(),
        });
    }
    let gamma = opts.gamma.max(1);
    let attempts = policy.max_attempts.max(1);
    let mut retries = 0u32;
    let mut last_err = None;
    for attempt in 0..attempts {
        let gamma_eff = gamma << attempt;
        let seed = opts.seed.wrapping_add(attempt as u64);
        match sap_attempt(a, b, opts, gamma_eff, seed, policy.stall_window, t_start) {
            Ok(mut rep) => {
                rep.retries = retries;
                return Ok(rep);
            }
            Err(e) => {
                if !retryable(&e) {
                    return Err(e);
                }
                if attempt + 1 < attempts {
                    retries += 1;
                    obskit::add(obskit::Ctr::SapRetries, 1);
                    obskit::event(
                        "sap_retry",
                        vec![
                            ("attempt", obskit::Value::U(attempt as u64 + 1)),
                            (
                                "gamma_next",
                                obskit::Value::U((gamma << (attempt + 1)) as u64),
                            ),
                            ("cause", obskit::Value::S(e.to_string())),
                        ],
                    );
                }
                last_err = Some(e);
            }
        }
    }
    match last_err {
        Some(last) => Err(SolveError::RecoveryExhausted {
            attempts,
            last: Box::new(last),
        }),
        None => unreachable!("attempts >= 1, so the loop ran at least once"),
    }
}

/// `PrecondOp` over a trait object (the flavours return different types).
struct BoxedPrecondOp<'a> {
    a: &'a mut CscOp<'a>,
    m: &'a dyn Preconditioner,
    scratch: Vec<f64>,
}

impl<'a> BoxedPrecondOp<'a> {
    fn new(a: &'a mut CscOp<'a>, m: &'a dyn Preconditioner) -> Self {
        let n = crate::op::LinOp::ncols(a);
        assert_eq!(m.output_dim(), n);
        Self {
            a,
            m,
            scratch: vec![0.0; n],
        }
    }
}

impl crate::op::LinOp for BoxedPrecondOp<'_> {
    fn nrows(&self) -> usize {
        crate::op::LinOp::nrows(self.a)
    }
    fn ncols(&self) -> usize {
        self.m.input_dim()
    }
    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.m.apply(x, &mut self.scratch);
        crate::op::LinOp::apply(self.a, &self.scratch, y);
    }
    fn apply_t(&mut self, x: &[f64], y: &mut [f64]) {
        crate::op::LinOp::apply_t(self.a, x, &mut self.scratch);
        self.m.apply_t(&self.scratch, y);
    }
}

/// LSQR with the diagonal column-equilibration preconditioner (the paper's
/// "LSQR-D" baseline). Returns the solution and the iteration count.
pub fn solve_lsqr_d(a: &CscMatrix<f64>, b: &[f64], opts: &LsqrOptions) -> (Vec<f64>, LsqrResult) {
    let m = DiagPrecond::from_col_norms(a);
    let mut aop = CscOp::new(a);
    let mut pop = PrecondOp::new(&mut aop, &m);
    let result = lsqr(&mut pop, b, opts);
    let mut x = vec![0.0; a.ncols()];
    m.apply(&result.x, &mut x);
    (x, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::backward_error;
    use datagen::lsq::{tall_conditioned, CondSpec};
    use datagen::make_rhs;

    fn opts(flavor: SapFlavor) -> SapOptions {
        SapOptions {
            gamma: 2,
            b_d: 64,
            b_n: 16,
            seed: 42,
            flavor,
            lsqr: LsqrOptions {
                atol: 1e-14,
                btol: 1e-14,
                max_iters: 2000,
                stall_window: 0,
            },
        }
    }

    #[test]
    fn sap_qr_solves_benign_problem() {
        let a = tall_conditioned(600, 40, 0.05, CondSpec::WELL, 1);
        let (b, _) = make_rhs(&a, 7);
        let rep = solve_sap(&a, &b, &opts(SapFlavor::Qr));
        let err = backward_error(&a, &rep.x, &b);
        assert!(err < 1e-12, "backward error {err}");
        assert!(rep.iters < 300, "too many iterations: {}", rep.iters);
        assert_eq!(rep.rank, 40);
        assert!(rep.memory_bytes > 0);
    }

    #[test]
    fn sap_iterations_insensitive_to_conditioning() {
        // The paper's headline: SAP's iteration count barely varies with the
        // input's conditioning (Table IX: 77–90 across cond 1e2..1e18).
        let benign = tall_conditioned(500, 32, 0.06, CondSpec::WELL, 2);
        let scaled = tall_conditioned(500, 32, 0.06, CondSpec::scaled(8.0, 1.0), 3);
        let (b1, _) = make_rhs(&benign, 1);
        let (b2, _) = make_rhs(&scaled, 2);
        let r1 = solve_sap(&benign, &b1, &opts(SapFlavor::Qr));
        let r2 = solve_sap(&scaled, &b2, &opts(SapFlavor::Qr));
        let ratio = r1.iters.max(r2.iters) as f64 / r1.iters.min(r2.iters).max(1) as f64;
        assert!(
            ratio < 2.5,
            "SAP iterations vary too much: {} vs {}",
            r1.iters,
            r2.iters
        );
        // Both accurate.
        assert!(backward_error(&benign, &r1.x, &b1) < 1e-12);
        assert!(backward_error(&scaled, &r2.x, &b2) < 1e-12);
    }

    #[test]
    fn sap_beats_lsqr_d_on_ill_conditioned_problems() {
        // Spread-spectrum chain: conditioning that diagonal equilibration
        // cannot remove (the rails' regime) — LSQR-D grinds through ~n
        // Krylov steps, SAP needs only the distortion-bounded ~40. (At the
        // paper's n in the thousands the gap is 5–16x, Table IX.)
        let a = tall_conditioned(1500, 128, 0.05, CondSpec::chain(2.6), 5);
        let (b, _) = make_rhs(&a, 9);
        let lsqr_opts = LsqrOptions {
            atol: 1e-14,
            btol: 1e-14,
            max_iters: 20_000,
            stall_window: 0,
        };
        let (_, diag) = solve_lsqr_d(&a, &b, &lsqr_opts);
        let sap = solve_sap(&a, &b, &opts(SapFlavor::Qr));
        assert!(
            sap.iters * 3 / 2 < diag.iters,
            "SAP {} iters vs LSQR-D {}",
            sap.iters,
            diag.iters
        );
    }

    #[test]
    fn sap_svd_handles_rank_deficiency() {
        let a = tall_conditioned(400, 32, 0.08, CondSpec::deficient(14.0, 1.0), 7);
        let (b, _) = make_rhs(&a, 3);
        let rep = solve_sap(&a, &b, &opts(SapFlavor::Svd));
        // Dependent columns → rank < n detected from the sketch.
        assert!(rep.rank < 32, "rank {} should reflect deficiency", rep.rank);
        let err = backward_error(&a, &rep.x, &b);
        assert!(err < 1e-8, "backward error {err}");
        assert!(rep.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lsqr_d_baseline_solves() {
        let a = tall_conditioned(300, 20, 0.08, CondSpec::chain(2.0), 11);
        let (b, _) = make_rhs(&a, 5);
        let (x, res) = solve_lsqr_d(
            &a,
            &b,
            &LsqrOptions {
                atol: 1e-14,
                btol: 1e-14,
                max_iters: 10_000,
                stall_window: 0,
            },
        );
        assert!(backward_error(&a, &x, &b) < 1e-12);
        assert!(res.iters > 0);
    }

    #[test]
    fn report_phase_times_consistent() {
        let a = tall_conditioned(300, 24, 0.08, CondSpec::WELL, 13);
        let (b, _) = make_rhs(&a, 1);
        let rep = solve_sap(&a, &b, &opts(SapFlavor::Qr));
        assert!(rep.total_s >= rep.sketch_s);
        assert!(rep.total_s + 1e-9 >= rep.sketch_s + rep.factor_s + rep.solve_s - 1e-3);
        // Memory: sketch (2n×n) dominates; must be ≥ 2n² f64.
        assert!(rep.memory_bytes >= 2 * 24 * 24 * 8);
    }
}
