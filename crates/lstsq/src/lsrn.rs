//! LSRN — Meng, Saunders & Mahoney's randomized least-squares solver
//! (SIAM J. Sci. Comput. 2014), the paper's reference [20] and the direct
//! ancestor of the SAP pipeline it evaluates.
//!
//! LSRN prescribes a **Gaussian** sketch `Â = S·A` with oversampling
//! `d = γ·n` (γ ≈ 2), an SVD of the sketch, preconditioning with `V·Σ⁻¹`,
//! and an iterative solver — for which its strong-conditioning guarantee
//! (singular values of `A·N` concentrate in `[1/(1+ε), 1/(1−ε)]` with
//! `ε = √(n/d)`, *independent of A's spectrum*) holds unconditionally
//! because Gaussian matrices are rotationally invariant.
//!
//! Relative to [`crate::solve_sap`] with [`crate::SapFlavor::Svd`], the only
//! differences are the Gaussian entries (slower to generate — Figure 4's
//! point) and the theory being exact rather than asymptotic. Having both
//! makes the distribution choice measurable end-to-end: run the
//! `ablate_iterative` / `table9` benches with either.

use crate::lsqr::{lsqr, LsqrOptions, LsqrResult};
use crate::op::{CscOp, LinOp};
use crate::precond::{Preconditioner, SvdPrecond};
use densekit::ThinSvd;
use rngkit::{FastRng, Gaussian, UnitUniform};
use sketchcore::{sketch_alg3_par_cols, SketchConfig};
use sparsekit::CscMatrix;

/// Which distribution fills the LSRN sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsrnSketch {
    /// iid N(0,1) entries — the method as published (guarantees exact).
    Gaussian,
    /// iid uniform(-1,1) — the paper's cheap substitute (guarantees
    /// asymptotic; generation ~10x faster, Figure 4).
    Uniform,
}

/// LSRN report.
#[derive(Clone, Debug)]
pub struct LsrnReport {
    /// Solution.
    pub x: Vec<f64>,
    /// LSQR iterations under the LSRN preconditioner.
    pub iters: usize,
    /// Retained numerical rank of the sketch.
    pub rank: usize,
    /// Seconds for the sketch phase.
    pub sketch_s: f64,
    /// Seconds for the SVD phase.
    pub svd_s: f64,
    /// Total seconds.
    pub total_s: f64,
    /// LSQR diagnostics.
    pub lsqr_result: LsqrResult,
}

/// Solve `min ‖Ax − b‖₂` with LSRN (overdetermined case).
pub fn solve_lsrn(
    a: &CscMatrix<f64>,
    b: &[f64],
    gamma: usize,
    sketch: LsrnSketch,
    seed: u64,
    opts: &LsqrOptions,
) -> LsrnReport {
    let t_start = std::time::Instant::now();
    let n = a.ncols();
    assert!(a.nrows() >= n, "LSRN overdetermined path expects m ≥ n");
    assert!(
        gamma >= 2,
        "LSRN wants γ ≥ 2 for its conditioning guarantee"
    );
    let d = gamma * n;
    let cfg = SketchConfig::new(d, 3000.min(d), 500.min(n), seed);

    let t0 = std::time::Instant::now();
    let mut ahat = match sketch {
        LsrnSketch::Gaussian => {
            let sampler = Gaussian::<f64>::sampler(FastRng::new(seed));
            sketch_alg3_par_cols(a, &cfg, &sampler)
        }
        LsrnSketch::Uniform => {
            let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
            let mut out = sketch_alg3_par_cols(a, &cfg, &sampler);
            // Match Gaussian second moments: Var(unif(-1,1)) = 1/3.
            out.scale(3f64.sqrt());
            out
        }
    };
    // LSRN normalizes by 1/√d so σ(S/√d · Q) ≈ 1.
    ahat.scale(1.0 / (d as f64).sqrt());
    let sketch_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let svd = ThinSvd::factor(&ahat);
    let precond = SvdPrecond::from_svd(&svd, 1e-12);
    let rank = precond.rank();
    let svd_s = t1.elapsed().as_secs_f64();
    drop(ahat);

    let mut aop = CscOp::new(a);
    let mut pop = LsrnOp {
        a: &mut aop,
        m: &precond,
        scratch: vec![0.0; n],
    };
    let result = lsqr(&mut pop, b, opts);
    let mut x = vec![0.0; n];
    precond.apply(&result.x, &mut x);

    LsrnReport {
        x,
        iters: result.iters,
        rank,
        sketch_s,
        svd_s,
        total_s: t_start.elapsed().as_secs_f64(),
        lsqr_result: result,
    }
}

struct LsrnOp<'a> {
    a: &'a mut CscOp<'a>,
    m: &'a SvdPrecond,
    scratch: Vec<f64>,
}

impl LinOp for LsrnOp<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.m.input_dim()
    }
    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.m.apply(x, &mut self.scratch);
        self.a.apply(&self.scratch, y);
    }
    fn apply_t(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.apply_t(x, &mut self.scratch);
        self.m.apply_t(&self.scratch, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::backward_error;
    use datagen::lsq::{tall_conditioned, CondSpec};
    use datagen::make_rhs;

    #[test]
    fn lsrn_gaussian_solves_ill_conditioned_problem() {
        let a = tall_conditioned(800, 40, 0.05, CondSpec::scaled(8.0, 1.0), 3);
        let (b, _) = make_rhs(&a, 5);
        let rep = solve_lsrn(&a, &b, 2, LsrnSketch::Gaussian, 7, &LsqrOptions::default());
        assert!(backward_error(&a, &rep.x, &b) < 1e-10);
        assert!(rep.iters < 300, "LSRN iters {}", rep.iters);
        assert_eq!(rep.rank, 40);
    }

    #[test]
    fn uniform_sketch_matches_gaussian_iteration_count() {
        // The cheap distribution preserves LSRN's conditioning behaviour —
        // the asymptotic claim the paper leans on.
        let a = tall_conditioned(1_000, 48, 0.04, CondSpec::chain(2.0), 9);
        let (b, _) = make_rhs(&a, 2);
        let g = solve_lsrn(&a, &b, 2, LsrnSketch::Gaussian, 7, &LsqrOptions::default());
        let u = solve_lsrn(&a, &b, 2, LsrnSketch::Uniform, 7, &LsqrOptions::default());
        let ratio = g.iters.max(u.iters) as f64 / g.iters.min(u.iters).max(1) as f64;
        assert!(ratio < 1.5, "iters diverge: {} vs {}", g.iters, u.iters);
        assert!(backward_error(&a, &u.x, &b) < 1e-10);
        // Solutions agree.
        let scale: f64 = g.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let diff: f64 =
            g.x.iter()
                .zip(u.x.iter())
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
        assert!(diff < 1e-7 * scale, "solutions differ by {diff}");
    }

    #[test]
    fn rank_deficiency_survives_lsrn() {
        let a = tall_conditioned(600, 32, 0.06, CondSpec::deficient(14.0, 1.0), 5);
        let (b, _) = make_rhs(&a, 1);
        let rep = solve_lsrn(&a, &b, 2, LsrnSketch::Gaussian, 3, &LsqrOptions::default());
        assert!(rep.rank < 32, "rank {} should drop", rep.rank);
        assert!(rep.x.iter().all(|v| v.is_finite()));
        assert!(backward_error(&a, &rep.x, &b) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "γ ≥ 2")]
    fn gamma_one_rejected() {
        let a = tall_conditioned(100, 10, 0.1, CondSpec::WELL, 1);
        let _ = solve_lsrn(
            &a,
            &[0.0; 100],
            1,
            LsrnSketch::Gaussian,
            1,
            &LsqrOptions::default(),
        );
    }
}
