//! Minimum-norm solutions of underdetermined systems — the paper's
//! footnote 2 ("underdetermined problems can be handled with minor
//! modifications relative to the overdetermined problems we consider").
//!
//! For wide `A ∈ R^{m×n}` (`m < n`) and consistent `A·x = b`, the
//! minimum-norm solution is found by sketching the *transpose*: compute
//! `Â = S·Aᵀ` (a `2m×m` dense matrix), factor `Â = QR`, and run LSQR on the
//! **left**-preconditioned system `(R⁻ᵀ·A)·x = R⁻ᵀ·b`. Left preconditioning
//! keeps the solution set unchanged on consistent systems, the sketch bounds
//! `cond(R⁻ᵀ·A)` by `(√γ+1)/(√γ−1)`, and LSQR's iterates stay in
//! `range(Aᵀ)`, so the limit is the minimum-norm solution.

use crate::lsqr::{lsqr, LsqrOptions, LsqrResult};
use crate::op::LinOp;
use densekit::{householder_qr_r, solve_upper, solve_upper_t, Matrix};
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3_par_cols, SketchConfig};
use sparsekit::CscMatrix;

/// Report of a minimum-norm solve.
#[derive(Clone, Debug)]
pub struct MinNormReport {
    /// The minimum-norm solution.
    pub x: Vec<f64>,
    /// LSQR iterations.
    pub iters: usize,
    /// Seconds in the sketch + factor phase.
    pub precond_s: f64,
    /// Total seconds.
    pub total_s: f64,
    /// Raw LSQR diagnostics.
    pub lsqr_result: LsqrResult,
}

/// Left-preconditioned operator `R⁻ᵀ·A` for wide `A`.
struct LeftPrecondOp<'a> {
    a: &'a CscMatrix<f64>,
    r: &'a Matrix<f64>,
    scratch: Vec<f64>,
}

impl LinOp for LeftPrecondOp<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y);
        solve_upper_t(self.r, y);
    }
    fn apply_t(&mut self, x: &[f64], y: &mut [f64]) {
        self.scratch.copy_from_slice(x);
        solve_upper(self.r, &mut self.scratch);
        self.a.spmv_t(&self.scratch, y);
    }
}

/// Solve `min ‖x‖₂ s.t. A·x = b` for wide `A` (m < n) by sketching `Aᵀ`.
///
/// `gamma` is the oversampling of the transpose sketch (`d = γ·m`); the
/// system must be consistent (wide full-row-rank systems always are).
pub fn solve_min_norm_sap(
    a: &CscMatrix<f64>,
    b: &[f64],
    gamma: usize,
    b_d: usize,
    b_n: usize,
    seed: u64,
    opts: &LsqrOptions,
) -> MinNormReport {
    let t_start = std::time::Instant::now();
    let (m, n) = (a.nrows(), a.ncols());
    assert!(m < n, "min-norm path expects a wide system (m < n)");
    assert_eq!(b.len(), m, "rhs length mismatch");
    assert!(gamma >= 1);

    // Sketch the transpose: Â = S·Aᵀ is (γ·m)×m.
    let t0 = std::time::Instant::now();
    let at = a.transpose();
    let d = gamma * m;
    let cfg = SketchConfig::new(d, b_d, b_n, seed);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
    let mut ahat = sketch_alg3_par_cols(&at, &cfg, &sampler);
    ahat.scale(1.0 / ((d as f64) / 3.0).sqrt());
    let r = householder_qr_r(&ahat);
    drop(ahat);
    let precond_s = t0.elapsed().as_secs_f64();

    // LSQR on (R⁻ᵀ A, R⁻ᵀ b).
    let mut rhs = b.to_vec();
    solve_upper_t(&r, &mut rhs);
    let mut op = LeftPrecondOp {
        a,
        r: &r,
        scratch: vec![0.0; m],
    };
    let result = lsqr(&mut op, &rhs, opts);

    MinNormReport {
        x: result.x.clone(),
        iters: result.iters,
        precond_s,
        total_s: t_start.elapsed().as_secs_f64(),
        lsqr_result: result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densekit::HouseholderQr;

    fn wide_random(m: usize, n: usize, density: f64, seed: u64) -> CscMatrix<f64> {
        // Transposed tall generator guarantees full row rank of the wide A.
        datagen_free_tall(n, m, density, seed).transpose()
    }

    /// Local tall generator (datagen would create a dev-dependency cycle).
    fn datagen_free_tall(m: usize, n: usize, density: f64, seed: u64) -> CscMatrix<f64> {
        let mut state = seed | 1;
        let mut nextf = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut coo = sparsekit::CooMatrix::new(m, n);
        for j in 0..n {
            coo.push(j, j, 2.0 + nextf()).unwrap(); // full rank
            for i in 0..m {
                if nextf() < density {
                    coo.push(i, j, nextf() * 2.0 - 1.0).unwrap();
                }
            }
        }
        coo.to_csc().unwrap()
    }

    /// Dense reference: min-norm x = Q·(R⁻ᵀ·b) from Aᵀ = QR.
    fn dense_min_norm(a: &CscMatrix<f64>, b: &[f64]) -> Vec<f64> {
        let (m, n) = (a.nrows(), a.ncols());
        let at_dense = Matrix::from_fn(n, m, |i, j| a.get(j, i));
        let qr = HouseholderQr::factor(&at_dense);
        let r = qr.r();
        let mut w = b.to_vec();
        solve_upper_t(&r, &mut w);
        // x = Q·[w; 0].
        let mut x = vec![0.0; n];
        x[..m].copy_from_slice(&w);
        qr.apply_q(&mut x);
        x
    }

    #[test]
    fn matches_dense_min_norm_reference() {
        let a = wide_random(30, 300, 0.05, 3);
        let x_any: Vec<f64> = (0..300).map(|i| ((i % 11) as f64) / 5.0 - 1.0).collect();
        let mut b = vec![0.0; 30];
        a.spmv(&x_any, &mut b);

        let rep = solve_min_norm_sap(&a, &b, 2, 64, 16, 7, &LsqrOptions::default());
        let x_ref = dense_min_norm(&a, &b);
        let scale: f64 = x_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
        let diff: f64 = rep
            .x
            .iter()
            .zip(x_ref.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-8 * scale, "min-norm mismatch {diff}");

        // Feasibility and minimality.
        let mut ax = vec![0.0; 30];
        a.spmv(&rep.x, &mut ax);
        let resid: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(resid < 1e-9 * bnorm, "infeasible: {resid}");
        let norm_got: f64 = rep.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let norm_any: f64 = x_any.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm_got <= norm_any * (1.0 + 1e-9), "not minimal");
    }

    #[test]
    fn iteration_count_is_distortion_bounded() {
        // γ = 2 ⇒ preconditioned cond ≤ ~5.8 ⇒ iterations ~ tens regardless
        // of the underlying conditioning.
        let a = wide_random(60, 800, 0.03, 9);
        let x_any: Vec<f64> = (0..800).map(|i| (i as f64).sin()).collect();
        let mut b = vec![0.0; 60];
        a.spmv(&x_any, &mut b);
        let rep = solve_min_norm_sap(&a, &b, 2, 128, 32, 5, &LsqrOptions::default());
        assert!(rep.iters < 200, "too many iterations: {}", rep.iters);
    }

    #[test]
    #[should_panic(expected = "wide system")]
    fn tall_input_rejected() {
        let a = datagen_free_tall(50, 10, 0.1, 1);
        let b = vec![0.0; 50];
        let _ = solve_min_norm_sap(&a, &b, 2, 16, 8, 1, &LsqrOptions::default());
    }
}
