//! Right preconditioners for LSQR.
//!
//! A right preconditioner is a map `M: R^r → R^n`; LSQR iterates on `A∘M`
//! and the solution is `x = M·y`. Three are used in the paper's comparison:
//!
//! * [`DiagPrecond`] — LSQR-D's column equilibration, `D_ii = 1/‖A_i‖₂`,
//!   guarded by the rule `D_ii = 1` when `‖A_i‖₂ ≤ ε·√n·maxᵢ‖A_i‖₂`.
//! * [`UpperTriPrecond`] — SAP-QR's `R⁻¹`, applied by triangular solves.
//! * [`SvdPrecond`] — SAP-SVD's `V·Σ⁻¹` with small singular values dropped;
//!   reduces the iterate dimension to the numerical rank.

use densekit::{solve_upper, solve_upper_t, Matrix, ThinSvd};
use sparsekit::CscMatrix;

/// A right preconditioner `M: R^{input_dim} → R^{output_dim}`.
pub trait Preconditioner {
    /// Dimension of the iterate space (LSQR's unknown).
    fn input_dim(&self) -> usize;
    /// Dimension of the solution space (`A`'s columns).
    fn output_dim(&self) -> usize;
    /// `x = M·y`.
    fn apply(&self, y: &[f64], x: &mut [f64]);
    /// `y = Mᵀ·x`.
    fn apply_t(&self, x: &[f64], y: &mut [f64]);
    /// Extra memory this preconditioner retains, in bytes (Table XI).
    fn memory_bytes(&self) -> usize;
}

/// The identity (plain LSQR).
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// Identity on `R^n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl Preconditioner for IdentityPrecond {
    fn input_dim(&self) -> usize {
        self.n
    }
    fn output_dim(&self) -> usize {
        self.n
    }
    fn apply(&self, y: &[f64], x: &mut [f64]) {
        x.copy_from_slice(y);
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Diagonal (column-equilibration) preconditioner.
pub struct DiagPrecond {
    d: Vec<f64>,
}

impl DiagPrecond {
    /// The paper's LSQR-D construction from column norms with the ε-guard.
    pub fn from_col_norms(a: &CscMatrix<f64>) -> Self {
        let norms = a.col_norms();
        let n = norms.len();
        let max = norms.iter().cloned().fold(0.0f64, f64::max);
        let floor = f64::EPSILON * (n as f64).sqrt() * max;
        let d = norms
            .iter()
            .map(|&nm| if nm <= floor { 1.0 } else { 1.0 / nm })
            .collect();
        Self { d }
    }

    /// Wrap an explicit diagonal.
    pub fn from_diag(d: Vec<f64>) -> Self {
        Self { d }
    }
}

impl Preconditioner for DiagPrecond {
    fn input_dim(&self) -> usize {
        self.d.len()
    }
    fn output_dim(&self) -> usize {
        self.d.len()
    }
    fn apply(&self, y: &[f64], x: &mut [f64]) {
        for ((xi, &yi), &di) in x.iter_mut().zip(y.iter()).zip(self.d.iter()) {
            *xi = yi * di;
        }
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        self.apply(x, y); // diagonal is symmetric
    }
    fn memory_bytes(&self) -> usize {
        self.d.len() * 8
    }
}

/// `M = R⁻¹` for an upper-triangular `R` (SAP-QR).
pub struct UpperTriPrecond {
    r: Matrix<f64>,
}

impl UpperTriPrecond {
    /// Wrap the `R` factor of the sketch. Panics if `R` is singular at
    /// machine precision (a failed sketch).
    pub fn new(r: Matrix<f64>) -> Self {
        assert_eq!(r.nrows(), r.ncols(), "R must be square");
        for j in 0..r.ncols() {
            assert!(
                r[(j, j)] != 0.0,
                "singular R factor at column {j}: use SAP-SVD for rank-deficient problems"
            );
        }
        Self { r }
    }
}

impl Preconditioner for UpperTriPrecond {
    fn input_dim(&self) -> usize {
        self.r.ncols()
    }
    fn output_dim(&self) -> usize {
        self.r.ncols()
    }
    fn apply(&self, y: &[f64], x: &mut [f64]) {
        x.copy_from_slice(y);
        solve_upper(&self.r, x);
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
        solve_upper_t(&self.r, y);
    }
    fn memory_bytes(&self) -> usize {
        self.r.nrows() * self.r.ncols() * 8
    }
}

/// `M = V_r·Σ_r⁻¹` from the thin SVD of the sketch, keeping only singular
/// values above `σ_max·rel_drop` (paper: `rel_drop = 1e-12`).
pub struct SvdPrecond {
    /// `n×r` retained right singular vectors.
    v: Matrix<f64>,
    /// Reciprocals of the retained singular values.
    sinv: Vec<f64>,
}

impl SvdPrecond {
    /// Build from a sketch SVD with the paper's drop rule.
    pub fn from_svd(svd: &ThinSvd<f64>, rel_drop: f64) -> Self {
        let r = svd.rank(rel_drop);
        assert!(r > 0, "sketch is numerically zero");
        let n = svd.v.nrows();
        let v = svd.v.submatrix(0, n, 0, r);
        let sinv = svd.sigma[..r].iter().map(|&s| 1.0 / s).collect();
        Self { v, sinv }
    }

    /// Retained rank.
    pub fn rank(&self) -> usize {
        self.sinv.len()
    }
}

impl Preconditioner for SvdPrecond {
    fn input_dim(&self) -> usize {
        self.sinv.len()
    }
    fn output_dim(&self) -> usize {
        self.v.nrows()
    }
    fn apply(&self, y: &[f64], x: &mut [f64]) {
        // x = V·(Σ⁻¹ y).
        x.fill(0.0);
        for (j, (&yj, &sj)) in y.iter().zip(self.sinv.iter()).enumerate() {
            let c = yj * sj;
            for (xi, &vij) in x.iter_mut().zip(self.v.col(j).iter()) {
                *xi += vij * c;
            }
        }
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        // y = Σ⁻¹·Vᵀ·x.
        for (j, (yj, &sj)) in y.iter_mut().zip(self.sinv.iter()).enumerate() {
            let mut acc = 0.0;
            for (&vij, &xi) in self.v.col(j).iter().zip(x.iter()) {
                acc += vij * xi;
            }
            *yj = acc * sj;
        }
    }
    fn memory_bytes(&self) -> usize {
        self.v.memory_bytes() + self.sinv.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::CooMatrix;

    #[test]
    fn diag_from_col_norms() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 3.0).unwrap();
        coo.push(1, 0, 4.0).unwrap(); // ‖col0‖ = 5
        coo.push(2, 1, 2.0).unwrap(); // ‖col1‖ = 2
        let a = coo.to_csc().unwrap();
        let m = DiagPrecond::from_col_norms(&a);
        let mut x = [0.0; 2];
        m.apply(&[1.0, 1.0], &mut x);
        assert!((x[0] - 0.2).abs() < 1e-15);
        assert!((x[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn diag_guard_for_tiny_columns() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1e-300).unwrap(); // effectively zero column
        let a = coo.to_csc().unwrap();
        let m = DiagPrecond::from_col_norms(&a);
        let mut x = [0.0; 2];
        m.apply(&[1.0, 1.0], &mut x);
        assert_eq!(x[1], 1.0, "guarded column must get D_ii = 1");
    }

    #[test]
    fn upper_tri_round_trip() {
        let r = Matrix::from_row_major(2, 2, &[2.0, 1.0, 0.0, 4.0]);
        let m = UpperTriPrecond::new(r.clone());
        // apply then multiply by R recovers input.
        let y = [3.0, 8.0];
        let mut x = [0.0; 2];
        m.apply(&y, &mut x);
        let mut back = [0.0; 2];
        r.matvec(&x, &mut back);
        assert!((back[0] - 3.0).abs() < 1e-14 && (back[1] - 8.0).abs() < 1e-14);
        // Transpose consistency: Mᵀ = R⁻ᵀ.
        let mut yt = [0.0; 2];
        m.apply_t(&y, &mut yt);
        let rt = r.transpose();
        let mut back_t = [0.0; 2];
        rt.matvec(&yt, &mut back_t);
        assert!((back_t[0] - 3.0).abs() < 1e-14 && (back_t[1] - 8.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "singular R")]
    fn singular_r_rejected() {
        let mut r = Matrix::<f64>::identity(2);
        r[(1, 1)] = 0.0;
        let _ = UpperTriPrecond::new(r);
    }

    #[test]
    fn svd_precond_drops_small_values() {
        // Sketch with singular values {1, 1e-3, 1e-15}: paper rule keeps 2.
        let mut a = Matrix::<f64>::zeros(5, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1e-3;
        a[(2, 2)] = 1e-15;
        let svd = ThinSvd::factor(&a);
        let m = SvdPrecond::from_svd(&svd, 1e-12);
        assert_eq!(m.rank(), 2);
        assert_eq!(m.input_dim(), 2);
        assert_eq!(m.output_dim(), 3);
        // M maps e_0 to v_0/σ_0.
        let mut x = [0.0; 3];
        m.apply(&[1.0, 0.0], &mut x);
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12); // ‖v_0‖/σ_0 = 1/1
    }

    #[test]
    fn svd_precond_transpose_adjoint_identity() {
        // ⟨M y, x⟩ = ⟨y, Mᵀ x⟩ for random vectors.
        let mut a = Matrix::<f64>::zeros(6, 4);
        for j in 0..4 {
            for i in 0..6 {
                a[(i, j)] = ((i * 7 + j * 3) % 5) as f64 - 2.0;
            }
        }
        let svd = ThinSvd::factor(&a);
        let m = SvdPrecond::from_svd(&svd, 1e-12);
        let r = m.rank();
        let y: Vec<f64> = (0..r).map(|i| i as f64 + 1.0).collect();
        let x: Vec<f64> = (0..4).map(|i| 2.0 - i as f64).collect();
        let mut my = vec![0.0; 4];
        m.apply(&y, &mut my);
        let mut mtx = vec![0.0; r];
        m.apply_t(&x, &mut mtx);
        let lhs: f64 = my.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        let rhs: f64 = y.iter().zip(mtx.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn identity_precond_is_noop() {
        let m = IdentityPrecond::new(3);
        let mut x = [0.0; 3];
        m.apply(&[1.0, 2.0, 3.0], &mut x);
        assert_eq!(x, [1.0, 2.0, 3.0]);
        assert_eq!(m.memory_bytes(), 0);
    }
}
