//! Solution-quality and memory metrics (paper Tables X and XI).

use sparsekit::CscMatrix;

/// The paper's backward-error metric for a candidate least-squares solution:
///
/// ```text
/// Error(x) = ‖Aᵀ(Ax − b)‖₂ / (‖A‖_F · ‖Ax − b‖₂)
/// ```
///
/// Zero residual returns 0 (the solution is exact and the metric's
/// denominator degenerates).
pub fn backward_error(a: &CscMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(x.len(), n, "x length mismatch");
    assert_eq!(b.len(), m, "b length mismatch");
    let mut r = vec![0.0; m];
    a.spmv(x, &mut r);
    for (ri, &bi) in r.iter_mut().zip(b.iter()) {
        *ri -= bi;
    }
    let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if rnorm == 0.0 {
        return 0.0;
    }
    let mut atr = vec![0.0; n];
    a.spmv_t(&r, &mut atr);
    let atr_norm: f64 = atr.iter().map(|v| v * v).sum::<f64>().sqrt();
    atr_norm / (a.fro_norm() * rnorm)
}

/// Memory comparison row for Table XI, all in bytes.
///
/// Every field is `u64`: byte totals come from different sources (in-memory
/// `usize` sizes, closed-form fill estimates) and a single width keeps the
/// arithmetic between columns lossless on 32-bit hosts too.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryReport {
    /// SAP's extra memory (dense sketch + factor).
    pub sap: u64,
    /// Direct sparse QR's factor memory (R fill + Q rotations).
    pub direct: u64,
    /// The input matrix's own CSC storage.
    pub mem_a: u64,
}

impl MemoryReport {
    /// Megabytes, in the paper's reporting unit.
    pub fn as_mbytes(&self) -> (f64, f64, f64) {
        const MB: f64 = 1e6;
        (
            self.sap as f64 / MB,
            self.direct as f64 / MB,
            self.mem_a as f64 / MB,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::CooMatrix;

    #[test]
    fn exact_solution_scores_zero() {
        let a = CscMatrix::<f64>::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let err = backward_error(&a, &x, &x);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn least_squares_optimum_scores_small() {
        // x = argmin for the 3x2 toy problem from the QR tests: Aᵀr = 0.
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        coo.push(2, 1, 1.0).unwrap();
        let a = coo.to_csc().unwrap();
        let b = [1.0, 1.0, 0.0];
        let x = [1.0 / 3.0, 1.0 / 3.0];
        let err = backward_error(&a, &x, &b);
        assert!(err < 1e-15, "optimal point must score ~0, got {err}");
        // A perturbed point scores worse.
        let bad = [0.5, 0.1];
        assert!(backward_error(&a, &bad, &b) > 1e-2);
    }

    #[test]
    fn memory_report_units() {
        let r = MemoryReport {
            sap: 2_000_000,
            direct: 50_000_000,
            mem_a: 1_500_000,
        };
        let (s, d, a) = r.as_mbytes();
        assert!((s - 2.0).abs() < 1e-12);
        assert!((d - 50.0).abs() < 1e-12);
        assert!((a - 1.5).abs() < 1e-12);
    }
}
