//! Ablation: generator choice inside Algorithm 3 (§IV-B).
//!
//! Scalar xoshiro256++ vs interleaved AoS lanes vs SoA SIMD lanes vs the
//! Philox counter-based generator vs the junk (RNG-free) upper bound — both
//! the raw fill rate and the end-to-end kernel time.
//!
//! Run: `cargo bench -p bench --bench ablate_rng`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rngkit::{
    BlockRng, CheckpointRng, JunkSampler, Lanes, Philox4x32, SimdXoshiro256PP, UnitUniform,
    Xoshiro256PlusPlus,
};
use sketchcore::{sketch_alg3, SketchConfig};
use std::hint::black_box;

fn raw_fill<R: BlockRng>(mut rng: R, out: &mut [u64]) {
    rng.set_state(0, 1);
    rng.fill_u64(out);
}

fn bench(c: &mut Criterion) {
    // Raw generator throughput.
    let mut g = c.benchmark_group("rng_fill_rate");
    let mut buf = vec![0u64; 3_000];
    g.throughput(Throughput::Elements(buf.len() as u64));
    g.bench_function("scalar_xoshiro256pp", |b| {
        b.iter(|| {
            raw_fill(
                CheckpointRng::<Xoshiro256PlusPlus>::new(1),
                black_box(&mut buf),
            )
        })
    });
    g.bench_function("lanes4_aos", |b| {
        b.iter(|| raw_fill(Lanes::<Xoshiro256PlusPlus, 4>::new(1), black_box(&mut buf)))
    });
    g.bench_function("simd8_soa", |b| {
        b.iter(|| raw_fill(SimdXoshiro256PP::<8>::new(1), black_box(&mut buf)))
    });
    g.bench_function("philox4x32_10", |b| {
        b.iter(|| raw_fill(Philox4x32::new(1), black_box(&mut buf)))
    });
    g.finish();

    // End-to-end Algorithm 3 with each generator (fixed distribution).
    let a = datagen::uniform_random::<f64>(4_000, 400, 5e-3, 1);
    let cfg = SketchConfig::new(1_200, 1_200, 200, 7);
    let mut g = c.benchmark_group("alg3_by_generator");
    g.sample_size(15);
    g.bench_function("scalar_xoshiro", |b| {
        let s = UnitUniform::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(7));
        b.iter(|| black_box(sketch_alg3(&a, &cfg, &s)))
    });
    g.bench_function("simd8_soa", |b| {
        let s = UnitUniform::<f64>::sampler(SimdXoshiro256PP::<8>::new(7));
        b.iter(|| black_box(sketch_alg3(&a, &cfg, &s)))
    });
    g.bench_function("philox_cbrng", |b| {
        let s = UnitUniform::<f64>::sampler(Philox4x32::new(7));
        b.iter(|| black_box(sketch_alg3(&a, &cfg, &s)))
    });
    g.bench_function("junk_upper_bound", |b| {
        let s = JunkSampler::new(7);
        b.iter(|| black_box(sketch_alg3(&a, &cfg, &s)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
