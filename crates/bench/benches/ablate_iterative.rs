//! Ablation: the iterative engine inside the pipeline — LSQR vs LSMR, with
//! the diagonal and sketch-QR preconditioners.
//!
//! Run: `cargo bench -p bench --bench ablate_iterative`

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::lsq::{tall_conditioned, CondSpec};
use datagen::make_rhs;
use lstsq::{lsmr, lsqr, CscOp, DiagPrecond, LsmrOptions, LsqrOptions, PrecondOp};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a = tall_conditioned(6_000, 150, 5e-3, CondSpec::chain(2.3), 3);
    let (b, _) = make_rhs(&a, 9);
    let diag = DiagPrecond::from_col_norms(&a);

    let mut g = c.benchmark_group("iterative_engine");
    g.sample_size(10);
    g.bench_function("lsqr_diag", |bch| {
        bch.iter(|| {
            let mut aop = CscOp::new(&a);
            let mut op = PrecondOp::new(&mut aop, &diag);
            black_box(lsqr(&mut op, &b, &LsqrOptions::default()))
        })
    });
    g.bench_function("lsmr_diag", |bch| {
        bch.iter(|| {
            let mut aop = CscOp::new(&a);
            let mut op = PrecondOp::new(&mut aop, &diag);
            black_box(lsmr(&mut op, &b, &LsmrOptions::default()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
