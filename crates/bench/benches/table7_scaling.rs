//! Criterion bench for Table VII: thread scaling of the parallel drivers
//! under the two blocking setups. (On a single-core host the sweep degrades
//! to overhead measurement; on multicore it reproduces the paper's scaling.)
//!
//! Run: `cargo bench -p bench --bench table7_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rngkit::{FastRng, UnitUniform};
use sketchcore::parallel::{sketch_alg3_par_rows, sketch_alg4_par_rows, with_threads};
use sketchcore::SketchConfig;
use sparsekit::BlockedCsr;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = datagen::spmm_suite(64);
    let nm = suite.iter().find(|p| p.name == "shar_te2-b2").unwrap();
    let a = &nm.matrix;
    let d = nm.d;
    // setup1: squarer blocks; setup2: highly rectangular (scales better).
    let setup1 = SketchConfig::new(d, 150.min(d), 300.min(a.ncols()), 7);
    let setup2 = SketchConfig::new(d, 470.min(d), 78.min(a.ncols()), 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(7));

    let max_t = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_t {
        let next = threads.last().unwrap() * 2;
        threads.push(next);
    }

    let mut g = c.benchmark_group("table7");
    g.sample_size(10);
    for &t in &threads {
        for (label, cfg) in [("setup1", &setup1), ("setup2", &setup2)] {
            g.bench_with_input(BenchmarkId::new(format!("alg3_{label}"), t), &t, |b, &t| {
                b.iter(|| with_threads(t, || black_box(sketch_alg3_par_rows(a, cfg, &sampler))))
            });
            let blocked = BlockedCsr::from_csc(a, cfg.b_n);
            g.bench_with_input(BenchmarkId::new(format!("alg4_{label}"), t), &t, |b, &t| {
                b.iter(|| {
                    with_threads(t, || {
                        black_box(sketch_alg4_par_rows(&blocked, cfg, &sampler))
                    })
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
