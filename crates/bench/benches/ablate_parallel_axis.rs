//! Ablation: which outer loop to parallelize (§II-C) — column panels
//! (`par_cols`) vs row stripes (`par_rows`), for both kernels.
//!
//! Run: `cargo bench -p bench --bench ablate_parallel_axis`

use criterion::{criterion_group, criterion_main, Criterion};
use rngkit::{FastRng, UnitUniform};
use sketchcore::parallel::{
    sketch_alg3_par_cols, sketch_alg3_par_rows, sketch_alg4_par_cols, sketch_alg4_par_rows,
};
use sketchcore::SketchConfig;
use sparsekit::BlockedCsr;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a = datagen::uniform_random::<f64>(6_000, 600, 4e-3, 1);
    let cfg = SketchConfig::new(1_800, 450, 100, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(7));
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);

    let mut g = c.benchmark_group("parallel_axis");
    g.sample_size(12);
    g.bench_function("alg3_par_cols", |b| {
        b.iter(|| black_box(sketch_alg3_par_cols(&a, &cfg, &sampler)))
    });
    g.bench_function("alg3_par_rows", |b| {
        b.iter(|| black_box(sketch_alg3_par_rows(&a, &cfg, &sampler)))
    });
    g.bench_function("alg4_par_cols", |b| {
        b.iter(|| black_box(sketch_alg4_par_cols(&blocked, &cfg, &sampler)))
    });
    g.bench_function("alg4_par_rows", |b| {
        b.iter(|| black_box(sketch_alg4_par_rows(&blocked, &cfg, &sampler)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
