//! §V-B machine probes as criterion benches: copy bandwidth, short-vector
//! RNG rate, and the FMA peak proxy — the quantities whose ratio (the
//! model's `h` and machine balance `B`) decides whether Algorithm 3 or 4
//! wins on a given machine.
//!
//! Run: `cargo bench -p bench --bench stream_probes`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rngkit::{BlockSampler, FastRng, UnitUniform};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Copy bandwidth (64 MiB, beyond LLC).
    let n = 1 << 23;
    let src = vec![1.0f64; n];
    let mut dst = vec![0.0f64; n];
    let mut g = c.benchmark_group("machine_probes");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((2 * 8 * n) as u64));
    g.bench_function("copy_64MiB", |b| {
        b.iter(|| {
            dst.copy_from_slice(&src);
            black_box(&dst);
        })
    });
    g.finish();

    // Short-vector RNG rate (length 10^4, the paper's probe).
    let mut g = c.benchmark_group("rng_short_vectors");
    let mut v = vec![0.0f64; 10_000];
    g.throughput(Throughput::Elements(v.len() as u64));
    g.bench_function("unit_uniform_len1e4", |b| {
        let mut s = UnitUniform::<f64>::sampler(FastRng::new(3));
        let mut col = 0usize;
        b.iter(|| {
            s.set_state(0, col);
            col = col.wrapping_add(1);
            s.fill(&mut v);
            black_box(&v);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
