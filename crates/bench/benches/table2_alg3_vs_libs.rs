//! Criterion bench for Table II: sequential Algorithm 3 (regeneration)
//! against the materialized-`S` library-style baselines.
//!
//! Run: `cargo bench -p bench --bench table2_alg3_vs_libs`

use baselines::{csc_outer, eigen_style, materialize_s, mkl_style};
use criterion::{criterion_group, criterion_main, Criterion};
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::{sketch_alg3, SketchConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // shar_te2-b2 stand-in at 1/64 scale: fast enough for criterion's
    // repeated sampling while still crossing block boundaries.
    let suite = datagen::spmm_suite(64);
    let nm = suite.iter().find(|p| p.name == "shar_te2-b2").unwrap();
    let a = &nm.matrix;
    let cfg = SketchConfig::new(nm.d, 3000.min(nm.d), 500.min(a.ncols()), 7);
    let uni = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let pm1 = Rademacher::<f64>::sampler(FastRng::new(cfg.seed));
    let s = materialize_s(&uni, cfg.d, a.nrows(), cfg.b_d);

    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("mkl_style", |b| b.iter(|| black_box(mkl_style(a, &s))));
    g.bench_function("eigen_style", |b| b.iter(|| black_box(eigen_style(a, &s))));
    g.bench_function("julia_style", |b| b.iter(|| black_box(csc_outer(a, &s))));
    g.bench_function("alg3_unit", |b| {
        b.iter(|| black_box(sketch_alg3(a, &cfg, &uni)))
    });
    g.bench_function("alg3_pm1", |b| {
        b.iter(|| black_box(sketch_alg3(a, &cfg, &pm1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
