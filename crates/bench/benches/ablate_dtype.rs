//! Ablation: entry representation for the ±1 distribution — materialized
//! `i8` signs with a select-add kernel vs the fused sign-XOR `f64` path vs
//! plain uniform, plus the `f32` uniform variant (paper §III-C works in
//! 32 bits).
//!
//! Run: `cargo bench -p bench --bench ablate_dtype`

use criterion::{criterion_group, criterion_main, Criterion};
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg3_signs, SketchConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a64 = datagen::uniform_random::<f64>(6_000, 500, 4e-3, 1);
    let a32 = datagen::uniform_random::<f32>(6_000, 500, 4e-3, 1);
    let cfg = SketchConfig::new(1_500, 1_500, 250, 7);

    let mut g = c.benchmark_group("dtype");
    g.sample_size(15);
    g.bench_function("pm1_i8_buffered", |b| {
        let s = Rademacher::<i8>::sampler(FastRng::new(7));
        b.iter(|| black_box(sketch_alg3_signs(&a64, &cfg, &s)))
    });
    g.bench_function("pm1_f64_fused_xor", |b| {
        let s = Rademacher::<f64>::sampler(FastRng::new(7));
        b.iter(|| black_box(sketch_alg3(&a64, &cfg, &s)))
    });
    g.bench_function("unit_f64_fused", |b| {
        let s = UnitUniform::<f64>::sampler(FastRng::new(7));
        b.iter(|| black_box(sketch_alg3(&a64, &cfg, &s)))
    });
    g.bench_function("unit_f32", |b| {
        let s = UnitUniform::<f32>::sampler(FastRng::new(7));
        b.iter(|| black_box(sketch_alg3(&a32, &cfg, &s)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
