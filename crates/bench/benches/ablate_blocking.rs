//! Ablation: block-size sweep for Algorithm 3, including the degenerate
//! blockings the paper discusses — `b_d = d` (one checkpoint per column of
//! `S`, maximal reuse of the seek) versus small `b_d` (more seeks, smaller
//! working set), and `b_n` from 1 (the column-at-a-time pylspack scheme) to
//! `n` (no column blocking). Compare with `sketchcore::model`'s prediction.
//!
//! Run: `cargo bench -p bench --bench ablate_blocking`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, SketchConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (m, n, rho) = (8_000, 600, 4e-3);
    let a = datagen::uniform_random::<f64>(m, n, rho, 5);
    let d = 3 * n;
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(1));

    let mut g = c.benchmark_group("blocking_sweep");
    g.sample_size(12);
    for b_d in [64usize, 512, 1800] {
        for b_n in [1usize, 64, 600] {
            let cfg = SketchConfig::new(d, b_d, b_n, 1);
            g.bench_with_input(
                BenchmarkId::new(format!("bd{b_d}"), format!("bn{b_n}")),
                &cfg,
                |b, cfg| b.iter(|| black_box(sketch_alg3(&a, cfg, &sampler))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
