//! CSB vs CSC SpMV — the related-work blocked sparse structure ([3] in the
//! paper) on the `A·x` / `Aᵀ·x` ping-pong that dominates LSQR iterations.
//!
//! Run: `cargo bench -p bench --bench csb_spmv`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparsekit::CsbMatrix;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a = datagen::uniform_random::<f64>(60_000, 2_000, 1e-3, 3);
    let csb = CsbMatrix::from_csc(&a, 4096);
    let x: Vec<f64> = (0..2_000).map(|i| (i as f64 * 0.31).sin()).collect();
    let xt: Vec<f64> = (0..60_000).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut y = vec![0.0; 60_000];
    let mut yt = vec![0.0; 2_000];

    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Elements(2 * a.nnz() as u64));
    g.bench_function("csc_ax", |b| {
        b.iter(|| {
            a.spmv(&x, &mut y);
            black_box(&y);
        })
    });
    g.bench_function("csb_ax_seq", |b| {
        b.iter(|| {
            csb.spmv(&x, &mut y);
            black_box(&y);
        })
    });
    g.bench_function("csb_ax_par", |b| {
        b.iter(|| {
            csb.spmv_par(&x, &mut y);
            black_box(&y);
        })
    });
    g.bench_function("csc_atx", |b| {
        b.iter(|| {
            a.spmv_t(&xt, &mut yt);
            black_box(&yt);
        })
    });
    g.bench_function("csb_atx_par", |b| {
        b.iter(|| {
            csb.spmv_t_par(&xt, &mut yt);
            black_box(&yt);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
