//! Criterion bench for Table VI: Algorithm 3 (pattern-oblivious) vs
//! Algorithm 4 (pattern-sensitive) on the Abnormal_A/B/C layouts.
//!
//! Run: `cargo bench -p bench --bench table6_abnormal`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{abnormal_a, abnormal_b, abnormal_c};
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, sketch_alg4, SketchConfig};
use sparsekit::BlockedCsr;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // 1/32-scale versions of the paper's m=100000, n=10000, stride=1000,
    // with the blocking scaled alongside to preserve the b_n:stride ratio.
    let (m, n, stride) = (3125, 312, 31);
    let d = 3 * n;
    let a_pat = abnormal_a::<f64>(m, n, stride, 1);
    let b_pat = abnormal_b::<f64>(m, n, a_pat.nnz(), 2998.0 / 3000.0, 1);
    let c_pat = abnormal_c::<f64>(m, n, stride, 1);
    let cfg = SketchConfig::new(d, 94, 37, 5);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));

    let mut g = c.benchmark_group("table6");
    g.sample_size(15);
    for (name, mat) in [("A", &a_pat), ("B", &b_pat), ("C", &c_pat)] {
        g.bench_with_input(BenchmarkId::new("alg3", name), mat, |b, mat| {
            b.iter(|| black_box(sketch_alg3(mat, &cfg, &sampler)))
        });
        let blocked = BlockedCsr::from_csc(mat, cfg.b_n);
        g.bench_with_input(BenchmarkId::new("alg4", name), &blocked, |b, blk| {
            b.iter(|| black_box(sketch_alg4(blk, &cfg, &sampler)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
