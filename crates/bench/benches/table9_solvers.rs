//! Criterion bench for Tables IX–XI: the three least-squares solvers on a
//! rail-like stand-in (spread-spectrum conditioning).
//!
//! Run: `cargo bench -p bench --bench table9_solvers`

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::lsq::{tall_conditioned, CondSpec};
use datagen::make_rhs;
use lstsq::{solve_lsqr_d, solve_sap, sparse_qr_solve, LsqrOptions, SapFlavor, SapOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a = tall_conditioned(8_000, 120, 5e-3, CondSpec::chain(2.4), 3);
    let (b, _) = make_rhs(&a, 9);
    let opts = LsqrOptions {
        atol: 1e-14,
        btol: 1e-14,
        max_iters: 50_000,
        stall_window: 0,
    };

    let mut g = c.benchmark_group("table9");
    g.sample_size(10);
    g.bench_function("lsqr_d", |bch| {
        bch.iter(|| black_box(solve_lsqr_d(&a, &b, &opts)))
    });
    g.bench_function("sap_qr", |bch| {
        bch.iter(|| {
            black_box(solve_sap(
                &a,
                &b,
                &SapOptions {
                    gamma: 2,
                    b_d: 240,
                    b_n: 60,
                    seed: 4,
                    flavor: SapFlavor::Qr,
                    lsqr: opts,
                },
            ))
        })
    });
    g.bench_function("sap_svd", |bch| {
        bch.iter(|| {
            black_box(solve_sap(
                &a,
                &b,
                &SapOptions {
                    gamma: 2,
                    b_d: 240,
                    b_n: 60,
                    seed: 4,
                    flavor: SapFlavor::Svd,
                    lsqr: opts,
                },
            ))
        })
    });
    g.bench_function("sparse_qr_direct", |bch| {
        bch.iter(|| black_box(sparse_qr_solve(&a, &b)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
