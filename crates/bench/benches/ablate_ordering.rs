//! Ablation: fill-reducing column ordering for the direct sparse QR.
//!
//! SuiteSparseQR orders columns before factorizing; the George–Heath
//! stand-in can do the same with `sparsekit::order::rcm_ordering`. On banded
//! problems the ordering slashes fill (and therefore the Table XI "factor
//! memory"); on patternless random matrices it does little — both facts are
//! worth knowing when reading the memory comparison.
//!
//! Run: `cargo bench -p bench --bench ablate_ordering`

use criterion::{criterion_group, criterion_main, Criterion};
use lstsq::sparse_qr_solve;
use sparsekit::order::{invert_permutation, permute_cols, rcm_ordering};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A banded tall matrix whose columns have been scrambled — the case
    // where ordering matters.
    let banded = datagen::suite::mesh_like::<f64>(6_000, 300, 3, 4, 24, 3);
    let mut perm: Vec<usize> = (0..300).collect();
    let mut s = 99u64;
    for i in (1..300usize).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        perm.swap(i, (s % (i as u64 + 1)) as usize);
    }
    let scrambled = permute_cols(&banded, &perm);
    let b: Vec<f64> = (0..6_000).map(|i| (i as f64 * 0.13).sin()).collect();

    // Report the fill contrast once (criterion output carries the timing).
    let plain = sparse_qr_solve(&scrambled, &b);
    let rcm = rcm_ordering(&scrambled, 64);
    let reordered = permute_cols(&scrambled, &rcm);
    let ordered = sparse_qr_solve(&reordered, &b);
    println!(
        "fill: unordered r_nnz = {}, rotations = {}; RCM r_nnz = {}, rotations = {}",
        plain.r_nnz, plain.rotations, ordered.r_nnz, ordered.rotations
    );
    let _ = invert_permutation(&rcm);

    let mut g = c.benchmark_group("qr_ordering");
    g.sample_size(10);
    g.bench_function("unordered", |bch| {
        bch.iter(|| black_box(sparse_qr_solve(&scrambled, &b)))
    });
    g.bench_function("rcm_ordered", |bch| {
        bch.iter(|| {
            let p = rcm_ordering(&scrambled, 64);
            let ap = permute_cols(&scrambled, &p);
            black_box(sparse_qr_solve(&ap, &b))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
