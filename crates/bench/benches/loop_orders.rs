//! Criterion bench for the §II-B design-space study: the six loop orderings
//! of the toy kernel `G = L·R` with dense `L` and sparse `R`, quantifying
//! why the paper keeps only `kji` (→ Alg 3) and `jki` (→ Alg 4).
//!
//! Run: `cargo bench -p bench --bench loop_orders`

use criterion::{criterion_group, criterion_main, Criterion};
use densekit::Matrix;
use sketchcore::variants::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (d1, m1, n1) = (256, 2_000, 400);
    let mut s = 1u64;
    let l = Matrix::from_fn(d1, m1, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((s >> 33) as f64) / (1u64 << 31) as f64 - 0.5
    });
    let r_csc = datagen::uniform_random::<f64>(m1, n1, 5e-3, 2);
    let r_csr = r_csc.to_csr();

    let mut g = c.benchmark_group("loop_orders");
    g.sample_size(15);
    g.bench_function("ikj", |b| b.iter(|| black_box(variant_ikj(&l, &r_csr))));
    g.bench_function("kij", |b| b.iter(|| black_box(variant_kij(&l, &r_csc))));
    g.bench_function("ijk", |b| b.iter(|| black_box(variant_ijk(&l, &r_csr))));
    g.bench_function("jik", |b| b.iter(|| black_box(variant_jik(&l, &r_csr))));
    g.bench_function("jki", |b| b.iter(|| black_box(variant_jki(&l, &r_csr))));
    g.bench_function("kji", |b| b.iter(|| black_box(variant_kji(&l, &r_csc))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
