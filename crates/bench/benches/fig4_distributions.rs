//! Criterion bench for Figure 4: Algorithm 4 throughput under the five ways
//! of producing entries of `S`, across a density sweep.
//!
//! Run: `cargo bench -p bench --bench fig4_distributions`

use baselines::{materialize_s, pregen_blocked};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rngkit::{DistSampler, FastRng, Gaussian, Rademacher, ScaledInt, UnitUniform};
use sketchcore::{flops, sketch_alg4, SketchConfig};
use sparsekit::BlockedCsr;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (m, n) = (5_000, 500);
    let d = 3 * n;
    let cfg = SketchConfig::new(d, d, 200, 4);

    let mut g = c.benchmark_group("fig4");
    g.sample_size(12);
    for rho in [1e-3, 1e-2] {
        let a = datagen::uniform_random::<f64>(m, n, rho, 0xF16);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
        g.throughput(Throughput::Elements(flops(d, a.nnz())));

        g.bench_with_input(BenchmarkId::new("gaussian_otf", rho), &rho, |b, _| {
            let s = Gaussian::<f64>::sampler(FastRng::new(4));
            b.iter(|| black_box(sketch_alg4(&blocked, &cfg, &s)))
        });
        let s_mat = materialize_s(&UnitUniform::<f64>::sampler(FastRng::new(4)), d, m, cfg.b_d);
        g.bench_with_input(BenchmarkId::new("pregen_s", rho), &rho, |b, _| {
            b.iter(|| black_box(pregen_blocked(&a, &s_mat, cfg.b_d, cfg.b_n)))
        });
        g.bench_with_input(BenchmarkId::new("unit_otf", rho), &rho, |b, _| {
            let s = UnitUniform::<f64>::sampler(FastRng::new(4));
            b.iter(|| black_box(sketch_alg4(&blocked, &cfg, &s)))
        });
        g.bench_with_input(BenchmarkId::new("scaling_trick", rho), &rho, |b, _| {
            let s = DistSampler::new(ScaledInt::new(), FastRng::new(4));
            b.iter(|| {
                let mut out = sketch_alg4(&blocked, &cfg, &s);
                out.scale(ScaledInt::SCALE);
                black_box(out)
            })
        });
        g.bench_with_input(BenchmarkId::new("pm1_otf", rho), &rho, |b, _| {
            let s = Rademacher::<f64>::sampler(FastRng::new(4));
            b.iter(|| black_box(sketch_alg4(&blocked, &cfg, &s)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
