//! Criterion bench for Table IV: Algorithm 4 with its blocked-CSR structure
//! (including the conversion cost) against library-style baselines.
//!
//! Run: `cargo bench -p bench --bench table4_alg4_vs_libs`

use baselines::{csc_outer, eigen_style, materialize_s};
use criterion::{criterion_group, criterion_main, Criterion};
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::{sketch_alg4, SketchConfig};
use sparsekit::BlockedCsr;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = datagen::spmm_suite(64);
    let nm = suite.iter().find(|p| p.name == "mesh_deform").unwrap();
    let a = &nm.matrix;
    let cfg = SketchConfig::new(nm.d, 3000.min(nm.d), 1200.min(a.ncols()), 7);
    let uni = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let pm1 = Rademacher::<f64>::sampler(FastRng::new(cfg.seed));
    let s = materialize_s(&uni, cfg.d, a.nrows(), cfg.b_d);
    let blocked = BlockedCsr::from_csc(a, cfg.b_n);

    let mut g = c.benchmark_group("table4");
    g.sample_size(20);
    g.bench_function("julia_style", |b| b.iter(|| black_box(csc_outer(a, &s))));
    g.bench_function("eigen_style", |b| b.iter(|| black_box(eigen_style(a, &s))));
    g.bench_function("alg4_unit", |b| {
        b.iter(|| black_box(sketch_alg4(&blocked, &cfg, &uni)))
    });
    g.bench_function("alg4_pm1", |b| {
        b.iter(|| black_box(sketch_alg4(&blocked, &cfg, &pm1)))
    });
    g.bench_function("format_conversion", |b| {
        b.iter(|| black_box(BlockedCsr::from_csc(a, cfg.b_n)))
    });
    g.bench_function("format_conversion_parallel", |b| {
        b.iter(|| black_box(BlockedCsr::from_csc_parallel(a, cfg.b_n)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
