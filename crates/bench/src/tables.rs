//! SpMM experiment runners — Tables I through VII.

use crate::{fmt_g, fmt_s, gflops, print_table, time_median, RunConfig};
use baselines::{csc_outer, eigen_style, materialize_s, mkl_style};
use datagen::{abnormal_a, abnormal_b, abnormal_c, spmm_suite};
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::parallel::{sketch_alg3_par_rows, sketch_alg4_par_rows, with_threads};
use sketchcore::{
    sketch_alg3, sketch_alg3_instrumented, sketch_alg4, sketch_alg4_instrumented, SketchConfig,
};
use sparsekit::{BlockedCsr, CscMatrix};
use std::time::Instant;

type Rng = FastRng;

fn uni_sampler(seed: u64) -> rngkit::DistSampler<UnitUniform<f64>, Rng> {
    UnitUniform::<f64>::sampler(Rng::new(seed))
}

fn sign_sampler(seed: u64) -> rngkit::DistSampler<Rademacher<f64>, Rng> {
    // The fused ±1 path: each random bit flips the sign of A[j,k] with a
    // bit-XOR — faster than materializing i8 signs (see `ablate_dtype`).
    Rademacher::<f64>::sampler(Rng::new(seed))
}

/// Clamp the paper's blocking to the (scaled) problem dimensions.
fn clamp_cfg(d: usize, b_d: usize, b_n: usize, n: usize, seed: u64) -> SketchConfig {
    SketchConfig::new(d, b_d.min(d), b_n.min(n.max(1)), seed)
}

/// The paper's Frontera blocking (b_n=500, b_d=3000). Blocking is tuned to
/// the cache hierarchy, which does not shrink with the matrices, so the
/// paper's values are used verbatim (clamped to the problem dimensions).
fn frontera_cfg(d: usize, n: usize, _scale: usize, seed: u64) -> SketchConfig {
    clamp_cfg(d, 3000, 500, n, seed)
}

/// The paper's Perlmutter blocking (b_n=1200, b_d=3000), clamped.
fn perlmutter_cfg(d: usize, n: usize, _scale: usize, seed: u64) -> SketchConfig {
    clamp_cfg(d, 3000, 1200, n, seed)
}

/// Table I: properties of the SpMM stand-ins.
pub fn table1(rc: &RunConfig) {
    let suite = spmm_suite(rc.scale);
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|nm| {
            vec![
                nm.name.into(),
                nm.d.to_string(),
                nm.matrix.nrows().to_string(),
                nm.matrix.ncols().to_string(),
                nm.matrix.nnz().to_string(),
                format!("{:.2e}", nm.matrix.density()),
                format!("{}x{} nnz {}", nm.paper.m, nm.paper.n, nm.paper.nnz),
            ]
        })
        .collect();
    print_table(
        &format!("Table I — SpMM test data (scale 1/{})", rc.scale),
        &[
            "matrix",
            "d",
            "m",
            "n",
            "nnz",
            "density",
            "paper (unscaled)",
        ],
        &rows,
    );
}

/// Table II: sequential Algorithm 3 vs the materialized-S library kernels.
pub fn table2(rc: &RunConfig) {
    let suite = spmm_suite(rc.scale);
    let mut rows = Vec::new();
    for nm in &suite {
        let a = &nm.matrix;
        let cfg = frontera_cfg(nm.d, a.ncols(), rc.scale, 0xF0);
        // Pre-generate S once (generation excluded from the library timings,
        // exactly as in the paper).
        let s = materialize_s(&uni_sampler(cfg.seed), cfg.d, a.nrows(), cfg.b_d);
        let t_mkl = time_median(rc.reps, || mkl_style(a, &s));
        let t_eigen = time_median(rc.reps, || eigen_style(a, &s));
        let t_julia = time_median(rc.reps, || csc_outer(a, &s));
        drop(s);
        let t_a3u = time_median(rc.reps, || sketch_alg3(a, &cfg, &uni_sampler(cfg.seed)));
        let t_a3s = time_median(rc.reps, || sketch_alg3(a, &cfg, &sign_sampler(cfg.seed)));
        rows.push(vec![
            nm.name.into(),
            fmt_s(t_mkl),
            fmt_s(t_eigen),
            fmt_s(t_julia),
            fmt_s(t_a3u),
            fmt_s(t_a3s),
        ]);
    }
    print_table(
        &format!(
            "Table II — Algorithm 3 vs library baselines, sequential (scale 1/{}, seconds)",
            rc.scale
        ),
        &[
            "matrix",
            "MKL-style",
            "Eigen-style",
            "Julia-style",
            "Alg3 (-1,1)",
            "Alg3 (±1)",
        ],
        &rows,
    );
}

/// Tables III & V: sample-time vs total-time split for both kernels.
pub fn table_sample_split(rc: &RunConfig, perlmutter: bool) {
    let suite = spmm_suite(rc.scale);
    let mut rows = Vec::new();
    for nm in &suite {
        let a = &nm.matrix;
        let cfg = if perlmutter {
            perlmutter_cfg(nm.d, a.ncols(), rc.scale, 0xF1)
        } else {
            frontera_cfg(nm.d, a.ncols(), rc.scale, 0xF1)
        };
        let (_x3, t3) = sketch_alg3_instrumented(a, &cfg, &uni_sampler(cfg.seed));
        let blocked = BlockedCsr::from_csc(a, cfg.b_n);
        let (_x4, t4) = sketch_alg4_instrumented(&blocked, &cfg, &uni_sampler(cfg.seed));
        rows.push(vec![
            nm.name.into(),
            "Alg3".into(),
            fmt_s(t3.total_s),
            fmt_s(t3.sample_s),
            t3.samples.to_string(),
        ]);
        rows.push(vec![
            nm.name.into(),
            "Alg4".into(),
            fmt_s(t4.total_s),
            fmt_s(t4.sample_s),
            t4.samples.to_string(),
        ]);
    }
    let which = if perlmutter {
        "Table V — Perlmutter blocking (b_n=1200 scaled)"
    } else {
        "Table III — Frontera blocking (b_n=500 scaled)"
    };
    print_table(
        &format!(
            "{which}: sample vs total time (scale 1/{}, seconds)",
            rc.scale
        ),
        &["matrix", "algorithm", "total", "sample", "samples drawn"],
        &rows,
    );
}

/// Table IV: Algorithm 4 vs library baselines, with format-conversion time.
pub fn table4(rc: &RunConfig) {
    let suite = spmm_suite(rc.scale);
    let mut rows = Vec::new();
    for nm in &suite {
        let a = &nm.matrix;
        let cfg = perlmutter_cfg(nm.d, a.ncols(), rc.scale, 0xF2);
        let s = materialize_s(&uni_sampler(cfg.seed), cfg.d, a.nrows(), cfg.b_d);
        let t_julia = time_median(rc.reps, || csc_outer(a, &s));
        let t_eigen = time_median(rc.reps, || eigen_style(a, &s));
        drop(s);
        let t_conv = time_median(rc.reps, || BlockedCsr::from_csc(a, cfg.b_n));
        let blocked = BlockedCsr::from_csc(a, cfg.b_n);
        let t_a4u = time_median(rc.reps, || {
            sketch_alg4(&blocked, &cfg, &uni_sampler(cfg.seed))
        });
        let t_a4s = time_median(rc.reps, || {
            sketch_alg4(&blocked, &cfg, &sign_sampler(cfg.seed))
        });
        rows.push(vec![
            nm.name.into(),
            fmt_s(t_julia),
            fmt_s(t_eigen),
            fmt_s(t_a4u),
            fmt_s(t_a4s),
            fmt_s(t_conv),
        ]);
    }
    print_table(
        &format!(
            "Table IV — Algorithm 4 vs library baselines (scale 1/{}, seconds)",
            rc.scale
        ),
        &[
            "matrix",
            "Julia-style",
            "Eigen-style",
            "Alg4 (-1,1)",
            "Alg4 (±1)",
            "conversion",
        ],
        &rows,
    );
}

/// Table VI: the Abnormal_A/B/C exotic patterns.
pub fn table6(rc: &RunConfig) {
    // Paper: m = 100000, n = 10000, ρ ≈ 1e-3, every 1000th row/col dense.
    let m = (100_000 / rc.scale).max(1000);
    let n = (10_000 / rc.scale).max(100);
    let stride = (1000 / rc.scale).max(10);
    let d = 3 * n;
    let a_pat = abnormal_a::<f64>(m, n, stride, 0xAB);
    let b_pat = abnormal_b::<f64>(m, n, a_pat.nnz(), 2998.0 / 3000.0, 0xAB);
    let c_pat = abnormal_c::<f64>(m, n, stride, 0xAB);
    // This experiment probes the *interaction* between the blocking geometry
    // and the pattern (paper: b_n=1200 against a dense column every 1000),
    // so here — unlike the cache-bound Tables II-V — the blocking must scale
    // with the pattern to preserve the b_n-to-stride ratio.
    let cfg = clamp_cfg(
        d,
        (3000 / rc.scale).max(32),
        (1200 / rc.scale).max(8),
        n,
        0xF3,
    );

    let mut rows = Vec::new();
    for (name, a) in [
        ("Abnormal_A", &a_pat),
        ("Abnormal_B", &b_pat),
        ("Abnormal_C", &c_pat),
    ] {
        let t3 = time_median(rc.reps, || sketch_alg3(a, &cfg, &uni_sampler(cfg.seed)));
        let t_conv = time_median(rc.reps, || BlockedCsr::from_csc(a, cfg.b_n));
        let blocked = BlockedCsr::from_csc(a, cfg.b_n);
        let t4 = time_median(rc.reps, || {
            sketch_alg4(&blocked, &cfg, &uni_sampler(cfg.seed))
        });
        rows.push(vec![name.into(), "Alg3".into(), "N/A".into(), fmt_s(t3)]);
        rows.push(vec![name.into(), "Alg4".into(), fmt_s(t_conv), fmt_s(t4)]);
    }
    print_table(
        &format!("Table VI — exotic sparsity patterns, m={m} n={n} stride={stride} (seconds)"),
        &["problem", "algorithm", "conversion", "compute"],
        &rows,
    );
}

/// Table VII: thread scaling of Algorithms 3 and 4 under two blockings.
pub fn table7(rc: &RunConfig) {
    // The paper scales shar_te2-b2 on Frontera up to 32 threads with two
    // blocking setups; setup2 is the more rectangular (larger b_d, smaller
    // b_n) and scales better (§V-B heuristic).
    let suite = spmm_suite(rc.scale);
    let nm = suite
        .iter()
        .find(|p| p.name == "shar_te2-b2")
        .expect("suite contains shar_te2-b2");
    let a = &nm.matrix;
    let d = nm.d;
    let setup1 = clamp_cfg(
        d,
        (1000 / rc.scale).max(16),
        (2000 / rc.scale).max(64),
        a.ncols(),
        7,
    );
    let setup2 = clamp_cfg(
        d,
        (3000 / rc.scale).max(64),
        (500 / rc.scale).max(16),
        a.ncols(),
        7,
    );
    let nnz = a.nnz();

    let mut threads = Vec::new();
    let mut t = 1;
    while t <= rc.max_threads {
        threads.push(t);
        t *= 2;
    }

    let mut rows = Vec::new();
    for &t in &threads {
        let mut cells = vec![t.to_string()];
        for cfg in [&setup1, &setup2] {
            let blocked = BlockedCsr::from_csc(a, cfg.b_n);
            let t4 = time_median(rc.reps, || {
                with_threads(t, || {
                    sketch_alg4_par_rows(&blocked, cfg, &uni_sampler(cfg.seed))
                })
            });
            let t3 = time_median(rc.reps, || {
                with_threads(t, || sketch_alg3_par_rows(a, cfg, &uni_sampler(cfg.seed)))
            });
            cells.push(fmt_s(t4));
            cells.push(fmt_g(gflops(d, nnz, t4)));
            cells.push(fmt_s(t3));
            cells.push(fmt_g(gflops(d, nnz, t3)));
        }
        rows.push(cells);
    }
    print_table(
        &format!(
            "Table VII — parallel scaling on shar_te2-b2 stand-in (scale 1/{}; host has {} hardware threads)",
            rc.scale, rc.max_threads
        ),
        &[
            "threads",
            "Alg4 s1 (s)",
            "Alg4 s1 GF/s",
            "Alg3 s1 (s)",
            "Alg3 s1 GF/s",
            "Alg4 s2 (s)",
            "Alg4 s2 GF/s",
            "Alg3 s2 (s)",
            "Alg3 s2 GF/s",
        ],
        &rows,
    );
    if rc.max_threads == 1 {
        println!(
            "note: this host has a single hardware thread; the sweep runs the \
             parallel drivers but cannot exhibit physical speedup (see EXPERIMENTS.md)."
        );
    }
}

/// The §V-A junk-RNG upper bound: replace random entries with trivially
/// computed values and report the speedup (paper saw ~2x on shar_te2-b2).
pub fn junk_ablation(rc: &RunConfig) {
    let suite = spmm_suite(rc.scale);
    let nm = suite
        .iter()
        .find(|p| p.name == "shar_te2-b2")
        .expect("suite contains shar_te2-b2");
    let a = &nm.matrix;
    let cfg = frontera_cfg(nm.d, a.ncols(), rc.scale, 3);
    let t_rng = time_median(rc.reps, || sketch_alg3(a, &cfg, &uni_sampler(cfg.seed)));
    let t_junk = time_median(rc.reps, || {
        sketch_alg3(a, &cfg, &rngkit::JunkSampler::new(cfg.seed))
    });
    print_table(
        "§V-A junk ablation — RNG-free upper bound on shar_te2-b2 stand-in",
        &["variant", "seconds", "speedup over RNG"],
        &[
            vec!["xoshiro (-1,1)".into(), fmt_s(t_rng), "1.00".into()],
            vec!["junk entries".into(), fmt_s(t_junk), fmt_g(t_rng / t_junk)],
        ],
    );
}

/// Sanity helper shared by integration tests: a small matrix plus config.
pub fn toy_problem() -> (CscMatrix<f64>, SketchConfig) {
    let a = datagen::uniform_random::<f64>(400, 120, 5e-3, 42);
    let cfg = SketchConfig::new(360, 64, 30, 42);
    (a, cfg)
}

/// Timed end-to-end smoke run used by `repro smoke` and tests: checks that
/// every kernel agrees on a toy problem and returns the elapsed seconds.
///
/// When telemetry is on, the per-kernel byte counters are diffed around each
/// kernel and compared against the §III-A cost model; the comparisons are
/// printed and recorded as obskit `traffic` events (one per kernel), which is
/// what `repro --obs-json` exports.
pub fn smoke() -> f64 {
    use obskit::Ctr;
    use sketchcore::{CostModel, TrafficReport};
    let t0 = Instant::now();
    let (a, cfg) = toy_problem();
    let sampler = uni_sampler(cfg.seed);
    let c0 = obskit::snapshot().counters;
    let x3 = sketch_alg3(&a, &cfg, &sampler);
    let c1 = obskit::snapshot().counters;
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    let x4 = sketch_alg4(&blocked, &cfg, &sampler);
    let c2 = obskit::snapshot().counters;
    let s = materialize_s(&sampler, cfg.d, a.nrows(), cfg.b_d);
    let xm = mkl_style(&a, &s);
    assert!(x3.diff_norm(&x4) < 1e-10 * x3.fro_norm().max(1.0));
    assert!(x3.diff_norm(&xm) < 1e-10 * x3.fro_norm().max(1.0));
    if obskit::enabled() {
        let model = CostModel::default_host();
        let rho = a.density();
        for (kernel, lo, hi) in [("alg3", &c0, &c1), ("alg4", &c1, &c2)] {
            let flops = hi[Ctr::Flops as usize] - lo[Ctr::Flops as usize];
            let measured = (hi[Ctr::BytesA as usize] - lo[Ctr::BytesA as usize])
                + (hi[Ctr::BytesOut as usize] - lo[Ctr::BytesOut as usize]);
            let rep = TrafficReport::compare(&model, rho, cfg.b_n, flops, 8, measured);
            rep.emit(kernel);
            println!("{}", rep.render(kernel));
        }
    }
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_agrees() {
        let secs = smoke();
        assert!(secs >= 0.0);
    }

    #[test]
    fn configs_respect_dimensions() {
        let cfg = frontera_cfg(30, 10, 1, 0);
        assert!(cfg.b_n <= 10 || cfg.b_n == 16); // clamped to n or floor
        let cfg2 = clamp_cfg(100, 1000, 1000, 50, 0);
        assert_eq!(cfg2.b_d, 100);
        assert_eq!(cfg2.b_n, 50);
    }

    #[test]
    fn tables_run_at_tiny_scale() {
        // Smoke-run the printable tables at scale 1/256 to keep CI fast.
        let rc = RunConfig {
            scale: 256,
            max_threads: 1,
            reps: 1,
        };
        table1(&rc);
        table2(&rc);
        table_sample_split(&rc, false);
        table4(&rc);
    }
}
