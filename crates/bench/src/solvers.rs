//! Least-squares experiment runners — Tables VIII–XI and Figure 6.

use crate::{fmt_g, fmt_s, print_table, RunConfig};
use datagen::lsq::{lsq_suite, LsqProblem};
use datagen::make_rhs;
use densekit::cond::{cond2, cond2_equilibrated};
use densekit::Matrix;
use lstsq::{
    backward_error, solve_lsqr_d, solve_sap, sparse_qr_solve, LsqrOptions, SapFlavor, SapOptions,
};
use sparsekit::CscMatrix;

/// Aggregated per-matrix results reused across Tables IX, X, XI and Fig. 6.
pub struct SolverRun {
    /// Matrix name.
    pub name: &'static str,
    /// LSQR-D seconds / iterations / backward error.
    pub lsqr_d: (f64, usize, f64),
    /// SAP seconds (total), sketch seconds, iterations, backward error,
    /// extra memory bytes, flavour label.
    pub sap: (f64, f64, usize, f64, usize, &'static str),
    /// Direct sparse QR seconds, backward error, factor bytes.
    pub direct: (f64, f64, u64),
    /// mem(A) in bytes.
    pub mem_a: usize,
}

fn sap_opts(p: &LsqProblem, _rc: &RunConfig) -> SapOptions {
    SapOptions {
        gamma: 2,
        // Paper blocking verbatim: blocking is tuned to the cache, which
        // does not shrink with the matrices.
        b_d: 3000,
        b_n: 500,
        seed: 0x5AB,
        flavor: if p.paper.sap_qr {
            SapFlavor::Qr
        } else {
            SapFlavor::Svd
        },
        lsqr: LsqrOptions {
            atol: 1e-14,
            btol: 1e-14,
            max_iters: 200_000,
            stall_window: 0,
        },
    }
}

/// Run all three solvers on one problem.
pub fn run_solvers(p: &LsqProblem, rc: &RunConfig) -> SolverRun {
    let (b, _) = make_rhs(&p.a, 0xB0B + p.paper.rows as u64);

    let t0 = std::time::Instant::now();
    let (x_d, res_d) = solve_lsqr_d(
        &p.a,
        &b,
        &LsqrOptions {
            atol: 1e-14,
            btol: 1e-14,
            max_iters: 200_000,
            stall_window: 0,
        },
    );
    let t_lsqr_d = t0.elapsed().as_secs_f64();
    let err_d = backward_error(&p.a, &x_d, &b);

    let opts = sap_opts(p, rc);
    let sap = solve_sap(&p.a, &b, &opts);
    let err_sap = backward_error(&p.a, &sap.x, &b);
    let flavor = if p.paper.sap_qr { "SAP-QR" } else { "SAP-SVD" };

    let qr = sparse_qr_solve(&p.a, &b);
    let err_qr = backward_error(&p.a, &qr.x, &b);

    SolverRun {
        name: p.name,
        lsqr_d: (t_lsqr_d, res_d.iters, err_d),
        sap: (
            sap.total_s,
            sap.sketch_s,
            sap.iters,
            err_sap,
            sap.memory_bytes,
            flavor,
        ),
        direct: (qr.seconds, err_qr, qr.factor_bytes),
        mem_a: p.a.memory_bytes(),
    }
}

/// Table VIII: properties of the least-squares stand-ins. Condition numbers
/// are measured exactly (via dense SVD) when the scaled `n` permits,
/// otherwise reported from the generator's target.
pub fn table8(rc: &RunConfig) {
    let suite = lsq_suite(rc.scale);
    let mut rows = Vec::new();
    for p in &suite {
        let (m, n) = p.shape();
        let (cond, cond_ad) = if n <= 400 && m <= 60_000 {
            // Small enough: exact dense SVD.
            let dense = densekit::densify(&p.a);
            (cond2(&dense), cond2_equilibrated(&dense))
        } else {
            // Large: condition via the n×n Gram matrix, cond(A) = √cond(AᵀA).
            // Resolves cond(A) up to ~1e8 (Gram squares the condition); the
            // rank-deficient stand-ins saturate at that measurement limit.
            let g = lstsq::normal::gram(&p.a);
            let sv = densekit::svd::svd_values(&g);
            let cond = match (sv.first(), sv.iter().rev().find(|&&s| s > 0.0)) {
                (Some(&hi), Some(&lo)) => (hi / lo).sqrt(),
                _ => f64::NAN,
            };
            // Equilibrated version: scale Gram by D·G·D with D = 1/√G_jj.
            let nn = g.ncols();
            let dscale: Vec<f64> = (0..nn)
                .map(|j| {
                    let d = g[(j, j)];
                    if d > 0.0 {
                        1.0 / d.sqrt()
                    } else {
                        1.0
                    }
                })
                .collect();
            let ge = Matrix::from_fn(nn, nn, |i, j| g[(i, j)] * dscale[i] * dscale[j]);
            let sve = densekit::svd::svd_values(&ge);
            let cond_ad = match (sve.first(), sve.iter().rev().find(|&&s| s > 0.0)) {
                (Some(&hi), Some(&lo)) => (hi / lo).sqrt(),
                _ => f64::NAN,
            };
            (cond, cond_ad)
        };
        rows.push(vec![
            p.name.into(),
            format!("{m}x{n}"),
            p.a.nnz().to_string(),
            fmt_g(cond),
            fmt_g(cond_ad),
            format!("{:.2}", p.a.memory_bytes() as f64 / 1e6),
            format!("{:.2e}", p.a.density()),
            format!("{:.1e} / {:.1e}", p.paper.cond, p.paper.cond_ad),
        ]);
    }
    print_table(
        &format!("Table VIII — least-squares matrices (scale 1/{})", rc.scale),
        &[
            "A",
            "size (tall)",
            "nnz",
            "cond(A)",
            "cond(AD)",
            "mem(A) MB",
            "density",
            "paper cond/cond(AD)",
        ],
        &rows,
    );
    println!("(NaN cond = stand-in too large to densify at this scale; generator targets shown in the last column.)");
}

/// Tables IX, X, XI and Figure 6 from one set of solver runs.
pub fn tables9_to_11(rc: &RunConfig) {
    let suite = lsq_suite(rc.scale);
    let runs: Vec<SolverRun> = suite.iter().map(|p| run_solvers(p, rc)).collect();

    // Table IX: runtime and iterations.
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                fmt_s(r.lsqr_d.0),
                r.lsqr_d.1.to_string(),
                r.sap.5.into(),
                fmt_s(r.sap.1),
                fmt_s(r.sap.0),
                r.sap.2.to_string(),
                fmt_s(r.direct.0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table IX — solver runtime and iterations (scale 1/{})",
            rc.scale
        ),
        &[
            "A",
            "LSQR-D (s)",
            "iters",
            "SAP kind",
            "sketch (s)",
            "SAP total (s)",
            "iters",
            "sparse-QR (s)",
        ],
        &rows,
    );

    // Table X: backward errors.
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                fmt_g(r.lsqr_d.2),
                fmt_g(r.sap.3),
                fmt_g(r.direct.1),
            ]
        })
        .collect();
    print_table(
        "Table X — backward error ‖Aᵀr‖/(‖A‖_F·‖r‖)",
        &["A", "LSQR-D", "SAP", "sparse-QR (direct)"],
        &rows,
    );

    // Table XI: memory.
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                format!("{:.2}", r.sap.4 as f64 / 1e6),
                format!("{:.2}", r.direct.2 as f64 / 1e6),
                format!("{:.2}", r.mem_a as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "Table XI — memory (MB): SAP extra vs direct-QR factors vs mem(A)",
        &["A", "SAP", "sparse-QR factors", "mem(A)"],
        &rows,
    );

    // Figure 6: speedup ratios.
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                fmt_g(r.lsqr_d.0 / r.sap.0),
                fmt_g(r.direct.0 / r.sap.0),
            ]
        })
        .collect();
    print_table(
        "Figure 6 — speedups over SAP: t_LSQRD/t_SAP and t_direct/t_SAP",
        &["A", "LSQR-D / SAP", "direct / SAP"],
        &rows,
    );
}

/// A reduced single-problem run for tests.
pub fn solver_smoke() -> SolverRun {
    let p = &lsq_suite(512)[3]; // rail582 stand-in, smallest
    run_solvers(
        p,
        &RunConfig {
            scale: 512,
            max_threads: 1,
            reps: 1,
        },
    )
}

/// Verify a sketch's subspace-embedding quality (effective distortion proxy):
/// the singular values of `S·Q` for orthonormal `Q` should lie in
/// `[1−ε, 1+ε]` with `ε ≈ 1/√γ` (paper §V intro). Returns (σmin, σmax).
pub fn sketch_distortion(a: &CscMatrix<f64>, gamma: usize, seed: u64) -> (f64, f64) {
    use rngkit::{CheckpointRng, UnitUniform, Xoshiro256PlusPlus};
    use sketchcore::{sketch_alg3, SketchConfig};
    let n = a.ncols();
    let d = gamma * n;
    // Orthonormalize A's columns (dense, small n only).
    let dense = densekit::densify(a);
    let qr = densekit::HouseholderQr::factor(&dense);
    // Build Q explicitly.
    let m = a.nrows();
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        let mut e = vec![0.0; m];
        e[j] = 1.0;
        qr.apply_q(&mut e);
        q.col_mut(j).copy_from_slice(&e);
    }
    // Sketch Q via a CSC wrap (dense treated as sparse for the kernel).
    let mut coo = sparsekit::CooMatrix::new(m, n);
    for j in 0..n {
        for i in 0..m {
            if q[(i, j)] != 0.0 {
                coo.push_unchecked(i, j, q[(i, j)]);
            }
        }
    }
    let q_csc = coo.to_csc().expect("bounds ok");
    let cfg = SketchConfig::new(d, 128, 64, seed);
    let sampler = UnitUniform::<f64>::sampler(CheckpointRng::<Xoshiro256PlusPlus>::new(seed));
    let mut sq = sketch_alg3(&q_csc, &cfg, &sampler);
    sq.scale(1.0 / ((d as f64) / 3.0).sqrt());
    let sv = densekit::svd::svd_values(&sq);
    (sv[sv.len() - 1], sv[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_smoke_consistency() {
        let run = solver_smoke();
        // All three solvers reach small backward error.
        assert!(run.lsqr_d.2 < 1e-10, "LSQR-D error {}", run.lsqr_d.2);
        assert!(run.sap.3 < 1e-10, "SAP error {}", run.sap.3);
        assert!(run.direct.1 < 1e-8, "direct error {}", run.direct.1);
    }

    #[test]
    fn table_xi_shape_sap_memory_undercuts_direct() {
        // The memory contrast needs a realistically tall problem: the direct
        // method's Q-side volume grows with m while SAP's sketch is 2n×n.
        use datagen::lsq::{tall_conditioned, CondSpec};
        let a = tall_conditioned(4000, 64, 0.01, CondSpec::chain(2.0), 3);
        let (b, _) = make_rhs(&a, 1);
        let sap = solve_sap(
            &a,
            &b,
            &SapOptions {
                gamma: 2,
                b_d: 128,
                b_n: 32,
                seed: 1,
                flavor: SapFlavor::Qr,
                lsqr: LsqrOptions::default(),
            },
        );
        let qr = sparse_qr_solve(&a, &b);
        assert!(
            (sap.memory_bytes as u64) < qr.factor_bytes,
            "SAP {} B should undercut direct {} B at tall aspect",
            sap.memory_bytes,
            qr.factor_bytes
        );
    }

    #[test]
    fn distortion_within_theory() {
        // γ = 4 ⇒ singular values of S·Q concentrate in [1−1/2, 1+1/2].
        let a = datagen::uniform_random::<f64>(600, 24, 0.05, 3);
        let (smin, smax) = sketch_distortion(&a, 4, 7);
        assert!(
            smin > 0.3 && smax < 1.8,
            "distortion out of range: [{smin}, {smax}]"
        );
    }
}
