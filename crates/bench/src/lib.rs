#![warn(missing_docs)]
//! # bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! The [`tables`] module covers the SpMM experiments (Tables I–VII), the
//! [`solvers`] module the least-squares pipeline (Tables VIII–XI and
//! Figure 6), and [`figures`] the distribution study (Figure 4), spy plots
//! (Figure 5), the roofline model report and the junk-RNG ablation.
//!
//! Absolute numbers will differ from the paper (different machine, scaled
//! matrices); the harness is built to reproduce the *shape* of each result —
//! who wins, by what factor, where the crossovers sit. Each runner prints a
//! self-contained table; `repro all` regenerates everything for
//! EXPERIMENTS.md.

pub mod chaos;
pub mod extensions;
pub mod figures;
pub mod flame;
pub mod gate;
pub mod json;
pub mod solvers;
pub mod tables;
pub mod tracecli;

use std::time::Instant;

/// Harness-wide run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Dimension divisor applied to the paper's matrix sizes.
    pub scale: usize,
    /// Thread counts to sweep in the parallel experiments.
    pub max_threads: usize,
    /// Repetitions per measurement (median reported).
    pub reps: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scale: 8,
            max_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            reps: 3,
        }
    }
}

/// Median wall-clock seconds of `reps` runs of `f` (result of last run kept
/// alive until timing completes to defeat dead-code elimination).
///
/// Telemetry records only on the *first* repetition: counters describe one
/// execution of `f` regardless of `reps`, so `repro --reps 3` and
/// `--reps 1` export identical work totals.
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let was = obskit::enabled();
    let mut times = Vec::with_capacity(reps.max(1));
    for rep in 0..reps.max(1) {
        if rep == 1 {
            obskit::set_enabled(false);
        }
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(&r);
    }
    obskit::set_enabled(was);
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// GFLOP/s for a sketch of `d × nnz` at `seconds`.
pub fn gflops(d: usize, nnz: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::NAN;
    }
    sketchcore::flops(d, nnz) as f64 / seconds / 1e9
}

/// Crude peak-FLOPS estimate: a register-blocked fused multiply-add loop.
/// Used as the denominator of Figure 4's "percent of peak" — documented as a
/// proxy for the machine's theoretical peak.
pub fn measure_peak_gflops() -> f64 {
    let n = 1 << 22;
    let mut acc = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let x = 1.000000001f64;
    let t0 = Instant::now();
    for _ in 0..n {
        for a in acc.iter_mut() {
            *a = a.mul_add(x, 1e-9);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&acc);
    (2.0 * 8.0 * n as f64) / dt / 1e9
}

/// STREAM-style copy bandwidth in GB/s (paper §V-B's machine probe).
pub fn measure_copy_bandwidth_gbs() -> f64 {
    let n = 1 << 24; // 128 MiB of f64 — beyond LLC
    let src = vec![1.0f64; n];
    let mut dst = vec![0.0f64; n];
    let t0 = Instant::now();
    let reps = 4;
    for _ in 0..reps {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
    }
    let dt = t0.elapsed().as_secs_f64();
    (reps as f64 * 2.0 * 8.0 * n as f64) / dt / 1e9
}

/// Rate of generating short random vectors (length 10⁴, the paper's probe),
/// in Gsamples/s.
pub fn measure_short_vector_rng_rate() -> f64 {
    use rngkit::{BlockSampler, FastRng, UnitUniform};
    let mut sampler = UnitUniform::<f64>::sampler(FastRng::new(0xBEEF));
    let mut v = vec![0.0f64; 10_000];
    let t0 = Instant::now();
    let reps = 2_000;
    for i in 0..reps {
        sampler.set_state(0, i);
        sampler.fill(&mut v);
        std::hint::black_box(&v);
    }
    let dt = t0.elapsed().as_secs_f64();
    (reps as f64 * 10_000.0) / dt / 1e9
}

/// Print a Markdown-ish table: a header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds to 4 significant digits.
pub fn fmt_s(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.1}")
    } else if x >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a ratio or dimensionless quantity.
pub fn fmt_g(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if !(1e-2..1e4).contains(&a) {
        format!("{x:.2e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_positive() {
        let t = time_median(3, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t > 0.0);
    }

    #[test]
    fn gflops_math() {
        // 2*d*nnz flops; d=10, nnz=1e6, 1 second → 0.02 GFLOP/s.
        assert!((gflops(10, 1_000_000, 1.0) - 0.02).abs() < 1e-12);
        assert!(gflops(1, 1, 0.0).is_nan());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_g(0.0), "0");
        assert!(fmt_g(12345.0).contains('e'));
        assert_eq!(fmt_s(0.12345), "0.1235");
        // Header/rows print without panicking.
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn run_config_default_sane() {
        let c = RunConfig::default();
        assert!(c.scale >= 1 && c.max_threads >= 1 && c.reps >= 1);
    }
}
