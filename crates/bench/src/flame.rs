//! Self-contained SVG flamegraph writer.
//!
//! Renders collapsed-stack lines (the output of
//! [`obskit::trace::TraceCapture::folded`]: one `path;path;path <self-ns>`
//! per line) as an icicle-layout flamegraph — root on top, frame width
//! proportional to total time — with no external tooling, in the same
//! spirit as the repo's hand-rolled JSON: trace visualisation must work
//! fully offline. Each frame is colored by a stable hash of its name (the
//! same frame keeps its color across runs, which makes two SVGs visually
//! diffable) over the classic warm flamegraph palette, and carries a
//! `<title>` tooltip with exact self/total nanoseconds, so the file is
//! explorable in any browser.

use std::fmt::Write as _;

/// Canvas width in px.
const WIDTH: f64 = 1200.0;
/// Frame-row height in px.
const ROW_H: f64 = 16.0;
/// Outer margin in px.
const PAD: f64 = 10.0;
/// Vertical space reserved for the title line, in px.
const TITLE_H: f64 = 24.0;
/// Frames narrower than this many px are culled (children are at most as
/// wide, so the whole subtree vanishes with them).
const MIN_W: f64 = 0.25;
/// Approximate glyph advance of the embedded monospace font, px.
const CHAR_W: f64 = 7.2;

struct Node {
    name: String,
    self_ns: u64,
    children: Vec<Node>,
}

impl Node {
    fn child(&mut self, name: &str) -> &mut Node {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(Node {
                name: name.to_string(),
                self_ns: 0,
                children: Vec::new(),
            });
            self.children.last_mut().unwrap()
        }
    }

    fn total(&self) -> u64 {
        self.self_ns + self.children.iter().map(Node::total).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }
}

fn parse_folded(folded: &str) -> Node {
    let mut root = Node {
        name: "all".to_string(),
        self_ns: 0,
        children: Vec::new(),
    };
    for line in folded.lines() {
        let line = line.trim();
        let Some((stack, val)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(v) = val.parse::<u64>() else { continue };
        let mut cur = &mut root;
        for frame in stack.split(';') {
            cur = cur.child(frame);
        }
        cur.self_ns += v;
    }
    root
}

// Stable FNV-1a hash of the frame name onto the warm flamegraph palette
// (reds through yellows), so color identifies a frame, not its position.
fn color(name: &str) -> (u8, u8, u8) {
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    let r = 205 + (h % 50) as u8;
    let g = 60 + ((h >> 8) % 120) as u8;
    let b = ((h >> 16) % 55) as u8;
    (r, g, b)
}

fn xml_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

fn emit(out: &mut String, node: &Node, x: f64, row: usize, root_total: u64, scale: f64) {
    let total = node.total();
    let w = total as f64 * scale;
    if w < MIN_W {
        return;
    }
    let y = PAD + TITLE_H + row as f64 * ROW_H;
    let (r, g, b) = color(&node.name);
    let pct = 100.0 * total as f64 / root_total as f64;
    out.push_str("<g><title>");
    xml_escape(out, &node.name);
    let _ = write!(
        out,
        " — self {} ns, total {} ns ({:.1}%)</title>",
        node.self_ns, total, pct
    );
    let _ = write!(
        out,
        "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{:.2}\" height=\"{:.1}\" \
         fill=\"rgb({r},{g},{b})\" rx=\"1\" stroke=\"white\" stroke-width=\"0.5\"/>",
        w,
        ROW_H - 1.0
    );
    let max_chars = (w / CHAR_W) as usize;
    if max_chars >= 3 {
        let label: String = if node.name.chars().count() > max_chars {
            let mut s: String = node.name.chars().take(max_chars - 2).collect();
            s.push_str("..");
            s
        } else {
            node.name.clone()
        };
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" font-family=\"monospace\" fill=\"#222\">",
            x + 3.0,
            y + ROW_H - 4.5
        );
        xml_escape(out, &label);
        out.push_str("</text>");
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for c in &node.children {
        emit(out, c, cx, row + 1, root_total, scale);
        cx += c.total() as f64 * scale;
    }
}

/// Render folded flamegraph lines as a self-contained SVG (icicle layout,
/// root on top). Empty or unparsable input yields a valid SVG that says so
/// rather than an error — the flamegraph is a diagnostic artifact and should
/// never fail the run that produced it.
pub fn folded_to_svg(folded: &str, title: &str) -> String {
    let root = parse_folded(folded);
    let total = root.total();
    let rows = if total > 0 { root.depth() } else { 1 };
    let height = 2.0 * PAD + TITLE_H + rows as f64 * ROW_H;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH} {height:.0}\">"
    );
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height:.0}\" fill=\"#fdfdfd\"/>"
    );
    out.push_str(
        "<text x=\"10\" y=\"22\" font-size=\"14\" font-family=\"monospace\" fill=\"#333\">",
    );
    xml_escape(&mut out, title);
    out.push_str("</text>\n");
    if total == 0 {
        out.push_str(
            "<text x=\"10\" y=\"48\" font-size=\"12\" font-family=\"monospace\" \
             fill=\"#777\">no samples</text>\n",
        );
    } else {
        let scale = (WIDTH - 2.0 * PAD) / total as f64;
        emit(&mut out, &root, PAD, 0, total, scale);
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stacks_with_proportional_rects() {
        let svg = folded_to_svg("a 70\na;b 30\n", "test graph");
        assert!(svg.starts_with("<svg"), "not an svg:\n{svg}");
        assert!(svg.ends_with("</svg>\n"));
        // Root "all" + frames a and b.
        assert_eq!(svg.matches("<rect").count(), 1 + 3, "bg + 3 frame rects");
        assert!(svg.contains("test graph"));
        // Tooltips carry exact self/total ns.
        assert!(svg.contains("a — self 70 ns, total 100 ns (100.0%)"));
        assert!(svg.contains("b — self 30 ns, total 30 ns (30.0%)"));
        // b's rect is 30% of the usable width.
        let usable = WIDTH - 2.0 * PAD;
        assert!(svg.contains(&format!("width=\"{:.2}\"", 0.30 * usable)));
    }

    #[test]
    fn empty_and_garbage_inputs_yield_valid_svg() {
        for input in ["", "not a folded line", "a nonnumeric"] {
            let svg = folded_to_svg(input, "t");
            assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
            assert!(svg.contains("no samples"), "for input {input:?}");
        }
    }

    #[test]
    fn colors_are_stable_and_in_palette() {
        assert_eq!(color("sketch/alg3"), color("sketch/alg3"));
        for name in ["a", "sketch/alg3/block", "lstsq/lsqr/iter"] {
            let (r, g, b) = color(name);
            assert!((205..=254).contains(&r));
            assert!((60..=179).contains(&g));
            assert!(b <= 54);
        }
    }

    #[test]
    fn escapes_xml_in_names_and_title() {
        let svg = folded_to_svg("a<b>&\"c\" 10\n", "<title> & \"quotes\"");
        assert!(!svg.contains("<b>"));
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(svg.contains("&lt;title&gt; &amp; &quot;quotes&quot;"));
    }
}
