//! Figure runners — Figure 4 (distribution study), Figure 5 (spy plots),
//! the §III-A roofline report, and the §V-B machine probes.

use crate::{
    fmt_g, gflops, measure_copy_bandwidth_gbs, measure_peak_gflops, measure_short_vector_rng_rate,
    print_table, time_median, RunConfig,
};
use baselines::{materialize_s, pregen_blocked};
use datagen::uniform_random;
use rngkit::{FastRng, Gaussian, Rademacher, ScaledInt, UnitUniform};
use sketchcore::{sketch_alg4, CostModel, SketchConfig};
use sparsekit::spy::spy_ascii;
use sparsekit::BlockedCsr;

type Rng = FastRng;

/// Figure 4: percent of peak for Algorithm 4 as a function of density, for
/// five ways of producing the entries of `S`.
pub fn fig4(rc: &RunConfig) {
    let peak = measure_peak_gflops();
    println!("\nmeasured FMA-peak proxy: {peak:.2} GFLOP/s");

    let m = (40_000 / rc.scale).max(2_000);
    let n = (4_000 / rc.scale).max(200);
    let d = 3 * n;
    let densities = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2];

    let mut rows = Vec::new();
    for &rho in &densities {
        let a = uniform_random::<f64>(m, n, rho, 0xF16);
        let nnz = a.nnz();
        if nnz == 0 {
            continue;
        }
        let cfg = SketchConfig::new(d, 3000.min(d), 1200.min(n), 4);
        let blocked = BlockedCsr::from_csc(&a, cfg.b_n);

        let pct = |secs: f64| 100.0 * gflops(d, nnz, secs) / peak;

        let t_gauss = time_median(rc.reps, || {
            sketch_alg4(&blocked, &cfg, &Gaussian::<f64>::sampler(Rng::new(4)))
        });
        let s = materialize_s(&UnitUniform::<f64>::sampler(Rng::new(4)), d, m, cfg.b_d);
        let t_pregen = time_median(rc.reps, || pregen_blocked(&a, &s, cfg.b_d, cfg.b_n));
        drop(s);
        let t_unit = time_median(rc.reps, || {
            sketch_alg4(&blocked, &cfg, &UnitUniform::<f64>::sampler(Rng::new(4)))
        });
        let t_scaled = time_median(rc.reps, || {
            let mut out = sketch_alg4(
                &blocked,
                &cfg,
                &rngkit::DistSampler::new(ScaledInt::new(), Rng::new(4)),
            );
            out.scale(ScaledInt::SCALE);
            out
        });
        let t_pm1 = time_median(rc.reps, || {
            sketch_alg4(&blocked, &cfg, &Rademacher::<f64>::sampler(Rng::new(4)))
        });

        rows.push(vec![
            format!("{rho:.0e}"),
            fmt_g(pct(t_gauss)),
            fmt_g(pct(t_pregen)),
            fmt_g(pct(t_unit)),
            fmt_g(pct(t_scaled)),
            fmt_g(pct(t_pm1)),
        ]);
    }
    print_table(
        &format!("Figure 4 — % of peak vs density, Algorithm 4 (m={m}, n={n}, d=3n)"),
        &[
            "density",
            "gaussian otf",
            "pregen S",
            "(-1,1) otf",
            "(-1,1) scaling trick",
            "±1 otf",
        ],
        &rows,
    );
}

/// Figure 5: sparsity spy plots of the stand-ins the paper pictures.
pub fn fig5(rc: &RunConfig) {
    let suite = datagen::spmm_suite(rc.scale);
    println!("\n### Figure 5 — sparsity patterns (ASCII spy plots; PGMs in target/spy/)\n");
    std::fs::create_dir_all("target/spy").ok();
    for name in ["shar_te2-b2", "mesh_deform", "cis-n4c6-b4"] {
        let nm = suite.iter().find(|p| p.name == name).expect("suite member");
        println!(
            "{name} ({}x{}, nnz {}):",
            nm.matrix.nrows(),
            nm.matrix.ncols(),
            nm.matrix.nnz()
        );
        println!("{}", spy_ascii(&nm.matrix, 20, 40));
        let path = format!("target/spy/{name}.pgm");
        if sparsekit::spy::spy_pgm(&nm.matrix, 256, 256, &path).is_ok() {
            println!("(wrote {path})\n");
        }
    }
}

/// §III-A roofline report: the model's optimal blockings, CI, and the
/// √M-beyond-GEMM headline at measured machine parameters.
pub fn roofline() {
    let peak = measure_peak_gflops();
    let bw = measure_copy_bandwidth_gbs();
    let balance = peak / (bw / 8.0); // flops per f64 word
                                     // Model cache: 1 MiB of f64 words (L2-ish), h from the measured RNG rate.
    let rng_rate = measure_short_vector_rng_rate() * 1e9; // samples/s
    let mem_rate = bw * 1e9 / 8.0; // words/s
    let h = mem_rate / rng_rate;
    println!("\nmeasured: peak {peak:.1} GFLOP/s, bandwidth {bw:.1} GB/s, machine balance {balance:.1} flops/word");
    println!(
        "RNG rate {:.2} Gsamples/s → h = (cost of RNG / cost of load) = {:.3}",
        rng_rate / 1e9,
        1.0 / h
    );

    let model = CostModel::new(131_072.0, (1.0 / h).min(0.999), balance);
    let mut rows = Vec::new();
    for rho in [1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 0.9] {
        let p = model.optimize(rho);
        rows.push(vec![
            format!("{rho:.0e}"),
            fmt_g(p.n1),
            fmt_g(p.d1),
            fmt_g(p.m1),
            fmt_g(p.ci),
            fmt_g(p.frac_peak),
            fmt_g(model.gemm_frac_peak()),
        ]);
    }
    print_table(
        "§III-A model — optimal blocking and fraction of peak (M = 128Ki words)",
        &[
            "ρ",
            "n₁*",
            "d₁*",
            "m₁*",
            "CI",
            "frac peak",
            "GEMM frac peak",
        ],
        &rows,
    );
    println!(
        "small-ρ closed form at measured h: CI = {} (eq. 5).",
        fmt_g(model.ci_small_rho())
    );
    let ideal = CostModel::new(model.cache_size, 1e-9, model.machine_balance);
    println!(
        "h→0 headline (eq. 6): CI → M/2 = {}, beating GEMM's √M CI by {:.1}x (√M = {:.1}) — \
         the √M claim; at this host's measured h the gain is {:.2}x.",
        fmt_g(ideal.ci_small_rho()),
        ideal.ci_small_rho() / model.cache_size.sqrt(),
        model.cache_size.sqrt(),
        model.ci_small_rho() / model.cache_size.sqrt()
    );
}

/// §V-B machine probes: STREAM-style bandwidth and short-vector RNG rate.
pub fn stream() {
    let bw = measure_copy_bandwidth_gbs();
    let rng = measure_short_vector_rng_rate();
    let peak = measure_peak_gflops();
    print_table(
        "§V-B machine probes",
        &["probe", "value"],
        &[
            vec!["copy bandwidth".into(), format!("{bw:.2} GB/s")],
            vec![
                "short-vector RNG (len 10⁴)".into(),
                format!("{rng:.3} Gsamples/s"),
            ],
            vec!["FMA peak proxy".into(), format!("{peak:.2} GFLOP/s")],
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_runs_small() {
        let rc = RunConfig {
            scale: 200,
            max_threads: 1,
            reps: 1,
        };
        fig4(&rc); // must not panic
    }

    #[test]
    fn fig5_runs_small() {
        let rc = RunConfig {
            scale: 512,
            max_threads: 1,
            reps: 1,
        };
        fig5(&rc);
    }

    #[test]
    fn machine_probes_positive() {
        assert!(measure_copy_bandwidth_gbs() > 0.1);
        assert!(measure_short_vector_rng_rate() > 0.001);
    }
}
