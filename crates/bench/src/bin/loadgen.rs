//! loadgen — open-loop load generator for `sketchd`.
//!
//! ```text
//! loadgen [--addr HOST:PORT | --port-file PATH] [--quick]
//!         [--conns LIST] [--requests N] [--rate RPS] [--compare]
//!         [--m M] [--n N] [--density F] [--d D] [--b-d B] [--b-n B]
//!         [--seed S] [--out PATH] [--gate-out PATH] [--obs-json PATH]
//! ```
//!
//! * `--addr` / `--port-file` — target an external `sketchd`; with neither,
//!   an in-process server is started (and cleanly shut down) so the binary
//!   is self-contained for smoke tests.
//! * `--conns LIST` — comma-separated concurrency sweep (default `1,2,4,8`).
//! * `--requests N` — requests per connection per phase.
//! * `--rate RPS` — per-connection open-loop arrival rate: inter-arrival
//!   gaps are exponential draws from a seeded rngkit stream, and the
//!   schedule never waits for completions (a connection that falls behind
//!   fires immediately, which is what builds server-side queues). `0`
//!   means no pacing (each connection fires back to back).
//! * `--compare` — run every sweep point twice, once with the `NO_BATCH`
//!   flag (the server must serve each request with its own kernel pass)
//!   and once batchable, and report the throughput ratio. This is the
//!   PR-5 acceptance measurement: batched ≥ 1.5× unbatched at batch ≥ 4.
//! * `--out PATH` — one JSONL record per phase.
//! * `--gate-out PATH` — benchgate-style result file: the same
//!   `name/reps_ns/median_ns/mad_ns/min_ns` record shape as a
//!   `BENCH_*.json` baseline scenario, under a loadgen-specific `kind`.
//!
//! Latencies are request round-trip times recorded in an [`obskit::Hist`]
//! per connection and merged per phase (p50/p90/p99 are mid-bucket
//! estimates, like every histogram in this repo). Requests use
//! `CHECKSUM_ONLY` replies so the wire cost stays flat as `d` grows.

use bench::json::parse;
use bench::print_table;
use obskit::Hist;
use rngkit::{BlockRng, FastRng};
use sketchd::proto::sketch_flags;
use sketchd::{Client, Server, ServerConfig};
use std::io::Write;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MATRIX: &str = "loadgen";

#[derive(Clone)]
struct Opts {
    addr: Option<String>,
    port_file: Option<String>,
    conns: Vec<usize>,
    requests: usize,
    rate: f64,
    window: usize,
    compare: bool,
    no_batch: bool,
    batch_max: usize,
    reps: usize,
    m: u64,
    n: u64,
    density: f64,
    d: u64,
    b_d: u64,
    b_n: u64,
    seed: u64,
    out: Option<String>,
    gate_out: Option<String>,
    obs_json: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: None,
            port_file: None,
            conns: vec![1, 2, 4, 8],
            requests: 200,
            rate: 0.0,
            window: 1,
            compare: false,
            no_batch: false,
            batch_max: 16,
            reps: 1,
            m: 2000,
            n: 48,
            density: 0.01,
            d: 16,
            b_d: 16,
            b_n: 48,
            seed: 0x10AD,
            out: None,
            gate_out: None,
            obs_json: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --port-file PATH] [--quick] [--compare]\n\
         \x20              [--conns LIST] [--requests N] [--rate RPS]\n\
         \x20              [--m M] [--n N] [--density F] [--d D] [--b-d B] [--b-n B]\n\
         \x20              [--seed S] [--out PATH] [--gate-out PATH] [--obs-json PATH]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts::default();
    let mut i = 0;
    let take = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => o.addr = Some(take(&args, &mut i)),
            "--port-file" => o.port_file = Some(take(&args, &mut i)),
            "--quick" => {
                o.conns = vec![4];
                o.requests = 32;
                o.window = 8;
                o.m = 400;
                o.n = 24;
                o.density = 0.015;
                o.d = 8;
                o.b_d = 8;
                o.b_n = 24;
            }
            "--compare" => o.compare = true,
            "--no-batch" => o.no_batch = true,
            "--batch-max" => {
                o.batch_max = take(&args, &mut i).parse().unwrap_or_else(|_| usage());
                if o.batch_max == 0 {
                    usage()
                }
            }
            "--reps" => {
                o.reps = take(&args, &mut i).parse().unwrap_or_else(|_| usage());
                if o.reps == 0 {
                    usage()
                }
            }
            "--conns" => {
                let list = take(&args, &mut i);
                o.conns = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if o.conns.is_empty() {
                    usage()
                }
            }
            "--requests" => o.requests = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--rate" => o.rate = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--window" => {
                o.window = take(&args, &mut i).parse().unwrap_or_else(|_| usage());
                if o.window == 0 {
                    usage()
                }
            }
            "--m" => o.m = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--n" => o.n = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--density" => o.density = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--d" => o.d = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--b-d" => o.b_d = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--b-n" => o.b_n = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => o.out = Some(take(&args, &mut i)),
            "--gate-out" => o.gate_out = Some(take(&args, &mut i)),
            "--obs-json" => o.obs_json = Some(take(&args, &mut i)),
            _ => usage(),
        }
        i += 1;
    }
    o
}

/// Results of one (conns, flags) phase.
struct Phase {
    label: String,
    conns: usize,
    ok: u64,
    errors: u64,
    elapsed_ns: u64,
    hist: Hist,
    /// `svc.batched` delta over the phase, read from server Stats.
    batched: u64,
    /// `svc/batch_size` p99 over the whole server lifetime (best available
    /// proxy for the largest coalesced batch).
    batch_p99: f64,
}

impl Phase {
    fn throughput_rps(&self) -> f64 {
        self.ok as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    fn to_json_line(&self) -> String {
        format!(
            "{{\"phase\":\"{}\",\"conns\":{},\"ok\":{},\"errors\":{},\"elapsed_ns\":{},\
             \"throughput_rps\":{:.1},\"p50_ns\":{:.0},\"p90_ns\":{:.0},\"p99_ns\":{:.0},\
             \"batched\":{},\"batch_p99\":{:.0}}}",
            self.label,
            self.conns,
            self.ok,
            self.errors,
            self.elapsed_ns,
            self.throughput_rps(),
            self.hist.quantile(0.5),
            self.hist.quantile(0.9),
            self.hist.quantile(0.99),
            self.batched,
            self.batch_p99
        )
    }

    /// The benchgate-compatible record: same field names as a baseline
    /// scenario entry, with the phase's round-trip latencies as `reps_ns`.
    fn to_gate_record(&self) -> String {
        format!(
            "{{\"name\":\"svc_loadgen_{}_c{}\",\"reps_ns\":[],\"median_ns\":{:.0},\
             \"mad_ns\":{:.0},\"min_ns\":{},\"count\":{},\"throughput_rps\":{:.1}}}",
            self.label,
            self.conns,
            self.hist.quantile(0.5),
            self.hist.mad(),
            self.hist.min().unwrap_or(0),
            self.hist.count(),
            self.throughput_rps()
        )
    }
}

fn stat_counter(stats: &str, name: &str) -> u64 {
    parse(stats)
        .ok()
        .and_then(|j| {
            j.get("counters")
                .and_then(|c| c.get(name))
                .and_then(|v| v.as_u64())
        })
        .unwrap_or(0)
}

fn stat_hist_p99(stats: &str, path: &str) -> f64 {
    parse(stats)
        .ok()
        .and_then(|j| {
            j.get("hists")
                .and_then(|h| h.get(path))
                .and_then(|v| v.get("p99"))
                .and_then(|v| v.as_f64())
        })
        .unwrap_or(0.0)
}

/// Exponential inter-arrival gap in nanoseconds at `rate` requests/s.
fn exp_gap_ns(rng: &mut FastRng, rate: f64) -> u64 {
    let u = ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    ((-u.ln() / rate) * 1e9) as u64
}

/// Run one open-loop phase: `conns` connections, `requests` each.
fn run_phase(
    addr: SocketAddr,
    o: &Opts,
    conns: usize,
    flags: u32,
    label: &str,
    phase_seed: u64,
) -> Phase {
    let mut stats_client = Client::connect(addr, Duration::from_secs(30)).expect("stats connect");
    let base_batched = stat_counter(&stats_client.stats().expect("stats"), "svc.batched");

    let errors = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let errors = errors.clone();
        let (requests, rate, window, d, b_d, b_n) =
            (o.requests, o.rate, o.window, o.d, o.b_d, o.b_n);
        let seed0 = phase_seed.wrapping_add(c as u64 * 1_000_003);
        handles.push(std::thread::spawn(move || {
            let mut hist = Hist::new();
            let mut ok = 0u64;
            let mut client = match Client::connect(addr, Duration::from_secs(30)) {
                Ok(c) => c,
                Err(_) => {
                    errors.fetch_add(requests as u64, Ordering::Relaxed);
                    return (hist, ok);
                }
            };
            // The arrival schedule is fixed up front from the seeded
            // stream: open-loop means "fire at t_i regardless of how the
            // previous request went", so a saturated server sees a backlog
            // rather than a politely throttled client. Requests are
            // dispatched in pipelined windows of `window` (1 = strict
            // request/reply); each member's latency is the time from its
            // window's dispatch to the window completing.
            let mut arrivals = FastRng::new(seed0 ^ 0xA221);
            let start = Instant::now();
            let mut due_ns = 0u64;
            let mut r = 0usize;
            while r < requests {
                let w = window.min(requests - r);
                if rate > 0.0 {
                    for _ in 0..w {
                        due_ns += exp_gap_ns(&mut arrivals, rate);
                    }
                    let due = Duration::from_nanos(due_ns);
                    let now = start.elapsed();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let seeds: Vec<u64> = (r..r + w).map(|i| seed0.wrapping_add(i as u64)).collect();
                let t = Instant::now();
                match client.sketch_many(
                    MATRIX,
                    d,
                    b_d,
                    b_n,
                    &seeds,
                    flags | sketch_flags::CHECKSUM_ONLY,
                    0,
                ) {
                    Ok(results) => {
                        let dt = t.elapsed().as_nanos() as u64;
                        for res in results {
                            if res.is_ok() {
                                ok += 1;
                                hist.record(dt);
                            } else {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(w as u64, Ordering::Relaxed);
                    }
                }
                r += w;
            }
            (hist, ok)
        }));
    }
    let mut hist = Hist::new();
    let mut ok = 0u64;
    for h in handles {
        let (h_hist, h_ok) = h.join().expect("loadgen connection thread");
        hist.merge(&h_hist);
        ok += h_ok;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let stats = stats_client.stats().expect("stats");
    Phase {
        label: label.to_string(),
        conns,
        ok,
        errors: errors.load(Ordering::Relaxed),
        elapsed_ns,
        hist,
        batched: stat_counter(&stats, "svc.batched").saturating_sub(base_batched),
        batch_p99: stat_hist_p99(&stats, "svc/batch_size"),
    }
}

fn main() {
    let o = parse_opts();
    obskit::set_enabled(true);

    // Resolve the target server: external (--addr / --port-file) or an
    // in-process one we own and shut down.
    let mut local: Option<Server> = None;
    let addr: SocketAddr = if let Some(a) = &o.addr {
        a.parse().unwrap_or_else(|_| usage())
    } else if let Some(pf) = &o.port_file {
        let port: u16 = std::fs::read_to_string(pf)
            .unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read {pf}: {e}");
                std::process::exit(2)
            })
            .trim()
            .parse()
            .unwrap_or_else(|_| usage());
        format!("127.0.0.1:{port}").parse().expect("loopback addr")
    } else {
        let cfg = ServerConfig {
            queue_cap: 1024,
            batch_max: o.batch_max,
            ..ServerConfig::default()
        };
        let server = Server::start(cfg).expect("start in-process sketchd");
        let addr = server.addr();
        local = Some(server);
        addr
    };

    // Install the shared operand once; every request sketches this handle.
    let mut admin = Client::connect(addr, Duration::from_secs(30)).expect("connect");
    let loaded = admin
        .load_generated(MATRIX, o.m, o.n, o.density, o.seed)
        .expect("load operand");
    println!(
        "loadgen: target {addr}, operand {}x{} nnz {} ({} bytes), d={} b_d={} b_n={}",
        o.m, o.n, loaded.nnz, loaded.bytes, o.d, o.b_d, o.b_n
    );

    // Untimed warmup: fault in code and heap arenas, open TCP paths, and
    // let the scheduler settle before anything is measured.
    {
        let mut warm = o.clone();
        warm.requests = (o.requests / 4).clamp(1, 200);
        let _ = run_phase(addr, &warm, o.conns[0], 0, "warmup", o.seed ^ 0x3A3A);
    }

    let mut phases: Vec<Phase> = Vec::new();
    // (conns, unbatched rps, batched rps) per comparison rep.
    let mut ratios: Vec<(usize, f64, f64)> = Vec::new();
    for (idx, &conns) in o.conns.iter().enumerate() {
        for rep in 0..o.reps {
            let phase_seed = o
                .seed
                .wrapping_add(idx as u64 * 7_777_777)
                .wrapping_add(rep as u64 * 104_729);
            if o.compare {
                let u = run_phase(
                    addr,
                    &o,
                    conns,
                    sketch_flags::NO_BATCH,
                    "unbatched",
                    phase_seed,
                );
                let b = run_phase(addr, &o, conns, 0, "batched", phase_seed);
                ratios.push((conns, u.throughput_rps(), b.throughput_rps()));
                phases.push(u);
                phases.push(b);
            } else {
                let (flags, label) = if o.no_batch {
                    (sketch_flags::NO_BATCH, "open_nobatch")
                } else {
                    (0, "open")
                };
                phases.push(run_phase(addr, &o, conns, flags, label, phase_seed));
            }
        }
    }

    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                format!("{} c{}", p.label, p.conns),
                format!("{}", p.ok),
                format!("{}", p.errors),
                format!("{:.0}", p.throughput_rps()),
                format!("{:.0}", p.hist.quantile(0.5) / 1e3),
                format!("{:.0}", p.hist.quantile(0.9) / 1e3),
                format!("{:.0}", p.hist.quantile(0.99) / 1e3),
                format!("{}", p.batched),
            ]
        })
        .collect();
    print_table(
        "loadgen phases",
        &[
            "phase", "ok", "err", "req/s", "p50 µs", "p90 µs", "p99 µs", "batched",
        ],
        &rows,
    );

    let mut worst_ratio: Option<f64> = None;
    if o.compare {
        // Per sweep point: the ratio of median throughputs across reps —
        // robust to single-rep hypervisor-steal outliers on a 1-core host.
        for &conns in &o.conns {
            let mut us: Vec<f64> = ratios
                .iter()
                .filter(|r| r.0 == conns)
                .map(|r| r.1)
                .collect();
            let mut bs: Vec<f64> = ratios
                .iter()
                .filter(|r| r.0 == conns)
                .map(|r| r.2)
                .collect();
            if us.is_empty() {
                continue;
            }
            us.sort_by(|a, b| a.total_cmp(b));
            bs.sort_by(|a, b| a.total_cmp(b));
            let (mu, mb) = (us[us.len() / 2], bs[bs.len() / 2]);
            let ratio = mb / mu;
            println!(
                "loadgen: conns {conns} batched/unbatched median throughput ratio {ratio:.2}x \
                 (batched {mb:.0} req/s vs {mu:.0} req/s over {} reps)",
                us.len()
            );
            worst_ratio = Some(worst_ratio.map_or(ratio, |w: f64| w.min(ratio)));
        }
    }

    if let Some(path) = &o.out {
        let write = std::fs::File::create(path).and_then(|mut f| {
            for p in &phases {
                writeln!(f, "{}", p.to_json_line())?;
            }
            Ok(())
        });
        match write {
            Ok(()) => println!("loadgen: JSONL written to {path}"),
            Err(e) => {
                eprintln!("loadgen: cannot write {path}: {e}");
                std::process::exit(2)
            }
        }
    }
    if let Some(path) = &o.gate_out {
        let records: Vec<String> = phases.iter().map(|p| p.to_gate_record()).collect();
        let body = format!(
            "{{\"schema\":1,\"kind\":\"sparse-sketch-loadgen-result\",\"scenarios\":[{}]}}",
            records.join(",")
        );
        match std::fs::write(path, body) {
            Ok(()) => println!("loadgen: gate-format results written to {path}"),
            Err(e) => {
                eprintln!("loadgen: cannot write {path}: {e}");
                std::process::exit(2)
            }
        }
    }

    if let Some(server) = local.take() {
        admin.shutdown().expect("shutdown in-process server");
        server.join();
        println!("loadgen: in-process sketchd shut down cleanly");
    }

    let sink = obskit::resolve_json_sink(o.obs_json.clone());
    if let Err(e) = obskit::emit_run_telemetry(sink.as_deref()) {
        eprintln!("loadgen: telemetry export failed: {e}");
    }

    if let Some(w) = worst_ratio {
        // Informational on the console; the acceptance run records the
        // demo numbers under results/.
        println!("loadgen: worst batched/unbatched ratio across sweep: {w:.2}x");
    }
}
