//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [target] [--scale N] [--reps N] [--threads N] [--obs-json PATH]
//!
//! targets:
//!   table1   SpMM test-matrix properties
//!   table2   Alg 3 vs MKL/Eigen/Julia-style baselines (sequential)
//!   table3   sample vs total time, Frontera blocking
//!   table4   Alg 4 vs baselines + conversion time
//!   table5   sample vs total time, Perlmutter blocking
//!   table6   Abnormal_A/B/C exotic patterns
//!   table7   thread-scaling sweep
//!   table8   least-squares matrix properties
//!   table9   solver runtimes + errors + memory (Tables IX, X, XI, Fig 6)
//!   fig4     distribution study (% of peak vs density)
//!   fig5     spy plots
//!   roofline §III-A model report
//!   junk     §V-A RNG-free upper bound
//!   stream   §V-B machine probes
//!   smoke    fast end-to-end consistency check
//!   kernelchoice  pattern-aware Alg3/Alg4 predictor vs measurement
//!   minnorm       underdetermined (minimum-norm) solve extension
//!   distortion    sketch quality: σ(S·Q) vs the 1±1/√γ theory
//!   all      everything above
//! ```
//!
//! With no target, `smoke` runs. `--obs-json PATH` (or `SKETCH_OBS_JSON`)
//! writes the run's telemetry — span timings, sample/seek/byte counters,
//! solver and traffic events — as JSONL when the run finishes; the human
//! summary prints either way unless telemetry is off (`SKETCH_OBS=0`).
//!
//! `--trace-out PATH` arms the flight recorder (`obskit::trace`) for the
//! whole run and writes a Chrome Trace Event / Perfetto JSON timeline at
//! exit; `--trace-folded PATH` writes collapsed flamegraph stacks plus a
//! self-contained SVG at `PATH.svg`. Either flag also prints the ranked
//! slowest-blocks anomaly table (measured vs traffic-model latency).

use bench::tracecli::TraceOpts;
use bench::{extensions, figures, solvers, tables, RunConfig};

fn usage() -> ! {
    eprintln!(
        "usage: repro [table1..table9|fig4|fig5|fig6|roofline|junk|stream|smoke|kernelchoice|minnorm|distortion|all] \
         [--scale N] [--reps N] [--threads N] [--obs-json PATH] [--trace-out PATH] [--trace-folded PATH]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A flags-only invocation runs the smoke target: the fastest run that
    // still exercises both kernels, so `repro --obs-json out.jsonl` yields a
    // complete telemetry file in seconds.
    let (target, mut i) = match args.first() {
        Some(a) if !a.starts_with("--") => (a.clone(), 1),
        _ => ("smoke".to_string(), 0),
    };
    let mut rc = RunConfig::default();
    let mut obs_json_cli: Option<String> = None;
    let mut trace = TraceOpts::default();
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                rc.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--reps" => {
                rc.reps = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--threads" => {
                rc.max_threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--obs-json" => {
                obs_json_cli = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--trace-out" => {
                trace.out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--trace-folded" => {
                trace.folded = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }
    trace.arm();

    println!(
        "# repro {target} — scale 1/{}, reps {}, up to {} threads",
        rc.scale, rc.reps, rc.max_threads
    );

    match target.as_str() {
        "table1" => tables::table1(&rc),
        "table2" => tables::table2(&rc),
        "table3" => tables::table_sample_split(&rc, false),
        "table4" => tables::table4(&rc),
        "table5" => tables::table_sample_split(&rc, true),
        "table6" => tables::table6(&rc),
        "table7" => tables::table7(&rc),
        "table8" => solvers::table8(&rc),
        "table9" | "table10" | "table11" | "fig6" => solvers::tables9_to_11(&rc),
        "fig4" => figures::fig4(&rc),
        "fig5" => figures::fig5(&rc),
        "roofline" => figures::roofline(),
        "junk" => tables::junk_ablation(&rc),
        "stream" => figures::stream(),
        "kernelchoice" => extensions::kernel_choice(&rc),
        "minnorm" => extensions::minnorm(&rc),
        "distortion" => extensions::distortion(&rc),
        "smoke" => {
            let secs = tables::smoke();
            println!("smoke check passed in {secs:.3}s: Alg3 ≡ Alg4 ≡ materialized baseline");
        }
        "all" => {
            tables::table1(&rc);
            tables::table2(&rc);
            tables::table_sample_split(&rc, false);
            tables::table4(&rc);
            tables::table_sample_split(&rc, true);
            tables::table6(&rc);
            tables::table7(&rc);
            solvers::table8(&rc);
            solvers::tables9_to_11(&rc);
            figures::fig4(&rc);
            figures::fig5(&rc);
            figures::roofline();
            tables::junk_ablation(&rc);
            figures::stream();
            extensions::kernel_choice(&rc);
            extensions::minnorm(&rc);
            extensions::distortion(&rc);
        }
        _ => usage(),
    }

    if let Err(e) = trace.finish() {
        eprintln!("failed to write trace outputs: {e}");
        std::process::exit(1);
    }
    let sink = obskit::resolve_json_sink(obs_json_cli);
    if let Err(e) = obskit::emit_run_telemetry(sink.as_deref()) {
        eprintln!(
            "failed to write telemetry to {}: {e}",
            sink.as_deref().unwrap_or("?")
        );
        std::process::exit(1);
    }
}
