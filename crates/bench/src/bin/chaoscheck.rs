//! chaoscheck — sweep the fault × scenario matrix and assert the hardening
//! contract: every cell ends in a typed error or a recovery, never a panic,
//! abort, or hang.
//!
//! ```text
//! chaoscheck [--quick] [--service-only] [--report PATH] [--obs-json PATH]
//! ```
//!
//! * `--quick` — the small smoke sweep used by `scripts/verify.sh`.
//! * `--service-only` — skip the kernel matrix and sweep only the
//!   `sketchd` service failpoints (accept/decode/dispatch/reply) against a
//!   live in-process server.
//! * `--report PATH` — write one JSONL record per cell (default
//!   `chaos_report.jsonl` under the current directory).
//! * `--obs-json PATH` — export the obskit run telemetry (counters include
//!   `sap.retries`, `sap.fallback_svd`, `budget.degraded_blocks`).
//!
//! Exit code 0 iff no cell panicked or hung.

use bench::chaos::{self, ChaosConfig, Outcome};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: chaoscheck [--quick] [--service-only] [--report PATH] [--obs-json PATH]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut service_only = false;
    let mut report_path = String::from("chaos_report.jsonl");
    let mut obs_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--service-only" => service_only = true,
            "--report" => {
                report_path = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 1;
            }
            "--obs-json" => {
                obs_json = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }

    // Telemetry on: the recovery counters are part of the contract.
    obskit::set_enabled(true);
    obskit::reset();

    let cfg = if quick {
        ChaosConfig::quick()
    } else {
        ChaosConfig::full()
    };
    println!(
        "chaoscheck: {} sweep, input {}x{} ({} nnz/col), timeout {:?}/cell",
        if quick { "quick" } else { "full" },
        cfg.m,
        cfg.n,
        cfg.nnz_per_col,
        cfg.timeout
    );

    let mut cells = if service_only {
        Vec::new()
    } else {
        chaos::run_matrix(&cfg, quick)
    };
    println!("chaoscheck: service failpoint sweep (in-process sketchd)");
    cells.extend(chaos::run_service_matrix(&cfg));

    let mut bad = 0usize;
    let mut counts = [0usize; 5];
    for c in &cells {
        let slot = match c.outcome {
            Outcome::CleanOk => 0,
            Outcome::Recovered => 1,
            Outcome::TypedError => 2,
            Outcome::Panicked => 3,
            Outcome::Hung => 4,
        };
        counts[slot] += 1;
        let marker = match c.outcome {
            Outcome::Panicked | Outcome::Hung => {
                bad += 1;
                "!!"
            }
            Outcome::Recovered => "~ ",
            Outcome::TypedError => "e ",
            Outcome::CleanOk => "  ",
        };
        println!(
            "{marker} {:<10} x {:<28} -> {:<11} {:>6} ms  {}",
            c.scenario,
            c.fault,
            c.outcome.label(),
            c.elapsed_ms,
            c.detail
        );
    }
    println!(
        "chaoscheck: {} cells — clean_ok {} / recovered {} / typed_error {} / panicked {} / hung {}",
        cells.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4]
    );

    match std::fs::File::create(&report_path).and_then(|mut f| {
        for c in &cells {
            writeln!(f, "{}", c.to_json_line())?;
        }
        Ok(())
    }) {
        Ok(()) => println!("chaoscheck: report written to {report_path}"),
        Err(e) => {
            eprintln!("chaoscheck: cannot write {report_path}: {e}");
            return ExitCode::from(2);
        }
    }

    let sink = obskit::resolve_json_sink(obs_json);
    match obskit::emit_run_telemetry(sink.as_deref()) {
        Ok(true) => {
            if let Some(p) = &sink {
                println!("chaoscheck: telemetry written to {p}");
            }
        }
        Ok(false) => {}
        Err(e) => eprintln!("chaoscheck: telemetry export failed: {e}"),
    }

    if bad > 0 {
        eprintln!("chaoscheck: FAIL — {bad} cell(s) panicked or hung");
        ExitCode::FAILURE
    } else {
        println!("chaoscheck: PASS — no panics, no hangs");
        ExitCode::SUCCESS
    }
}
