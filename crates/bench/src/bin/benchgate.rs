//! `benchgate` — record performance baselines and gate against them.
//!
//! ```text
//! benchgate record [--out PATH] [--reps R] [--scale N] [--quick]
//!                  [--obs-json PATH] [--trace-out PATH] [--trace-folded PATH]
//! benchgate --against PATH [--reps R] [--rel-tol X] [--mad-k K] [--quick]
//!                  [--obs-json PATH]
//! benchgate list [--scale N] [--quick]
//! ```
//!
//! `record` runs the fixed suite (kernels + solvers, see `bench::gate`) and
//! writes a `BENCH_<unix-timestamp>.json` baseline under `results/` with a
//! full run manifest. `--against` re-runs the suite at the baseline's scale
//! and compares per-scenario medians with the noise-aware threshold
//! `max(rel_tol·median, k·MAD)`, cross-checking that the deterministic work
//! counters are bitwise identical (perf drift vs work drift). `list` prints
//! the scenario suite (name, kernel, shape) without running anything.
//!
//! `--obs-json PATH` (or `SKETCH_OBS_JSON`) exports the suite's telemetry —
//! one repetition of every scenario, the manifest-counters convention — as
//! JSONL with the same truncate-on-write sink semantics as `repro` and
//! `sketchprof`. `--trace-out` / `--trace-folded` (record mode) arm the
//! flight recorder for the whole suite run and drain it like `repro` does:
//! Perfetto JSON, collapsed stacks + SVG flamegraph, and the slowest-blocks
//! anomaly table.
//!
//! Exit codes: 0 pass, 1 regression / work drift, 2 usage or I/O error.
//!
//! Test hook: `BENCHGATE_SLOWDOWN_NS=<ns>` busy-waits that long inside every
//! timed repetition, letting the verify script prove the gate trips.

use bench::gate::{
    compare, print_deltas, print_suite, record_baseline_with_snapshot, run_suite_with_snapshot,
    Baseline, GateConfig,
};
use bench::tracecli::TraceOpts;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  benchgate record [--out PATH] [--reps R] [--scale N] [--quick] \
         [--obs-json PATH] [--trace-out PATH] [--trace-folded PATH]\n  \
         benchgate --against PATH [--reps R] [--rel-tol X] [--mad-k K] [--quick] [--obs-json PATH]\n  \
         benchgate list [--scale N] [--quick]"
    );
    ExitCode::from(2)
}

struct Cli {
    record: bool,
    list: bool,
    against: Option<String>,
    out: Option<String>,
    reps: Option<usize>,
    scale: Option<usize>,
    rel_tol: Option<f64>,
    mad_k: Option<f64>,
    quick: bool,
    obs_json: Option<String>,
    trace: TraceOpts,
}

fn parse_cli(args: &[String]) -> Option<Cli> {
    let mut cli = Cli {
        record: false,
        list: false,
        against: None,
        out: None,
        reps: None,
        scale: None,
        rel_tol: None,
        mad_k: None,
        quick: false,
        obs_json: None,
        trace: TraceOpts::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "record" => cli.record = true,
            "list" => cli.list = true,
            "--against" => cli.against = Some(it.next()?.clone()),
            "--out" => cli.out = Some(it.next()?.clone()),
            "--reps" => cli.reps = Some(it.next()?.parse().ok()?),
            "--scale" => cli.scale = Some(it.next()?.parse().ok()?),
            "--rel-tol" => cli.rel_tol = Some(it.next()?.parse().ok()?),
            "--mad-k" => cli.mad_k = Some(it.next()?.parse().ok()?),
            "--quick" => cli.quick = true,
            "--obs-json" => cli.obs_json = Some(it.next()?.clone()),
            "--trace-out" => cli.trace.out = Some(it.next()?.clone()),
            "--trace-folded" => cli.trace.folded = Some(it.next()?.clone()),
            _ => return None,
        }
    }
    let modes = cli.record as usize + cli.list as usize + usize::from(cli.against.is_some());
    if modes != 1 {
        return None; // exactly one mode
    }
    if cli.trace.active() && !cli.record {
        return None; // tracing captures a suite run; only `record` has one
    }
    Some(cli)
}

// Write the suite's merged telemetry snapshot to the resolved JSONL sink
// (CLI beats SKETCH_OBS_JSON; truncate-on-write — identical semantics to
// `repro` / `sketchprof`, which share `obskit::resolve_json_sink`).
fn write_obs_json(cli_path: Option<String>, snap: &obskit::Snapshot) -> std::io::Result<()> {
    if let Some(path) = obskit::resolve_json_sink(cli_path) {
        snap.write_jsonl(&path)?;
        println!("telemetry JSONL written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cli) = parse_cli(&args) else {
        return usage();
    };

    let mut cfg = GateConfig::default();
    if cli.quick {
        cfg.scale = 4;
        cfg.reps = 3;
    }
    if let Some(s) = cli.scale {
        cfg.scale = s.max(1);
    }
    if let Some(r) = cli.reps {
        cfg.reps = r.max(1);
    }
    if let Some(t) = cli.rel_tol {
        cfg.rel_tol = t;
    }
    if let Some(k) = cli.mad_k {
        cfg.mad_k = k;
    }
    if let Ok(ns) = std::env::var("BENCHGATE_SLOWDOWN_NS") {
        match ns.parse() {
            Ok(ns) => cfg.inject_slowdown_ns = ns,
            Err(_) => {
                eprintln!("benchgate: bad BENCHGATE_SLOWDOWN_NS {ns:?}");
                return ExitCode::from(2);
            }
        }
    }

    if cli.list {
        print_suite(cfg.scale);
        return ExitCode::SUCCESS;
    }

    if let Some(path) = cli.against {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("benchgate: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let base = match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("benchgate: {path} is not a usable baseline: {e}");
                return ExitCode::from(2);
            }
        };
        // The suite must re-run at the baseline's scale and reps, or the
        // deterministic counters (and the noise statistics) are not
        // comparable. CLI --scale is rejected in this mode; --reps only
        // changes noise, so it is allowed but defaults to the baseline's.
        if let Some(s) = cli.scale {
            if s != base.manifest.scale {
                eprintln!(
                    "benchgate: --scale {s} conflicts with baseline scale {} (counters would drift)",
                    base.manifest.scale
                );
                return ExitCode::from(2);
            }
        }
        cfg.scale = base.manifest.scale;
        if cli.reps.is_none() {
            cfg.reps = base.manifest.reps;
        }
        println!(
            "benchgate: comparing against {path} (git {}, recorded scale 1/{}, {} reps, rel_tol {:.0}%, mad_k {})",
            base.manifest.git_sha, cfg.scale, cfg.reps, cfg.rel_tol * 100.0, cfg.mad_k
        );
        let (current, snap) = match run_suite_with_snapshot(&cfg) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("benchgate: {e}");
                return ExitCode::from(2);
            }
        };
        let (deltas, fail) = compare(&base, &current, &cfg);
        print_deltas(&deltas);
        if let Err(e) = write_obs_json(cli.obs_json, &snap) {
            eprintln!("benchgate: cannot write telemetry JSONL: {e}");
            return ExitCode::from(2);
        }
        if fail {
            eprintln!("benchgate: FAIL — regression, work drift, or missing scenario (see table)");
            ExitCode::from(1)
        } else {
            println!("benchgate: pass — no regressions beyond noise, counters bitwise identical");
            ExitCode::SUCCESS
        }
    } else {
        cli.trace.arm();
        let (base, snap) = match record_baseline_with_snapshot(&cfg) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("benchgate: {e}");
                return ExitCode::from(2);
            }
        };
        let path = cli.out.unwrap_or_else(|| {
            let _ = std::fs::create_dir_all("results");
            format!("results/BENCH_{}.json", base.manifest.created_unix)
        });
        if let Err(e) = std::fs::write(&path, base.to_json()) {
            eprintln!("benchgate: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        for sc in &base.scenarios {
            println!(
                "  {:12} median {:>12} ns  mad {:>10} ns  ({} reps)",
                sc.name,
                sc.median_ns,
                sc.mad_ns,
                sc.reps_ns.len()
            );
        }
        println!(
            "benchgate: baseline written to {path} (git {}, scale 1/{}, {} scenarios)",
            base.manifest.git_sha,
            base.manifest.scale,
            base.scenarios.len()
        );
        if let Err(e) = write_obs_json(cli.obs_json, &snap) {
            eprintln!("benchgate: cannot write telemetry JSONL: {e}");
            return ExitCode::from(2);
        }
        if let Err(e) = cli.trace.finish() {
            eprintln!("benchgate: cannot write trace outputs: {e}");
            return ExitCode::from(2);
        }
        ExitCode::SUCCESS
    }
}
