//! Developer profiling tool: per-sample sketch cost across blockings and
//! matrix patterns. Numbers on this host carry up to ~3x hypervisor-steal
//! noise; compare within one run only.
//!
//! `--obs-json PATH` (or `SKETCH_OBS_JSON`) exports the run's telemetry as
//! JSONL, exactly like `repro`. `--trace-out PATH` / `--trace-folded PATH`
//! arm the flight recorder and write a Perfetto timeline / flamegraph (plus
//! the slowest-blocks anomaly table), also exactly like `repro`.

fn usage() -> ! {
    eprintln!("usage: sketchprof [--obs-json PATH] [--trace-out PATH] [--trace-folded PATH]");
    std::process::exit(2);
}

fn main() {
    use rngkit::{FastRng, UnitUniform};
    use sketchcore::{sketch_alg3, sketch_alg3_par_cols, SketchConfig};
    let mut args = std::env::args().skip(1);
    let mut obs_json_cli: Option<String> = None;
    let mut trace = bench::tracecli::TraceOpts::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--obs-json" => match args.next() {
                Some(path) => obs_json_cli = Some(path),
                None => usage(),
            },
            "--trace-out" => match args.next() {
                Some(path) => trace.out = Some(path),
                None => usage(),
            },
            "--trace-folded" => match args.next() {
                Some(path) => trace.folded = Some(path),
                None => usage(),
            },
            _ => usage(),
        }
    }
    trace.arm();
    let suite = datagen::lsq_suite(8);
    let p = &suite[1]; // spal_004
    let a = &p.a;
    let n = a.ncols();
    let d = 2 * n;
    println!("spal stand-in: {}x{} nnz {}", a.nrows(), n, a.nnz());
    // Same dims, plain uniform pattern (no conditioning machinery).
    let u = datagen::uniform_random::<f64>(a.nrows(), n, a.density(), 3);
    for (label, mat) in [("spal-standin", a), ("uniform-same-dims", &u)] {
        let cfg = SketchConfig::new(d, 3000, 500, 7);
        let s = UnitUniform::<f64>::sampler(FastRng::new(7));
        let t = std::time::Instant::now();
        let x = sketch_alg3(mat, &cfg, &s);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        let samples = d as f64 * mat.nnz() as f64;
        println!("{label:20}: {dt:.3}s ({:.2} ns/sample)", dt / samples * 1e9);
    }
    // The paper's Frontera blocking; add pairs here to sweep alternatives.
    let blockings = [(3000usize, 500usize)];
    for (b_d, b_n) in blockings {
        let cfg = SketchConfig::new(d, b_d, b_n, 7);
        let s = UnitUniform::<f64>::sampler(FastRng::new(7));
        let t = std::time::Instant::now();
        let x = sketch_alg3(a, &cfg, &s);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        let t2 = std::time::Instant::now();
        let y = sketch_alg3_par_cols(a, &cfg, &s);
        let dt2 = t2.elapsed().as_secs_f64();
        std::hint::black_box(&y);
        let samples = d as f64 * a.nnz() as f64;
        println!(
            "b_d={b_d:5} b_n={b_n:4}: seq {dt:.3}s ({:.2} ns/sample)  par_cols {dt2:.3}s",
            dt / samples * 1e9
        );
    }
    if let Err(e) = trace.finish() {
        eprintln!("failed to write trace outputs: {e}");
        std::process::exit(1);
    }
    let sink = obskit::resolve_json_sink(obs_json_cli);
    if let Err(e) = obskit::emit_run_telemetry(sink.as_deref()) {
        eprintln!(
            "failed to write telemetry to {}: {e}",
            sink.as_deref().unwrap_or("?")
        );
        std::process::exit(1);
    }
}
