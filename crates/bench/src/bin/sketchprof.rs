//! Developer profiling tool: per-sample sketch cost across blockings and
//! matrix patterns. Numbers on this host carry up to ~3x hypervisor-steal
//! noise; compare within one run only.

fn main() {
    use rngkit::{FastRng, UnitUniform};
    use sketchcore::{sketch_alg3, sketch_alg3_par_cols, SketchConfig};
    let suite = datagen::lsq_suite(8);
    let p = &suite[1]; // spal_004
    let a = &p.a;
    let n = a.ncols();
    let d = 2 * n;
    println!("spal stand-in: {}x{} nnz {}", a.nrows(), n, a.nnz());
    // Same dims, plain uniform pattern (no conditioning machinery).
    let u = datagen::uniform_random::<f64>(a.nrows(), n, a.density(), 3);
    for (label, mat) in [("spal-standin", a), ("uniform-same-dims", &u)] {
        let cfg = SketchConfig::new(d, 3000, 500, 7);
        let s = UnitUniform::<f64>::sampler(FastRng::new(7));
        let t = std::time::Instant::now();
        let x = sketch_alg3(mat, &cfg, &s);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        let samples = d as f64 * mat.nnz() as f64;
        println!("{label:20}: {dt:.3}s ({:.2} ns/sample)", dt / samples * 1e9);
    }
    // The paper's Frontera blocking; add pairs here to sweep alternatives.
    let blockings = [(3000usize, 500usize)];
    for (b_d, b_n) in blockings {
        let cfg = SketchConfig::new(d, b_d, b_n, 7);
        let s = UnitUniform::<f64>::sampler(FastRng::new(7));
        let t = std::time::Instant::now();
        let x = sketch_alg3(a, &cfg, &s);
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(&x);
        let t2 = std::time::Instant::now();
        let y = sketch_alg3_par_cols(a, &cfg, &s);
        let dt2 = t2.elapsed().as_secs_f64();
        std::hint::black_box(&y);
        let samples = d as f64 * a.nnz() as f64;
        println!(
            "b_d={b_d:5} b_n={b_n:4}: seq {dt:.3}s ({:.2} ns/sample)  par_cols {dt2:.3}s",
            dt / samples * 1e9
        );
    }
    if obskit::enabled() {
        let snap = obskit::snapshot();
        print!("\n{}", snap.summary());
        if let Some(path) = obskit::json_path_from_env() {
            match snap.write_jsonl(&path) {
                Ok(()) => println!("telemetry JSONL written to {path}"),
                Err(e) => eprintln!("failed to write telemetry to {path}: {e}"),
            }
        }
    }
}
