//! Quick microbenchmark of raw generator fill rates (dev tool).
use rngkit::{
    BlockRng, BlockSampler, CheckpointRng, Lanes, SimdXoshiro256PP, UnitUniform, Xoshiro256PlusPlus,
};
use std::time::Instant;

fn bench_fill<R: BlockRng>(name: &str, mut rng: R) {
    let mut v = vec![0u64; 3000];
    let reps = 20_000;
    let t0 = Instant::now();
    for i in 0..reps {
        rng.set_state(0, i);
        rng.fill_u64(&mut v);
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&v);
    println!("{name:32} {:.3} ns/word", dt / (reps as f64 * 3000.0) * 1e9);
}

fn main() {
    bench_fill(
        "scalar xoshiro256++",
        CheckpointRng::<Xoshiro256PlusPlus>::new(1),
    );
    bench_fill("Lanes<4> AoS", Lanes::<Xoshiro256PlusPlus, 4>::new(1));
    bench_fill("Lanes<8> AoS", Lanes::<Xoshiro256PlusPlus, 8>::new(1));
    bench_fill("SimdXoshiro SoA<4>", SimdXoshiro256PP::<4>::new(1));
    bench_fill("SimdXoshiro SoA<8>", SimdXoshiro256PP::<8>::new(1));
    bench_fill("SimdXoshiro SoA<16>", SimdXoshiro256PP::<16>::new(1));
    bench_fill("philox", rngkit::Philox4x32::new(1));

    // Sampler-level: f64 unit uniform fill.
    let mut s = UnitUniform::<f64>::sampler(SimdXoshiro256PP::<8>::new(1));
    let mut v = vec![0.0f64; 3000];
    let reps = 20_000;
    let t0 = Instant::now();
    for i in 0..reps {
        s.set_state(0, i);
        s.fill(&mut v);
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&v);
    println!(
        "{:32} {:.3} ns/sample",
        "UnitUniform<f64> over SoA<8>",
        dt / (reps as f64 * 3000.0) * 1e9
    );

    // Emulate Algorithm 3's inner loop: per "nonzero", seek + fill + axpy.
    let mut s = UnitUniform::<f64>::sampler(SimdXoshiro256PP::<8>::new(1));
    let d1 = 3000usize;
    let mut v = vec![0.0f64; d1];
    let mut out = vec![0.0f64; d1];
    let reps = 20_000usize;
    let t0 = Instant::now();
    for i in 0..reps {
        s.set_state(0, i % 1000);
        s.fill(&mut v);
        let ajk = 1.25f64;
        for (o, &x) in out.iter_mut().zip(v.iter()) {
            *o = ajk.mul_add(x, *o);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    println!(
        "{:32} {:.3} ns/sample",
        "fill+axpy emulation",
        dt / (reps as f64 * d1 as f64) * 1e9
    );

    // axpy alone
    let t0 = Instant::now();
    for _ in 0..reps {
        let ajk = 1.25f64;
        for (o, &x) in out.iter_mut().zip(v.iter()) {
            *o = ajk.mul_add(x, *o);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    println!(
        "{:32} {:.3} ns/elt",
        "axpy alone",
        dt / (reps as f64 * d1 as f64) * 1e9
    );
}

#[allow(dead_code)]
fn kernel_emulation() {}
