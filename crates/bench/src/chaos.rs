//! The chaoscheck matrix: every fault × every scenario, asserting the
//! hardened entry points never panic, abort, or hang.
//!
//! Each cell runs one scenario (hardened sketch, sequential or parallel,
//! or a self-healing SAP solve) under one fault (none, an armed faultkit
//! plan, a structural corruption of the input, an abnormal input, or a
//! tight memory budget) on its own thread with a watchdog timeout. The
//! outcome is classified as:
//!
//! * `clean_ok` — succeeded, no recovery machinery engaged;
//! * `recovered` — succeeded after retries, QR→SVD fallback, or block
//!   degradation (read off the `sap.retries` / `sap.fallback_svd` /
//!   `budget.degraded_blocks` counter deltas);
//! * `typed_error` — failed with a typed [`SketchError`]/[`SolveError`];
//! * `panicked` / `hung` — the two outcomes the hardening layer promises
//!   never happen; any such cell fails the binary.
//!
//! Faultkit plans and `SKETCH_MEM_BUDGET` are process-global, so cells run
//! strictly sequentially.

use lstsq::sap::{try_solve_sap_with, RecoveryPolicy, SapFlavor, SapOptions};
use lstsq::LsqrOptions;
use rngkit::{FastRng, UnitUniform};
use sketchcore::{try_sketch_alg3, try_sketch_alg3_par_cols, SketchConfig};
use sparsekit::corrupt::{corrupt_csc, Corruption};
use sparsekit::CscMatrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One fault to inject (or not) into a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Baseline: no fault armed.
    None,
    /// `sketch/nan_stream=once` — poison one regenerated sample.
    NanStream,
    /// `sketch/alloc=once` — simulated allocation failure in the planner.
    Alloc,
    /// `parkit/worker=once` — panic the first parallel worker item.
    WorkerPanic,
    /// Structural corruption of the input's CSC arrays.
    Corrupt(Corruption),
    /// NaN payloads in a structurally valid input.
    NanInput,
    /// Input with exactly dependent columns (rank deficiency).
    RankDeficientInput,
    /// Column scales spanning ten decades.
    BadlyScaledInput,
    /// `SKETCH_MEM_BUDGET` squeezed to just above the output size.
    TightBudget,
}

impl Fault {
    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            Fault::None => "none".into(),
            Fault::NanStream => "nan_stream_once".into(),
            Fault::Alloc => "alloc_once".into(),
            Fault::WorkerPanic => "worker_panic_once".into(),
            Fault::Corrupt(c) => format!("corrupt_{c:?}").to_lowercase(),
            Fault::NanInput => "nan_input".into(),
            Fault::RankDeficientInput => "rank_deficient_input".into(),
            Fault::BadlyScaledInput => "badly_scaled_input".into(),
            Fault::TightBudget => "tight_budget".into(),
        }
    }
}

/// One hardened entry point under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// [`try_sketch_alg3`] (sequential).
    SketchSeq,
    /// [`try_sketch_alg3_par_cols`] on 2 threads.
    SketchPar,
    /// [`try_solve_sap_with`], QR flavour.
    SapQr,
    /// [`try_solve_sap_with`], SVD flavour.
    SapSvd,
}

impl Scenario {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::SketchSeq => "sketch_seq",
            Scenario::SketchPar => "sketch_par",
            Scenario::SapQr => "sap_qr",
            Scenario::SapSvd => "sap_svd",
        }
    }
}

/// How a cell ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Success with no recovery machinery engaged.
    CleanOk,
    /// Success after retries / fallback / block degradation.
    Recovered,
    /// A typed error — the contract under fault.
    TypedError,
    /// The scenario panicked through the hardened entry point. Forbidden.
    Panicked,
    /// The watchdog expired. Forbidden.
    Hung,
}

impl Outcome {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::CleanOk => "clean_ok",
            Outcome::Recovered => "recovered",
            Outcome::TypedError => "typed_error",
            Outcome::Panicked => "panicked",
            Outcome::Hung => "hung",
        }
    }
}

/// One cell of the matrix.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Scenario label.
    pub scenario: &'static str,
    /// Fault label.
    pub fault: String,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Human-oriented detail (error display, retry counts, …).
    pub detail: String,
    /// Wall-clock milliseconds.
    pub elapsed_ms: u64,
}

impl Cell {
    /// One JSONL record.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"fault\":\"{}\",\"outcome\":\"{}\",\"detail\":\"{}\",\"elapsed_ms\":{}}}",
            self.scenario,
            self.fault,
            self.outcome.label(),
            self.detail.replace('\\', "\\\\").replace('"', "\\'").replace('\n', " "),
            self.elapsed_ms
        )
    }
}

/// Problem sizes for one matrix sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Input rows.
    pub m: usize,
    /// Input columns.
    pub n: usize,
    /// Nonzeros per column of the benign input.
    pub nnz_per_col: usize,
    /// Watchdog per cell.
    pub timeout: Duration,
}

impl ChaosConfig {
    /// The full-size sweep.
    pub fn full() -> Self {
        Self {
            m: 2000,
            n: 64,
            nnz_per_col: 12,
            timeout: Duration::from_secs(120),
        }
    }

    /// The `--quick` smoke sweep for verify.sh.
    pub fn quick() -> Self {
        Self {
            m: 400,
            n: 24,
            nnz_per_col: 6,
            timeout: Duration::from_secs(60),
        }
    }
}

/// The fault list for a sweep (`quick` drops the redundant corruptions).
pub fn faults(quick: bool) -> Vec<Fault> {
    let mut f = vec![
        Fault::None,
        Fault::NanStream,
        Fault::Alloc,
        Fault::WorkerPanic,
        Fault::Corrupt(Corruption::OutOfBoundsIndex),
        Fault::NanInput,
        Fault::RankDeficientInput,
        Fault::TightBudget,
    ];
    if !quick {
        f.extend([
            Fault::Corrupt(Corruption::SwapAdjacentIndices),
            Fault::Corrupt(Corruption::NonMonotonePtr),
            Fault::Corrupt(Corruption::NanValue),
            Fault::Corrupt(Corruption::InfValue),
            Fault::BadlyScaledInput,
        ]);
    }
    f
}

/// All scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::SketchSeq,
        Scenario::SketchPar,
        Scenario::SapQr,
        Scenario::SapSvd,
    ]
}

fn benign_input(cfg: &ChaosConfig) -> CscMatrix<f64> {
    datagen::tall_conditioned(
        cfg.m,
        cfg.n,
        cfg.nnz_per_col as f64 / cfg.m as f64,
        datagen::CondSpec::WELL,
        17,
    )
}

/// Build the input this fault calls for (benign unless the fault *is* the
/// input). `None` means the corruption could not be hosted (tiny matrix).
fn input_for(fault: Fault, cfg: &ChaosConfig) -> Option<CscMatrix<f64>> {
    match fault {
        Fault::Corrupt(kind) => corrupt_csc(&benign_input(cfg), kind, 5),
        Fault::NanInput => Some(datagen::nan_laced(cfg.m, cfg.n, cfg.nnz_per_col, 3, 23)),
        Fault::RankDeficientInput => Some(datagen::rank_deficient(
            cfg.m,
            cfg.n,
            (cfg.n / 2).max(1),
            cfg.nnz_per_col,
            29,
        )),
        Fault::BadlyScaledInput => Some(datagen::badly_scaled(
            cfg.m,
            cfg.n,
            cfg.nnz_per_col,
            10.0,
            31,
        )),
        _ => Some(benign_input(cfg)),
    }
}

/// Arm process-global fault state for a cell; the guard restores it.
struct Armed {
    budget_set: bool,
}

impl Armed {
    fn arm(fault: Fault, cfg: &ChaosConfig) -> Self {
        faultkit::clear();
        let plan = match fault {
            Fault::NanStream => Some("sketch/nan_stream=once"),
            Fault::Alloc => Some("sketch/alloc=once"),
            Fault::WorkerPanic => Some("parkit/worker=once"),
            _ => None,
        };
        if let Some(p) = plan {
            // The spec is a compile-time constant; parsing cannot fail.
            if faultkit::set_plan_str(p, 0xC0FFEE).is_err() {
                unreachable!("static fault plan must parse: {p}");
            }
        }
        let budget_set = fault == Fault::TightBudget;
        if budget_set {
            // Every scenario sketches at d = 2n, so the irreducible output
            // is 2n²·8 bytes. Leave only 512 bytes beyond it — less than
            // one (16, 8) f64 panel — forcing the block-degradation path.
            let out = 2 * cfg.n as u64 * cfg.n as u64 * 8;
            std::env::set_var("SKETCH_MEM_BUDGET", (out + 512).to_string());
        }
        Self { budget_set }
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        faultkit::clear();
        if self.budget_set {
            std::env::remove_var("SKETCH_MEM_BUDGET");
        }
    }
}

fn run_scenario(scenario: Scenario, a: &CscMatrix<f64>) -> Result<String, String> {
    let cfg = SketchConfig::new(2 * a.ncols(), 16, 8, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    match scenario {
        Scenario::SketchSeq => try_sketch_alg3(a, &cfg, &sampler)
            .map(|m| format!("sketch {}x{}", m.nrows(), m.ncols()))
            .map_err(|e| e.to_string()),
        Scenario::SketchPar => {
            parkit::with_threads(2, || try_sketch_alg3_par_cols(a, &cfg, &sampler))
                .map(|m| format!("sketch {}x{}", m.nrows(), m.ncols()))
                .map_err(|e| e.to_string())
        }
        Scenario::SapQr | Scenario::SapSvd => {
            let flavor = if scenario == Scenario::SapQr {
                SapFlavor::Qr
            } else {
                SapFlavor::Svd
            };
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| ((i * 31) % 17) as f64 - 8.0)
                .collect();
            let opts = SapOptions {
                gamma: 2,
                b_d: 16,
                b_n: 8,
                seed: 7,
                flavor,
                lsqr: LsqrOptions {
                    atol: 1e-12,
                    btol: 1e-12,
                    max_iters: 5000,
                    stall_window: 0,
                },
            };
            let policy = RecoveryPolicy {
                max_attempts: 3,
                stall_window: 400,
            };
            try_solve_sap_with(a, &b, &opts, &policy)
                .map(|rep| {
                    format!(
                        "iters={} rank={} retries={} fallback_svd={}",
                        rep.iters, rep.rank, rep.retries, rep.fallback_svd
                    )
                })
                .map_err(|e| e.to_string())
        }
    }
}

/// Counter deltas that count as "the recovery machinery engaged".
fn recovery_delta(before: &[u64], after: &[u64]) -> u64 {
    [
        obskit::Ctr::SapRetries,
        obskit::Ctr::SapFallbackSvd,
        obskit::Ctr::BudgetDegradedBlocks,
    ]
    .iter()
    .map(|&c| after[c as usize].saturating_sub(before[c as usize]))
    .sum()
}

/// Run one cell: scenario under fault, on a watchdogged thread.
pub fn run_cell(scenario: Scenario, fault: Fault, cfg: &ChaosConfig) -> Cell {
    let t0 = Instant::now();
    let Some(a) = input_for(fault, cfg) else {
        return Cell {
            scenario: scenario.label(),
            fault: fault.label(),
            outcome: Outcome::CleanOk,
            detail: "corruption not hostable at this size; skipped".into(),
            elapsed_ms: 0,
        };
    };
    let before = obskit::snapshot().counters;
    let _armed = Armed::arm(fault, cfg);

    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let out = catch_unwind(AssertUnwindSafe(|| run_scenario(scenario, &a)));
        obskit::flush_thread();
        // The receiver may have timed out and gone away; nothing to do then.
        let _ = tx.send(out);
    });

    let (outcome, detail) = match rx.recv_timeout(cfg.timeout) {
        Ok(Ok(Ok(detail))) => {
            let after = obskit::snapshot().counters;
            if recovery_delta(&before, &after) > 0 {
                (Outcome::Recovered, detail)
            } else {
                (Outcome::CleanOk, detail)
            }
        }
        Ok(Ok(Err(e))) => (Outcome::TypedError, e),
        Ok(Err(p)) => (
            Outcome::Panicked,
            sketchcore::error::panic_payload_to_string(p.as_ref()),
        ),
        Err(_) => (Outcome::Hung, format!("no result within {:?}", cfg.timeout)),
    };
    if outcome != Outcome::Hung {
        // Joining is safe: the worker already sent its result.
        let _ = handle.join();
    }
    Cell {
        scenario: scenario.label(),
        fault: fault.label(),
        outcome,
        detail,
        elapsed_ms: t0.elapsed().as_millis() as u64,
    }
}

/// Sweep the whole matrix sequentially.
pub fn run_matrix(cfg: &ChaosConfig, quick: bool) -> Vec<Cell> {
    let mut cells = Vec::new();
    for scenario in scenarios() {
        for fault in faults(quick) {
            cells.push(run_cell(scenario, fault, cfg));
        }
    }
    cells
}

// --- service cells ------------------------------------------------------

/// A `sketchd` failpoint swept against a live in-process server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvcFault {
    /// Baseline: clean request/response.
    None,
    /// `svc/accept=once` — the accepted connection is dropped before any
    /// byte is read.
    Accept,
    /// `svc/decode=once` — a request fails at decode time; the server
    /// answers a typed `BadRequest` frame and the connection survives.
    Decode,
    /// `svc/dispatch=once` — the worker panics mid-request inside its
    /// containment; the server answers a typed `Internal` frame and the
    /// queue is not poisoned.
    Dispatch,
    /// `svc/reply=once` — the reply write is shot down; the client sees a
    /// closed connection, the worker moves on.
    Reply,
}

impl SvcFault {
    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            SvcFault::None => "none".into(),
            SvcFault::Accept => "svc_accept_once".into(),
            SvcFault::Decode => "svc_decode_once".into(),
            SvcFault::Dispatch => "svc_dispatch_once".into(),
            SvcFault::Reply => "svc_reply_once".into(),
        }
    }

    fn plan(&self) -> Option<&'static str> {
        match self {
            SvcFault::None => None,
            SvcFault::Accept => Some("svc/accept=once"),
            SvcFault::Decode => Some("svc/decode=once"),
            SvcFault::Dispatch => Some("svc/dispatch=once"),
            SvcFault::Reply => Some("svc/reply=once"),
        }
    }
}

/// All service failpoints.
pub fn svc_faults() -> Vec<SvcFault> {
    vec![
        SvcFault::None,
        SvcFault::Accept,
        SvcFault::Decode,
        SvcFault::Dispatch,
        SvcFault::Reply,
    ]
}

/// Clears the process-global fault plan on scope exit (including unwind,
/// so a failed assertion cannot leak a plan into the next cell).
struct ArmedSvc;

impl ArmedSvc {
    fn arm(plan: &str) -> Self {
        if faultkit::set_plan_str(plan, 0xC0FFEE).is_err() {
            unreachable!("static fault plan must parse: {plan}");
        }
        ArmedSvc
    }
}

impl Drop for ArmedSvc {
    fn drop(&mut self) {
        faultkit::clear();
    }
}

/// One faulted client/server interaction against a fresh in-process
/// `sketchd`. Contract violations panic (→ `Outcome::Panicked`, which
/// fails the binary); the return value is the cell detail.
fn service_interaction(fault: SvcFault, cfg: &ChaosConfig) -> String {
    use sketchd::proto::Status;
    let timeout = Duration::from_secs(10);
    let server =
        sketchd::Server::start(sketchd::ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();
    let mut c = sketchd::Client::connect(addr, timeout).expect("connect");
    let density = cfg.nnz_per_col as f64 / cfg.m as f64;
    c.load_generated("chaos", cfg.m as u64, cfg.n as u64, density, 17)
        .expect("load");
    let d = 2 * cfg.n as u64;
    let detail = {
        let _armed = fault.plan().map(ArmedSvc::arm);
        match fault {
            SvcFault::None => {
                let r = c.sketch("chaos", d, 16, 8, 7, 0, 0).expect("clean sketch");
                format!("clean sketch served, batch {}", r.batch())
            }
            SvcFault::Accept => {
                let dropped = sketchd::Client::connect(addr, Duration::from_millis(500))
                    .and_then(|mut c2| c2.health().map(|_| ()));
                assert!(dropped.is_err(), "faulted accept must not serve");
                "accepted connection dropped; typed client error".into()
            }
            SvcFault::Decode => {
                let e = c
                    .sketch("chaos", d, 16, 8, 7, 0, 0)
                    .expect_err("decode fault");
                assert_eq!(e.status(), Some(Status::BadRequest), "got {e}");
                format!("typed error frame: {e}")
            }
            SvcFault::Dispatch => {
                let e = c
                    .sketch("chaos", d, 16, 8, 7, 0, 0)
                    .expect_err("dispatch fault");
                assert_eq!(e.status(), Some(Status::Internal), "got {e}");
                format!("typed error frame: {e}")
            }
            SvcFault::Reply => {
                let e = c
                    .sketch("chaos", d, 16, 8, 7, 0, 0)
                    .expect_err("reply fault");
                assert!(
                    e.status().is_none(),
                    "reply fault closes the connection: {e}"
                );
                format!("connection closed by reply fault: {e}")
            }
        }
    };
    // Recovery: with the plan cleared, a fresh connection must be served
    // by the same (alive) worker pool, then shut the server down cleanly.
    let mut c2 = sketchd::Client::connect(addr, timeout).expect("reconnect after fault");
    c2.sketch("chaos", d, 16, 8, 7, 0, 0)
        .expect("service must survive the fault");
    c2.shutdown().expect("shutdown");
    server.join();
    format!("{detail}; recovered, clean shutdown")
}

/// Run one service cell on a watchdogged thread.
pub fn run_service_cell(fault: SvcFault, cfg: &ChaosConfig) -> Cell {
    let t0 = Instant::now();
    faultkit::clear();
    let (tx, rx) = mpsc::channel();
    let cfg2 = *cfg;
    let handle = std::thread::spawn(move || {
        let out = catch_unwind(AssertUnwindSafe(|| service_interaction(fault, &cfg2)));
        obskit::flush_thread();
        let _ = tx.send(out);
    });
    let (outcome, detail) = match rx.recv_timeout(cfg.timeout) {
        Ok(Ok(detail)) => {
            let outcome = if fault == SvcFault::None {
                Outcome::CleanOk
            } else {
                Outcome::TypedError
            };
            (outcome, detail)
        }
        Ok(Err(p)) => (
            Outcome::Panicked,
            sketchcore::error::panic_payload_to_string(p.as_ref()),
        ),
        Err(_) => (Outcome::Hung, format!("no result within {:?}", cfg.timeout)),
    };
    if outcome != Outcome::Hung {
        let _ = handle.join();
    }
    faultkit::clear();
    Cell {
        scenario: "svc_roundtrip",
        fault: fault.label(),
        outcome,
        detail,
        elapsed_ms: t0.elapsed().as_millis() as u64,
    }
}

/// Sweep every service failpoint sequentially.
pub fn run_service_matrix(cfg: &ChaosConfig) -> Vec<Cell> {
    svc_faults()
        .into_iter()
        .map(|f| run_service_cell(f, cfg))
        .collect()
}
