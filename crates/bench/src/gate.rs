//! The perf-trajectory layer: a fixed benchmark suite, `BENCH_*.json`
//! baselines with run manifests, and a noise-aware regression comparison.
//!
//! The paper's central claim is a *performance* result, so the repo treats
//! its own benchmark trajectory as an enforced contract (the way DBCSR-style
//! kernel libraries treat benchmark tracking as first-class infrastructure):
//!
//! * [`suite`] builds a fixed set of scenarios — Algorithm 3/4 sketches at
//!   several shapes, an LSQR and an LSMR solve, and a SAP end-to-end run at
//!   smoke scale.
//! * [`run_suite`] times each scenario `reps` times with [`obskit::reset`]
//!   between repetitions (so counters and spans describe exactly one
//!   execution), snapshots the deterministic work counters, and summarizes
//!   the per-block latency histograms.
//! * [`Baseline`] embeds a run manifest — git SHA, suite seed, scale,
//!   thread count, cargo features, an obskit counter snapshot and the
//!   measured-vs-model traffic ratios — for provenance, and round-trips
//!   through the hand-rolled [`crate::json`] module.
//! * [`compare`] is the noise-aware gate: per-scenario medians are compared
//!   with a MAD-scaled threshold (`max(rel_tol·median, k·MAD)`), so only
//!   changes that clear both the relative floor and the run's own measured
//!   noise are flagged; deterministic counters (samples, seeks, flops,
//!   bytes, solver iterations) must be *bitwise identical* to the baseline,
//!   which separates perf drift from work drift.
//!
//! Noise caveat: on a single shared vCPU (this repo's recorded host),
//! hypervisor steal can perturb individual runs by 2–3×. The MAD term
//! absorbs within-run noise, but a baseline recorded on a quiet machine can
//! still false-positive against a noisy later run — the default
//! `rel_tol = 0.30` is deliberately generous, and baselines are only
//! comparable on the host that recorded them.

use crate::json::{parse, Jval};
use crate::{fmt_s, print_table};
use datagen::lsq::{tall_conditioned, CondSpec};
use datagen::make_rhs;
use lstsq::{
    lsmr, solve_lsqr_d, solve_sap, CscOp, LsmrOptions, LsqrOptions, SapFlavor, SapOptions,
};
use obskit::{Ctr, CTR_NAMES, NCTR};
use rngkit::{FastRng, Rademacher, UnitUniform};
use sketchcore::{
    sketch_alg3, sketch_alg3_multi, sketch_alg3_signs, sketch_alg4, CostModel, SketchConfig,
};
use sparsekit::BlockedCsr;
use std::time::Instant;

/// Schema version written into every baseline.
pub const SCHEMA_VERSION: u64 = 1;
/// Baseline file discriminator.
pub const BASELINE_KIND: &str = "sparse-sketch-bench-baseline";
/// Seed every suite scenario derives its data and sketches from.
pub const SUITE_SEED: u64 = 0xBE27C4;

/// Configuration for recording or re-running the gate suite.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Dimension divisor on the scenario sizes (1 = full gate suite;
    /// `--quick` uses 4 for the CI self-check).
    pub scale: usize,
    /// Repetitions per scenario (median and MAD are taken over these).
    pub reps: usize,
    /// Relative tolerance floor of the regression threshold.
    pub rel_tol: f64,
    /// MAD multiplier of the regression threshold.
    pub mad_k: f64,
    /// Test hook: busy-wait this many nanoseconds inside every timed
    /// repetition (set from `BENCHGATE_SLOWDOWN_NS` by the binary) to
    /// verify the gate trips on a synthetic slowdown.
    pub inject_slowdown_ns: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            scale: 1,
            reps: 5,
            rel_tol: 0.30,
            mad_k: 4.0,
            inject_slowdown_ns: 0,
        }
    }
}

/// One benchmark scenario: a name plus the timed, deterministic work.
pub struct Scenario {
    /// Stable identifier; the comparison key between runs.
    pub name: &'static str,
    /// Kernel or solver the scenario exercises (`benchgate list` metadata).
    pub kernel: &'static str,
    /// Operand shape at the current scale (`rows×cols nnz N`).
    pub shape: String,
    run: Box<dyn Fn()>,
}

fn div(x: usize, scale: usize) -> usize {
    (x / scale.max(1)).max(8)
}

fn shape_of<T: sparsekit::Scalar>(a: &sparsekit::CscMatrix<T>) -> String {
    format!("{}×{} nnz {}", a.nrows(), a.ncols(), a.nnz())
}

/// The fixed scenario suite at `1/scale` of the gate's full sizes. All data
/// and samplers derive from [`SUITE_SEED`], so the work each scenario does
/// (samples drawn, flops, bytes, solver iterations) is a pure function of
/// `scale` — which is what lets the gate demand bitwise-equal counters.
pub fn suite(scale: usize) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();

    // Algorithm 3 at the paper's tall-and-sparse operating point.
    let a_tall =
        datagen::uniform_random::<f64>(div(12000, scale), div(600, scale), 5e-3, SUITE_SEED);
    let d = 2 * a_tall.ncols();
    let cfg3 = SketchConfig::new(d, 256.min(d), 64.min(a_tall.ncols()), SUITE_SEED);
    {
        let (a, cfg) = (a_tall.clone(), cfg3);
        out.push(Scenario {
            name: "alg3_tall",
            kernel: "alg3",
            shape: shape_of(&a),
            run: Box::new(move || {
                let s = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
                std::hint::black_box(sketch_alg3(&a, &cfg, &s));
            }),
        });
    }

    // Same kernel at a denser, squarer shape (different cache behaviour).
    {
        let a = datagen::uniform_random::<f64>(
            div(4000, scale),
            div(1000, scale),
            2e-2,
            SUITE_SEED + 1,
        );
        let d = 2 * a.ncols();
        let cfg = SketchConfig::new(d, 512.min(d), 128.min(a.ncols()), SUITE_SEED + 1);
        out.push(Scenario {
            name: "alg3_square",
            kernel: "alg3",
            shape: shape_of(&a),
            run: Box::new(move || {
                let s = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
                std::hint::black_box(sketch_alg3(&a, &cfg, &s));
            }),
        });
    }

    // The ±1 sign kernel (Table II's cheapest distribution).
    {
        let (a, cfg) = (a_tall.clone(), cfg3);
        out.push(Scenario {
            name: "alg3_signs",
            kernel: "alg3_signs",
            shape: shape_of(&a),
            run: Box::new(move || {
                let s = Rademacher::<i8>::sampler(FastRng::new(cfg.seed));
                std::hint::black_box(sketch_alg3_signs(&a, &cfg, &s));
            }),
        });
    }

    // Algorithm 4 on the blocked-CSR form of the tall operand.
    {
        let blocked = BlockedCsr::from_csc(&a_tall, cfg3.b_n);
        let cfg = cfg3;
        out.push(Scenario {
            name: "alg4_tall",
            kernel: "alg4",
            shape: shape_of(&a_tall),
            run: Box::new(move || {
                let s = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
                std::hint::black_box(sketch_alg4(&blocked, &cfg, &s));
            }),
        });
    }

    // LSQR with diagonal preconditioning on a conditioned tall problem.
    let a_lsq = tall_conditioned(
        div(6000, scale),
        div(128, scale),
        0.02,
        CondSpec::chain(2.0),
        SUITE_SEED + 2,
    );
    let (b_lsq, _) = make_rhs(&a_lsq, SUITE_SEED + 3);
    {
        let (a, b) = (a_lsq.clone(), b_lsq.clone());
        out.push(Scenario {
            name: "lsqr_iter",
            kernel: "lsqr_d",
            shape: shape_of(&a),
            run: Box::new(move || {
                let opts = LsqrOptions {
                    atol: 1e-12,
                    btol: 1e-12,
                    max_iters: 10_000,
                    stall_window: 0,
                };
                std::hint::black_box(solve_lsqr_d(&a, &b, &opts));
            }),
        });
    }

    // LSMR on the same operator.
    {
        let (a, b) = (a_lsq.clone(), b_lsq.clone());
        out.push(Scenario {
            name: "lsmr_iter",
            kernel: "lsmr",
            shape: shape_of(&a),
            run: Box::new(move || {
                let mut op = CscOp::new(&a);
                let opts = LsmrOptions::default();
                std::hint::black_box(lsmr(&mut op, &b, &opts));
            }),
        });
    }

    // The service batcher's fusion, isolated from socket I/O: four
    // same-shape sketches run back to back (what an unbatched server does
    // per connection) versus one multi-seed blocked pass over the operand
    // (what the batcher coalesces them into). The pair is the kernel-level
    // half of the PR-5 acceptance ratio; `loadgen --compare` measures the
    // same fusion end to end over the wire.
    {
        let (a, cfg) = (a_tall.clone(), cfg3);
        out.push(Scenario {
            name: "svc_sketch_seq4",
            kernel: "alg3 x4",
            shape: shape_of(&a),
            run: Box::new(move || {
                for r in 0..4u64 {
                    let s = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed + r));
                    std::hint::black_box(sketch_alg3(&a, &cfg, &s));
                }
            }),
        });
    }
    {
        let (a, cfg) = (a_tall.clone(), cfg3);
        out.push(Scenario {
            name: "svc_sketch_batch4",
            kernel: "alg3_multi",
            shape: shape_of(&a),
            run: Box::new(move || {
                let samplers: Vec<_> = (0..4u64)
                    .map(|r| UnitUniform::<f64>::sampler(FastRng::new(cfg.seed + r)))
                    .collect();
                std::hint::black_box(sketch_alg3_multi(&a, &cfg, &samplers));
            }),
        });
    }

    // Sketch-and-precondition end to end at smoke scale.
    {
        let (a, b) = (a_lsq, b_lsq);
        out.push(Scenario {
            name: "sap_e2e",
            kernel: "sap(qr)+lsqr",
            shape: shape_of(&a),
            run: Box::new(move || {
                let opts = SapOptions {
                    gamma: 2,
                    b_d: 128,
                    b_n: 32,
                    seed: SUITE_SEED + 4,
                    flavor: SapFlavor::Qr,
                    lsqr: LsqrOptions::default(),
                };
                std::hint::black_box(solve_sap(&a, &b, &opts));
            }),
        });
    }

    out
}

/// Print the scenario suite as a table — the `benchgate list` subcommand.
/// Shapes are evaluated at `1/scale` of the full gate sizes, so `list
/// --quick` shows exactly what `record --quick` would run.
pub fn print_suite(scale: usize) {
    let rows: Vec<Vec<String>> = suite(scale)
        .iter()
        .map(|sc| vec![sc.name.to_string(), sc.kernel.to_string(), sc.shape.clone()])
        .collect();
    print_table(
        &format!("benchgate suite at scale 1/{}", scale.max(1)),
        &["scenario", "kernel", "shape"],
        &rows,
    );
}

/// Percentile summary of one latency histogram, as stored in the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// Histogram path (e.g. `sketch/alg3/block`).
    pub path: String,
    /// Recorded samples.
    pub count: u64,
    /// p50 / p90 / p99 in nanoseconds (mid-bucket estimates).
    pub p50_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// Median absolute deviation.
    pub mad_ns: f64,
}

/// Measured results of one scenario: all repetition times, their
/// median/MAD, the deterministic counter snapshot of a single repetition,
/// and the per-block latency histograms it produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name (comparison key).
    pub name: String,
    /// Wall time of every repetition, in order.
    pub reps_ns: Vec<u64>,
    /// Nearest-rank median of `reps_ns`.
    pub median_ns: u64,
    /// Median absolute deviation of `reps_ns` about the median.
    pub mad_ns: u64,
    /// Minimum repetition (the steal-noise-free floor).
    pub min_ns: u64,
    /// obskit counters of one repetition, in [`Ctr`] slot order. The gate
    /// requires these to be identical across repetitions and runs.
    pub counters: [u64; NCTR],
    /// Histogram summaries of one repetition.
    pub hists: Vec<HistSummary>,
}

/// Run manifest embedded in every baseline for provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Unix seconds when the baseline was recorded.
    pub created_unix: u64,
    /// `git rev-parse HEAD` of the working tree (or `"unknown"`).
    pub git_sha: String,
    /// [`SUITE_SEED`] the scenarios derive from.
    pub seed: u64,
    /// Size divisor the suite ran at.
    pub scale: usize,
    /// Repetitions per scenario.
    pub reps: usize,
    /// `available_parallelism` of the recording host.
    pub threads: usize,
    /// Cargo features compiled in (currently `obs` or nothing).
    pub cargo_features: Vec<String>,
    /// obskit crate version.
    pub obskit_version: String,
    /// Whole-suite counter totals (sum over one repetition of each
    /// scenario).
    pub counters: [u64; NCTR],
    /// Measured-vs-model traffic ratio per kernel, from a calibration
    /// sketch on the suite's tall operand.
    pub traffic_ratios: Vec<(String, f64)>,
}

/// A recorded `BENCH_*.json` baseline: manifest plus per-scenario results.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Provenance manifest.
    pub manifest: Manifest,
    /// Per-scenario measurements.
    pub scenarios: Vec<ScenarioResult>,
}

fn median_u64(sorted: &[u64]) -> u64 {
    sorted[sorted.len() / 2]
}

fn median_mad(reps: &[u64]) -> (u64, u64) {
    let mut s = reps.to_vec();
    s.sort_unstable();
    let med = median_u64(&s);
    let mut devs: Vec<u64> = s.iter().map(|&x| x.abs_diff(med)).collect();
    devs.sort_unstable();
    (med, median_u64(&devs))
}

#[cfg(not(target_arch = "wasm32"))]
fn busy_wait_ns(ns: u64) {
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Execute one scenario `reps` times, with [`obskit::reset`] before every
/// repetition so the global registry describes exactly one execution — the
/// fix that keeps counters from scaling with `--reps` (two identical
/// back-to-back runs report identical totals). Returns an error when the
/// deterministic counters differ between repetitions.
pub fn run_scenario(sc: &Scenario, cfg: &GateConfig) -> Result<ScenarioResult, String> {
    run_scenario_acc(sc, cfg, None)
}

// As `run_scenario`, additionally folding the first repetition's telemetry
// snapshot into `acc` (the `--obs-json` export path).
fn run_scenario_acc(
    sc: &Scenario,
    cfg: &GateConfig,
    mut acc: Option<&mut obskit::Snapshot>,
) -> Result<ScenarioResult, String> {
    let mut reps_ns = Vec::with_capacity(cfg.reps);
    let mut counters: Option<[u64; NCTR]> = None;
    let mut hists: Vec<HistSummary> = Vec::new();
    for rep in 0..cfg.reps.max(1) {
        obskit::reset();
        let t0 = Instant::now();
        (sc.run)();
        if cfg.inject_slowdown_ns > 0 {
            busy_wait_ns(cfg.inject_slowdown_ns);
        }
        reps_ns.push(t0.elapsed().as_nanos() as u64);
        let snap = obskit::snapshot();
        match &counters {
            None => {
                counters = Some(snap.counters);
                hists = snap
                    .hists
                    .iter()
                    .map(|(path, h)| HistSummary {
                        path: path.clone(),
                        count: h.count(),
                        p50_ns: h.quantile(0.5),
                        p90_ns: h.quantile(0.9),
                        p99_ns: h.quantile(0.99),
                        mad_ns: h.mad(),
                    })
                    .collect();
                if let Some(acc) = acc.as_deref_mut() {
                    merge_snapshot(acc, &snap);
                }
            }
            Some(first) => {
                if *first != snap.counters {
                    return Err(format!(
                        "scenario {}: counters differ between repetitions ({:?} vs {:?}) — \
                         work is nondeterministic, the gate cannot baseline it",
                        sc.name, first, snap.counters
                    ));
                }
                let _ = rep;
            }
        }
    }
    let (median_ns, mad_ns) = median_mad(&reps_ns);
    Ok(ScenarioResult {
        name: sc.name.to_string(),
        min_ns: reps_ns.iter().copied().min().unwrap_or(0),
        reps_ns,
        median_ns,
        mad_ns,
        counters: counters.unwrap_or([0; NCTR]),
        hists,
    })
}

// Fold snapshot `s` into `acc`: counters add, spans add per path, histograms
// merge per path (exact — see `Hist::merge`), events concatenate. Used to
// build the suite-wide telemetry export out of per-scenario snapshots that
// `run_scenario`'s reset-between-reps discipline would otherwise discard.
fn merge_snapshot(acc: &mut obskit::Snapshot, s: &obskit::Snapshot) {
    for (slot, v) in s.counters.iter().enumerate() {
        acc.counters[slot] += v;
    }
    for (path, st) in &s.spans {
        match acc.spans.iter_mut().find(|(p, _)| p == path) {
            Some((_, e)) => {
                e.ns += st.ns;
                e.calls += st.calls;
            }
            None => acc.spans.push((path.clone(), *st)),
        }
    }
    for (path, h) in &s.hists {
        match acc.hists.iter_mut().find(|(p, _)| p == path) {
            Some((_, e)) => e.merge(h),
            None => acc.hists.push((path.clone(), h.clone())),
        }
    }
    acc.events.extend(s.events.iter().cloned());
    acc.dropped_events += s.dropped_events;
}

/// Run the whole suite at `cfg` (telemetry forced on for the duration so
/// counters and histograms are recorded; the prior gate state is restored).
pub fn run_suite(cfg: &GateConfig) -> Result<Vec<ScenarioResult>, String> {
    Ok(run_suite_with_snapshot(cfg)?.0)
}

/// As [`run_suite`], additionally returning the merged telemetry snapshot of
/// **one repetition of every scenario** — the same convention as the
/// manifest's whole-suite counters. This is what `benchgate --obs-json`
/// exports: `run_scenario` resets the registry between repetitions, so the
/// registry itself never holds more than the last repetition.
pub fn run_suite_with_snapshot(
    cfg: &GateConfig,
) -> Result<(Vec<ScenarioResult>, obskit::Snapshot), String> {
    let was = obskit::enabled();
    obskit::set_enabled(true);
    let mut acc = obskit::Snapshot::default();
    let mut results = Vec::new();
    let mut err = None;
    for sc in suite(cfg.scale) {
        match run_scenario_acc(&sc, cfg, Some(&mut acc)) {
            Ok(r) => results.push(r),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    obskit::set_enabled(was);
    obskit::reset();
    match err {
        Some(e) => Err(e),
        None => {
            acc.spans.sort_by(|a, b| a.0.cmp(&b.0));
            acc.hists.sort_by(|a, b| a.0.cmp(&b.0));
            Ok((results, acc))
        }
    }
}

/// Calibration pass for the manifest: sketch the suite's tall operand with
/// Algorithms 3 and 4 and compare the measured byte counters against the
/// §III-A cost model, as `repro smoke` does.
pub fn traffic_calibration(scale: usize) -> Vec<(String, f64)> {
    let was = obskit::enabled();
    obskit::set_enabled(true);
    obskit::reset();
    let a = datagen::uniform_random::<f64>(div(12000, scale), div(600, scale), 5e-3, SUITE_SEED);
    let d = 2 * a.ncols();
    let cfg = SketchConfig::new(d, 256.min(d), 64.min(a.ncols()), SUITE_SEED);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let model = CostModel::default_host();
    let rho = a.density();
    let mut out = Vec::new();
    let c0 = obskit::snapshot().counters;
    std::hint::black_box(sketch_alg3(&a, &cfg, &sampler));
    let c1 = obskit::snapshot().counters;
    let blocked = BlockedCsr::from_csc(&a, cfg.b_n);
    std::hint::black_box(sketch_alg4(&blocked, &cfg, &sampler));
    let c2 = obskit::snapshot().counters;
    for (kernel, lo, hi) in [("alg3", &c0, &c1), ("alg4", &c1, &c2)] {
        let flops = hi[Ctr::Flops as usize] - lo[Ctr::Flops as usize];
        let measured = (hi[Ctr::BytesA as usize] - lo[Ctr::BytesA as usize])
            + (hi[Ctr::BytesOut as usize] - lo[Ctr::BytesOut as usize]);
        let rep = sketchcore::TrafficReport::compare(&model, rho, cfg.b_n, flops, 8, measured);
        out.push((kernel.to_string(), rep.ratio));
    }
    obskit::set_enabled(was);
    obskit::reset();
    out
}

/// `git rev-parse HEAD`, or `"unknown"` outside a git checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Record a full baseline: run the suite, the traffic calibration, and
/// assemble the manifest.
pub fn record_baseline(cfg: &GateConfig) -> Result<Baseline, String> {
    Ok(record_baseline_with_snapshot(cfg)?.0)
}

/// As [`record_baseline`], additionally returning the suite's merged
/// telemetry snapshot (see [`run_suite_with_snapshot`]) for `--obs-json`.
pub fn record_baseline_with_snapshot(
    cfg: &GateConfig,
) -> Result<(Baseline, obskit::Snapshot), String> {
    let (scenarios, snap) = run_suite_with_snapshot(cfg)?;
    let mut counters = [0u64; NCTR];
    for sc in &scenarios {
        for (slot, v) in sc.counters.iter().enumerate() {
            counters[slot] += v;
        }
    }
    let manifest = Manifest {
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        git_sha: git_sha(),
        seed: SUITE_SEED,
        scale: cfg.scale,
        reps: cfg.reps,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        cargo_features: if obskit::OBS_COMPILED {
            vec!["obs".to_string()]
        } else {
            Vec::new()
        },
        obskit_version: obskit::VERSION.to_string(),
        counters,
        traffic_ratios: traffic_calibration(cfg.scale),
    };
    Ok((
        Baseline {
            schema: SCHEMA_VERSION,
            manifest,
            scenarios,
        },
        snap,
    ))
}

// --- JSON (de)serialization --------------------------------------------

fn counters_to_json(counters: &[u64; NCTR]) -> Jval {
    Jval::Obj(
        CTR_NAMES
            .iter()
            .zip(counters.iter())
            .map(|(name, &v)| (name.to_string(), Jval::U(v)))
            .collect(),
    )
}

fn counters_from_json(v: &Jval) -> Result<[u64; NCTR], String> {
    let mut out = [0u64; NCTR];
    for (slot, name) in CTR_NAMES.iter().enumerate() {
        // Absent names default to 0: baselines recorded before a counter
        // existed (the set grows over time) stay loadable, and the JSONL
        // writer skips zero-valued counters anyway.
        out[slot] = match v.get(name) {
            Some(field) => field
                .as_u64()
                .ok_or_else(|| format!("counter field {name} is not an integer"))?,
            None => 0,
        };
    }
    Ok(out)
}

fn f64_field(v: &Jval, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Jval::as_f64)
        .ok_or_else(|| format!("missing number field {key}"))
}

fn u64_field(v: &Jval, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Jval::as_u64)
        .ok_or_else(|| format!("missing integer field {key}"))
}

fn str_field(v: &Jval, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Jval::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key}"))
}

impl Baseline {
    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let m = &self.manifest;
        let manifest = Jval::Obj(vec![
            ("created_unix".into(), Jval::U(m.created_unix)),
            ("git_sha".into(), Jval::Str(m.git_sha.clone())),
            ("seed".into(), Jval::U(m.seed)),
            ("scale".into(), Jval::U(m.scale as u64)),
            ("reps".into(), Jval::U(m.reps as u64)),
            ("threads".into(), Jval::U(m.threads as u64)),
            (
                "cargo_features".into(),
                Jval::Arr(
                    m.cargo_features
                        .iter()
                        .map(|f| Jval::Str(f.clone()))
                        .collect(),
                ),
            ),
            ("obskit_version".into(), Jval::Str(m.obskit_version.clone())),
            ("counters".into(), counters_to_json(&m.counters)),
            (
                "traffic_ratios".into(),
                Jval::Obj(
                    m.traffic_ratios
                        .iter()
                        .map(|(k, r)| (k.clone(), Jval::F(*r)))
                        .collect(),
                ),
            ),
        ]);
        let scenarios = Jval::Arr(
            self.scenarios
                .iter()
                .map(|sc| {
                    Jval::Obj(vec![
                        ("name".into(), Jval::Str(sc.name.clone())),
                        (
                            "reps_ns".into(),
                            Jval::Arr(sc.reps_ns.iter().map(|&t| Jval::U(t)).collect()),
                        ),
                        ("median_ns".into(), Jval::U(sc.median_ns)),
                        ("mad_ns".into(), Jval::U(sc.mad_ns)),
                        ("min_ns".into(), Jval::U(sc.min_ns)),
                        ("counters".into(), counters_to_json(&sc.counters)),
                        (
                            "hists".into(),
                            Jval::Arr(
                                sc.hists
                                    .iter()
                                    .map(|h| {
                                        Jval::Obj(vec![
                                            ("path".into(), Jval::Str(h.path.clone())),
                                            ("count".into(), Jval::U(h.count)),
                                            ("p50_ns".into(), Jval::F(h.p50_ns)),
                                            ("p90_ns".into(), Jval::F(h.p90_ns)),
                                            ("p99_ns".into(), Jval::F(h.p99_ns)),
                                            ("mad_ns".into(), Jval::F(h.mad_ns)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Jval::Obj(vec![
            ("schema".into(), Jval::U(self.schema)),
            ("kind".into(), Jval::Str(BASELINE_KIND.into())),
            ("manifest".into(), manifest),
            ("scenarios".into(), scenarios),
        ])
        .render()
    }

    /// Parse a baseline back from its JSON text, validating the schema.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let kind = str_field(&v, "kind")?;
        if kind != BASELINE_KIND {
            return Err(format!("not a bench baseline (kind {kind:?})"));
        }
        let schema = u64_field(&v, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "baseline schema {schema} unsupported (this build reads {SCHEMA_VERSION})"
            ));
        }
        let m = v.get("manifest").ok_or("missing manifest")?;
        let manifest = Manifest {
            created_unix: u64_field(m, "created_unix")?,
            git_sha: str_field(m, "git_sha")?,
            seed: u64_field(m, "seed")?,
            scale: u64_field(m, "scale")? as usize,
            reps: u64_field(m, "reps")? as usize,
            threads: u64_field(m, "threads")? as usize,
            cargo_features: m
                .get("cargo_features")
                .and_then(Jval::as_arr)
                .ok_or("missing cargo_features")?
                .iter()
                .filter_map(|f| f.as_str().map(str::to_string))
                .collect(),
            obskit_version: str_field(m, "obskit_version")?,
            counters: counters_from_json(m.get("counters").ok_or("missing manifest counters")?)?,
            traffic_ratios: match m.get("traffic_ratios") {
                Some(Jval::Obj(fields)) => fields
                    .iter()
                    .map(|(k, r)| {
                        r.as_f64()
                            .map(|x| (k.clone(), x))
                            .ok_or_else(|| format!("bad traffic ratio {k}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("missing traffic_ratios".into()),
            },
        };
        let scenarios = v
            .get("scenarios")
            .and_then(Jval::as_arr)
            .ok_or("missing scenarios")?
            .iter()
            .map(|sc| {
                let reps_ns: Vec<u64> = sc
                    .get("reps_ns")
                    .and_then(Jval::as_arr)
                    .ok_or("missing reps_ns")?
                    .iter()
                    .filter_map(Jval::as_u64)
                    .collect();
                let hists = sc
                    .get("hists")
                    .and_then(Jval::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|h| {
                        Ok(HistSummary {
                            path: str_field(h, "path")?,
                            count: u64_field(h, "count")?,
                            p50_ns: f64_field(h, "p50_ns")?,
                            p90_ns: f64_field(h, "p90_ns")?,
                            p99_ns: f64_field(h, "p99_ns")?,
                            mad_ns: f64_field(h, "mad_ns")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(ScenarioResult {
                    name: str_field(sc, "name")?,
                    reps_ns,
                    median_ns: u64_field(sc, "median_ns")?,
                    mad_ns: u64_field(sc, "mad_ns")?,
                    min_ns: u64_field(sc, "min_ns")?,
                    counters: counters_from_json(
                        sc.get("counters").ok_or("missing scenario counters")?,
                    )?,
                    hists,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Baseline {
            schema,
            manifest,
            scenarios,
        })
    }
}

// --- the regression gate -----------------------------------------------

/// Outcome of comparing one scenario against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Within threshold.
    Pass,
    /// Median faster than baseline by more than the threshold
    /// (informational; does not fail the gate).
    Improved,
    /// Median slower than baseline by more than the threshold.
    Regression,
    /// Deterministic counters differ from the baseline: the *work* changed,
    /// so the timing comparison is apples to oranges.
    WorkDrift(Vec<String>),
    /// Scenario present in only one of the two runs.
    Missing,
}

/// Per-scenario comparison row.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Scenario name.
    pub name: String,
    /// Baseline median (ns); 0 when missing.
    pub base_median_ns: u64,
    /// Current median (ns); 0 when missing.
    pub cur_median_ns: u64,
    /// `(cur − base) / base`.
    pub rel_delta: f64,
    /// The applied threshold as a fraction of the baseline median.
    pub rel_threshold: f64,
    /// Verdict.
    pub verdict: Verdict,
}

/// Compare a fresh suite run against a baseline with the noise-aware
/// threshold `max(rel_tol·median_base, k·max(MAD_base, MAD_cur))`. Returns
/// the per-scenario deltas and whether the gate fails (any regression, work
/// drift, or missing scenario).
pub fn compare(
    base: &Baseline,
    current: &[ScenarioResult],
    cfg: &GateConfig,
) -> (Vec<Delta>, bool) {
    let mut deltas = Vec::new();
    let mut fail = false;
    for b in &base.scenarios {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            fail = true;
            deltas.push(Delta {
                name: b.name.clone(),
                base_median_ns: b.median_ns,
                cur_median_ns: 0,
                rel_delta: f64::NAN,
                rel_threshold: f64::NAN,
                verdict: Verdict::Missing,
            });
            continue;
        };
        let drift: Vec<String> = CTR_NAMES
            .iter()
            .enumerate()
            .filter(|&(slot, _)| b.counters[slot] != c.counters[slot])
            .map(|(slot, name)| format!("{name}: {} → {}", b.counters[slot], c.counters[slot]))
            .collect();
        let base_med = b.median_ns.max(1);
        let thr_ns = (cfg.rel_tol * base_med as f64).max(cfg.mad_k * b.mad_ns.max(c.mad_ns) as f64);
        let rel_delta = (c.median_ns as f64 - base_med as f64) / base_med as f64;
        let rel_threshold = thr_ns / base_med as f64;
        let verdict = if !drift.is_empty() {
            fail = true;
            Verdict::WorkDrift(drift)
        } else if c.median_ns as f64 > base_med as f64 + thr_ns {
            fail = true;
            Verdict::Regression
        } else if (c.median_ns as f64) < base_med as f64 - thr_ns {
            Verdict::Improved
        } else {
            Verdict::Pass
        };
        deltas.push(Delta {
            name: b.name.clone(),
            base_median_ns: b.median_ns,
            cur_median_ns: c.median_ns,
            rel_delta,
            rel_threshold,
            verdict,
        });
    }
    for c in current {
        if !base.scenarios.iter().any(|b| b.name == c.name) {
            // New scenarios are fine (the suite grew); surface but pass.
            deltas.push(Delta {
                name: c.name.clone(),
                base_median_ns: 0,
                cur_median_ns: c.median_ns,
                rel_delta: f64::NAN,
                rel_threshold: f64::NAN,
                verdict: Verdict::Pass,
            });
        }
    }
    (deltas, fail)
}

/// Print the human-readable delta table.
pub fn print_deltas(deltas: &[Delta]) {
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            let verdict = match &d.verdict {
                Verdict::Pass => "pass".to_string(),
                Verdict::Improved => "IMPROVED".to_string(),
                Verdict::Regression => "REGRESSION".to_string(),
                Verdict::WorkDrift(fields) => format!("WORK DRIFT ({})", fields.join("; ")),
                Verdict::Missing => "MISSING".to_string(),
            };
            vec![
                d.name.clone(),
                fmt_s(d.base_median_ns as f64 * 1e-9),
                fmt_s(d.cur_median_ns as f64 * 1e-9),
                if d.rel_delta.is_finite() {
                    format!("{:+.1}%", d.rel_delta * 100.0)
                } else {
                    "-".into()
                },
                if d.rel_threshold.is_finite() {
                    format!("±{:.1}%", d.rel_threshold * 100.0)
                } else {
                    "-".into()
                },
                verdict,
            ]
        })
        .collect();
    print_table(
        "benchgate — per-scenario medians vs baseline",
        &[
            "scenario",
            "base (s)",
            "now (s)",
            "Δ",
            "threshold",
            "verdict",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_result(name: &str, median: u64, mad: u64, counters: [u64; NCTR]) -> ScenarioResult {
        ScenarioResult {
            name: name.into(),
            reps_ns: vec![median; 3],
            median_ns: median,
            mad_ns: mad,
            min_ns: median,
            counters,
            hists: vec![],
        }
    }

    fn tiny_baseline(scenarios: Vec<ScenarioResult>) -> Baseline {
        Baseline {
            schema: SCHEMA_VERSION,
            manifest: Manifest {
                created_unix: 1,
                git_sha: "abc".into(),
                seed: SUITE_SEED,
                scale: 4,
                reps: 3,
                threads: 1,
                cargo_features: vec!["obs".into()],
                obskit_version: "0.1.0".into(),
                counters: [0; NCTR],
                traffic_ratios: vec![("alg3".into(), 1.5)],
            },
            scenarios,
        }
    }

    #[test]
    fn median_mad_closed_form() {
        let (med, mad) = median_mad(&[10, 30, 20, 1000, 25]);
        assert_eq!(med, 25);
        // Deviations: {15, 5, 5, 975, 0} → sorted {0,5,5,15,975} → median 5.
        assert_eq!(mad, 5);
    }

    #[test]
    fn compare_flags_only_beyond_threshold() {
        let base = tiny_baseline(vec![tiny_result("s", 1_000_000, 10_000, [1; NCTR])]);
        let cfg = GateConfig {
            rel_tol: 0.10,
            mad_k: 4.0,
            ..GateConfig::default()
        };
        // +5% — inside the 10% floor.
        let (d, fail) = compare(
            &base,
            &[tiny_result("s", 1_050_000, 10_000, [1; NCTR])],
            &cfg,
        );
        assert!(!fail);
        assert_eq!(d[0].verdict, Verdict::Pass);
        // +50% — regression.
        let (d, fail) = compare(
            &base,
            &[tiny_result("s", 1_500_000, 10_000, [1; NCTR])],
            &cfg,
        );
        assert!(fail);
        assert_eq!(d[0].verdict, Verdict::Regression);
        // +20% but the MAD term is huge: noise absorbs it.
        let (d, fail) = compare(
            &base,
            &[tiny_result("s", 1_200_000, 100_000, [1; NCTR])],
            &cfg,
        );
        assert!(!fail, "400k MAD threshold must absorb a 200k delta");
        assert_eq!(d[0].verdict, Verdict::Pass);
        // −50% — improvement, does not fail.
        let (d, fail) = compare(&base, &[tiny_result("s", 500_000, 10_000, [1; NCTR])], &cfg);
        assert!(!fail);
        assert_eq!(d[0].verdict, Verdict::Improved);
    }

    #[test]
    fn compare_separates_work_drift_from_perf() {
        let base = tiny_baseline(vec![tiny_result("s", 1_000_000, 10_000, [1; NCTR])]);
        let cfg = GateConfig::default();
        let mut drifted = [1u64; NCTR];
        drifted[Ctr::Flops as usize] = 2;
        let (d, fail) = compare(&base, &[tiny_result("s", 1_000_000, 10_000, drifted)], &cfg);
        assert!(fail);
        assert!(matches!(&d[0].verdict, Verdict::WorkDrift(f) if f.len() == 1));
        print_deltas(&d); // must not panic
    }

    #[test]
    fn compare_flags_missing_scenarios() {
        let base = tiny_baseline(vec![tiny_result("gone", 1_000, 1, [0; NCTR])]);
        let (d, fail) = compare(&base, &[], &GateConfig::default());
        assert!(fail);
        assert_eq!(d[0].verdict, Verdict::Missing);
        // A new scenario in the current run passes.
        let (d, fail) = compare(
            &tiny_baseline(vec![]),
            &[tiny_result("new", 1_000, 1, [0; NCTR])],
            &GateConfig::default(),
        );
        assert!(!fail);
        assert_eq!(d[0].verdict, Verdict::Pass);
    }

    #[test]
    fn baseline_json_round_trips_every_field() {
        let mut counters = [0u64; NCTR];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = (i as u64 + 3) * 7 % 11; // distinct nonzero-ish values per slot
        }
        let mut sc = tiny_result("alg3_tall", 123_456, 789, counters);
        sc.reps_ns = vec![123_000, 123_456, 999_999];
        sc.min_ns = 123_000;
        sc.hists = vec![HistSummary {
            path: "sketch/alg3/block".into(),
            count: 40,
            p50_ns: 1000.0,
            p90_ns: 2000.0,
            p99_ns: 3000.0,
            mad_ns: 150.0,
        }];
        let base = tiny_baseline(vec![sc]);
        let text = base.to_json();
        let back = Baseline::from_json(&text).expect("parse back");
        assert_eq!(base, back);
    }

    #[test]
    fn from_json_rejects_wrong_kind_and_schema() {
        assert!(Baseline::from_json("{\"kind\": \"other\", \"schema\": 1}").is_err());
        let good = tiny_baseline(vec![]).to_json();
        let wrong_schema = good.replace("\"schema\": 1", "\"schema\": 99");
        assert!(Baseline::from_json(&wrong_schema).is_err());
        assert!(Baseline::from_json("not json").is_err());
    }

    #[test]
    fn suite_scenarios_have_unique_names() {
        let names: Vec<&str> = suite(16).iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert!(names.len() >= 5, "suite must cover kernels and solvers");
    }

    #[test]
    fn suite_metadata_is_populated() {
        for sc in suite(16) {
            assert!(!sc.kernel.is_empty(), "{} has no kernel", sc.name);
            assert!(
                sc.shape.contains('×') && sc.shape.contains("nnz"),
                "{} has malformed shape {:?}",
                sc.name,
                sc.shape
            );
        }
        print_suite(16); // must not panic
    }

    #[test]
    fn merge_snapshot_adds_counters_spans_and_hists() {
        use obskit::{Hist, SpanStat};
        let mut acc = obskit::Snapshot::default();
        let mut h1 = Hist::new();
        h1.record(100);
        let s1 = obskit::Snapshot {
            spans: vec![("a".into(), SpanStat { ns: 10, calls: 1 })],
            hists: vec![("h".into(), h1.clone())],
            counters: {
                let mut c = [0; NCTR];
                c[Ctr::Samples as usize] = 5;
                c
            },
            events: vec![],
            dropped_events: 1,
        };
        merge_snapshot(&mut acc, &s1);
        merge_snapshot(&mut acc, &s1);
        assert_eq!(acc.counters[Ctr::Samples as usize], 10);
        assert_eq!(acc.spans[0].1, SpanStat { ns: 20, calls: 2 });
        assert_eq!(acc.hists[0].1.count(), 2);
        assert_eq!(acc.dropped_events, 2);
        // A second path lands as its own entry.
        let s2 = obskit::Snapshot {
            spans: vec![("b".into(), SpanStat { ns: 7, calls: 1 })],
            ..obskit::Snapshot::default()
        };
        merge_snapshot(&mut acc, &s2);
        assert_eq!(acc.spans.len(), 2);
    }
}
