//! Shared `--trace-out` / `--trace-folded` plumbing for the binaries.
//!
//! `repro`, `sketchprof` and `benchgate record` accept the same two flags
//! and drain the flight recorder ([`obskit::trace`]) the same way, so the
//! lifecycle lives here once:
//!
//! 1. [`TraceOpts::arm`] before the workload — drains any residue and turns
//!    the recorder on, so the capture describes exactly this run.
//! 2. [`TraceOpts::finish`] after the workload — turns the recorder off,
//!    drains it, prints the ranked slowest-blocks anomaly table (measured
//!    block latency vs the per-path traffic-model prediction, flagged with
//!    the bench gate's `max(rel_tol·pred, k·MAD)` threshold shape), and
//!    writes the requested artifacts: Chrome Trace Event / Perfetto JSON
//!    for `--trace-out`, collapsed stacks plus a self-contained
//!    [`crate::flame`] SVG for `--trace-folded`.
//!
//! With neither flag given both calls are no-ops, so the binaries can call
//! them unconditionally.

use obskit::trace::{self, BlockAttr};

/// Anomaly-attribution relative tolerance (mirrors the bench gate default).
pub const REL_TOL: f64 = 0.30;
/// Anomaly-attribution MAD multiplier (mirrors the bench gate default).
pub const MAD_K: f64 = 4.0;
/// Rows shown in the slowest-blocks table.
pub const TOP_BLOCKS: usize = 15;

/// Where a run's flight-recorder capture should go.
#[derive(Clone, Debug, Default)]
pub struct TraceOpts {
    /// Chrome Trace Event / Perfetto JSON path (`--trace-out`).
    pub out: Option<String>,
    /// Collapsed-stack path (`--trace-folded`); a self-contained SVG
    /// flamegraph is also written next to it at `<path>.svg`.
    pub folded: Option<String>,
}

impl TraceOpts {
    /// Was any trace output requested?
    pub fn active(&self) -> bool {
        self.out.is_some() || self.folded.is_some()
    }

    /// Arm the flight recorder for the coming workload: drain residue from
    /// earlier activity in this process, then enable tracing. No-op when no
    /// output was requested (the `SKETCH_TRACE` env gate still applies then).
    pub fn arm(&self) {
        if self.active() {
            let _ = trace::take();
            trace::set_enabled(true);
        }
    }

    /// Drain the recorder, print the slowest-blocks anomaly table, and write
    /// the requested artifacts. No-op when no output was requested.
    pub fn finish(&self) -> std::io::Result<()> {
        if !self.active() {
            return Ok(());
        }
        trace::set_enabled(false);
        let cap = trace::take();
        let recs = cap.block_records();
        if recs.is_empty() {
            println!("trace: no kernel blocks captured");
        } else {
            let attrs = trace::attribute(&recs, REL_TOL, MAD_K);
            print_slowest_blocks(&attrs);
        }
        if cap.dropped > 0 {
            println!(
                "trace: {} events dropped (ring/store capacity; raise SKETCH_TRACE_CAP)",
                cap.dropped
            );
        }
        if let Some(path) = &self.out {
            std::fs::write(path, cap.chrome_json())?;
            println!(
                "trace: Perfetto/Chrome trace written to {path} ({} events) — load it at ui.perfetto.dev or chrome://tracing",
                cap.events.len()
            );
        }
        if let Some(path) = &self.folded {
            let folded = cap.folded();
            std::fs::write(path, folded.as_bytes())?;
            let svg = format!("{path}.svg");
            std::fs::write(
                &svg,
                crate::flame::folded_to_svg(&folded, "sketch flamegraph"),
            )?;
            println!("trace: folded stacks written to {path}, flamegraph to {svg}");
        }
        Ok(())
    }
}

/// Print the ranked slowest-blocks table: per block its measured duration,
/// the traffic-model prediction, and the anomaly verdict. Durations are in
/// µs (kernel blocks live in the µs–ms range).
pub fn print_slowest_blocks(attrs: &[BlockAttr]) {
    let shown = attrs.len().min(TOP_BLOCKS);
    let flagged = attrs.iter().filter(|a| a.flagged).count();
    let rows: Vec<Vec<String>> = attrs[..shown]
        .iter()
        .map(|a| {
            let r = &a.rec;
            vec![
                r.path.to_string(),
                format!("{}", r.i),
                format!("{}", r.j),
                format!("{}", r.nnz),
                format!("{:.1}", r.dur_ns as f64 / 1e3),
                format!("{:.1}", a.pred_ns / 1e3),
                if a.pred_ns > 0.0 {
                    format!("{:+.0}%", (r.dur_ns as f64 / a.pred_ns - 1.0) * 100.0)
                } else {
                    "-".to_string()
                },
                if a.flagged { "ANOMALY" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    crate::print_table(
        &format!(
            "trace — slowest blocks ({shown} of {}, {flagged} anomalous)",
            attrs.len()
        ),
        &[
            "block",
            "i",
            "j",
            "nnz",
            "dur (µs)",
            "model (µs)",
            "Δ",
            "verdict",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use obskit::trace::{BlockRecord, TraceKind};

    #[test]
    fn inactive_opts_are_noops() {
        let opts = TraceOpts::default();
        assert!(!opts.active());
        opts.arm();
        assert!(!obskit::trace_enabled());
        opts.finish().unwrap();
    }

    #[test]
    fn print_slowest_blocks_does_not_panic() {
        let rec = BlockRecord {
            path: "sketch/alg3/block",
            tid: 1,
            ts_ns: 0,
            dur_ns: 1500,
            i: 0,
            j: 64,
            rows: 8,
            nnz: 120,
            bytes: 2048,
            cost: 3000,
        };
        print_slowest_blocks(&[
            BlockAttr {
                rec,
                pred_ns: 1000.0,
                threshold_ns: 300.0,
                flagged: true,
            },
            BlockAttr {
                rec,
                pred_ns: 0.0,
                threshold_ns: 0.0,
                flagged: false,
            },
        ]);
        print_slowest_blocks(&[]);
    }

    #[test]
    fn finish_writes_chrome_json_folded_and_svg() {
        let dir = std::env::temp_dir();
        let out = dir.join(format!("tracecli_{}.json", std::process::id()));
        let folded = dir.join(format!("tracecli_{}.folded", std::process::id()));
        let opts = TraceOpts {
            out: Some(out.to_str().unwrap().to_string()),
            folded: Some(folded.to_str().unwrap().to_string()),
        };
        opts.arm();
        assert!(obskit::trace_enabled());
        let t = obskit::trace::now_ns();
        obskit::trace::begin("run");
        obskit::trace::span_pair(
            "run/blk",
            t,
            t + 1000,
            TraceKind::BlockEnd,
            [0, 0, 8, 10, 100, 200],
        );
        obskit::trace::end("run");
        opts.finish().unwrap();
        assert!(!obskit::trace_enabled());

        let json = std::fs::read_to_string(&out).unwrap();
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count(),
            "unbalanced B/E in {json}"
        );
        assert!(json.contains("run/blk"));
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert!(folded_text.contains("run"));
        let svg_path = format!("{}.svg", folded.to_str().unwrap());
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        for p in [out.to_str().unwrap(), folded.to_str().unwrap(), &svg_path] {
            let _ = std::fs::remove_file(p);
        }
    }
}
