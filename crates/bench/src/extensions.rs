//! Extension runners — features beyond the paper's tables that the paper
//! names as future work or side notes: the pattern-aware kernel-choice
//! model, the underdetermined (minimum-norm) solver, and sketch-quality
//! (effective distortion) measurement.

use crate::{fmt_g, fmt_s, print_table, time_median, RunConfig};
use datagen::{abnormal_a, abnormal_b, abnormal_c};
use lstsq::{solve_min_norm_sap, LsqrOptions};
use rngkit::{FastRng, UnitUniform};
use sketchcore::{predict_kernels, sketch_alg3, sketch_alg4, KernelCosts, SketchConfig};
use sparsekit::BlockedCsr;

/// Pattern-aware kernel choice (§VI future work): predict the Alg 3 / Alg 4
/// winner per pattern from a one-pass profile, then measure both.
pub fn kernel_choice(rc: &RunConfig) {
    let m = (100_000 / rc.scale).max(1000);
    let n = (10_000 / rc.scale).max(100);
    let stride = (1000 / rc.scale).max(10);
    let d = 3 * n;
    let b_d = (3000 / rc.scale).max(32).min(d);
    let b_n = (1200 / rc.scale).max(8).min(n);
    let cfg = SketchConfig::new(d, b_d, b_n, 0xC0);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let costs = KernelCosts::default();

    let a_pat = abnormal_a::<f64>(m, n, stride, 1);
    let b_pat = abnormal_b::<f64>(m, n, a_pat.nnz(), 2998.0 / 3000.0, 1);
    let c_pat = abnormal_c::<f64>(m, n, stride, 1);

    let mut rows = Vec::new();
    for (name, a) in [
        ("Abnormal_A", &a_pat),
        ("Abnormal_B", &b_pat),
        ("Abnormal_C", &c_pat),
    ] {
        let pred = predict_kernels(a, d, b_n, &costs);
        let t3 = time_median(rc.reps, || sketch_alg3(a, &cfg, &sampler));
        let blocked = BlockedCsr::from_csc(a, b_n);
        let t4 = time_median(rc.reps, || sketch_alg4(&blocked, &cfg, &sampler));
        let measured_winner = if t4 < t3 { "Alg4" } else { "Alg3" };
        let predicted_winner = if pred.prefer_alg4() { "Alg4" } else { "Alg3" };
        rows.push(vec![
            name.into(),
            fmt_g(pred.alg3_samples as f64),
            fmt_g(pred.alg4_samples as f64),
            predicted_winner.into(),
            fmt_s(t3),
            fmt_s(t4),
            measured_winner.into(),
        ]);
    }
    print_table(
        "Extension — pattern-aware kernel choice (predicted vs measured)",
        &[
            "pattern",
            "alg3 samples",
            "alg4 samples",
            "model picks",
            "alg3 (s)",
            "alg4 (s)",
            "measured winner",
        ],
        &rows,
    );
}

/// Underdetermined minimum-norm solve via transpose sketching (footnote 2).
pub fn minnorm(rc: &RunConfig) {
    // A wide consistent system: transpose of a tall stand-in.
    let tall = datagen::uniform_random::<f64>((40_000 / rc.scale).max(2000).max(600), 500, 3e-3, 7);
    let tall = datagen::lsq::tall_conditioned(
        tall.nrows().max(600),
        500.min(tall.nrows() - 1),
        3e-3,
        datagen::lsq::CondSpec::chain(2.0),
        7,
    );
    let a = tall.transpose(); // wide m×n, m < n
    let x_any: Vec<f64> = (0..a.ncols())
        .map(|i| ((i % 13) as f64) / 6.0 - 1.0)
        .collect();
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&x_any, &mut b);

    let rep = solve_min_norm_sap(&a, &b, 2, 3000, 500, 3, &LsqrOptions::default());
    let norm_x: f64 = rep.x.iter().map(|v| v * v).sum::<f64>().sqrt();
    let norm_any: f64 = x_any.iter().map(|v| v * v).sum::<f64>().sqrt();
    let mut ax = vec![0.0; a.nrows()];
    a.spmv(&rep.x, &mut ax);
    let feas: f64 = ax
        .iter()
        .zip(b.iter())
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt()
        / b.iter().map(|v| v * v).sum::<f64>().sqrt();
    print_table(
        "Extension — minimum-norm solve of a wide system by transpose sketching",
        &["quantity", "value"],
        &[
            vec!["system".into(), format!("{}x{}", a.nrows(), a.ncols())],
            vec!["iterations".into(), rep.iters.to_string()],
            vec!["precond phase (s)".into(), fmt_s(rep.precond_s)],
            vec!["total (s)".into(), fmt_s(rep.total_s)],
            vec!["relative feasibility ‖Ax−b‖/‖b‖".into(), fmt_g(feas)],
            vec!["‖x_min‖ / ‖x_particular‖".into(), fmt_g(norm_x / norm_any)],
        ],
    );
}

/// Sketch quality: singular-value range of `S·Q` for orthonormal `Q`
/// (effective distortion, paper §IV-B2 / §V intro) across γ.
pub fn distortion(rc: &RunConfig) {
    let a = datagen::uniform_random::<f64>((20_000 / rc.scale).max(1500), 48, 0.01, 5);
    let mut rows = Vec::new();
    for gamma in [2usize, 3, 4, 8] {
        let (smin, smax) = crate::solvers::sketch_distortion(&a, gamma, 11);
        let eps = 1.0 / (gamma as f64).sqrt();
        rows.push(vec![
            gamma.to_string(),
            fmt_g(smin),
            fmt_g(smax),
            format!("[{:.3}, {:.3}]", 1.0 - eps, 1.0 + eps),
            fmt_g((smax / smin + 1.0) / (smax / smin - 1.0).max(1e-9)),
        ]);
    }
    print_table(
        "Extension — effective distortion of the sketch: σ(S·Q) vs theory 1±1/√γ",
        &[
            "γ",
            "σmin",
            "σmax",
            "theory range",
            "implied LSQR rate bound",
        ],
        &rows,
    );
}
