//! Minimal JSON value model, parser and writer for the benchmark baseline
//! files (`BENCH_*.json`).
//!
//! The repo is built fully offline with no external crates, so like
//! obskit's JSONL writer this is hand-rolled std-only code. It supports
//! exactly what the baseline schema needs: objects, arrays, strings,
//! booleans, null, and numbers — with unsigned/signed integers kept exact
//! (not routed through `f64`), because the regression gate cross-checks
//! counter values for *bitwise* equality.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Jval {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `u64`, kept exact.
    U(u64),
    /// A negative integer that fits `i64`, kept exact.
    I(i64),
    /// Any other number.
    F(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Jval>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Jval)>),
}

impl Jval {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Jval> {
        match self {
            Jval::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Jval::U(v) => Some(*v),
            Jval::I(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Jval::U(v) => Some(*v as f64),
            Jval::I(v) => Some(*v as f64),
            Jval::F(v) => Some(*v),
            Jval::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Jval::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Jval]> {
        match self {
            Jval::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation (stable field order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Jval::Null => out.push_str("null"),
            Jval::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Jval::U(v) => {
                let _ = write!(out, "{v}");
            }
            Jval::I(v) => {
                let _ = write!(out, "{v}");
            }
            Jval::F(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Jval::Str(s) => write_json_string(out, s),
            Jval::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays render on one line; nested ones indent.
                let flat = items
                    .iter()
                    .all(|v| !matches!(v, Jval::Arr(_) | Jval::Obj(_)));
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if !flat {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    v.write(out, indent + 1);
                }
                if !flat {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Jval::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing whitespace allowed, trailing
/// garbage rejected.
pub fn parse(text: &str) -> Result<Jval, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Jval) -> Result<Jval, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Jval, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Jval::Null),
            Some(b't') => self.literal("true", Jval::Bool(true)),
            Some(b'f') => self.literal("false", Jval::Bool(false)),
            Some(b'"') => self.string().map(Jval::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates are not needed by the schema; map
                            // unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Jval, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Jval::U(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Jval::I(i));
            }
        }
        text.parse::<f64>()
            .map(Jval::F)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Jval, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Jval::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Jval::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Jval, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Jval::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Jval::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Jval::Obj(vec![
            ("a".into(), Jval::U(18446744073709551615)),
            ("b".into(), Jval::I(-42)),
            ("c".into(), Jval::F(1.5)),
            ("s".into(), Jval::Str("q\"uo\\te\n".into())),
            ("n".into(), Jval::Null),
            ("t".into(), Jval::Bool(true)),
            (
                "arr".into(),
                Jval::Arr(vec![Jval::U(1), Jval::U(2), Jval::U(3)]),
            ),
            ("empty".into(), Jval::Arr(vec![])),
            ("obj".into(), Jval::Obj(vec![("x".into(), Jval::U(7))])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_counters_stay_bitwise_exact() {
        // 2^63 + 3 is not representable in f64; the parser must keep it.
        let text = "{\"flops\": 9223372036854775811}";
        let v = parse(text).unwrap();
        assert_eq!(v.get("flops").unwrap().as_u64(), Some(9223372036854775811));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_nested_whitespace() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
