//! In-process end-to-end smoke of the flight recorder: arm tracing, run a
//! real Algorithm 3 sketch, and check every drain — annotated block
//! records, balanced Chrome/Perfetto JSON (parsed with the crate's own
//! parser, the same one `benchgate` trusts for baselines), collapsed
//! flamegraph stacks, the SVG renderer, and the anomaly attributor.
//!
//! Single test function on purpose: the recorder is process-global and the
//! test harness runs functions in one binary concurrently.

use bench::json;
use rngkit::{FastRng, UnitUniform};
use sketchcore::{sketch_alg3, SketchConfig};

#[test]
fn armed_recorder_captures_a_real_sketch_end_to_end() {
    obskit::trace::set_enabled(true);
    let _ = obskit::trace::take(); // drop residue from any earlier arming

    let a = datagen::uniform_random::<f64>(2_000, 256, 1e-2, 7);
    let cfg = SketchConfig::new(2 * a.ncols(), 128, 64, 7);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(cfg.seed));
    let x = sketch_alg3(&a, &cfg, &sampler);
    std::hint::black_box(&x);

    obskit::trace::set_enabled(false);
    let cap = obskit::trace::take();
    assert!(!cap.is_empty(), "armed run captured nothing");
    assert_eq!(cap.dropped, 0, "small run must fit the ring");

    // Block annotations: every (i-panel, j-panel) outer block, each carrying
    // the real shape and traffic numbers.
    let blocks = cap.block_records();
    let d_blocks = cfg.d.div_ceil(cfg.b_d);
    let n_blocks = a.ncols().div_ceil(cfg.b_n);
    assert_eq!(blocks.len(), d_blocks * n_blocks);
    let nnz_sum: u64 = blocks.iter().map(|b| b.nnz).sum();
    assert_eq!(
        nnz_sum,
        (d_blocks * a.nnz()) as u64,
        "each d-panel streams all of A once"
    );
    for b in &blocks {
        assert_eq!(b.path, "sketch/alg3/block");
        assert!(b.bytes > 0, "block with zero traffic: {b:?}");
        assert!(
            b.cost >= b.bytes,
            "model cost must include the traffic term"
        );
    }

    // Chrome export: balanced B/E, valid JSON by our own parser, per-block
    // args present.
    let chrome = cap.chrome_json();
    assert_eq!(
        chrome.matches("\"ph\":\"B\"").count(),
        chrome.matches("\"ph\":\"E\"").count(),
        "unbalanced span pairs"
    );
    let doc = json::parse(&chrome).expect("chrome_json must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(events.len() > 2 * blocks.len());
    let block_closes = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("E")
                && e.get("args").and_then(|a| a.get("nnz")).is_some()
        })
        .count();
    assert_eq!(block_closes, blocks.len());
    for e in events {
        let Some(args) = e.get("args") else { continue };
        if args.get("nnz").is_none() {
            continue;
        }
        for key in ["nnz", "bytes", "model_ns", "dur_ns", "cost"] {
            assert!(
                args.get(key).and_then(|v| v.as_u64()).is_some(),
                "block close missing numeric arg {key}"
            );
        }
    }

    // Flamegraph drains: collapsed stacks name the kernel, and the SVG
    // renderer produces a self-contained document from them.
    let folded = cap.folded();
    assert!(
        folded.contains("sketch/alg3"),
        "no kernel stack in:\n{folded}"
    );
    for line in folded.lines() {
        let (_, v) = line.rsplit_once(' ').expect("stack <self-ns> shape");
        v.parse::<u64>().expect("self-ns must be an integer");
    }
    let svg = bench::flame::folded_to_svg(&folded, "smoke");
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    assert!(svg.contains("sketch/alg3"));

    // Attribution over the real blocks: one verdict per block, sorted
    // slowest-first, and the table renders.
    let attrs = obskit::trace::attribute(&blocks, bench::tracecli::REL_TOL, bench::tracecli::MAD_K);
    assert_eq!(attrs.len(), blocks.len());
    assert!(attrs.windows(2).all(|w| w[0].rec.dur_ns >= w[1].rec.dur_ns));
    bench::tracecli::print_slowest_blocks(&attrs);
}
