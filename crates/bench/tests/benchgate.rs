//! Integration tests for the benchgate perf-trajectory layer.
//!
//! These tests run real suite scenarios and therefore mutate the
//! process-global obskit registry; a shared mutex serializes them (the same
//! pattern obskit's own tests use).

use bench::gate::{compare, record_baseline, run_suite, Baseline, GateConfig};
use bench::time_median;
use obskit::NCTR;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tiny-but-real gate config for tests: small scenarios, generous noise
/// tolerance (the assertions of record are about *counters*, which are
/// exact, not wall time).
fn test_cfg() -> GateConfig {
    GateConfig {
        scale: 16,
        reps: 2,
        rel_tol: 100.0, // time comparisons must never flake in CI
        mad_k: 4.0,
        inject_slowdown_ns: 0,
    }
}

#[test]
fn baseline_written_json_parses_back_identically() {
    let _g = lock();
    let base = record_baseline(&test_cfg()).expect("record");
    assert_eq!(base.scenarios.len(), 9, "full suite recorded");
    assert!(base.manifest.threads >= 1);
    assert_eq!(base.manifest.obskit_version, obskit::VERSION);
    assert_eq!(
        base.manifest.counters.iter().any(|&c| c > 0),
        obskit::OBS_COMPILED,
        "manifest counters populated iff telemetry is compiled in"
    );
    if obskit::OBS_COMPILED {
        assert_eq!(base.manifest.cargo_features, vec!["obs".to_string()]);
        assert_eq!(base.manifest.traffic_ratios.len(), 2, "alg3 + alg4 ratios");
        // The kernel scenarios must have produced latency histograms.
        let alg3 = base
            .scenarios
            .iter()
            .find(|s| s.name == "alg3_tall")
            .unwrap();
        assert!(
            alg3.hists
                .iter()
                .any(|h| h.path == "sketch/alg3/block" && h.count > 0),
            "alg3_tall records per-block histograms, got {:?}",
            alg3.hists
        );
    }
    let text = base.to_json();
    let back = Baseline::from_json(&text).expect("parse back what we wrote");
    assert_eq!(base, back, "every field round-trips through JSON");
}

#[test]
fn self_comparison_reports_zero_regressions() {
    let _g = lock();
    let cfg = test_cfg();
    let base = record_baseline(&cfg).expect("record");
    let current = run_suite(&cfg).expect("rerun");
    let (deltas, fail) = compare(&base, &current, &cfg);
    assert!(!fail, "self-comparison must pass: {deltas:?}");
    assert_eq!(deltas.len(), base.scenarios.len());
    // The deterministic cross-check behind that verdict: every scenario's
    // counters are bitwise identical between the two runs.
    for (b, c) in base.scenarios.iter().zip(current.iter()) {
        assert_eq!(b.name, c.name);
        assert_eq!(b.counters, c.counters, "counters drift in {}", b.name);
    }
}

#[test]
fn back_to_back_runs_report_identical_counter_totals() {
    let _g = lock();
    // Satellite (a): obskit::reset() between repetitions means totals
    // describe one execution — so two identical runs agree exactly, and a
    // run with more reps agrees with a run with fewer.
    let mut cfg = test_cfg();
    let first = run_suite(&cfg).expect("first run");
    cfg.reps = 4;
    let second = run_suite(&cfg).expect("second run");
    let total = |runs: &[bench::gate::ScenarioResult]| {
        let mut t = [0u64; NCTR];
        for sc in runs {
            for (slot, v) in sc.counters.iter().enumerate() {
                t[slot] += v;
            }
        }
        t
    };
    assert_eq!(
        total(&first),
        total(&second),
        "counter totals must not scale with --reps"
    );
}

#[test]
fn injected_slowdown_trips_the_gate() {
    let _g = lock();
    let mut cfg = test_cfg();
    let base = record_baseline(&cfg).expect("record");
    // A real-tolerance compare against a run that busy-waits 20ms per
    // repetition: every scenario at scale 1/16 runs in well under 20ms, so
    // the median inflates past any plausible threshold.
    cfg.rel_tol = 0.30;
    cfg.inject_slowdown_ns = 20_000_000;
    let slowed = run_suite(&cfg).expect("slowed run");
    cfg.inject_slowdown_ns = 0;
    let (deltas, fail) = compare(&base, &slowed, &cfg);
    assert!(
        fail,
        "20ms injected slowdown must fail the gate: {deltas:?}"
    );
    assert!(
        deltas
            .iter()
            .any(|d| d.verdict == bench::gate::Verdict::Regression),
        "failure must be a timing regression, not drift: {deltas:?}"
    );
}

#[test]
fn time_median_counters_do_not_scale_with_reps() {
    let _g = lock();
    if !obskit::OBS_COMPILED {
        return;
    }
    let was = obskit::enabled();
    obskit::set_enabled(true);
    let work = || {
        let a = datagen::uniform_random::<f64>(200, 50, 1e-2, 7);
        let cfg = sketchcore::SketchConfig::new(100, 50, 25, 7);
        let s = rngkit::UnitUniform::<f64>::sampler(rngkit::FastRng::new(7));
        std::hint::black_box(sketchcore::sketch_alg3(&a, &cfg, &s));
    };
    obskit::reset();
    time_median(1, work);
    let once = obskit::snapshot().counters;
    obskit::reset();
    time_median(3, work);
    let thrice = obskit::snapshot().counters;
    obskit::set_enabled(was);
    obskit::reset();
    assert!(once.iter().any(|&c| c > 0), "work must be counted at all");
    assert_eq!(
        once, thrice,
        "time_median must record telemetry for exactly one repetition"
    );
}
