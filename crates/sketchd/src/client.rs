//! `sketchclient`: blocking client for the `sketchd` wire protocol.
//!
//! One [`Client`] wraps one TCP connection; requests are written as frames
//! and the reply is read synchronously (the protocol answers in request
//! order per connection). A small [`Pool`] hands out connections for the
//! load generator's concurrency sweep.

use crate::proto::{
    self, Frame, FrameReadError, FrameReader, HealthResp, LoadMatrixReq, LoadMatrixResp,
    MatrixSource, Op, SketchReq, SketchResult, SolveSapReq, SolveSapResp, Status,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes would not frame or parse.
    Decode(proto::DecodeError),
    /// The server answered with a non-Ok status; `detail` is its message.
    Server {
        /// Response status.
        status: Status,
        /// Human-readable detail from the error frame payload.
        detail: String,
    },
    /// The reply violated the protocol (wrong op or req_id echo).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
            ClientError::Server { status, detail } => {
                write!(f, "server error ({}): {detail}", status.name())
            }
            ClientError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-reported status, if this is a server-side rejection.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Server { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// A blocking connection to a `sketchd` server.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
}

impl Client {
    /// Connect with a timeout (also installed as the read/write timeout).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
        })
    }

    /// Read the next reply frame; transport/framing failures map to
    /// [`ClientError`]. A read timeout is a hard error here — the stream's
    /// timeout is the connect timeout, and the protocol always answers.
    fn read_reply(&mut self) -> Result<Frame, ClientError> {
        match self.reader.next_frame(&mut self.stream) {
            Ok(f) => Ok(f),
            Err(FrameReadError::TimedOut) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for reply",
            ))),
            Err(FrameReadError::Closed) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "server closed the connection",
            ))),
            Err(FrameReadError::Io(e)) => Err(ClientError::Io(e)),
            Err(FrameReadError::Decode(e)) => Err(ClientError::Decode(e)),
        }
    }

    fn roundtrip(
        &mut self,
        op: Op,
        deadline_ms: u32,
        payload: Vec<u8>,
    ) -> Result<Frame, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Frame {
            op,
            status: Status::Ok,
            req_id: id,
            deadline_ms,
            payload,
        };
        proto::write_frame(&mut self.stream, &req)?;
        let resp = self.read_reply()?;
        if resp.req_id != id {
            return Err(ClientError::Protocol(format!(
                "reply req_id {} does not echo request {id}",
                resp.req_id
            )));
        }
        if resp.status != Status::Ok {
            return Err(ClientError::Server {
                status: resp.status,
                detail: String::from_utf8_lossy(&resp.payload).into_owned(),
            });
        }
        if resp.op != op {
            return Err(ClientError::Protocol(format!(
                "reply op {:?} does not match request {op:?}",
                resp.op
            )));
        }
        Ok(resp)
    }

    /// Install a server-generated uniform random matrix under `name`.
    pub fn load_generated(
        &mut self,
        name: &str,
        m: u64,
        n: u64,
        density: f64,
        seed: u64,
    ) -> Result<LoadMatrixResp, ClientError> {
        let req = LoadMatrixReq {
            name: name.to_string(),
            source: MatrixSource::Generate {
                m,
                n,
                density,
                seed,
            },
        };
        let resp = self.roundtrip(Op::LoadMatrix, 0, req.encode())?;
        LoadMatrixResp::decode(&resp.payload).map_err(ClientError::Decode)
    }

    /// Install explicit CSC parts under `name`.
    pub fn load_inline(
        &mut self,
        name: &str,
        nrows: u64,
        ncols: u64,
        col_ptr: Vec<u64>,
        row_idx: Vec<u64>,
        values: Vec<f64>,
    ) -> Result<LoadMatrixResp, ClientError> {
        let req = LoadMatrixReq {
            name: name.to_string(),
            source: MatrixSource::Inline {
                nrows,
                ncols,
                col_ptr,
                row_idx,
                values,
            },
        };
        let resp = self.roundtrip(Op::LoadMatrix, 0, req.encode())?;
        LoadMatrixResp::decode(&resp.payload).map_err(ClientError::Decode)
    }

    /// Sketch a registered matrix. `deadline_ms` of 0 means no deadline;
    /// `flags` are [`crate::proto::sketch_flags`] bits.
    #[allow(clippy::too_many_arguments)]
    pub fn sketch(
        &mut self,
        name: &str,
        d: u64,
        b_d: u64,
        b_n: u64,
        seed: u64,
        flags: u32,
        deadline_ms: u32,
    ) -> Result<SketchResult, ClientError> {
        let req = SketchReq {
            name: name.to_string(),
            d,
            b_d,
            b_n,
            seed,
            flags,
        };
        let resp = self.roundtrip(Op::Sketch, deadline_ms, req.encode())?;
        SketchResult::decode(&resp.payload).map_err(ClientError::Decode)
    }

    /// Pipelined sketches: all requests are written in one buffer (one
    /// syscall), then the replies — which the server answers in
    /// per-connection order, coalescing same-batch replies into one write —
    /// are read back. Returns one result per seed, in order. A transport
    /// failure aborts the whole pipeline; per-request server errors land in
    /// the corresponding slot.
    #[allow(clippy::too_many_arguments)]
    pub fn sketch_many(
        &mut self,
        name: &str,
        d: u64,
        b_d: u64,
        b_n: u64,
        seeds: &[u64],
        flags: u32,
        deadline_ms: u32,
    ) -> Result<Vec<Result<SketchResult, ClientError>>, ClientError> {
        use std::io::Write;
        let mut buf = Vec::new();
        let mut ids = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let id = self.next_id;
            self.next_id += 1;
            ids.push(id);
            let req = SketchReq {
                name: name.to_string(),
                d,
                b_d,
                b_n,
                seed,
                flags,
            };
            let frame = Frame {
                op: Op::Sketch,
                status: Status::Ok,
                req_id: id,
                deadline_ms,
                payload: req.encode(),
            };
            buf.extend_from_slice(&frame.encode());
        }
        self.stream.write_all(&buf)?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let resp = self.read_reply()?;
            if resp.req_id != id {
                return Err(ClientError::Protocol(format!(
                    "pipelined reply req_id {} does not echo request {id}",
                    resp.req_id
                )));
            }
            if resp.status != Status::Ok {
                out.push(Err(ClientError::Server {
                    status: resp.status,
                    detail: String::from_utf8_lossy(&resp.payload).into_owned(),
                }));
            } else {
                out.push(SketchResult::decode(&resp.payload).map_err(ClientError::Decode));
            }
        }
        Ok(out)
    }

    /// Sketch-and-precondition least squares against a registered matrix.
    pub fn solve_sap(
        &mut self,
        name: &str,
        gamma: u64,
        seed: u64,
        rhs: Vec<f64>,
        deadline_ms: u32,
    ) -> Result<SolveSapResp, ClientError> {
        let req = SolveSapReq {
            name: name.to_string(),
            gamma,
            seed,
            rhs,
        };
        let resp = self.roundtrip(Op::SolveSap, deadline_ms, req.encode())?;
        SolveSapResp::decode(&resp.payload).map_err(ClientError::Decode)
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<HealthResp, ClientError> {
        let resp = self.roundtrip(Op::Health, 0, Vec::new())?;
        HealthResp::decode(&resp.payload).map_err(ClientError::Decode)
    }

    /// Server telemetry since startup, as a JSON string.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let resp = self.roundtrip(Op::Stats, 0, Vec::new())?;
        String::from_utf8(resp.payload)
            .map_err(|_| ClientError::Protocol("stats body is not UTF-8".into()))
    }

    /// Ask the server to shut down (acknowledged before it exits).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(Op::Shutdown, 0, Vec::new())?;
        Ok(())
    }
}

/// A trivial blocking connection pool: check out a connection, use it,
/// check it back in. Connections that errored should be dropped instead
/// of returned.
pub struct Pool {
    addr: SocketAddr,
    timeout: Duration,
    idle: Mutex<Vec<Client>>,
}

impl Pool {
    /// A pool of connections to `addr`.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Pool {
        Pool {
            addr,
            timeout,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Check out an idle connection or dial a new one.
    pub fn get(&self) -> Result<Client, ClientError> {
        if let Some(c) = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(c);
        }
        Client::connect(self.addr, self.timeout)
    }

    /// Return a healthy connection for reuse.
    pub fn put(&self, client: Client) {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(client);
    }
}
