//! The `sketchd` daemon: bind, serve, exit cleanly on the `Shutdown` op.
//!
//! ```text
//! sketchd [--addr HOST:PORT] [--port-file PATH] [--queue-cap N]
//!         [--workers N] [--batch-max N] [--registry-budget BYTES]
//!         [--worker-delay-ms MS] [--obs-json PATH]
//! ```
//!
//! `--port-file` writes the bound port (one line) once the listener is up,
//! so scripts binding port 0 can discover the ephemeral port without
//! parsing stdout (verify.sh's smoke step relies on it).

use sketchd::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sketchd [--addr HOST:PORT] [--port-file PATH] [--queue-cap N] \
         [--workers N] [--batch-max N] [--registry-budget BYTES] \
         [--worker-delay-ms MS] [--obs-json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut obs_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--port-file" => port_file = Some(val("--port-file")),
            "--queue-cap" => cfg.queue_cap = parse(&val("--queue-cap"), "--queue-cap"),
            "--workers" => cfg.workers = parse(&val("--workers"), "--workers"),
            "--batch-max" => cfg.batch_max = parse(&val("--batch-max"), "--batch-max"),
            "--registry-budget" => {
                cfg.registry_budget = parse(&val("--registry-budget"), "--registry-budget")
            }
            "--worker-delay-ms" => {
                cfg.worker_delay_ms = parse(&val("--worker-delay-ms"), "--worker-delay-ms")
            }
            "--obs-json" => obs_json = Some(val("--obs-json")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    // The service is an observability citizen by default: counters and
    // svc/* histograms are always recorded (Stats reports deltas), and
    // --obs-json dumps the full registry at exit.
    obskit::set_enabled(true);
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sketchd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("sketchd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    println!("sketchd listening on {addr}");
    // Serve until a client sends the Shutdown op; join() returns only when
    // every acceptor/worker/connection thread has exited.
    server.join();
    let sink = obskit::resolve_json_sink(obs_json);
    if let Err(e) = obskit::emit_run_telemetry(sink.as_deref()) {
        eprintln!("sketchd: telemetry emit failed: {e}");
    }
    println!("sketchd: clean shutdown");
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {what}");
        usage()
    })
}
