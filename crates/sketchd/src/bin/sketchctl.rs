//! `sketchctl`: a command-line poke at a running `sketchd`.
//!
//! ```text
//! sketchctl --addr HOST:PORT health
//! sketchctl --addr HOST:PORT stats
//! sketchctl --addr HOST:PORT load NAME M N DENSITY SEED
//! sketchctl --addr HOST:PORT sketch NAME D B_D B_N SEED
//! sketchctl --addr HOST:PORT shutdown
//! ```
//!
//! `sketch` requests a checksum reply (the full matrix body is for
//! programs, not terminals) and prints the Frobenius norm, the bitwise
//! XOR fingerprint, and the server-side batch size the request rode in.

use sketchd::client::Client;
use sketchd::proto::{sketch_flags, SketchResult};
use std::net::ToSocketAddrs;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sketchctl --addr HOST:PORT <health|stats|shutdown|load NAME M N DENSITY SEED|sketch NAME D B_D B_N SEED>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 || args[0] != "--addr" {
        usage();
    }
    let addr = match args[1].to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("sketchctl: cannot resolve {}", args[1]);
            std::process::exit(1);
        }
    };
    let mut client = match Client::connect(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sketchctl: connect failed: {e}");
            std::process::exit(1);
        }
    };
    let cmd = args[2].as_str();
    let rest = &args[3..];
    let outcome = match (cmd, rest.len()) {
        ("health", 0) => client.health().map(|h| {
            format!(
                "up {} ms, queue depth {}, {} matrices resident, batch_max {}",
                h.uptime_ms, h.queue_depth, h.matrices, h.batch_max
            )
        }),
        ("stats", 0) => client.stats(),
        ("shutdown", 0) => client
            .shutdown()
            .map(|()| "shutdown acknowledged".to_string()),
        ("load", 5) => client
            .load_generated(
                &rest[0],
                arg(&rest[1], "M"),
                arg(&rest[2], "N"),
                arg(&rest[3], "DENSITY"),
                arg(&rest[4], "SEED"),
            )
            .map(|r| {
                format!(
                    "loaded {}x{} ({} nnz, {} B, {} evicted)",
                    r.nrows, r.ncols, r.nnz, r.bytes, r.evicted
                )
            }),
        ("sketch", 5) => client
            .sketch(
                &rest[0],
                arg(&rest[1], "D"),
                arg(&rest[2], "B_D"),
                arg(&rest[3], "B_N"),
                arg(&rest[4], "SEED"),
                sketch_flags::CHECKSUM_ONLY,
                0,
            )
            .map(|r| match r {
                SketchResult::Checksum {
                    d,
                    n,
                    batch,
                    fro,
                    xor,
                } => {
                    format!("sketch {d}x{n}: fro {fro:.6e}, xor {xor:#018x}, batch {batch}")
                }
                SketchResult::Full { d, n, batch, .. } => {
                    format!("sketch {d}x{n} (full body), batch {batch}")
                }
            }),
        _ => usage(),
    };
    match outcome {
        Ok(line) => println!("{line}"),
        Err(e) => {
            eprintln!("sketchctl: {e}");
            std::process::exit(1);
        }
    }
}

fn arg<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("sketchctl: bad value {s:?} for {what}");
        std::process::exit(2);
    })
}
